//! The full undecidability pipeline, assembled.
//!
//! Chains every reduction in the paper, starting from an equational
//! implication over semigroups:
//!
//! ```text
//! ei φ                                  (semigroup crate)
//!   → (Σ₁, σ_φ)    untyped tds + egds   Theorem 1 conditions
//!   → (T(Σ₁)∪Σ₀, T(σ_φ))  typed        Theorem 2 (Section 3–4)
//!   → (Σ′, σ′)     typed tds only       Lemma 5
//!   → (Σ̂ ∪ mvds, σ̂)  shallow tds/pjds  Theorem 6 (Section 6)
//! ```
//!
//! Every stage is effective; what is *not* effective — by the paper's main
//! theorems — is deciding the final implication. The pipeline therefore
//! returns chase-ready instances at each stage plus the three-valued
//! verdicts the semidecision procedures can reach within a budget.

use typedtd_chase::{ChaseConfig, ChaseRun};
use typedtd_core::{theorem2_instance, theta_egd, TypedInstance};
use typedtd_dependencies::{Td, TdOrEgd};
use typedtd_relational::{Universe, ValuePool};
use typedtd_semigroup::{frontier_instance, Ei};
use std::sync::Arc;

/// All stages of the pipeline for one ei.
pub struct Pipeline {
    /// The source equational implication.
    pub ei: Ei,
    /// Stage 1: the untyped instance `(Σ₁, σ_φ)` and its pool.
    pub untyped_universe: Arc<Universe>,
    /// Untyped pool (owns the variables of stage 1).
    pub untyped_pool: ValuePool,
    /// Stage-1 premises.
    pub untyped_sigma: Vec<TdOrEgd>,
    /// Stage-1 goal.
    pub untyped_goal: TdOrEgd,
    /// Stage 2: the typed instance `(T(Σ₁) ∪ Σ₀, T(σ_φ))`.
    pub typed: TypedInstance,
    /// Stage 3: typed tds only (Lemma 5 elimination of egds).
    pub tds_only_sigma: Vec<Td>,
    /// Stage-3 goal (a total typed td).
    pub tds_only_goal: Td,
}

/// Builds the pipeline for an ei.
pub fn pipeline(ei: &Ei) -> Pipeline {
    let u = Universe::untyped_abc();
    let mut untyped_pool = ValuePool::new(u.clone());
    let inst = frontier_instance(ei, &mut untyped_pool, &u);
    let mut typed = theorem2_instance(&u, &untyped_pool, &inst.sigma, &inst.goal);

    // Lemma 5: eliminate egds from the typed stage.
    let tds_only_sigma =
        typedtd_core::eliminate_egds(&typed.sigma, typed.translator.pool_mut());
    let tds_only_goal = match &typed.goal {
        TdOrEgd::Td(t) => t.clone(),
        TdOrEgd::Egd(e) => theta_egd(e, typed.translator.pool_mut()),
    };

    Pipeline {
        ei: ei.clone(),
        untyped_universe: u,
        untyped_pool,
        untyped_sigma: inst.sigma,
        untyped_goal: inst.goal,
        typed,
        tds_only_sigma,
        tds_only_goal,
    }
}

impl Pipeline {
    /// Runs the chase on the untyped stage.
    pub fn chase_untyped(&mut self, cfg: &ChaseConfig) -> ChaseRun {
        typedtd_chase::chase_implication(
            &self.untyped_sigma,
            &self.untyped_goal,
            &mut self.untyped_pool,
            cfg,
        )
    }

    /// Runs the chase on the typed stage.
    pub fn chase_typed(&mut self, cfg: &ChaseConfig) -> ChaseRun {
        typedtd_chase::chase_implication(
            &self.typed.sigma,
            &self.typed.goal,
            self.typed.translator.pool_mut(),
            cfg,
        )
    }

    /// Summarizes stage sizes (for the experiment harness).
    pub fn sizes(&self) -> String {
        format!(
            "untyped: |Sigma|={} goal-rows={}; typed: |Sigma|={}; td-only: |Sigma|={} goal-rows={}",
            self.untyped_sigma.len(),
            match &self.untyped_goal {
                TdOrEgd::Td(t) => t.hypothesis().len(),
                TdOrEgd::Egd(e) => e.hypothesis().len(),
            },
            self.typed.sigma.len(),
            self.tds_only_sigma.len(),
            self.tds_only_goal.hypothesis().len(),
        )
    }
}


/// The paper's Section 5 headline: a **fixed** set `Σ₂` of typed tds and
/// egds whose implication problem (over egd goals) is unsolvable
/// (Theorems 3 and 4).
///
/// `Σ₂ = T(Σ₁) ∪ Σ₀`, the typed image of the semigroup theory: the goals
/// range over `T(σ_φ)` as `φ` ranges over equational implications, and by
/// the Gurevich–Lewis inseparability no algorithm separates the implied
/// goals from the finitely refutable ones. The returned translator owns the
/// typed pool; build goals against it with [`typed_goal_for_ei`].
pub fn fixed_sigma2() -> (typedtd_core::Translator, Vec<TdOrEgd>, Vec<String>, ValuePool) {
    let u = Universe::untyped_abc();
    let mut untyped_pool = ValuePool::new(u.clone());
    let (sigma1, _labels) = typedtd_semigroup::semigroup_theory(&u, &mut untyped_pool);
    // A placeholder goal just to drive the translator; Σ₂ itself does not
    // depend on it (theorem2_instance translates Σ and Σ₀ first).
    let placeholder = Ei::parse("=> x*x = x*x").unwrap();
    let goal = TdOrEgd::Egd(typedtd_semigroup::ei_goal(&placeholder, &u, &mut untyped_pool));
    let inst = theorem2_instance(&u, &untyped_pool, &sigma1, &goal);
    (inst.translator, inst.sigma, inst.labels, untyped_pool)
}

/// The typed goal `T(σ_φ)` for an ei, phrased against a `Σ₂` translator
/// (shared symbols stay shared, as the reduction requires).
pub fn typed_goal_for_ei(
    translator: &mut typedtd_core::Translator,
    untyped_pool: &mut ValuePool,
    ei: &Ei,
) -> TdOrEgd {
    let u = translator.untyped_universe().clone();
    let goal = TdOrEgd::Egd(typedtd_semigroup::ei_goal(ei, &u, untyped_pool));
    typedtd_core::t_dep(translator, untyped_pool, &goal)
}

/// The Theorem 4(2) variant: `Σ₃`, typed **tds only**, with total-td goals
/// (via the Lemma 5 elimination applied to `Σ₂`).
pub fn fixed_sigma3() -> (typedtd_core::Translator, Vec<Td>, ValuePool) {
    let (mut translator, sigma2, _labels, untyped_pool) = fixed_sigma2();
    let tds = typedtd_core::eliminate_egds(&sigma2, translator.pool_mut());
    (translator, tds, untyped_pool)
}


#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_chase::ChaseOutcome;

    #[test]
    fn provable_ei_stays_provable_through_stage_2() {
        let ei = Ei::parse("x = y => x*z = y*z").unwrap();
        let mut p = pipeline(&ei);
        let r1 = p.chase_untyped(&ChaseConfig::quick());
        assert_eq!(r1.outcome, ChaseOutcome::Implied);
        let r2 = p.chase_typed(&ChaseConfig::default());
        assert_eq!(
            r2.outcome,
            ChaseOutcome::Implied,
            "Theorem 2 preserves provability"
        );
    }

    #[test]
    fn pipeline_stage_shapes() {
        let ei = Ei::parse("=> (x*y)*z = x*(y*z)").unwrap();
        let p = pipeline(&ei);
        // Untyped: 11 theory deps; typed adds Sigma0's 15.
        assert_eq!(p.untyped_sigma.len(), 11);
        assert_eq!(p.typed.sigma.len(), 11 + 15);
        assert_eq!(p.tds_only_sigma.len(), 11 + 15);
        assert!(p.tds_only_goal.is_total());
        // All stage-3 tds are typed-consistent.
        for td in &p.tds_only_sigma {
            td.check_typed(p.typed.translator.pool()).unwrap();
        }
    }

    #[test]
    fn fixed_sigma2_is_typed_and_well_formed() {
        let (tr, sigma2, labels, _pool) = fixed_sigma2();
        assert_eq!(sigma2.len(), labels.len());
        assert_eq!(sigma2.len(), 11 + 15);
        for dep in &sigma2 {
            match dep {
                TdOrEgd::Td(t) => t.check_typed(tr.pool()).unwrap(),
                TdOrEgd::Egd(e) => e.check_typed(tr.pool()).unwrap(),
            }
        }
    }

    #[test]
    fn sigma2_proves_typed_congruence_goal() {
        let (mut tr, sigma2, _labels, mut untyped_pool) = fixed_sigma2();
        let ei = Ei::parse("x = y => x*z = y*z").unwrap();
        let goal = typed_goal_for_ei(&mut tr, &mut untyped_pool, &ei);
        let run = typedtd_chase::chase_implication(
            &sigma2,
            &goal,
            tr.pool_mut(),
            &ChaseConfig::default(),
        );
        assert_eq!(run.outcome, ChaseOutcome::Implied);
    }

    #[test]
    fn fixed_sigma3_is_tds_only_and_typed() {
        let (tr, sigma3, _pool) = fixed_sigma3();
        assert_eq!(sigma3.len(), 26);
        for td in &sigma3 {
            td.check_typed(tr.pool()).unwrap();
        }
    }
}
