//! # typedtd — typed template dependencies
//!
//! A complete, executable reproduction of Moshe Y. Vardi's *"The
//! Implication and Finite Implication Problems for Typed Template
//! Dependencies"* (PODS 1982; JCSS 28, 1984): the dependency classes, the
//! chase, every reduction in the paper, and the decidable fragments that
//! bracket its undecidability results.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`relational`] | universes, typed/untyped values, tuples, relations, project-join `m_R`, homomorphism search |
//! | [`dependencies`] | tds, egds, fds, mvds, jds, pjds; satisfaction; shallow ↔ pjd (Lemma 6); fd/mvd oracles |
//! | [`chase`] | the chase (standard / oblivious / core), traces, finite counterexample search, three-valued [`chase::decide`] |
//! | [`core`] | Sections 3–6: `T`, `σ₀`/`Σ₀`, `T⁻¹`, `θ_{X→A}`, the hat translation, Theorem 2 and Theorem 6 pipelines |
//! | [`semigroup`] | Theorem 1/3 substrate: equational implications, finite semigroups, the fixed set `Σ₁` |
//! | [`formal`] | checkable proofs, Theorem 7/8 formal systems, Armstrong relations |
//! | [`service`] | the concurrent implication service: cloneable `ImplicationClient` over sharded fair-dovetailing schedulers with work stealing, `JobHandle` lifecycle (poll / parked wait / cancel / retire), bounded isomorphism-keyed answer cache, `typedtd-serve` CLI |
//!
//! ## Quickstart
//!
//! ```
//! use typedtd::prelude::*;
//!
//! let u = Universe::typed(vec!["A", "B", "C"]);
//! let mut pool = ValuePool::new(u.clone());
//! let sigma = vec![Dependency::from(Fd::parse(&u, "A -> B").unwrap()),
//!                  Dependency::from(Fd::parse(&u, "B -> C").unwrap())];
//! let goal = Dependency::from(Fd::parse(&u, "A -> C").unwrap());
//! let verdict = decide_dependencies(&sigma, &goal, &u, &mut pool,
//!                                   &DecideConfig::default());
//! assert_eq!(verdict.implication, Answer::Yes);
//! assert_eq!(verdict.finite_implication, Answer::Yes);
//! ```

pub use typedtd_chase as chase;
pub use typedtd_core as core;
pub use typedtd_dependencies as dependencies;
pub use typedtd_formal as formal;
pub use typedtd_relational as relational;
pub use typedtd_semigroup as semigroup;
pub use typedtd_service as service;

pub mod undecidability;

/// The common imports for working with the library.
pub mod prelude {
    pub use typedtd_chase::{
        chase_implication, decide, decide_dependencies, saturate, Answer, CancelToken,
        ChaseConfig, ChaseOutcome, ChaseTask, ChaseVariant, DecideConfig, DecideMode,
        DecideTask, SearchConfig, SearchTask, StepStatus,
    };
    pub use typedtd_dependencies::{
        egd_from_names, td_from_names, Dependency, Egd, Fd, Mvd, Pjd, Td, TdOrEgd,
    };
    pub use typedtd_relational::{
        AttrId, AttrSet, Relation, Tuple, Typing, Universe, Valuation, Value, ValuePool,
    };
}
