//! Differential testing of the axiomatic proof-search oracles against
//! the chase on the fragments where both are decision procedures:
//!
//! * **fd-only** — Armstrong's rules are sound and complete, and the
//!   chase on egds always terminates, so the two must agree exactly.
//! * **ind-only** — the Casanova–Fagin–Papadimitriou rules are sound and
//!   complete (and implication ≡ finite implication), but the *chase*
//!   on an ind's generating td can diverge: the dovetailed decide covers
//!   the refutations from the finite-model search. Cases either side
//!   leaves `Unknown` are skipped, but the test demands a large floor of
//!   definite agreements so the skip path cannot hollow it out.
//!
//! Every proof object the oracles emit is replayed through the
//! independent checker — agreement on the verdict alone would not catch
//! an oracle that guesses right for the wrong reason.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use typedtd::dependencies::{fd_implies, Ind};
use typedtd::formal::{
    fd_axiomatic_implies, ind_axiomatic_implies, verify_axiomatic, AxFact, Verdict,
};
use typedtd::prelude::*;

const FD_CASES: usize = 140;
const IND_CASES: usize = 140;
/// Definite (non-Unknown) chase verdicts required across both corpora.
const MIN_DEFINITE_AGREEMENTS: usize = 200;

fn mask_to_set(u: &Universe, mask: u32) -> AttrSet {
    u.attrs().filter(|a| mask & (1 << a.index()) != 0).collect()
}

/// A random nonempty attribute sequence with a duplicate-free rhs twin:
/// repetitions on the *left* are legal everywhere, while a repeated rhs
/// attribute fed from distinct lhs positions has no single-td normal
/// form (`Ind::to_td` rejects it), so the chase side could not run.
fn random_ind(rng: &mut StdRng, width: u16) -> Ind {
    let len = rng.random_range(1..=2usize);
    let lhs: Vec<AttrId> = (0..len)
        .map(|_| AttrId(rng.random_range(0..width as u32) as u16))
        .collect();
    let mut rhs: Vec<AttrId> = Vec::with_capacity(len);
    while rhs.len() < len {
        let a = AttrId(rng.random_range(0..width as u32) as u16);
        if !rhs.contains(&a) {
            rhs.push(a);
        }
    }
    Ind::new(lhs, rhs).expect("equal nonzero lengths")
}

#[test]
fn fd_axiomatic_oracle_agrees_with_chase() {
    let u = Universe::typed(vec!["A", "B", "C", "D"]);
    let mut rng = StdRng::seed_from_u64(0xf0f0_1982);
    let mut definite = 0usize;
    for case in 0..FD_CASES {
        let mut pool = ValuePool::new(u.clone());
        let nfds = rng.random_range(1..=4usize);
        let fds: Vec<Fd> = (0..nfds)
            .map(|_| {
                Fd::new(
                    mask_to_set(&u, rng.random_range(1..16u32)),
                    mask_to_set(&u, rng.random_range(1..16u32)),
                )
            })
            .collect();
        let goal = Fd::new(
            mask_to_set(&u, rng.random_range(1..16u32)),
            mask_to_set(&u, rng.random_range(1..16u32)),
        );

        let facts: Vec<AxFact> = fds.iter().cloned().map(AxFact::from).collect();
        let goal_fact = AxFact::from(goal.clone());
        let proof = fd_axiomatic_implies(&facts, &goal);
        let ax_implied = match &proof {
            Some(p) => {
                verify_axiomatic(&facts, &goal_fact, p)
                    .unwrap_or_else(|e| panic!("case {case}: emitted fd proof rejected: {e}"));
                true
            }
            None => false,
        };
        // The closure oracle is an independent second opinion on the
        // same fragment; a three-way tie pins both implementations.
        assert_eq!(
            ax_implied,
            fd_implies(&fds, &goal),
            "case {case}: axiomatic oracle disagrees with fd closure"
        );

        let sigma: Vec<Dependency> = fds.into_iter().map(Dependency::from).collect();
        let verdict = decide_dependencies(
            &sigma,
            &Dependency::from(goal),
            &u,
            &mut pool,
            &DecideConfig::default(),
        );
        let chase_implied = match verdict.implication {
            Answer::Yes => true,
            Answer::No => false,
            Answer::Unknown => panic!("case {case}: fd chase must terminate"),
        };
        assert_eq!(
            ax_implied, chase_implied,
            "case {case}: axiomatic oracle disagrees with the chase"
        );
        assert_eq!(verdict.implication, verdict.finite_implication);
        definite += 1;
    }
    assert_eq!(definite, FD_CASES);
}

#[test]
fn ind_axiomatic_oracle_agrees_with_dovetailed_chase() {
    let u = Universe::untyped(vec!["A", "B", "C"]);
    let width = u.width() as u16;
    let mut rng = StdRng::seed_from_u64(0x1d1d_1982);
    let cfg = DecideConfig {
        mode: DecideMode::dovetail(1),
        ..DecideConfig::default()
    };
    let mut definite = 0usize;
    for case in 0..IND_CASES {
        let mut pool = ValuePool::new(u.clone());
        let ninds = rng.random_range(1..=3usize);
        let inds: Vec<Ind> = (0..ninds).map(|_| random_ind(&mut rng, width)).collect();
        let goal = random_ind(&mut rng, width);

        let facts: Vec<AxFact> = inds.iter().cloned().map(AxFact::from).collect();
        let goal_fact = AxFact::from(goal.clone());
        let (ax_verdict, proof) = ind_axiomatic_implies(&facts, &goal, 1_000_000);
        match ax_verdict {
            Verdict::Proved => {
                let p = proof.as_ref().expect("Proved comes with a proof");
                verify_axiomatic(&facts, &goal_fact, p)
                    .unwrap_or_else(|e| panic!("case {case}: emitted ind proof rejected: {e}"));
            }
            Verdict::Refuted => assert!(proof.is_none()),
            // With this fuel the CFP search must complete on 3-attr
            // sequences; Unknown would mean the oracle regressed.
            Verdict::Unknown => panic!("case {case}: ind oracle ran out of fuel"),
        }

        let sigma: Vec<Dependency> = inds.into_iter().map(Dependency::from).collect();
        let verdict =
            decide_dependencies(&sigma, &Dependency::from(goal), &u, &mut pool, &cfg);
        // For inds implication ≡ finite implication, so any definite
        // chase answer (Yes from the chase branch, No from the search
        // branch) must match the axiomatic verdict exactly.
        match verdict.implication {
            Answer::Yes => {
                assert_eq!(
                    ax_verdict,
                    Verdict::Proved,
                    "case {case}: chase proved what the axioms refute"
                );
                definite += 1;
            }
            Answer::No => {
                assert_eq!(
                    ax_verdict,
                    Verdict::Refuted,
                    "case {case}: search refuted what the axioms prove"
                );
                definite += 1;
            }
            Answer::Unknown => {
                if verdict.finite_implication == Answer::No {
                    assert_eq!(
                        ax_verdict,
                        Verdict::Refuted,
                        "case {case}: finite refutation contradicts the axioms"
                    );
                    definite += 1;
                }
            }
        }
    }
    assert!(
        definite + FD_CASES >= MIN_DEFINITE_AGREEMENTS,
        "only {definite} definite ind agreements — budgets too small for the corpus"
    );
}
