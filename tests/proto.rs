//! The streaming socket front end (`typedtd-proto`) against the
//! in-process decision path: a concurrent **differential soak harness**.
//!
//! N client threads replay randomized slices of the fd/mvd/pjd oracle
//! corpus (plus fuel-capped divergent ballast) through a live
//! `typedtd-sockd` server and assert *frame-level* parity with
//! sequential in-process `decide`:
//!
//! * every `ANSWER` frame's implication/finite pair equals the blocking
//!   reference for that query text;
//! * cancellation statuses are exact — a cancelled divergent submission
//!   resolves with the `cancelled` flag, a fuel-capped one with
//!   `expired`;
//! * the per-connection stats invariant holds once the connection has
//!   drained: `answered + cancelled + expired == submitted` with
//!   `pending == 0`.
//!
//! The codec itself is property-tested (round trips, truncations) and
//! the server is fuzzed with garbage streams: a malformed frame yields
//! `ERR` or a clean disconnect — never a panic, never a desynced
//! answer for a later, well-formed connection.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use typedtd::chase::{decide, Answer, DecideConfig};
use typedtd::service::proto::err_code;
use typedtd::service::{
    decode_frame, parse_query_line, parse_stats_text, parse_universe_spec, Frame, Opcode,
    ProtoClient, ProtoServer, RunningUpdate, ServiceConfig, SockdConfig, SubmitPayload,
    WireAnswer, PROTO_VERSION,
};
use typedtd_relational::ValuePool;

/// Spawns a TCP server on an ephemeral loopback port.
fn tcp_server(cfg: SockdConfig) -> (ProtoServer, std::net::SocketAddr) {
    let server = ProtoServer::bind(cfg, Some("127.0.0.1:0"), None).expect("bind tcp");
    let addr = server.tcp_addr().expect("tcp listener");
    (server, addr)
}

/// A unique Unix-socket path under the system temp dir.
fn unix_sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "typedtd-proto-{tag}-{}-{:x}.sock",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0),
    ))
}

/// The textual oracle corpus: `(universe_spec, query)` pairs over
/// `A B C D` covering fds, mvds, and pjds — every one decidable under
/// the default budgets (the reference asserts it).
fn oracle_corpus() -> Vec<(String, String)> {
    let names = ["A", "B", "C", "D"];
    let set = |mask: u32| -> String {
        names
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    };
    let u = "A B C D".to_string();
    let mut corpus = Vec::new();
    for i in 0u32..12 {
        let l1 = 1 + (i * 3) % 14;
        let r1 = 1 + (i * 7) % 14;
        let l2 = 1 + (i * 5) % 14;
        let r2 = 1 + (i * 11) % 14;
        let gl = 1 + (i * 9) % 14;
        let gr = 1 + (i * 13) % 14;
        let dep = |l: u32, r: u32, fd: bool| {
            if fd {
                format!("{} -> {}", set(l), set(r))
            } else {
                format!("{} ->> {}", set(l), set(r))
            }
        };
        let query = format!(
            "{} & {} |= {}",
            dep(l1, r1, i % 2 == 0),
            dep(l2, r2, i % 3 == 0),
            dep(gl, gr, i % 2 == 1),
        );
        corpus.push((u.clone(), query));
    }
    // The pjd slice: join dependencies as Σ and as goals.
    corpus.push((u.clone(), "*[AB, BC, CD] |= A ->> B".into()));
    corpus.push((u.clone(), "*[ABC, CD] |= C ->> D".into()));
    corpus.push((u.clone(), "A ->> B |= *[AB, BCD]".into()));
    corpus.push((u.clone(), "*[AB, BC] on AC |= A ->> C".into()));
    // Chain classics with cache-friendly repeats baked into the corpus.
    corpus.push((u.clone(), "A -> B & B -> C & C -> D |= A -> D".into()));
    corpus.push((u.clone(), "B -> C & A -> B & C -> D |= A -> D".into()));
    corpus.push((u.clone(), "A ->> B & B ->> C |= A ->> C".into()));
    corpus.push((u, "A -> B |= B -> A".into()));
    corpus
}

/// The sequential in-process reference: parse exactly like the server,
/// decide each normalized goal part, conjoin. Returns the
/// (implication, finite) pair per corpus entry.
fn reference_answers(corpus: &[(String, String)]) -> Vec<(Answer, Answer)> {
    let cfg = DecideConfig::default();
    corpus
        .iter()
        .map(|(uspec, query)| {
            let universe = parse_universe_spec(uspec).expect("corpus universe parses");
            let mut pool = ValuePool::new(universe.clone());
            let (sigma, goal) =
                parse_query_line(&universe, &mut pool, query).expect("corpus query parses");
            let sigma_normal: Vec<_> = sigma
                .iter()
                .flat_map(|d| d.normalize(&universe, &mut pool))
                .collect();
            let mut imp = Answer::Yes;
            let mut fin = Answer::Yes;
            for part in goal.normalize(&universe, &mut pool) {
                let d = decide(&sigma_normal, &part, &mut pool.clone(), &cfg);
                imp = imp.and(d.implication);
                fin = fin.and(d.finite_implication);
            }
            assert_ne!(imp, Answer::Unknown, "corpus must be decidable: {query}");
            (imp, fin)
        })
        .collect()
}

/// A divergent query text whose canonical key is unique per `salt`
/// (distinct universe width), so concurrent connections never coalesce
/// their ballast — cancellations stay connection-local.
fn divergent_text(salt: usize) -> (String, String) {
    let width = 3 + salt;
    let unames: Vec<String> = (0..width).map(|i| format!("U{i}'")).collect();
    let uspec = format!("untyped {}", unames.join(" "));
    let pad = |prefix: &str, base: [&str; 3]| -> String {
        let mut row: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        row.extend((3..width).map(|i| format!("{prefix}{i}")));
        row.join(" ")
    };
    let query = format!(
        "td [{}] => {} |= egd [{} ; {}] => y1 = y2",
        pad("p", ["x", "y", "z"]),
        pad("q", ["y", "q1", "q2"]),
        pad("v", ["x", "y1", "z1"]),
        pad("w", ["x", "y2", "z2"]),
    );
    (uspec, query)
}

/// Fisher–Yates over the shim rng.
fn shuffled(n: usize, repeats: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n * repeats).map(|i| i % n).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    order
}

/// The soak body: `threads` concurrent clients replay shuffled corpus
/// slices plus divergent ballast (one cancelled, one fuel-capped per
/// thread) and assert frame-level parity, cancellation statuses, and
/// the stats invariant. `connect` builds one client per thread.
fn run_soak(
    threads: usize,
    repeats: usize,
    connect: impl Fn() -> ProtoClient + Sync,
) {
    let corpus = oracle_corpus();
    let reference = reference_answers(&corpus);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let corpus = &corpus;
            let reference = &reference;
            let connect = &connect;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x1982 + t as u64);
                let mut client = connect();
                let order = shuffled(corpus.len(), repeats, &mut rng);

                // Divergent ballast first: one to cancel mid-flight
                // (huge cap — only the cancel resolves it), one to
                // expire on a small fuel cap. Distinct widths per
                // (thread, slot) keep ballast from coalescing across
                // connections.
                let (cu, cq) = divergent_text(2 * t);
                let cancel_corr = client
                    .submit(&cu, &cq, Some(100_000))
                    .expect("submit cancel ballast");
                let (eu, eq) = divergent_text(2 * t + 1);
                let expire_corr = client
                    .submit(&eu, &eq, Some(64))
                    .expect("submit expire ballast");
                client.cancel(cancel_corr).expect("send cancel");

                // Replay the corpus slice fully pipelined.
                let mut expected: Vec<(u64, usize)> = Vec::with_capacity(order.len());
                for idx in order {
                    let (uspec, query) = &corpus[idx];
                    let corr = client.submit(uspec, query, None).expect("submit corpus");
                    expected.push((corr, idx));
                }

                // Collect out-of-order answers, frame-level parity per id.
                for (corr, idx) in &expected {
                    let answer = client.wait_answer(*corr).expect("corpus answer");
                    let (imp, fin) = reference[*idx];
                    assert_eq!(
                        (answer.implication, answer.finite_implication),
                        (imp, fin),
                        "thread {t}: wire answer diverged on {:?}",
                        corpus[*idx].1
                    );
                    assert!(!answer.cancelled, "corpus answers are never cancelled");
                    assert!(!answer.expired, "corpus answers never expire");
                }
                let cancelled = client.wait_answer(cancel_corr).expect("cancel answer");
                assert!(
                    cancelled.cancelled,
                    "thread {t}: cancelled ballast must resolve with the cancelled flag"
                );
                assert_eq!(cancelled.implication, Answer::Unknown);
                let expired = client.wait_answer(expire_corr).expect("expire answer");
                assert!(
                    expired.expired,
                    "thread {t}: fuel-capped ballast must resolve with the expired flag"
                );
                assert!(!expired.cancelled);
                assert_eq!(expired.implication, Answer::Unknown);

                // The drained connection's ledger must balance.
                let stats = client.stats().expect("stats");
                assert_eq!(stats["pending"], 0, "thread {t}: connection drained");
                assert_eq!(
                    stats["answered"] + stats["cancelled"] + stats["expired"],
                    stats["submitted"],
                    "thread {t}: stats invariant violated: {stats:?}"
                );
                assert_eq!(stats["submitted"], expected.len() as u64 + 2);
                assert_eq!(stats["cancelled"], 1, "thread {t}");
                assert_eq!(stats["expired"], 1, "thread {t}");
            });
        }
    });
}

/// The acceptance soak: ≥4 concurrent TCP clients over the oracle
/// corpus.
#[test]
fn soak_differential_tcp_four_clients() {
    let (server, addr) = tcp_server(SockdConfig::default());
    run_soak(4, 2, || ProtoClient::connect_tcp(addr).expect("connect"));
    let served = server.client().stats();
    assert!(
        served.cache_hits + served.coalesced > 0,
        "identical cross-connection queries must share work: {served:?}"
    );
}

/// The CI smoke configuration: 2 clients, small corpus slice, Unix
/// socket.
#[test]
fn soak_differential_unix_smoke() {
    let path = unix_sock_path("soak");
    let server = ProtoServer::bind(SockdConfig::default(), None, Some(&path)).expect("bind unix");
    run_soak(2, 1, || {
        ProtoClient::connect_unix(server.unix_path().expect("unix listener")).expect("connect")
    });
}

/// PROGRESS streaming differential: one client submits the full corpus
/// with the progress flag plus a divergent fuel-capped query, a second
/// plain client replays the same corpus flagless. Asserts
///
/// * exact answer parity — streaming changes observability, never
///   verdicts (both sides also match the sequential reference);
/// * the divergent query streams at least one `Running` frame and every
///   consecutive pair is strictly fuel-monotone (per correlation);
/// * the profiling payload is live: chase rounds moved, the phase is
///   reported, and `parts`/`pending` describe the fan-out.
#[test]
fn progress_streaming_parity_and_monotone_fuel() {
    let corpus = oracle_corpus();
    let reference = reference_answers(&corpus);
    let (server, addr) = tcp_server(SockdConfig::default());
    let mut streaming = ProtoClient::connect_tcp(addr).expect("connect streaming");
    let mut plain = ProtoClient::connect_tcp(addr).expect("connect plain");

    // The divergent ballast goes first so it computes (and streams)
    // while the corpus answers interleave on the same connection —
    // its Running frames must stash and replay in order.
    let (du, dq) = divergent_text(0);
    let div_corr = streaming
        .submit_with_progress(&du, &dq, Some(4096))
        .expect("submit divergent streaming");

    let s_corrs: Vec<u64> = corpus
        .iter()
        .map(|(u, q)| streaming.submit_with_progress(u, q, None).expect("submit streaming"))
        .collect();
    let p_corrs: Vec<u64> = corpus
        .iter()
        .map(|(u, q)| plain.submit(u, q, None).expect("submit plain"))
        .collect();

    for (idx, (s, p)) in s_corrs.iter().zip(&p_corrs).enumerate() {
        let mut updates: Vec<RunningUpdate> = Vec::new();
        let sa = streaming
            .wait_answer_with_progress(*s, |up| updates.push(up))
            .expect("streamed corpus answer");
        let pa = plain.wait_answer(*p).expect("plain corpus answer");
        assert_eq!(
            (sa.implication, sa.finite_implication),
            (pa.implication, pa.finite_implication),
            "streaming changed the answer on {:?}",
            corpus[idx].1
        );
        assert_eq!(
            (sa.implication, sa.finite_implication),
            reference[idx],
            "wire answer diverged from the sequential reference on {:?}",
            corpus[idx].1
        );
        // Fast corpus queries may or may not cross a progress tick;
        // whatever did arrive must be monotone.
        assert!(
            updates.windows(2).all(|w| w[0].fuel < w[1].fuel),
            "corpus Running frames must be fuel-monotone: {updates:?}"
        );
    }

    let mut updates: Vec<RunningUpdate> = Vec::new();
    let div = streaming
        .wait_answer_with_progress(div_corr, |up| updates.push(up))
        .expect("divergent streamed answer");
    // A 4096-fuel cap is generous enough for the dovetailed finite-model
    // search to win the race and refute the query outright — the long
    // natural run is what crosses enough progress ticks to stream
    // reliably. (The expired path is covered by the soak's `Some(64)`
    // ballast, where the cap bites before the search can finish.)
    assert_eq!(div.implication, Answer::No, "the finite search must refute");
    assert_eq!(div.finite_implication, Answer::No);
    assert!(!div.cancelled, "nothing cancelled the divergent query");
    assert!(!div.expired, "the search must settle the query before the cap");
    assert!(
        !updates.is_empty(),
        "a 4096-fuel divergent run must stream at least one Running frame"
    );
    assert!(
        updates.windows(2).all(|w| w[0].fuel < w[1].fuel),
        "divergent Running frames must be strictly fuel-monotone: {updates:?}"
    );
    let last = updates.last().expect("nonempty");
    assert!(last.fuel > 0, "fuel must be live: {last:?}");
    assert!(last.rounds > 0, "chase profiling must move: {last:?}");
    assert!(!last.phase.is_empty(), "phase must be reported: {last:?}");
    assert_eq!(last.parts, 1, "single goal part: {last:?}");
    assert_eq!(last.pending, 1, "still computing when cut: {last:?}");
    drop(server);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Codec round trip: arbitrary opcode bytes, correlation ids, and
    /// payloads survive encode → decode exactly, including when several
    /// frames are concatenated and split at arbitrary points.
    #[test]
    fn frame_codec_roundtrip(
        opcodes in prop::collection::vec(0u32..=255, 1..5),
        corr in 0u64..u64::MAX,
        payload_lens in prop::collection::vec(0usize..200, 1..5),
        split in 1usize..64,
    ) {
        let frames: Vec<Frame> = opcodes
            .iter()
            .zip(&payload_lens)
            .enumerate()
            .map(|(i, (&op, &plen))| Frame {
                version: PROTO_VERSION,
                opcode: op as u8,
                corr: corr.wrapping_add(i as u64),
                payload: (0..plen).map(|b| (b % 251) as u8).collect(),
            })
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        // Feed the stream in `split`-byte chunks through an accumulating
        // buffer, exactly like the server's reader loop.
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded: Vec<Frame> = Vec::new();
        for chunk in wire.chunks(split) {
            buf.extend_from_slice(chunk);
            loop {
                match decode_frame(&buf) {
                    Ok(Some((frame, used))) => {
                        buf.drain(..used);
                        decoded.push(frame);
                    }
                    Ok(None) => break,
                    Err(e) => prop_assert!(false, "well-formed stream errored: {e}"),
                }
            }
        }
        prop_assert!(buf.is_empty(), "no residue after all frames");
        prop_assert_eq!(decoded, frames);
    }

    /// Garbage in, never a panic or desync out: random byte blobs thrown
    /// at a live server yield `ERR` frames or a clean disconnect, and a
    /// well-formed connection opened afterwards still gets exact
    /// answers.
    #[test]
    fn garbage_streams_never_poison_the_server(
        blob in prop::collection::vec(0u32..=255, 1..200),
    ) {
        use std::io::Write;
        let (server, addr) = tcp_server(SockdConfig::default());
        {
            let mut garbage = std::net::TcpStream::connect(addr).expect("connect");
            let bytes: Vec<u8> = blob.iter().map(|&b| b as u8).collect();
            // The write may fail midway if the server already hung up on
            // a desynced prefix — that is the "clean disconnect" arm.
            let _ = garbage.write_all(&bytes);
            let _ = garbage.flush();
            // Drain whatever the server sent (ERR frames or EOF); any
            // panic on the server side would surface as a test failure
            // through the follow-up connection below.
        }
        let mut good = ProtoClient::connect_tcp(addr).expect("connect after garbage");
        let corr = good
            .submit("A B C", "A -> B & B -> C |= A -> C", None)
            .expect("submit");
        let answer = good.wait_answer(corr).expect("answer after garbage");
        prop_assert_eq!(answer.implication, Answer::Yes);
        prop_assert_eq!(answer.finite_implication, Answer::Yes);
        drop(good);
        drop(server);
    }
}

/// Deliberately malformed frames each get the documented reaction:
/// oversized/undersized lengths close the stream after an `ERR`, a bad
/// version closes after an `ERR`, a bad opcode and a bad payload answer
/// `ERR` and keep the connection serving.
#[test]
fn malformed_frames_get_err_or_clean_disconnect() {
    use std::io::{Read, Write};
    let (server, addr) = tcp_server(SockdConfig::default());

    // Oversized length prefix: ERR BAD_FRAME then disconnect.
    {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[1, 1, 0, 0]);
        s.write_all(&bytes).expect("write");
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).expect("server must close cleanly");
        let (frame, _) = decode_frame(&reply).expect("reply decodes").expect("one ERR");
        assert_eq!(Opcode::from_u8(frame.opcode), Some(Opcode::Err));
        let (code, _) = typedtd::service::proto::decode_err(&frame.payload).unwrap();
        assert_eq!(code, err_code::BAD_FRAME);
    }

    // Undersized length prefix: same contract.
    {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        // One write: were the length prefix and body split across two
        // syscalls, the server could read the prefix alone, reply ERR,
        // and close with the body unread — an RST instead of clean EOF.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        s.write_all(&bytes).expect("write");
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).expect("server must close cleanly");
        let (frame, _) = decode_frame(&reply).expect("reply decodes").expect("one ERR");
        let (code, _) = typedtd::service::proto::decode_err(&frame.payload).unwrap();
        assert_eq!(code, err_code::BAD_FRAME);
    }

    // Truncated frame then EOF: the server just cleans up (no reply
    // owed); the listener must stay healthy.
    {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.write_all(&100u32.to_le_bytes()).expect("write");
        s.write_all(&[1, 1, 7]).expect("write");
        drop(s);
    }

    // Wrong version: ERR BAD_VERSION, then close.
    {
        let mut client = ProtoClient::connect_tcp(addr).expect("connect");
        client
            .send_raw(&Frame {
                version: PROTO_VERSION + 1,
                opcode: Opcode::Stats as u8,
                corr: 9,
                payload: Vec::new(),
            })
            .expect("send");
        let frame = client.recv().expect("err frame");
        assert_eq!(Opcode::from_u8(frame.opcode), Some(Opcode::Err));
        assert_eq!(frame.corr, 9);
        let (code, _) = typedtd::service::proto::decode_err(&frame.payload).unwrap();
        assert_eq!(code, err_code::BAD_VERSION);
        assert!(
            client.recv().is_err(),
            "bad version must close the connection after the ERR"
        );
    }

    // Unknown opcode: ERR BAD_OPCODE and the connection keeps serving.
    {
        let mut client = ProtoClient::connect_tcp(addr).expect("connect");
        client
            .send_raw(&Frame {
                version: PROTO_VERSION,
                opcode: 0x7f,
                corr: 11,
                payload: Vec::new(),
            })
            .expect("send");
        let frame = client.recv().expect("err frame");
        let (code, _) = typedtd::service::proto::decode_err(&frame.payload).unwrap();
        assert_eq!(code, err_code::BAD_OPCODE);
        let corr = client.submit("A B C", "A -> B |= A -> B", None).expect("submit");
        let answer = client.wait_answer(corr).expect("answer");
        assert_eq!(answer.implication, Answer::Yes);
    }

    // Malformed SUBMIT payload: ERR BAD_PAYLOAD, connection continues.
    {
        let mut client = ProtoClient::connect_tcp(addr).expect("connect");
        client
            .send_raw(&Frame::new(Opcode::Submit, 5, vec![1, 2, 3]))
            .expect("send");
        let frame = client.recv().expect("err frame");
        let (code, _) = typedtd::service::proto::decode_err(&frame.payload).unwrap();
        assert_eq!(code, err_code::BAD_PAYLOAD);
        let corr = client.submit("A B", "A -> B |= A -> B", None).expect("submit");
        assert_eq!(client.wait_answer(corr).unwrap().implication, Answer::Yes);
    }

    // Unparseable query text (including the panicky pjd parser): ERR
    // PARSE, connection continues — the parser layer can never kill the
    // connection thread.
    {
        let mut client = ProtoClient::connect_tcp(addr).expect("connect");
        for bad in ["A -> B", "A -> B |= |= B", "*[A |= A -> B", "*[ZZ, QQ] |= A -> B"] {
            let corr = client.submit("A B C", bad, None).expect("submit");
            let err = client.wait_answer(corr).expect_err("must be rejected");
            assert!(
                err.to_string().contains("err 5"),
                "{bad:?} must fail with PARSE, got {err}"
            );
        }
        let corr = client.submit("A B C", "A -> B |= A -> B", None).expect("submit");
        assert_eq!(client.wait_answer(corr).unwrap().implication, Answer::Yes);
    }
    drop(server);
}

/// Disconnect semantics: dropping a connection cancels its pending
/// (non-detached) jobs; a detached job survives, keeps computing, and
/// its answer lands in the shared cache for later connections.
#[test]
fn dropped_connection_maps_to_cancel_and_detach() {
    let (server, addr) = tcp_server(SockdConfig::default());

    // Not detached: the divergent job dies with its connection.
    {
        let mut client = ProtoClient::connect_tcp(addr).expect("connect");
        let (u, q) = divergent_text(20);
        let corr = client.submit(&u, &q, Some(1_000_000)).expect("submit");
        // Wait for the ACCEPTED ack so the submission is live before we
        // hang up.
        let ack = client.recv().expect("ack");
        assert_eq!(Opcode::from_u8(ack.opcode), Some(Opcode::Progress));
        assert_eq!(ack.corr, corr);
    }
    wait_until("dropped job is cancelled", || {
        server.client().stats().cancelled >= 1 && server.client().pending_jobs() == 0
    });

    // Detached: the job survives the disconnect and feeds the cache.
    let (du, dq) = {
        // A decidable-but-multi-round query (mvd chain) so the answer
        // lands after the disconnect and must come from the kept-alive
        // computation.
        ("A B C D".to_string(), "A ->> B & B ->> C & C ->> D |= A ->> D".to_string())
    };
    {
        let mut client = ProtoClient::connect_tcp(addr).expect("connect");
        let corr = client.submit(&du, &dq, None).expect("submit");
        client.detach(corr).expect("detach");
        let ack = client.recv().expect("ack");
        assert_eq!(Opcode::from_u8(ack.opcode), Some(Opcode::Progress));
    }
    wait_until("detached job completes for the cache", || {
        server.client().pending_jobs() == 0
    });
    // The answer (Yes — mvd chain transitivity) must now be a cache hit
    // for a brand-new connection.
    let hits_before = server.client().stats().cache_hits;
    let mut fresh = ProtoClient::connect_tcp(addr).expect("connect");
    let corr = fresh.submit(&du, &dq, None).expect("submit");
    let answer = fresh.wait_answer(corr).expect("answer");
    assert_eq!(answer.implication, Answer::Yes);
    assert!(answer.from_cache, "detached computation must have fed the cache");
    assert_eq!(server.client().stats().cache_hits, hits_before + 1);
    drop(server);
}

/// A `SHUTDOWN` frame stops the whole server: the sender gets a `BYE`,
/// every thread joins, and the port stops accepting.
#[test]
fn shutdown_frame_stops_the_server() {
    let (server, addr) = tcp_server(SockdConfig::default());
    // Regression: an idle connection (accepted, never sends a byte) must
    // not wedge the shutdown — its thread has to observe the flag
    // through its read timeout, not wait for client bytes.
    let idle = std::net::TcpStream::connect(addr).expect("idle connect");
    let mut client = ProtoClient::connect_tcp(addr).expect("connect");
    let corr = client.submit("A B C", "A -> B & B -> C |= A -> C", None).expect("submit");
    let answer = client.wait_answer(corr).expect("answer before shutdown");
    assert_eq!(answer.implication, Answer::Yes);
    client.shutdown_server().expect("send shutdown");
    // BYE (possibly preceded by stashed progress frames).
    loop {
        let frame = client.recv().expect("bye");
        if Opcode::from_u8(frame.opcode) == Some(Opcode::Progress)
            && frame.payload.first() == Some(&2)
        {
            break;
        }
    }
    // join() must return even while `idle` is still connected and
    // silent (the watchdog is the test harness timeout).
    server.join();
    drop(idle);
    assert!(
        std::net::TcpStream::connect(addr).is_err()
            || ProtoClient::connect_tcp(addr)
                .map(|mut c| c.submit("A B", "A -> B |= A -> B", None).is_err())
                .unwrap_or(true),
        "a joined server must not serve new connections"
    );
}

/// Classifier-routing and Σ-group counters round-trip through the
/// `STATS` frame and the Prometheus exposition, and the token-tolerant
/// parser still accepts an old-format reply without them.
#[test]
fn stats_frame_roundtrips_classifier_and_group_tokens() {
    let (server, addr) = tcp_server(SockdConfig {
        service: ServiceConfig {
            group: true,
            ..ServiceConfig::default()
        },
        ..SockdConfig::default()
    });
    let mut client = ProtoClient::connect_tcp(addr).expect("connect");
    // Two queries sharing Σ and goal-hypothesis shape: the weakly acyclic
    // fd chain routes off dovetail, and both members land in one Σ-group.
    let c1 = client
        .submit("A B C", "A -> B & B -> C |= A -> C", None)
        .expect("submit");
    let c2 = client
        .submit("A B C", "A -> B & B -> C |= A ->> C", None)
        .expect("submit");
    assert_eq!(client.wait_answer(c1).expect("answer").implication, Answer::Yes);
    assert_eq!(client.wait_answer(c2).expect("answer").implication, Answer::Yes);
    let stats = client.stats().expect("stats");
    for key in [
        "class_routed_terminating",
        "class_routed_linear",
        "class_routed_guarded",
        "class_routed_dovetail",
        "grouped",
        "group_chases",
        "group_fallbacks",
    ] {
        assert!(stats.contains_key(key), "STATS reply missing {key}: {stats:?}");
    }
    assert!(
        stats["class_routed_terminating"] >= 2,
        "the fd chain must route terminating: {stats:?}"
    );
    assert_eq!(stats["grouped"], 2, "both members must join one group");
    assert_eq!(stats["group_chases"], 1, "shared saturation must run once");
    assert_eq!(stats["group_fallbacks"], 0);
    // The same counters appear in the `--metrics` exposition.
    let metrics = server.client().metrics_text();
    for needle in [
        "typedtd_class_routed_total",
        "typedtd_grouped_total",
        "typedtd_group_chases_total",
        "typedtd_group_fallbacks_total",
    ] {
        assert!(metrics.contains(needle), "metrics exposition missing {needle}");
    }
    // Backward tolerance: an old-format reply without the new tokens (and
    // with junk) still parses, and simply lacks the new keys.
    let old = parse_stats_text(
        "submitted=4 answered=2 cancelled=1 expired=1 pending=0 garbage not=numeric",
    );
    assert_eq!(old["submitted"], 4);
    assert_eq!(old["pending"], 0);
    assert!(!old.contains_key("grouped"));
    assert!(!old.contains_key("not"));
    drop(server);
}

/// Polls `cond` (the soak's only wall-clock dependence) with a generous
/// deadline; panics with `what` on timeout.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..2_000 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// `SubmitPayload` fuzz: decode of arbitrary bytes never panics, and
/// round trips are exact (mirrors the unit tests at property scale).
#[test]
fn submit_payload_decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(1982);
    for _ in 0..2_000 {
        let len = rng.random_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0u32..=255) as u8).collect();
        let _ = SubmitPayload::decode(&bytes); // must not panic
        let _ = WireAnswer::decode(&bytes); // must not panic
    }
}
