//! Differential testing of the semi-naive chase against the naive
//! full-rescan reference.
//!
//! The semi-naive engine restricts trigger discovery to embeddings touching
//! the per-dependency delta; the naive reference re-enumerates everything
//! every round (`ChaseConfig::semi_naive = false`). The two must agree
//! *exactly* on outcome and round count, and up to isomorphism of labeled
//! nulls on the final instance — on seeded random fd/mvd/pjd sets over a
//! typed universe, and random td/egd sets over the untyped universe
//! `U' = A'B'C'`, across all chase variants and the parallel scanner.

use proptest::prelude::*;
use typedtd::dependencies::{egd_from_names, td_from_names, Dependency, TdOrEgd};
use typedtd::prelude::*;
use typedtd::relational::isomorphic;
use typedtd_chase::saturate;

fn universe4() -> std::sync::Arc<Universe> {
    Universe::typed(vec!["A", "B", "C", "D"])
}

fn mask_to_set(u: &Universe, mask: u32) -> AttrSet {
    u.attrs().filter(|a| mask & (1 << a.index()) != 0).collect()
}

/// Runs the goal under a config and returns the comparable fingerprint.
fn run(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> (ChaseOutcome, usize, typedtd::relational::Relation) {
    let r = chase_implication(sigma, goal, pool, cfg);
    (r.outcome, r.rounds, r.final_relation)
}

/// Asserts the naive reference and both semi-naive modes (sequential and
/// parallel) agree on outcome, rounds, and final instance up to iso.
fn assert_parity(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut ValuePool,
    variant: ChaseVariant,
) -> Result<(), TestCaseError> {
    let base = ChaseConfig::default().with_variant(variant);
    let naive = run(sigma, goal, pool, &base.clone().with_semi_naive(false));
    let semi = run(sigma, goal, pool, &base.clone().with_semi_naive(true));
    let par = run(
        sigma,
        goal,
        pool,
        &base.clone().with_semi_naive(true).with_parallel(true),
    );
    prop_assert_eq!(naive.0, semi.0, "outcome diverged ({:?})", variant);
    prop_assert_eq!(naive.1, semi.1, "round count diverged ({:?})", variant);
    prop_assert_eq!(naive.2.len(), semi.2.len(), "row count diverged ({:?})", variant);
    prop_assert!(
        isomorphic(&naive.2, &semi.2),
        "final instances not isomorphic ({:?})",
        variant
    );
    prop_assert_eq!(semi.0, par.0, "parallel outcome diverged ({:?})", variant);
    prop_assert_eq!(semi.1, par.1, "parallel round count diverged ({:?})", variant);
    prop_assert!(
        isomorphic(&semi.2, &par.2),
        "parallel final instance not isomorphic ({:?})",
        variant
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Typed universe: random fd/mvd/pjd sets against an fd or mvd goal.
    #[test]
    fn typed_fd_mvd_pjd_sets_agree(
        fd_masks in prop::collection::vec([1u32..15, 1u32..15], 0..3),
        mvd_masks in prop::collection::vec([1u32..15, 1u32..15], 0..3),
        pjd_masks in prop::collection::vec([1u32..15, 1u32..15], 0..2),
        goal_masks in [1u32..15, 1u32..15],
        goal_is_fd in 0u32..2,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let mut deps: Vec<Dependency> = Vec::new();
        for m in &fd_masks {
            deps.push(Dependency::from(Fd::new(mask_to_set(&u, m[0]), mask_to_set(&u, m[1]))));
        }
        for m in &mvd_masks {
            deps.push(Dependency::from(Mvd::new(
                u.clone(),
                mask_to_set(&u, m[0]),
                mask_to_set(&u, m[1]),
            )));
        }
        for m in &pjd_masks {
            // A two-component jd *[R1, R2] with R1 ∪ R2 = U.
            let r1 = mask_to_set(&u, m[0]);
            let r2 = mask_to_set(&u, m[1]).union(&u.all().difference(&r1));
            deps.push(Dependency::from(Pjd::jd(vec![r1, r2])));
        }
        let goal: Dependency = if goal_is_fd == 0 {
            Dependency::from(Fd::new(mask_to_set(&u, goal_masks[0]), mask_to_set(&u, goal_masks[1])))
        } else {
            Dependency::from(Mvd::new(
                u.clone(),
                mask_to_set(&u, goal_masks[0]),
                mask_to_set(&u, goal_masks[1]),
            ))
        };
        let sigma: Vec<TdOrEgd> = deps
            .iter()
            .flat_map(|d| d.normalize(&u, &mut pool))
            .collect();
        for g in goal.normalize(&u, &mut pool) {
            assert_parity(&sigma, &g, &mut pool, ChaseVariant::Standard)?;
            assert_parity(&sigma, &g, &mut pool, ChaseVariant::Core)?;
            assert_parity(&sigma, &g, &mut pool, ChaseVariant::Oblivious)?;
        }
    }

    /// Untyped universe: random tds and egds built from value-name indices.
    #[test]
    fn untyped_td_egd_sets_agree(
        td_rows in prop::collection::vec([0usize..3, 0usize..3, 0usize..3], 2..5),
        concl in [0usize..3, 0usize..3, 0usize..3],
        egd_rows in prop::collection::vec([0usize..4, 0usize..4, 0usize..4], 2..4),
        goal_rows in prop::collection::vec([0usize..3, 0usize..3, 0usize..3], 1..4),
        goal_concl in [0usize..3, 0usize..3, 0usize..3],
    ) {
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let name = |i: usize| format!("v{i}");
        let row_names = |r: &[usize; 3]| [name(r[0]), name(r[1]), name(r[2])];

        let td_hyp: Vec<[String; 3]> = td_rows.iter().map(row_names).collect();
        let td_hyp_refs: Vec<Vec<&str>> = td_hyp
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let td_hyp_slices: Vec<&[&str]> = td_hyp_refs.iter().map(Vec::as_slice).collect();
        let concl_names = row_names(&concl);
        let concl_refs: Vec<&str> = concl_names.iter().map(String::as_str).collect();
        let td = td_from_names(&u, &mut pool, &td_hyp_slices, &concl_refs);

        let egd_hyp: Vec<[String; 3]> = egd_rows.iter().map(row_names).collect();
        let egd_hyp_refs: Vec<Vec<&str>> = egd_hyp
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let egd_hyp_slices: Vec<&[&str]> = egd_hyp_refs.iter().map(Vec::as_slice).collect();
        // Equate the B'-values of the first two hypothesis rows.
        let egd = egd_from_names(
            &u,
            &mut pool,
            &egd_hyp_slices,
            ("B'", &egd_hyp[0][1]),
            ("B'", &egd_hyp[1][1]),
        );

        let goal_hyp: Vec<[String; 3]> = goal_rows.iter().map(row_names).collect();
        let goal_refs: Vec<Vec<&str>> = goal_hyp
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let goal_slices: Vec<&[&str]> = goal_refs.iter().map(Vec::as_slice).collect();
        let goal_concl_names = row_names(&goal_concl);
        let goal_concl_refs: Vec<&str> =
            goal_concl_names.iter().map(String::as_str).collect();
        let goal = TdOrEgd::Td(td_from_names(&u, &mut pool, &goal_slices, &goal_concl_refs));

        let sigma = vec![TdOrEgd::Td(td), TdOrEgd::Egd(egd)];
        assert_parity(&sigma, &goal, &mut pool, ChaseVariant::Standard)?;
        assert_parity(&sigma, &goal, &mut pool, ChaseVariant::Core)?;
    }
}

/// Saturation parity: chasing a fixed relation to its universal model must
/// reach the same fixpoint (same rows, not just isomorphic — the initial
/// values are frozen and no goal exists to stop early).
#[test]
fn saturation_reaches_identical_fixpoint() {
    let u = universe4();
    let mut pool = ValuePool::new(u.clone());
    let deps = [
        Dependency::from(Mvd::parse(&u, "A ->> B").unwrap()),
        Dependency::from(Fd::parse(&u, "B -> C").unwrap()),
        Dependency::from(Mvd::parse(&u, "C ->> D").unwrap()),
    ];
    let sigma: Vec<TdOrEgd> = deps
        .iter()
        .flat_map(|d| d.normalize(&u, &mut pool))
        .collect();
    let init = Relation::from_rows(
        u.clone(),
        (0..3).map(|i| {
            Tuple::new(
                u.attrs()
                    .map(|a| pool.typed(a, &format!("{}{}", u.name(a), i)))
                    .collect(),
            )
        }),
    );
    let naive = saturate(
        &init,
        &sigma,
        &mut pool,
        &ChaseConfig::default().with_semi_naive(false),
    );
    let semi = saturate(&init, &sigma, &mut pool, &ChaseConfig::default());
    assert_eq!(naive.outcome, semi.outcome);
    assert_eq!(naive.rounds, semi.rounds);
    assert_eq!(naive.final_relation.len(), semi.final_relation.len());
    assert!(isomorphic(&naive.final_relation, &semi.final_relation));
}
