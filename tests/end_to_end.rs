//! End-to-end integration: the full undecidability pipeline, proof
//! round-trips across crates, and the parser driving the decision API.

use typedtd::chase::{chase_implication, ChaseConfig, ChaseOutcome};
use typedtd::dependencies::parse_dependency;
use typedtd::formal::{minimize, prove, verify, Proof};
use typedtd::prelude::*;
use typedtd::semigroup::Ei;
use typedtd::undecidability::pipeline;

#[test]
fn pipeline_stages_cohere_for_provable_ei() {
    let ei = Ei::parse("x = y => x*z = y*z").unwrap();
    let mut p = pipeline(&ei);
    assert_eq!(p.chase_untyped(&ChaseConfig::quick()).outcome, ChaseOutcome::Implied);
    assert_eq!(p.chase_typed(&ChaseConfig::default()).outcome, ChaseOutcome::Implied);
    // Stage 3 premises are typed tds only.
    assert!(p.tds_only_sigma.iter().all(|t| t.check_typed(p.typed.translator.pool()).is_ok()));
    assert!(p.tds_only_goal.is_total());
    // Sizes summary exists and mentions every stage.
    let s = p.sizes();
    assert!(s.contains("untyped") && s.contains("td-only"));
}

#[test]
fn typed_proofs_from_the_pipeline_verify_and_minimize() {
    let ei = Ei::parse("x = y => x*z = y*z").unwrap();
    let mut p = pipeline(&ei);
    let run = p.chase_typed(&ChaseConfig::default());
    assert_eq!(run.outcome, ChaseOutcome::Implied);
    let proof = Proof::from_trace(run.trace);
    verify(&p.typed.sigma, &p.typed.goal, &proof).expect("pipeline proof verifies");
    let min = minimize(&p.typed.sigma, &p.typed.goal, &proof);
    assert!(min.trace.len() <= proof.trace.len());
    verify(&p.typed.sigma, &p.typed.goal, &min).expect("minimized proof verifies");
}

#[test]
fn parser_drives_the_decision_api() {
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let sigma: Vec<Dependency> = ["A -> B", "A ->> C"]
        .iter()
        .map(|s| parse_dependency(&u, &mut pool, s).unwrap())
        .collect();
    let goal = parse_dependency(&u, &mut pool, "*[AB, AC]").unwrap();
    let v = decide_dependencies(&sigma, &goal, &u, &mut pool, &DecideConfig::default());
    assert_eq!(v.implication, Answer::Yes);

    // Parsed tds participate too.
    let td_goal = parse_dependency(&u, &mut pool, "td [x y1 z1 ; x y2 z2] => x y1 z2").unwrap();
    let v2 = decide_dependencies(&sigma, &td_goal, &u, &mut pool, &DecideConfig::default());
    assert_eq!(v2.implication, Answer::Yes, "the jd's td form follows from A ↠ C");
}

#[test]
fn theorem6_translation_preserves_a_nontrivial_implication() {
    // Σ = {A ↠ B} implies the 3-way jd *[AB, AC, BC]… as tds, then through
    // the Theorem 6 pipeline into shallow td/pjd form.
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let premise = Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool);
    let goal = Pjd::parse(&u, "*[AB, AC, BC]").unwrap().to_td(&u, &mut pool);

    // Direct chase.
    let direct = chase_implication(
        &[TdOrEgd::Td(premise.clone())],
        &TdOrEgd::Td(goal.clone()),
        &mut pool,
        &ChaseConfig::default(),
    );
    assert_eq!(direct.outcome, ChaseOutcome::Implied);

    // Translated chase.
    let mut inst = typedtd::core::theorem6_instance(std::slice::from_ref(&premise), &goal);
    let sigma_hat = inst.chase_sigma();
    let goal_hat = TdOrEgd::Td(inst.goal_hat.clone());
    let translated = chase_implication(
        &sigma_hat,
        &goal_hat,
        inst.ctx.pool_mut(),
        &ChaseConfig::default(),
    );
    assert_eq!(
        translated.outcome,
        ChaseOutcome::Implied,
        "Theorem 6 must preserve the implication"
    );
}

#[test]
fn theorem6_translation_preserves_a_non_implication() {
    // Σ = {B ↠ C} does not imply A ↠ B; neither may the translation.
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let premise = Mvd::parse(&u, "B ->> C").unwrap().to_pjd().to_td(&u, &mut pool);
    let goal = Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool);

    let direct = chase_implication(
        &[TdOrEgd::Td(premise.clone())],
        &TdOrEgd::Td(goal.clone()),
        &mut pool,
        &ChaseConfig::default(),
    );
    assert_eq!(direct.outcome, ChaseOutcome::NotImplied);

    let mut inst = typedtd::core::theorem6_instance(std::slice::from_ref(&premise), &goal);
    let sigma_hat = inst.chase_sigma();
    let goal_hat = TdOrEgd::Td(inst.goal_hat.clone());
    let translated = chase_implication(
        &sigma_hat,
        &goal_hat,
        inst.ctx.pool_mut(),
        &ChaseConfig::default(),
    );
    assert_eq!(
        translated.outcome,
        ChaseOutcome::NotImplied,
        "Theorem 6 must preserve the non-implication"
    );
}

#[test]
fn chase_proof_for_theorem6_instance_verifies() {
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let td = Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool);
    let mut inst = typedtd::core::theorem6_instance(std::slice::from_ref(&td), &td);
    let sigma = inst.chase_sigma();
    let goal = TdOrEgd::Td(inst.goal_hat.clone());
    let proof = prove(&sigma, &goal, inst.ctx.pool_mut(), &ChaseConfig::default())
        .expect("self-implication through the pipeline");
    verify(&sigma, &goal, &proof).expect("cross-crate proof verifies");
}

#[test]
fn weak_acyclicity_predicts_the_frontier() {
    use typedtd::chase::weakly_acyclic;
    // The decidable instances are weakly acyclic; the semigroup theory is
    // not — exactly the boundary the engine budgets run into.
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let sigma: Vec<TdOrEgd> = vec![TdOrEgd::Td(
        Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool),
    )];
    assert!(weakly_acyclic(&sigma));

    let ei = Ei::parse("=> x*y = y*x").unwrap();
    let p = pipeline(&ei);
    assert!(!weakly_acyclic(&p.untyped_sigma));
}
