//! The three chase variants and the parallel trigger scan must agree on
//! decidable instances, and found counterexamples must always verify.
//!
//! The decide layer rides the same engines: `DecideMode::Dovetail` must
//! answer exactly what `DecideMode::Sequential` answers across every
//! variant/scan combination (typed and untyped), and cancelling a
//! dovetailed task mid-flight stops it within one fuel slice.

use proptest::prelude::*;
use typedtd::chase::{
    chase_implication, decide, is_counterexample, Answer, ChaseConfig, ChaseOutcome,
    ChaseVariant, DecideConfig, DecideMode, DecideStatus, DecideTask,
};
use typedtd::dependencies::{egd_from_names, td_from_names, TdOrEgd};
use typedtd::prelude::*;

fn universe4() -> std::sync::Arc<Universe> {
    Universe::typed(vec!["A", "B", "C", "D"])
}

fn mask_to_set(u: &Universe, mask: u32) -> AttrSet {
    u.attrs().filter(|a| mask & (1 << a.index()) != 0).collect()
}

fn run_variant(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut ValuePool,
    variant: ChaseVariant,
    parallel: bool,
) -> ChaseOutcome {
    let cfg = ChaseConfig::default()
        .with_variant(variant)
        .with_parallel(parallel);
    chase_implication(sigma, goal, pool, &cfg).outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Standard, core, and parallel-standard chase agree on mvd instances
    /// (total tds: guaranteed termination). The oblivious chase agrees on
    /// the Implied verdict whenever the others imply.
    #[test]
    fn variants_agree_on_mvd_instances(
        lhs_masks in prop::collection::vec(1u32..15, 1..3),
        rhs_masks in prop::collection::vec(1u32..15, 1..3),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = lhs_masks
            .iter()
            .zip(&rhs_masks)
            .map(|(&l, &r)| {
                let mvd = Mvd::new(u.clone(), mask_to_set(&u, l), mask_to_set(&u, r));
                TdOrEgd::Td(mvd.to_pjd().to_td(&u, &mut pool))
            })
            .collect();
        let goal_mvd = Mvd::new(u.clone(), mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs));
        let goal = TdOrEgd::Td(goal_mvd.to_pjd().to_td(&u, &mut pool));

        let standard = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Standard, false);
        let core = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Core, false);
        let par = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Standard, true);
        prop_assert_eq!(standard, core);
        prop_assert_eq!(standard, par);
        if standard == ChaseOutcome::Implied {
            let obl = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Oblivious, false);
            prop_assert_eq!(obl, ChaseOutcome::Implied);
        }
    }

    /// Terminal (NotImplied) chase instances really are counterexamples:
    /// they satisfy Σ and violate the goal.
    #[test]
    fn terminal_instances_verify_as_counterexamples(
        lhs_masks in prop::collection::vec(1u32..15, 1..3),
        rhs_masks in prop::collection::vec(1u32..15, 1..3),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = lhs_masks
            .iter()
            .zip(&rhs_masks)
            .map(|(&l, &r)| {
                let mvd = Mvd::new(u.clone(), mask_to_set(&u, l), mask_to_set(&u, r));
                TdOrEgd::Td(mvd.to_pjd().to_td(&u, &mut pool))
            })
            .collect();
        let goal_mvd = Mvd::new(u.clone(), mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs));
        let goal = TdOrEgd::Td(goal_mvd.to_pjd().to_td(&u, &mut pool));
        let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
        if run.outcome == ChaseOutcome::NotImplied {
            prop_assert!(is_counterexample(&run.final_relation, &sigma, &goal),
                "terminal instance must be a universal-model counterexample");
        }
    }
}

/// Steps a dovetailed `DecideTask` in small fuel slices to completion.
fn decide_dovetailed(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &ValuePool,
    chase: ChaseConfig,
    ratio: u32,
) -> (Answer, Answer) {
    let cfg = DecideConfig {
        chase,
        mode: DecideMode::dovetail(ratio),
        ..DecideConfig::default()
    };
    let mut task = DecideTask::new(sigma.to_vec(), goal.clone(), pool.clone(), cfg);
    let mut slices = 0u64;
    while let DecideStatus::Pending = task.step(3) {
        slices += 1;
        assert!(slices < 1_000_000, "dovetailed decide failed to terminate");
    }
    let (decision, _pool) = task.finish();
    (decision.implication, decision.finite_implication)
}

/// Every engine variant × scan combination the chase parity tests cover,
/// for the decide-layer parity tests below. The oblivious variant is
/// separate: it diverges by design on instances the others decide, so it
/// gets the Implied-subset treatment (as in
/// `variants_agree_on_mvd_instances`).
const ENGINE_COMBOS: [(ChaseVariant, bool, bool); 6] = [
    (ChaseVariant::Standard, true, false),
    (ChaseVariant::Standard, false, false),
    (ChaseVariant::Standard, true, true),
    (ChaseVariant::Core, true, false),
    (ChaseVariant::Core, false, false),
    (ChaseVariant::Core, true, true),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `DecideMode::Dovetail` answers exactly what sequential `decide`
    /// answers on the typed mvd corpus, under every engine variant
    /// (standard/core × naive/semi-naive × parallel scan) and two
    /// dovetail ratios. PR 4 proved this only through the service layer
    /// (`tests/service.rs`); this is the direct task-level backfill.
    #[test]
    fn dovetail_matches_sequential_across_typed_variants(
        lhs_masks in prop::collection::vec(1u32..15, 1..3),
        rhs_masks in prop::collection::vec(1u32..15, 1..3),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = lhs_masks
            .iter()
            .zip(&rhs_masks)
            .map(|(&l, &r)| {
                let mvd = Mvd::new(u.clone(), mask_to_set(&u, l), mask_to_set(&u, r));
                TdOrEgd::Td(mvd.to_pjd().to_td(&u, &mut pool))
            })
            .collect();
        let goal_mvd = Mvd::new(u.clone(), mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs));
        let goal = TdOrEgd::Td(goal_mvd.to_pjd().to_td(&u, &mut pool));

        for (variant, semi, parallel) in ENGINE_COMBOS {
            let chase = ChaseConfig::default()
                .with_variant(variant)
                .with_semi_naive(semi)
                .with_parallel(parallel);
            let seq_cfg = DecideConfig {
                chase: chase.clone(),
                ..DecideConfig::default()
            };
            let seq = decide(&sigma, &goal, &mut pool.clone(), &seq_cfg);
            // The mvd corpus must be decidable under every variant.
            prop_assert_ne!(seq.implication, Answer::Unknown);
            for ratio in [1, 3] {
                let (imp, fin) =
                    decide_dovetailed(&sigma, &goal, &pool, chase.clone(), ratio);
                prop_assert_eq!(
                    imp, seq.implication,
                    "dovetail {}:1 diverged under {:?} semi={} par={}",
                    ratio, variant, semi, parallel
                );
                prop_assert_eq!(fin, seq.finite_implication);
            }
        }

        // Oblivious: divergent by design, so only the Implied subset is
        // comparable — when the sequential oblivious decide proves the
        // goal, the dovetailed one must prove it too.
        let obl = ChaseConfig::default().with_variant(ChaseVariant::Oblivious);
        let seq_obl = decide(
            &sigma,
            &goal,
            &mut pool.clone(),
            &DecideConfig { chase: obl.clone(), ..DecideConfig::default() },
        );
        if seq_obl.implication == Answer::Yes {
            let (imp, _) = decide_dovetailed(&sigma, &goal, &pool, obl, 2);
            prop_assert_eq!(imp, Answer::Yes, "oblivious dovetail lost an Implied verdict");
        }
    }
}

/// The untyped side of the backfill: a divergent-chase, refutable goal
/// (`successor td ⊨ fd-as-egd`), where the answer must come from the
/// search phase — sequential after chase exhaustion, dovetail
/// interleaved — identically across engine variants.
#[test]
fn dovetail_matches_sequential_on_untyped_divergent_refutable() {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let successor = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    let fd_egd = egd_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    let sigma = vec![TdOrEgd::Td(successor)];
    let goal = TdOrEgd::Egd(fd_egd);
    for (variant, semi, parallel) in ENGINE_COMBOS {
        let chase = ChaseConfig::quick()
            .with_variant(variant)
            .with_semi_naive(semi)
            .with_parallel(parallel);
        let seq_cfg = DecideConfig {
            chase: chase.clone(),
            ..DecideConfig::default()
        };
        let seq = decide(&sigma, &goal, &mut pool.clone(), &seq_cfg);
        assert_eq!(
            seq.implication,
            Answer::No,
            "the finite-model search must refute under {variant:?}"
        );
        for ratio in [1, 4] {
            let (imp, fin) = decide_dovetailed(&sigma, &goal, &pool, chase.clone(), ratio);
            assert_eq!(
                imp, seq.implication,
                "dovetail {ratio}:1 diverged under {variant:?} semi={semi} par={parallel}"
            );
            assert_eq!(fin, seq.finite_implication);
        }
    }
}

/// Cancel-mid-dovetail: tripping the token while both procedures are
/// live finishes the task within the current fuel slice with
/// `Decision::cancelled` — it must not burn the rest of its (huge)
/// budgets, and further fuel is ignored.
#[test]
fn cancel_mid_dovetail_stops_within_one_slice() {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let successor = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    // A goal no chase step ever derives and no finite model refutes
    // quickly at these budgets: the task would run a long time.
    let never = egd_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    let cfg = DecideConfig {
        chase: ChaseConfig {
            max_rounds: 100_000,
            max_rows: 1 << 20,
            max_steps: 1 << 24,
            ..ChaseConfig::default()
        },
        skip_search: false,
        mode: DecideMode::dovetail(2),
        ..DecideConfig::default()
    };
    let mut task = DecideTask::new(
        vec![TdOrEgd::Td(successor)],
        TdOrEgd::Egd(never),
        pool,
        cfg,
    );
    // Let the dovetail genuinely interleave: a few small slices touch
    // both the chase and the search.
    for _ in 0..6 {
        assert!(matches!(task.step(3), DecideStatus::Pending));
    }
    let before = task.fuel_spent();
    task.cancel_token().cancel();
    // One huge slice after the cancel: the task must stop at the next
    // round/attempt boundary instead of consuming it.
    let status = task.step(1_000_000);
    assert!(matches!(status, DecideStatus::Done(Answer::Unknown)));
    assert!(
        task.fuel_spent() - before <= 2,
        "cancelled task burned {} fuel after the token tripped",
        task.fuel_spent() - before
    );
    // A finished (cancelled) task ignores further fuel and stays done.
    assert!(matches!(task.step(1_000), DecideStatus::Done(_)));
    let (decision, _pool) = task.finish();
    assert!(decision.cancelled, "cancelled decision must say so");
    assert_eq!(decision.implication, Answer::Unknown);
    assert_eq!(decision.finite_implication, Answer::Unknown);
}

#[test]
fn core_chase_keeps_instances_no_larger() {
    // On an instance with redundant derivations the core chase's final
    // relation is no larger than the standard chase's.
    let u = universe4();
    let mut pool = ValuePool::new(u.clone());
    let sigma: Vec<TdOrEgd> = ["A ->> B", "B ->> C", "C ->> D"]
        .iter()
        .map(|s| TdOrEgd::Td(Mvd::parse(&u, s).unwrap().to_pjd().to_td(&u, &mut pool)))
        .collect();
    let goal_mvd = Mvd::parse(&u, "A ->> D").unwrap();
    let goal = TdOrEgd::Td(goal_mvd.to_pjd().to_td(&u, &mut pool));

    let std_run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
    let core_run = chase_implication(
        &sigma,
        &goal,
        &mut pool,
        &ChaseConfig::default().with_variant(ChaseVariant::Core),
    );
    assert_eq!(std_run.outcome, core_run.outcome);
    assert!(core_run.final_relation.len() <= std_run.final_relation.len());
}

#[test]
fn oblivious_chase_is_bounded_by_budget_on_divergent_input() {
    // A self-feeding non-total td: the oblivious chase diverges by design
    // and must stop at the budget.
    let u = Universe::typed(vec!["A", "B"]);
    let mut pool = ValuePool::new(u.clone());
    // Inert for the standard chase (its conclusion is satisfied by the
    // matched row itself) but endlessly refired by the oblivious chase.
    let td = typedtd::dependencies::td_from_names(&u, &mut pool, &[&["x", "y"]], &["x", "y2"]);
    let sigma = vec![TdOrEgd::Td(td)];
    // The goal demands a combination (p, q2) no chase step ever creates.
    let goal_td = typedtd::dependencies::td_from_names(
        &u,
        &mut pool,
        &[&["p", "q"], &["p2", "q2"]],
        &["p", "q2"],
    );
    let goal = TdOrEgd::Td(goal_td);
    let cfg = ChaseConfig {
        max_rounds: 8,
        max_rows: 64,
        max_steps: 128,
        variant: ChaseVariant::Oblivious,
        ..ChaseConfig::default()
    };
    let run = chase_implication(&sigma, &goal, &mut pool, &cfg);
    assert_eq!(run.outcome, ChaseOutcome::Exhausted);
    assert!(run.final_relation.len() <= 64 + 1);
}
