//! The three chase variants and the parallel trigger scan must agree on
//! decidable instances, and found counterexamples must always verify.

use proptest::prelude::*;
use typedtd::chase::{
    chase_implication, is_counterexample, ChaseConfig, ChaseOutcome, ChaseVariant,
};
use typedtd::dependencies::TdOrEgd;
use typedtd::prelude::*;

fn universe4() -> std::sync::Arc<Universe> {
    Universe::typed(vec!["A", "B", "C", "D"])
}

fn mask_to_set(u: &Universe, mask: u32) -> AttrSet {
    u.attrs().filter(|a| mask & (1 << a.index()) != 0).collect()
}

fn run_variant(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut ValuePool,
    variant: ChaseVariant,
    parallel: bool,
) -> ChaseOutcome {
    let cfg = ChaseConfig::default()
        .with_variant(variant)
        .with_parallel(parallel);
    chase_implication(sigma, goal, pool, &cfg).outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Standard, core, and parallel-standard chase agree on mvd instances
    /// (total tds: guaranteed termination). The oblivious chase agrees on
    /// the Implied verdict whenever the others imply.
    #[test]
    fn variants_agree_on_mvd_instances(
        lhs_masks in prop::collection::vec(1u32..15, 1..3),
        rhs_masks in prop::collection::vec(1u32..15, 1..3),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = lhs_masks
            .iter()
            .zip(&rhs_masks)
            .map(|(&l, &r)| {
                let mvd = Mvd::new(u.clone(), mask_to_set(&u, l), mask_to_set(&u, r));
                TdOrEgd::Td(mvd.to_pjd().to_td(&u, &mut pool))
            })
            .collect();
        let goal_mvd = Mvd::new(u.clone(), mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs));
        let goal = TdOrEgd::Td(goal_mvd.to_pjd().to_td(&u, &mut pool));

        let standard = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Standard, false);
        let core = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Core, false);
        let par = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Standard, true);
        prop_assert_eq!(standard, core);
        prop_assert_eq!(standard, par);
        if standard == ChaseOutcome::Implied {
            let obl = run_variant(&sigma, &goal, &mut pool, ChaseVariant::Oblivious, false);
            prop_assert_eq!(obl, ChaseOutcome::Implied);
        }
    }

    /// Terminal (NotImplied) chase instances really are counterexamples:
    /// they satisfy Σ and violate the goal.
    #[test]
    fn terminal_instances_verify_as_counterexamples(
        lhs_masks in prop::collection::vec(1u32..15, 1..3),
        rhs_masks in prop::collection::vec(1u32..15, 1..3),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = lhs_masks
            .iter()
            .zip(&rhs_masks)
            .map(|(&l, &r)| {
                let mvd = Mvd::new(u.clone(), mask_to_set(&u, l), mask_to_set(&u, r));
                TdOrEgd::Td(mvd.to_pjd().to_td(&u, &mut pool))
            })
            .collect();
        let goal_mvd = Mvd::new(u.clone(), mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs));
        let goal = TdOrEgd::Td(goal_mvd.to_pjd().to_td(&u, &mut pool));
        let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
        if run.outcome == ChaseOutcome::NotImplied {
            prop_assert!(is_counterexample(&run.final_relation, &sigma, &goal),
                "terminal instance must be a universal-model counterexample");
        }
    }
}

#[test]
fn core_chase_keeps_instances_no_larger() {
    // On an instance with redundant derivations the core chase's final
    // relation is no larger than the standard chase's.
    let u = universe4();
    let mut pool = ValuePool::new(u.clone());
    let sigma: Vec<TdOrEgd> = ["A ->> B", "B ->> C", "C ->> D"]
        .iter()
        .map(|s| TdOrEgd::Td(Mvd::parse(&u, s).to_pjd().to_td(&u, &mut pool)))
        .collect();
    let goal_mvd = Mvd::parse(&u, "A ->> D");
    let goal = TdOrEgd::Td(goal_mvd.to_pjd().to_td(&u, &mut pool));

    let std_run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
    let core_run = chase_implication(
        &sigma,
        &goal,
        &mut pool,
        &ChaseConfig::default().with_variant(ChaseVariant::Core),
    );
    assert_eq!(std_run.outcome, core_run.outcome);
    assert!(core_run.final_relation.len() <= std_run.final_relation.len());
}

#[test]
fn oblivious_chase_is_bounded_by_budget_on_divergent_input() {
    // A self-feeding non-total td: the oblivious chase diverges by design
    // and must stop at the budget.
    let u = Universe::typed(vec!["A", "B"]);
    let mut pool = ValuePool::new(u.clone());
    // Inert for the standard chase (its conclusion is satisfied by the
    // matched row itself) but endlessly refired by the oblivious chase.
    let td = typedtd::dependencies::td_from_names(&u, &mut pool, &[&["x", "y"]], &["x", "y2"]);
    let sigma = vec![TdOrEgd::Td(td)];
    // The goal demands a combination (p, q2) no chase step ever creates.
    let goal_td = typedtd::dependencies::td_from_names(
        &u,
        &mut pool,
        &[&["p", "q"], &["p2", "q2"]],
        &["p", "q2"],
    );
    let goal = TdOrEgd::Td(goal_td);
    let cfg = ChaseConfig {
        max_rounds: 8,
        max_rows: 64,
        max_steps: 128,
        variant: ChaseVariant::Oblivious,
        ..ChaseConfig::default()
    };
    let run = chase_implication(&sigma, &goal, &mut pool, &cfg);
    assert_eq!(run.outcome, ChaseOutcome::Exhausted);
    assert!(run.final_relation.len() <= 64 + 1);
}
