//! The chase against the decidable oracles: on the fd and mvd fragments the
//! chase must agree with the Armstrong closure and the dependency basis —
//! and implication must coincide with finite implication, the situation
//! whose failure for typed tds is the subject of the paper.

use proptest::prelude::*;
use typedtd::dependencies::{dependency_basis, fd_implies, mvd_implies};
use typedtd::prelude::*;

fn universe4() -> std::sync::Arc<Universe> {
    Universe::typed(vec!["A", "B", "C", "D"])
}

fn mask_to_set(u: &Universe, mask: u32) -> AttrSet {
    u.attrs().filter(|a| mask & (1 << a.index()) != 0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chase_agrees_with_fd_closure(
        lhs_masks in prop::collection::vec(1u32..15, 1..4),
        rhs_masks in prop::collection::vec(1u32..15, 1..4),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let fds: Vec<Fd> = lhs_masks
            .iter()
            .zip(&rhs_masks)
            .map(|(&l, &r)| Fd::new(mask_to_set(&u, l), mask_to_set(&u, r)))
            .collect();
        let goal = Fd::new(mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs));
        let oracle = fd_implies(&fds, &goal);

        let sigma: Vec<Dependency> = fds.iter().cloned().map(Dependency::from).collect();
        let verdict = decide_dependencies(
            &sigma,
            &Dependency::from(goal.clone()),
            &u,
            &mut pool,
            &DecideConfig::default(),
        );
        let chase_answer = match verdict.implication {
            Answer::Yes => true,
            Answer::No => false,
            Answer::Unknown => panic!("fd chase must terminate"),
        };
        prop_assert_eq!(chase_answer, oracle, "fds: {:?} goal {}",
            fds.iter().map(|f| f.render(&u)).collect::<Vec<_>>(), goal.render(&u));
        // Implication ≡ finite implication on this fragment.
        prop_assert_eq!(verdict.implication, verdict.finite_implication);
    }

    #[test]
    fn chase_agrees_with_dependency_basis(
        lhs_masks in prop::collection::vec(1u32..15, 1..3),
        rhs_masks in prop::collection::vec(1u32..15, 1..3),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let mvds: Vec<Mvd> = lhs_masks
            .iter()
            .zip(&rhs_masks)
            .map(|(&l, &r)| Mvd::new(u.clone(), mask_to_set(&u, l), mask_to_set(&u, r)))
            .collect();
        let goal = Mvd::new(u.clone(), mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs));
        let oracle = mvd_implies(&u, &mvds, &goal);

        let sigma: Vec<Dependency> = mvds.iter().cloned().map(Dependency::from).collect();
        let verdict = decide_dependencies(
            &sigma,
            &Dependency::from(goal.clone()),
            &u,
            &mut pool,
            &DecideConfig::default(),
        );
        let chase_answer = match verdict.implication {
            Answer::Yes => true,
            Answer::No => false,
            Answer::Unknown => panic!("total-mvd chase must terminate"),
        };
        prop_assert_eq!(chase_answer, oracle,
            "mvds: {:?} goal {}",
            mvds.iter().map(|m| m.render()).collect::<Vec<_>>(), goal.render());
        prop_assert_eq!(verdict.implication, verdict.finite_implication);
    }

    #[test]
    fn basis_blocks_partition_and_certify(
        lhs_masks in prop::collection::vec(1u32..15, 0..3),
        rhs_masks in prop::collection::vec(1u32..15, 0..3),
        x_mask in 0u32..16,
    ) {
        let u = universe4();
        let n = lhs_masks.len().min(rhs_masks.len());
        let mvds: Vec<Mvd> = (0..n)
            .map(|i| Mvd::new(u.clone(), mask_to_set(&u, lhs_masks[i]), mask_to_set(&u, rhs_masks[i])))
            .collect();
        let x = mask_to_set(&u, x_mask);
        let basis = dependency_basis(&u, &x, &mvds);
        // Partition of U − X.
        let mut total = AttrSet::new();
        for b in &basis {
            prop_assert!(total.intersection(b).is_empty());
            prop_assert!(!b.is_empty());
            total = total.union(b);
        }
        prop_assert_eq!(total, u.all().difference(&x));
        // Every block, unioned with X, is an implied mvd.
        for b in &basis {
            let goal = Mvd::new(u.clone(), x.clone(), b.clone());
            prop_assert!(mvd_implies(&u, &mvds, &goal));
        }
    }
}

#[test]
fn mixed_fd_mvd_decision_via_chase() {
    // The classical mixed rule: X ↠ Y and Y → Z imply X → Z − Y.
    let u = universe4();
    let mut pool = ValuePool::new(u.clone());
    let sigma = vec![
        Dependency::from(Mvd::parse(&u, "A ->> B").unwrap()),
        Dependency::from(Fd::parse(&u, "B -> C").unwrap()),
    ];
    let goal = Dependency::from(Fd::parse(&u, "A -> C").unwrap());
    let v = decide_dependencies(&sigma, &goal, &u, &mut pool, &DecideConfig::default());
    assert_eq!(v.implication, Answer::Yes);

    // But X ↠ Y and Y ↠ Z do NOT imply X → Z.
    let sigma2 = vec![
        Dependency::from(Mvd::parse(&u, "A ->> B").unwrap()),
        Dependency::from(Mvd::parse(&u, "B ->> C").unwrap()),
    ];
    let v2 = decide_dependencies(&sigma2, &goal, &u, &mut pool, &DecideConfig::default());
    assert_eq!(v2.implication, Answer::No);
    assert!(v2.counterexample.is_some());
}
