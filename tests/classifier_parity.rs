//! Differential parity for the fragment classifier and Σ-group sharing.
//!
//! Three guarantees, checked against randomized corpora:
//!
//! * **routing is invisible** — the classifier may re-route a weakly
//!   acyclic query onto the terminating path (sequential, no search,
//!   unbounded chase budgets), but the answers must be identical to the
//!   unclassified dovetail path on every query of a 200+-case corpus
//!   mixing fds, mvds, pjds, tds, egds, inclusion dependencies, and
//!   independence atoms;
//! * **grouping is invisible** — Σ-group shared saturation must agree
//!   with the per-job blocking `decide` on every member goal;
//! * **expiry is honest** — a group whose shared budget dies falls back
//!   per member and never manufactures a definite answer: whatever the
//!   ungrouped run answers `Unknown`, the grouped run answers `Unknown`.

use typedtd::dependencies::{egd_from_names, parse_dependency, td_from_names, TdOrEgd};
use typedtd::prelude::*;
use typedtd::service::{ImplicationClient, JobStatus, QuerySpec, ServiceConfig};
use typedtd_chase::DecideMode;

/// Tight per-query budgets for the big differential corpora: the quick
/// chase plus a trimmed counterexample search. Both sides of every
/// comparison run the identical budgets, so parity is unaffected — this
/// only keeps the 200-case sweep to seconds instead of minutes.
fn corpus_decide() -> DecideConfig {
    DecideConfig {
        chase: ChaseConfig::quick(),
        search: SearchConfig {
            max_domain: 3,
            attempts: 8,
            repair_steps: 128,
            max_rows: 64,
            ..SearchConfig::default()
        },
        ..DecideConfig::default()
    }
}

/// Deterministic LCG (splitmix-style constants) so the corpus is
/// reproducible without a seed file or an external RNG.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Typed-universe Σ candidates: the decidable fd/mvd/pjd classes plus
/// independence atoms.
const TYPED_SPECS: &[&str] = &[
    "A -> B",
    "B -> C",
    "A -> BC",
    "AB -> C",
    "C -> A",
    "A ->> B",
    "B ->> C",
    "A ->> BC",
    "*[AB, AC]",
    "*[AB, BC]",
    "A _|_ B",
    "A _|_ BC",
    "AB _|_ BC",
];
const TYPED_GOALS: &[&str] = &[
    "A -> C",
    "A -> B",
    "B -> A",
    "A ->> C",
    "A ->> B",
    "A _|_ B",
    "A _|_ C",
    "*[AB, AC]",
];

/// Untyped-universe Σ candidates: inclusion dependencies (the
/// undecidable fd+ind regime), raw tds/egds (including a divergent
/// existential td), and atoms.
const UNTYPED_SPECS: &[&str] = &[
    "[AB] <= [BC]",
    "[BC] <= [CA]",
    "[A] <= [B]",
    "B -> C",
    "A -> B",
    "A _|_ BC",
    "td [x y z ; x y w] => x y z",
    "td [x y z] => y p q",
    "egd [x y1 z1 ; x y2 z2] => y1 = y2",
];
const UNTYPED_GOALS: &[&str] = &[
    "[A] <= [B]",
    "[AB] <= [CA]",
    "B -> C",
    "A -> C",
    "A _|_ C",
    "td [x y z] => x y z",
    "egd [x y1 z1 ; x y2 z2] => z1 = z2",
];

/// Builds corpus case `i`: 1–3 Σ dependencies plus a goal, drawn from
/// one universe's pool, all normalized to tds/egds.
fn corpus_case(i: u64) -> (Vec<TdOrEgd>, Vec<TdOrEgd>, ValuePool) {
    let mut st = 0x9e3779b97f4a7c15u64.wrapping_add(i.wrapping_mul(0xbf58476d1ce4e5b9));
    let typed = next(&mut st).is_multiple_of(2);
    let (u, specs, goals) = if typed {
        (Universe::typed(vec!["A", "B", "C"]), TYPED_SPECS, TYPED_GOALS)
    } else {
        (Universe::untyped(vec!["A", "B", "C"]), UNTYPED_SPECS, UNTYPED_GOALS)
    };
    let mut pool = ValuePool::new(u.clone());
    let n = 1 + (next(&mut st) % 3) as usize;
    let mut sigma = Vec::new();
    for _ in 0..n {
        let spec = specs[(next(&mut st) as usize) % specs.len()];
        let dep = parse_dependency(&u, &mut pool, spec).expect("corpus spec parses");
        sigma.extend(dep.normalize(&u, &mut pool));
    }
    let gspec = goals[(next(&mut st) as usize) % goals.len()];
    let goal = parse_dependency(&u, &mut pool, gspec)
        .expect("corpus goal parses")
        .normalize(&u, &mut pool);
    (sigma, goal, pool)
}

/// Submits every (case, goal-part) query to `client` and returns the
/// settled `(implication, finite, cancelled)` triples in corpus order.
fn run_corpus(client: &ImplicationClient, cases: u64) -> Vec<(Answer, Answer, bool)> {
    let mut jobs = Vec::new();
    for i in 0..cases {
        let (sigma, goals, pool) = corpus_case(i);
        if sigma.is_empty() {
            continue; // a trivial ind can normalize away
        }
        for g in goals {
            jobs.push(client.submit(QuerySpec::new(sigma.clone(), g, pool.clone())));
        }
    }
    client.run_to_completion();
    jobs.iter()
        .map(|j| match j.poll() {
            JobStatus::Done(o) => (o.implication, o.finite_implication, o.cancelled),
            other => panic!("job left unsettled after run_to_completion: {other:?}"),
        })
        .collect()
}

/// The 200-case differential: classified routing answers byte-identically
/// to the unclassified dovetail path on the full mixed-class corpus.
#[test]
fn classified_routing_matches_unclassified_dovetail() {
    let base = ServiceConfig {
        decide: DecideConfig {
            mode: DecideMode::adaptive_dovetail(1),
            ..corpus_decide()
        },
        ..ServiceConfig::default()
    };
    let routed = ImplicationClient::new(ServiceConfig {
        classify: true,
        ..base.clone()
    });
    let dovetail = ImplicationClient::new(ServiceConfig {
        classify: false,
        ..base
    });
    const CASES: u64 = 200;
    let on = run_corpus(&routed, CASES);
    let off = run_corpus(&dovetail, CASES);
    assert_eq!(on.len(), off.len());
    for (i, (a, b)) in on.iter().zip(&off).enumerate() {
        assert_eq!(a, b, "answer drift on corpus query {i}");
    }
    let s = routed.stats();
    // The typed half of the corpus is weakly acyclic: the classifier must
    // actually route it (terminating), and the untyped divergent mixes
    // must stay on dovetail.
    let terminating = typedtd_chase::RouteClass::Terminating.index();
    let dovetail_idx = typedtd_chase::RouteClass::Dovetail.index();
    assert!(s.class_routed[terminating] > 0, "no queries routed terminating");
    assert!(s.class_routed[dovetail_idx] > 0, "no queries routed dovetail");
    assert_eq!(
        dovetail.stats().class_routed.iter().sum::<u64>(),
        0,
        "classify=false must not route"
    );
}

/// Every weakly acyclic query must leave the dovetail route: on the
/// purely typed fd/mvd/pjd corpus (all weakly acyclic), the dovetail
/// route counter stays at zero while answers still match.
#[test]
fn weakly_acyclic_corpus_never_routes_dovetail() {
    let client = ImplicationClient::new(ServiceConfig {
        decide: corpus_decide(),
        ..ServiceConfig::default()
    });
    let blocking_cfg = corpus_decide();
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut checked = 0;
    for i in 0..40u64 {
        let mut st = i.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(7);
        let mut pool = ValuePool::new(u.clone());
        let mut sigma = Vec::new();
        for _ in 0..=(next(&mut st) % 2) {
            let spec = TYPED_SPECS[(next(&mut st) as usize) % TYPED_SPECS.len()];
            let dep = parse_dependency(&u, &mut pool, spec).expect("spec parses");
            sigma.extend(dep.normalize(&u, &mut pool));
        }
        let gspec = TYPED_GOALS[(next(&mut st) as usize) % TYPED_GOALS.len()];
        let goals = parse_dependency(&u, &mut pool, gspec)
            .expect("goal parses")
            .normalize(&u, &mut pool);
        for g in goals {
            let expect = decide(&sigma, &g, &mut pool.clone(), &blocking_cfg);
            let job = client.submit(QuerySpec::new(sigma.clone(), g, pool.clone()));
            let out = job.wait();
            assert_eq!(out.implication, expect.implication);
            assert_eq!(out.finite_implication, expect.finite_implication);
            checked += 1;
        }
    }
    assert!(checked >= 40, "corpus too thin: {checked}");
    let s = client.stats();
    assert_eq!(
        s.class_routed[typedtd_chase::RouteClass::Dovetail.index()],
        0,
        "a weakly acyclic query fell through to the dovetail route"
    );
}

/// Σ-group members: a fixed Σ, many goals over the identical canonical
/// hypothesis (the `service_batch` shape). The grouped run must agree
/// with per-job blocking `decide` on every member.
#[test]
fn grouped_saturation_agrees_with_per_job_decide() {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let rows: &[&[&str]] = &[&["x", "y1", "z1"], &["x", "y2", "z2"]];
    let sigma = vec![
        TdOrEgd::Td(td_from_names(&u, &mut pool, rows, &["x", "y1", "z2"])),
        TdOrEgd::Egd(egd_from_names(&u, &mut pool, rows, ("B'", "y1"), ("B'", "y2"))),
    ];
    // Member goals over the same hypothesis, none canonically in Σ:
    // a No egd, a Yes projection td, a No td, and a Yes mvd-style td.
    let goals = [
        TdOrEgd::Egd(egd_from_names(&u, &mut pool, rows, ("C'", "z1"), ("C'", "z2"))),
        TdOrEgd::Td(td_from_names(&u, &mut pool, rows, &["x", "y1", "z1"])),
        TdOrEgd::Td(td_from_names(&u, &mut pool, rows, &["x", "x", "x"])),
        TdOrEgd::Td(td_from_names(&u, &mut pool, rows, &["x", "y2", "z1"])),
    ];
    let client = ImplicationClient::new(ServiceConfig {
        group: true,
        ..ServiceConfig::default()
    });
    let cfg = DecideConfig::default();
    let jobs: Vec<_> = goals
        .iter()
        .map(|g| client.submit(QuerySpec::new(sigma.clone(), g.clone(), pool.clone())))
        .collect();
    client.run_to_completion();
    for (g, job) in goals.iter().zip(&jobs) {
        let expect = decide(&sigma, g, &mut pool.clone(), &cfg);
        let JobStatus::Done(out) = job.poll() else {
            panic!("grouped member left unsettled");
        };
        assert_eq!(out.implication, expect.implication, "member drifted");
        assert_eq!(out.finite_implication, expect.finite_implication);
        assert!(!out.cancelled);
        // A grouped No still carries a finite counterexample certificate.
        if out.implication == Answer::No && !out.from_cache {
            assert!(out.counterexample.is_some(), "grouped No lost its model");
        }
    }
    let s = client.stats();
    assert!(s.grouped >= 3, "grouping never engaged: {}", s.grouped);
    assert_eq!(s.group_chases, 1, "one Σ-group must chase exactly once");
    assert_eq!(s.group_fallbacks, 0, "terminating group must not fall back");
}

/// Group-budget expiry: the shared chase dies (tiny budgets, divergent
/// Σ), members fall back to private chases, and every answer matches the
/// ungrouped run — `Unknown` stays `Unknown`, never a manufactured
/// definite answer.
#[test]
fn group_expiry_never_manufactures_definite_answers() {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    // Divergent Σ: the successor td mints fresh rows forever.
    let sigma = vec![TdOrEgd::Td(td_from_names(
        &u,
        &mut pool,
        &[&["x", "y", "z"]],
        &["y", "q1", "q2"],
    ))];
    let rows: &[&[&str]] = &[&["x", "y1", "z1"], &["x", "y2", "z2"]];
    // Two never-derivable egd goals (nothing in Σ merges) and one
    // immediately-derivable td goal over the same hypothesis.
    let goals = [
        TdOrEgd::Egd(egd_from_names(&u, &mut pool, rows, ("B'", "y1"), ("B'", "y2"))),
        TdOrEgd::Egd(egd_from_names(&u, &mut pool, rows, ("C'", "z1"), ("C'", "z2"))),
        TdOrEgd::Td(td_from_names(&u, &mut pool, rows, &["y1", "p", "q"])),
    ];
    let tiny = DecideConfig {
        chase: ChaseConfig {
            max_rounds: 8,
            max_rows: 128,
            max_steps: 512,
            ..ChaseConfig::default()
        },
        skip_search: true,
        ..DecideConfig::default()
    };
    let run = |group: bool| {
        let client = ImplicationClient::new(ServiceConfig {
            decide: tiny.clone(),
            classify: false,
            group,
            ..ServiceConfig::default()
        });
        let jobs: Vec<_> = goals
            .iter()
            .map(|g| client.submit(QuerySpec::new(sigma.clone(), g.clone(), pool.clone())))
            .collect();
        client.run_to_completion();
        let answers: Vec<(Answer, Answer)> = jobs
            .iter()
            .map(|j| match j.poll() {
                JobStatus::Done(o) => (o.implication, o.finite_implication),
                other => panic!("unsettled: {other:?}"),
            })
            .collect();
        (answers, client.stats())
    };
    let (grouped, gs) = run(true);
    let (solo, _) = run(false);
    assert_eq!(grouped, solo, "group expiry changed an answer");
    // The never-derivable goals must be honest Unknowns under the tiny
    // budget; the derivable one answers Yes from the shared pool.
    assert_eq!(grouped[0].0, Answer::Unknown);
    assert_eq!(grouped[1].0, Answer::Unknown);
    assert_eq!(grouped[2].0, Answer::Yes);
    assert!(gs.grouped >= 2, "grouping never engaged");
    assert!(
        gs.group_fallbacks >= 1,
        "budget expiry must fall back, not answer"
    );
}
