//! Property-based verification of the paper's lemmas on randomized inputs.
//!
//! Each lemma is a *for all relations / dependencies* statement; we sample
//! that space. Satisfaction over finite relations is decidable, so every
//! check here is exact.

use proptest::prelude::*;
use typedtd::core::{lemma2_check, lemma4_check, t_inverse, HatContext, Translator};
use typedtd::dependencies::{egd_from_names, TdOrEgd};
use typedtd::prelude::*;

/// A random untyped relation over `U' = A'B'C'` with values `v0..v{k-1}`.
fn untyped_relation(max_vals: usize, max_rows: usize) -> impl Strategy<Value = Vec<[usize; 3]>> {
    prop::collection::vec(
        [0..max_vals, 0..max_vals, 0..max_vals],
        1..=max_rows,
    )
}

fn build_relation(
    u: &std::sync::Arc<Universe>,
    pool: &mut ValuePool,
    rows: &[[usize; 3]],
) -> Relation {
    Relation::from_rows(
        u.clone(),
        rows.iter().map(|r| {
            Tuple::new(
                r.iter()
                    .map(|i| pool.untyped(&format!("v{i}")))
                    .collect(),
            )
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 1: T(I) satisfies {AD→U, BD→U, CD→U, ABCE→U} for *every* I.
    #[test]
    fn lemma1_randomized(rows in untyped_relation(4, 6)) {
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = build_relation(&u, &mut pool, &rows);
        let mut tr = Translator::new(u);
        let t_i = tr.t_relation(&pool, &i);
        prop_assert!(tr.lemma1_holds(&t_i));
        prop_assert!(t_i.check_typed(tr.pool()).is_ok());
        // |T(I)| = 1 + |I| + |VAL(I)|.
        prop_assert_eq!(t_i.len(), 1 + i.len() + i.val_count());
    }

    /// Lemma 2 for tds: I ⊨ θ ⇔ T(I) ⊨ T(θ) for A'B'-total θ.
    #[test]
    fn lemma2_td_randomized(
        rows in untyped_relation(3, 4),
        hyp in untyped_relation(3, 2),
        w_a in 0usize..3, w_b in 0usize..3, w_c in 0usize..4,
    ) {
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = build_relation(&u, &mut pool, &rows);
        // Build an A'B'-total td: conclusion A'/B' values drawn from the
        // hypothesis variable space, C' possibly fresh (index 3).
        let hyp_rows: Vec<Vec<String>> = hyp
            .iter()
            .map(|r| r.iter().map(|i| format!("t{i}")).collect())
            .collect();
        let hyp_refs: Vec<Vec<&str>> = hyp_rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let hyp_slices: Vec<&[&str]> = hyp_refs.iter().map(|r| r.as_slice()).collect();
        let w = [format!("t{w_a}"), format!("t{w_b}"), format!("t{w_c}")];
        // Ensure A'B'-totality: t{w_a}, t{w_b} must occur in the hypothesis.
        let occurs = |name: &str| hyp_rows.iter().flatten().any(|n| n == name);
        prop_assume!(occurs(&w[0]) && occurs(&w[1]));
        let td = typedtd::dependencies::td_from_names(
            &u,
            &mut pool,
            &hyp_slices,
            &[&w[0], &w[1], &w[2]],
        );
        let dep = TdOrEgd::Td(td);
        let mut tr = Translator::new(u);
        let (lhs, rhs) = lemma2_check(&mut tr, &pool, &i, &dep);
        prop_assert_eq!(lhs, rhs, "Lemma 2 failed: I={:?} dep={:?}", rows, hyp);
    }

    /// Lemma 2 for egds.
    #[test]
    fn lemma2_egd_randomized(
        rows in untyped_relation(3, 4),
        hyp in untyped_relation(3, 2),
        l in 0usize..3, r in 0usize..3,
    ) {
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = build_relation(&u, &mut pool, &rows);
        let hyp_rows: Vec<Vec<String>> = hyp
            .iter()
            .map(|row| row.iter().map(|i| format!("t{i}")).collect())
            .collect();
        let occurs = |name: &str| hyp_rows.iter().flatten().any(|n| n == name);
        let (ln, rn) = (format!("t{l}"), format!("t{r}"));
        prop_assume!(occurs(&ln) && occurs(&rn));
        let hyp_refs: Vec<Vec<&str>> = hyp_rows
            .iter()
            .map(|row| row.iter().map(String::as_str).collect())
            .collect();
        let hyp_slices: Vec<&[&str]> = hyp_refs.iter().map(|r| r.as_slice()).collect();
        let egd = egd_from_names(&u, &mut pool, &hyp_slices, ("A'", &ln), ("A'", &rn));
        let dep = TdOrEgd::Egd(egd);
        let mut tr = Translator::new(u);
        let (lhs, rhs) = lemma2_check(&mut tr, &pool, &i, &dep);
        prop_assert_eq!(lhs, rhs);
    }

    /// Lemma 4: I ⊨ A'B' → C' ⟹ T(I) ⊨ σ₀.
    #[test]
    fn lemma4_randomized(rows in untyped_relation(3, 5)) {
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = build_relation(&u, &mut pool, &rows);
        let mut tr = Translator::new(u);
        let (premise, conclusion) = lemma4_check(&mut tr, &pool, &i);
        if premise {
            prop_assert!(conclusion);
        }
    }

    /// Lemma 3 shape: T⁻¹(T(I)) has exactly |I| rows and satisfies the
    /// same A'B'-total tds as I (spot-checked with the exchange td).
    #[test]
    fn t_inverse_roundtrip_randomized(rows in untyped_relation(3, 4)) {
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = build_relation(&u, &mut pool, &rows);
        let mut tr = Translator::new(u.clone());
        let t_i = tr.t_relation(&pool, &i);
        let (d0, e0, f1) = (tr.special("d0"), tr.special("e0"), tr.special("f1"));
        let inv = t_inverse(&t_i, d0, e0, f1, &u, &mut pool);
        prop_assert_eq!(inv.relation.len(), i.len());
        prop_assert!(
            typedtd::relational::isomorphic(&i, &inv.relation),
            "T⁻¹(T(I)) must be isomorphic to I"
        );
        let exchange = typedtd::dependencies::td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        prop_assert_eq!(
            exchange.satisfied_by(&i),
            exchange.satisfied_by(&inv.relation)
        );
    }

    /// Lemma 6: a pjd and its shallow td satisfy the same relations.
    #[test]
    fn lemma6_randomized(
        rows in prop::collection::vec([0usize..3, 0usize..3, 0usize..3, 0usize..3], 1..6),
        comp_masks in prop::collection::vec(1u32..15, 1..4),
        x_selector in 0u32..16,
    ) {
        let u = Universe::typed(vec!["A", "B", "C", "D"]);
        let mut pool = ValuePool::new(u.clone());
        let comps: Vec<AttrSet> = {
            let mut seen = Vec::new();
            for m in comp_masks {
                let s: AttrSet = u.attrs().filter(|a| m & (1 << a.index()) != 0).collect();
                if !seen.contains(&s) {
                    seen.push(s);
                }
            }
            seen
        };
        let r = comps.iter().fold(AttrSet::new(), |acc, c| acc.union(c));
        let x: AttrSet = r.iter().enumerate()
            .filter(|(i, _)| x_selector & (1 << i) != 0)
            .map(|(_, a)| a)
            .collect();
        let pjd = Pjd::new(comps, x);
        let td = pjd.to_td(&u, &mut pool);
        let rel = Relation::from_rows(
            u.clone(),
            rows.iter().map(|row| {
                Tuple::new(
                    row.iter()
                        .enumerate()
                        .map(|(col, i)| pool.typed(AttrId(col as u16), &format!("c{col}v{i}")))
                        .collect(),
                )
            }),
        );
        prop_assert_eq!(pjd.satisfied_by(&rel), td.satisfied_by(&rel),
            "Lemma 6 failed for {}", pjd.render(&u));
    }

    /// Lemma 7: I ⊨ θ ⇔ Î ⊨ θ̂.
    #[test]
    fn lemma7_randomized(
        rel_rows in prop::collection::vec([0usize..3, 0usize..3, 0usize..3], 1..5),
        hyp in prop::collection::vec([0usize..3, 0usize..3, 0usize..3], 1..3),
        w in [0usize..4, 0usize..4, 0usize..4],
    ) {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let rel = Relation::from_rows(
            u.clone(),
            rel_rows.iter().map(|row| {
                Tuple::new(
                    row.iter()
                        .enumerate()
                        .map(|(col, i)| pool.typed(AttrId(col as u16), &format!("c{col}v{i}")))
                        .collect(),
                )
            }),
        );
        // Random td over variable names per column (index 3 = fresh-in-w).
        let hyp_rows: Vec<Vec<String>> = hyp
            .iter()
            .map(|row| row.iter().enumerate().map(|(c, i)| format!("c{c}t{i}")).collect())
            .collect();
        let hyp_refs: Vec<Vec<&str>> = hyp_rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let hyp_slices: Vec<&[&str]> = hyp_refs.iter().map(|r| r.as_slice()).collect();
        let w_names: Vec<String> = w
            .iter()
            .enumerate()
            .map(|(c, i)| format!("c{c}t{i}"))
            .collect();
        let td = typedtd::dependencies::td_from_names(
            &u,
            &mut pool,
            &hyp_slices,
            &[&w_names[0], &w_names[1], &w_names[2]],
        );
        let mut ctx = HatContext::new(&u, hyp.len().max(2));
        let (lhs, rhs) = ctx.lemma7_check(&rel, &pool, &td);
        prop_assert_eq!(lhs, rhs, "Lemma 7 failed: rel={:?} hyp={:?} w={:?}", rel_rows, hyp, w);
    }
}
