//! Structural invariants of satisfaction, randomized.
//!
//! These pin down the semantic core of Section 2: trivial dependencies hold
//! everywhere, `X → Y ⊨ X ↠ Y` pointwise, the project-join mapping is
//! extensive, satisfaction is invariant under isomorphism, and the fd/mvd
//! classes are closed under the operations the theory says they are.

use proptest::prelude::*;
use typedtd::formal::direct_product;
use typedtd::prelude::*;
use typedtd::relational::{isomorphic, project_join, FxHashMap};

fn u3() -> std::sync::Arc<Universe> {
    Universe::typed(vec!["A", "B", "C"])
}

fn build(
    u: &std::sync::Arc<Universe>,
    pool: &mut ValuePool,
    rows: &[[usize; 3]],
) -> Relation {
    Relation::from_rows(
        u.clone(),
        rows.iter().map(|r| {
            Tuple::new(
                r.iter()
                    .enumerate()
                    .map(|(c, i)| pool.typed(AttrId(c as u16), &format!("c{c}v{i}")))
                    .collect(),
            )
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// I[X] ⊆ m_R(I)[X] always (the inclusion the pjd definition rests on).
    #[test]
    fn project_join_is_extensive(
        rows in prop::collection::vec([0usize..3, 0usize..3, 0usize..3], 1..6),
        m1 in 1u32..8, m2 in 1u32..8,
    ) {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let rel = build(&u, &mut pool, &rows);
        let comp = |m: u32| -> AttrSet {
            u.attrs().filter(|a| m & (1 << a.index()) != 0).collect()
        };
        let (r1, r2) = (comp(m1), comp(m2));
        prop_assume!(r1 != r2);
        let joined = project_join(&rel, &[r1.clone(), r2.clone()]);
        let r = r1.union(&r2);
        let direct = rel.project(&r);
        for row in direct.rows() {
            prop_assert!(joined.rows().contains(row), "m_R must contain I[R]");
        }
    }

    /// A tuple's own presence witnesses fully-existential conclusions:
    /// any td whose conclusion shares a row with its hypothesis holds.
    #[test]
    fn hypothesis_conclusion_tds_hold(
        rows in prop::collection::vec([0usize..3, 0usize..3, 0usize..3], 1..5),
        hyp in prop::collection::vec([0usize..2, 0usize..2, 0usize..2], 1..3),
        pick in 0usize..3,
    ) {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let rel = build(&u, &mut pool, &rows);
        let hyp_rows: Vec<Tuple> = hyp.iter().map(|r| {
            Tuple::new(
                r.iter()
                    .enumerate()
                    .map(|(c, i)| pool.typed(AttrId(c as u16), &format!("c{c}t{i}")))
                    .collect(),
            )
        }).collect();
        let w = hyp_rows[pick % hyp_rows.len()].clone();
        let td = Td::new(u.clone(), w, hyp_rows);
        prop_assert!(td.is_trivially_satisfied());
        prop_assert!(td.satisfied_by(&rel));
    }

    /// X → Y entails X ↠ Y on every concrete relation.
    #[test]
    fn fd_satisfaction_entails_mvd_satisfaction(
        rows in prop::collection::vec([0usize..2, 0usize..3, 0usize..3], 1..6),
        x_mask in 1u32..8, y_mask in 1u32..8,
    ) {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let rel = build(&u, &mut pool, &rows);
        let x: AttrSet = u.attrs().filter(|a| x_mask & (1 << a.index()) != 0).collect();
        let y: AttrSet = u.attrs().filter(|a| y_mask & (1 << a.index()) != 0).collect();
        let fd = Fd::new(x.clone(), y.clone());
        let mvd = Mvd::new(u.clone(), x, y);
        if fd.satisfied_by(&rel) {
            prop_assert!(mvd.satisfied_by(&rel), "X → Y must entail X ↠ Y");
        }
    }

    /// Satisfaction is isomorphism-invariant.
    #[test]
    fn satisfaction_is_isomorphism_invariant(
        rows in prop::collection::vec([0usize..3, 0usize..3, 0usize..3], 1..5),
        x_mask in 1u32..8, y_mask in 1u32..8,
    ) {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let rel = build(&u, &mut pool, &rows);
        // Rename every value.
        let renaming: FxHashMap<_, _> = rel
            .val()
            .map(|v| {
                let sort = pool.sort(v);
                (v, pool.fresh(sort, "ren"))
            })
            .collect();
        let renamed = rel.map(&renaming);
        prop_assert!(isomorphic(&rel, &renamed));
        let x: AttrSet = u.attrs().filter(|a| x_mask & (1 << a.index()) != 0).collect();
        let y: AttrSet = u.attrs().filter(|a| y_mask & (1 << a.index()) != 0).collect();
        let fd = Fd::new(x.clone(), y.clone());
        let mvd = Mvd::new(u.clone(), x, y);
        prop_assert_eq!(fd.satisfied_by(&rel), fd.satisfied_by(&renamed));
        prop_assert_eq!(mvd.satisfied_by(&rel), mvd.satisfied_by(&renamed));
    }

    /// Egd/fd classes are closed under direct products: the product
    /// satisfies an fd iff both factors do.
    #[test]
    fn fds_are_closed_under_products(
        rows1 in prop::collection::vec([0usize..2, 0usize..2, 0usize..2], 1..4),
        rows2 in prop::collection::vec([0usize..2, 0usize..2, 0usize..2], 1..4),
        x_mask in 1u32..8, y_mask in 1u32..8,
    ) {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let r1 = build(&u, &mut pool, &rows1);
        let r2 = build(&u, &mut pool, &rows2);
        let prod = direct_product(&r1, &r2, &mut pool);
        let x: AttrSet = u.attrs().filter(|a| x_mask & (1 << a.index()) != 0).collect();
        let y: AttrSet = u.attrs().filter(|a| y_mask & (1 << a.index()) != 0).collect();
        let fd = Fd::new(x, y);
        prop_assert_eq!(
            fd.satisfied_by(&prod),
            fd.satisfied_by(&r1) && fd.satisfied_by(&r2)
        );
    }

    /// The jd *[XY, X(U−X−Y)] and the mvd X ↠ Y agree everywhere
    /// (the paper's definitional identity).
    #[test]
    fn mvd_equals_its_jd(
        rows in prop::collection::vec([0usize..2, 0usize..2, 0usize..2], 1..6),
        x_mask in 1u32..8, y_mask in 1u32..8,
    ) {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let rel = build(&u, &mut pool, &rows);
        let x: AttrSet = u.attrs().filter(|a| x_mask & (1 << a.index()) != 0).collect();
        let y: AttrSet = u.attrs().filter(|a| y_mask & (1 << a.index()) != 0).collect();
        let mvd = Mvd::new(u.clone(), x, y);
        prop_assert_eq!(mvd.satisfied_by(&rel), mvd.to_pjd().satisfied_by(&rel));
    }
}
