//! The implication service against the blocking decision path.
//!
//! Three properties anchor the new subsystem:
//!
//! * **resumable-step parity** — driving a `DecideTask` one fuel unit at a
//!   time (or through the service scheduler) answers exactly what the
//!   blocking `decide` answers, on the same fd/mvd corpus
//!   `tests/oracle_agreement.rs` checks against the Armstrong oracles;
//! * **scheduler fairness** — a divergent query (the undecidable gap is
//!   real: some chases never terminate) cannot starve a terminating one;
//! * **cache canonicalization** — resubmitting a query under renamed
//!   variables, reordered hypothesis rows, or reordered Σ is answered from
//!   the cache without fresh fuel, and isomorphism verification accepts
//!   every such hit.

use proptest::prelude::*;
use typedtd::dependencies::{egd_from_names, td_from_names, Dependency, TdOrEgd};
use typedtd::prelude::*;
use typedtd::service::{ImplicationService, JobStatus, ServiceConfig};
use typedtd_chase::{DecideStatus, DecideTask};

fn universe4() -> std::sync::Arc<Universe> {
    Universe::typed(vec!["A", "B", "C", "D"])
}

fn mask_to_set(u: &Universe, mask: u32) -> AttrSet {
    u.attrs().filter(|a| mask & (1 << a.index()) != 0).collect()
}

/// Steps a fresh `DecideTask` with single-unit fuel slices to completion.
fn decide_stepped(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &ValuePool,
    cfg: &DecideConfig,
) -> (Answer, Answer) {
    let mut task = DecideTask::new(sigma.to_vec(), goal.clone(), pool.clone(), cfg.clone());
    let mut slices = 0u64;
    while let DecideStatus::Pending = task.step(1) {
        slices += 1;
        assert!(slices < 1_000_000, "stepped decide failed to terminate");
    }
    let (decision, _pool) = task.finish();
    (decision.implication, decision.finite_implication)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuel-sliced `DecideTask`s and service jobs agree with the one-shot
    /// `decide` on the fd/mvd corpus of `tests/oracle_agreement.rs`.
    #[test]
    fn stepped_decide_matches_blocking_decide(
        lhs_masks in prop::collection::vec(1u32..15, 1..4),
        rhs_masks in prop::collection::vec(1u32..15, 1..4),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
        goal_is_fd in 0u32..2,
    ) {
        let u = universe4();
        let mut pool = ValuePool::new(u.clone());
        let mut deps: Vec<Dependency> = Vec::new();
        for (&l, &r) in lhs_masks.iter().zip(&rhs_masks) {
            if l.wrapping_mul(r) % 2 == 0 {
                deps.push(Dependency::from(Fd::new(mask_to_set(&u, l), mask_to_set(&u, r))));
            } else {
                deps.push(Dependency::from(Mvd::new(u.clone(), mask_to_set(&u, l), mask_to_set(&u, r))));
            }
        }
        let goal: Dependency = if goal_is_fd == 0 {
            Dependency::from(Fd::new(mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs)))
        } else {
            Dependency::from(Mvd::new(u.clone(), mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs)))
        };
        let sigma_normal: Vec<TdOrEgd> = deps
            .iter()
            .flat_map(|d| d.normalize(&u, &mut pool))
            .collect();
        let cfg = DecideConfig::default();
        let mut service = ImplicationService::new(ServiceConfig {
            slice_fuel: 1,
            ..ServiceConfig::default()
        });
        for g in goal.normalize(&u, &mut pool) {
            let blocking = decide(&sigma_normal, &g, &mut pool.clone(), &cfg);
            prop_assert_ne!(blocking.implication, Answer::Unknown);

            let (imp, fin) = decide_stepped(&sigma_normal, &g, &pool, &cfg);
            prop_assert_eq!(imp, blocking.implication, "stepped implication diverged");
            prop_assert_eq!(fin, blocking.finite_implication, "stepped finite diverged");

            let id = service.submit(sigma_normal.clone(), g.clone(), pool.clone());
            service.run_to_completion();
            let JobStatus::Done(outcome) = service.poll(id) else {
                panic!("service left a job pending after run_to_completion");
            };
            prop_assert_eq!(outcome.implication, blocking.implication, "service diverged");
            prop_assert_eq!(outcome.finite_implication, blocking.finite_implication);
        }
    }
}

/// The Exhausted → search phase transition steps identically too: a
/// divergent-chase query with a finite counterexample must hand over to
/// the search under fuel slicing exactly as the blocking driver does.
#[test]
fn stepped_decide_matches_blocking_through_the_search_phase() {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    // Successor td: every B'-value starts a row — the chase diverges.
    let successor = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    // Goal A' → B' as an egd: refuted by a small finite model.
    let fd_egd = egd_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    let sigma = vec![TdOrEgd::Td(successor)];
    let goal = TdOrEgd::Egd(fd_egd);
    let cfg = DecideConfig {
        chase: ChaseConfig::quick(),
        ..DecideConfig::default()
    };
    let blocking = decide(&sigma, &goal, &mut pool.clone(), &cfg);
    let (imp, fin) = decide_stepped(&sigma, &goal, &pool, &cfg);
    assert_eq!(imp, blocking.implication);
    assert_eq!(fin, blocking.finite_implication);
    assert_eq!(
        blocking.implication,
        Answer::No,
        "the finite-model search must refute this goal"
    );
}

/// A divergent job cannot starve a terminating one: submitted first, given
/// astronomically larger budgets, it still cannot delay the terminating
/// job past a handful of fair sweeps.
#[test]
fn scheduler_fairness_divergent_cannot_starve() {
    let u = Universe::untyped_abc();
    let mut div_pool = ValuePool::new(u.clone());
    let successor = td_from_names(&u, &mut div_pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    // Goal: an egd that never becomes derivable (no egd in Σ ever merges).
    let never = egd_from_names(
        &u,
        &mut div_pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    let divergent_sigma = vec![TdOrEgd::Td(successor)];
    let divergent_goal = TdOrEgd::Egd(never);

    let ut = Universe::typed(vec!["A", "B", "C"]);
    let mut term_pool = ValuePool::new(ut.clone());
    let fds = [Fd::parse(&ut, "A -> B"), Fd::parse(&ut, "B -> C")];
    let term_sigma: Vec<TdOrEgd> = fds
        .iter()
        .flat_map(|f| Dependency::from(f.clone()).normalize(&ut, &mut term_pool))
        .collect();
    let term_goal = Dependency::from(Fd::parse(&ut, "A -> C"))
        .normalize(&ut, &mut term_pool)
        .pop()
        .expect("fd goal normalizes to one egd");

    let mut service = ImplicationService::new(ServiceConfig {
        decide: DecideConfig {
            // The divergent chase may burn 100k rounds before its budget
            // expires; fairness must not make the terminating job wait for
            // any of that.
            chase: ChaseConfig {
                max_rounds: 100_000,
                max_rows: 1 << 20,
                max_steps: 1 << 24,
                ..ChaseConfig::default()
            },
            skip_search: true,
            ..DecideConfig::default()
        },
        slice_fuel: 1,
        ..ServiceConfig::default()
    });
    let divergent = service.submit(divergent_sigma, divergent_goal, div_pool);
    let terminating = service.submit(term_sigma, term_goal, term_pool);

    let mut sweeps = 0;
    loop {
        assert!(service.tick(), "queue drained before the terminating job?");
        sweeps += 1;
        if let JobStatus::Done(outcome) = service.poll(terminating) {
            assert_eq!(outcome.implication, Answer::Yes, "fd transitivity");
            break;
        }
        assert!(
            sweeps <= 16,
            "terminating job starved: {sweeps} sweeps and still pending"
        );
    }
    assert!(
        matches!(service.poll(divergent), JobStatus::Pending),
        "the divergent job must still be chasing"
    );

    // A global fuel budget converts the divergent leftovers into honest
    // Unknowns instead of hanging the batch.
    let mut capped = ImplicationService::new(ServiceConfig {
        decide: DecideConfig {
            chase: ChaseConfig {
                max_rounds: 100_000,
                max_rows: 1 << 20,
                max_steps: 1 << 24,
                ..ChaseConfig::default()
            },
            skip_search: true,
            ..DecideConfig::default()
        },
        slice_fuel: 4,
        global_fuel: Some(64),
        ..ServiceConfig::default()
    });
    let mut p2 = ValuePool::new(u.clone());
    let succ2 = td_from_names(&u, &mut p2, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    let never2 = egd_from_names(
        &u,
        &mut p2,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    let id = capped.submit(vec![TdOrEgd::Td(succ2)], TdOrEgd::Egd(never2), p2);
    capped.run_to_completion();
    let JobStatus::Done(outcome) = capped.poll(id) else {
        panic!("run_to_completion must resolve every job");
    };
    assert_eq!(outcome.implication, Answer::Unknown);
    assert_eq!(capped.stats().expired, 1);
    assert!(capped.stats().fuel_spent <= 64 + 4, "soft cap respected");
}

/// Renamed variables, reordered hypothesis rows, and reordered Σ all hit
/// the cache; coalescing catches identical in-flight queries; isomorphism
/// verification accepts every hit.
#[test]
fn cache_canonicalization_hits_on_renamings() {
    let u = Universe::untyped_abc();
    let mut service = ImplicationService::new(ServiceConfig {
        verify_cache_hits: true,
        ..ServiceConfig::default()
    });

    let build = |names: [&str; 7], swap_rows: bool, swap_sigma: bool| {
        let mut pool = ValuePool::new(u.clone());
        let [x, y1, z1, y2, z2, q, r] = names;
        let rows: Vec<Vec<&str>> = if swap_rows {
            vec![vec![x, y2, z2], vec![x, y1, z1]]
        } else {
            vec![vec![x, y1, z1], vec![x, y2, z2]]
        };
        let row_slices: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        let mvd_td = td_from_names(&u, &mut pool, &row_slices, &[x, y1, z2]);
        let extra = td_from_names(&u, &mut pool, &[&[q, r, r]], &[q, r, r]);
        let mut sigma = vec![TdOrEgd::Td(mvd_td.clone()), TdOrEgd::Td(extra)];
        if swap_sigma {
            sigma.reverse();
        }
        // Goal: the mvd's own td — implied, and terminating quickly.
        (sigma, TdOrEgd::Td(mvd_td), pool)
    };

    let (s1, g1, p1) = build(["x", "y1", "z1", "y2", "z2", "q", "r"], false, false);
    let first = service.submit(s1, g1, p1);
    service.run_to_completion();
    let JobStatus::Done(first_out) = service.poll(first) else {
        panic!("first job must resolve")
    };
    assert_eq!(first_out.implication, Answer::Yes);
    assert!(!first_out.from_cache);

    // Renamed + row-swapped + Σ-reordered: must be a pure cache hit.
    let (s2, g2, p2) = build(["a", "b9", "c9", "b8", "c8", "k", "m"], true, true);
    let second = service.submit(s2, g2, p2);
    let JobStatus::Done(second_out) = service.poll(second) else {
        panic!("cache hit must resolve at submit time")
    };
    assert_eq!(second_out.implication, Answer::Yes);
    assert!(second_out.from_cache);
    assert_eq!(second_out.fuel_spent, 0);
    assert_eq!(service.stats().cache_hits, 1);
    assert_eq!(service.stats().verify_rejects, 0, "verified hit must pass");

    // Identical queries submitted before any tick coalesce onto one job.
    let (s3, g3, p3) = build(["u", "v1", "w1", "v2", "w2", "s", "t"], false, false);
    let fresh_structure = {
        // A structurally new goal (different conclusion) to avoid the cache.
        let mut pool = ValuePool::new(u.clone());
        let td = td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y2", "z1"],
        );
        (vec![TdOrEgd::Td(td.clone())], TdOrEgd::Td(td), pool)
    };
    let leader = service.submit(fresh_structure.0.clone(), fresh_structure.1.clone(), fresh_structure.2.clone());
    let follower = service.submit(fresh_structure.0, fresh_structure.1, fresh_structure.2);
    let _ = (s3, g3, p3);
    assert_eq!(service.stats().coalesced, 1);
    service.run_to_completion();
    let (JobStatus::Done(lead_out), JobStatus::Done(follow_out)) =
        (service.poll(leader), service.poll(follower))
    else {
        panic!("both coalesced jobs must resolve")
    };
    assert_eq!(lead_out.implication, follow_out.implication);
    assert!(!lead_out.from_cache);
    assert!(follow_out.from_cache);
}

/// The batch front end parses, submits, and conjoins multi-part goals.
#[test]
fn batch_front_end_round_trip() {
    use typedtd::service::submit_batch;
    let text = "\
# comment
@universe A B C
A -> B & B -> C |= A -> C
A -> B |= B -> A
B -> C & A -> B |= A -> C
@universe untyped A' B' C'
|= td [x y z] => x y z
";
    let mut service = ImplicationService::new(ServiceConfig::default());
    let batch = submit_batch(&mut service, text).expect("well-formed batch");
    service.run_to_completion();
    assert_eq!(batch.queries.len(), 4);
    let verdicts: Vec<_> = batch
        .queries
        .iter()
        .map(|q| q.conjoined(&service).expect("resolved"))
        .collect();
    assert_eq!(verdicts[0].implication, Answer::Yes);
    assert_eq!(verdicts[1].implication, Answer::No);
    assert_eq!(verdicts[2].implication, Answer::Yes);
    assert!(
        verdicts[2].from_cache,
        "Σ-reordered resubmission must be served from cache"
    );
    assert_eq!(verdicts[3].implication, Answer::Yes, "trivial td");

    assert!(submit_batch(&mut service, "A -> B |= B -> A").is_err(), "no universe");
    assert!(
        submit_batch(&mut service, "@universe A B\nA -> B |= |= B -> A").is_err(),
        "double |="
    );
    assert!(
        submit_batch(&mut service, "@universes A B C\nA -> B |= B -> A").is_err(),
        "misspelled directive must not be parsed as @universe"
    );
}
