//! The implication service against the blocking decision path.
//!
//! Five properties anchor the client API:
//!
//! * **resumable-step parity** — driving a `DecideTask` one fuel unit at a
//!   time (or through the service scheduler) answers exactly what the
//!   blocking `decide` answers, on the same fd/mvd corpus
//!   `tests/oracle_agreement.rs` checks against the Armstrong oracles —
//!   including when several threads submit and step through clones of one
//!   [`ImplicationClient`] concurrently;
//! * **scheduler fairness** — a divergent query (the undecidable gap is
//!   real: some chases never terminate) cannot starve a terminating one;
//! * **cache canonicalization** — resubmitting a query under renamed
//!   variables, reordered hypothesis rows, or reordered Σ is answered from
//!   the cache without fresh fuel, and isomorphism verification accepts
//!   every such hit;
//! * **job lifecycle** — retiring a handle (explicitly or on drop) frees
//!   the job's storage for reuse, and polling a retired id is a defined
//!   `Retired` answer, never a panic or another job's result;
//! * **bounded cache** — the cache never exceeds its configured capacity,
//!   evicts cold entries first, never evicts in-flight coalesced
//!   entries, and a fresh insert is never its own eviction victim (even
//!   at `cache_capacity = 1`);
//! * **the preemptible execution core** — dovetail mode answers
//!   refutable-but-divergent queries within a fuel cap where sequential
//!   mode expires to `Unknown` (with full answer parity on decidable
//!   queries), `cancel()` stops an in-flight job without burning further
//!   fuel and leaves coalesced waiters a defined status (detached
//!   waiters keep the answer), parked `wait`ers wake on completions from
//!   another thread's sweep instead of busy-spinning, and cross-shard
//!   work stealing preserves answers under a deliberately skewed shard
//!   assignment.

use proptest::prelude::*;
use typedtd::dependencies::{egd_from_names, td_from_names, Dependency, TdOrEgd};
use typedtd::prelude::*;
use typedtd::service::{
    stats_line, ImplicationClient, JobStatus, QuerySpec, ServiceConfig, ShardStep,
};
use typedtd_chase::{DecideMode, DecideStatus, DecideTask};

fn universe4() -> std::sync::Arc<Universe> {
    Universe::typed(vec!["A", "B", "C", "D"])
}

fn mask_to_set(u: &Universe, mask: u32) -> AttrSet {
    u.attrs().filter(|a| mask & (1 << a.index()) != 0).collect()
}

/// Steps a fresh `DecideTask` with single-unit fuel slices to completion.
fn decide_stepped(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &ValuePool,
    cfg: &DecideConfig,
) -> (Answer, Answer) {
    let mut task = DecideTask::new(sigma.to_vec(), goal.clone(), pool.clone(), cfg.clone());
    let mut slices = 0u64;
    while let DecideStatus::Pending = task.step(1) {
        slices += 1;
        assert!(slices < 1_000_000, "stepped decide failed to terminate");
    }
    let (decision, _pool) = task.finish();
    (decision.implication, decision.finite_implication)
}

/// Builds the fd/mvd corpus query for one mask tuple (shared between the
/// sequential proptest and the concurrent-clients test).
fn corpus_query(
    lhs_masks: &[u32],
    rhs_masks: &[u32],
    goal_lhs: u32,
    goal_rhs: u32,
    goal_is_fd: bool,
) -> (Vec<TdOrEgd>, Vec<TdOrEgd>, ValuePool) {
    let u = universe4();
    let mut pool = ValuePool::new(u.clone());
    let mut deps: Vec<Dependency> = Vec::new();
    for (&l, &r) in lhs_masks.iter().zip(rhs_masks) {
        if l.wrapping_mul(r) % 2 == 0 {
            deps.push(Dependency::from(Fd::new(mask_to_set(&u, l), mask_to_set(&u, r))));
        } else {
            deps.push(Dependency::from(Mvd::new(
                u.clone(),
                mask_to_set(&u, l),
                mask_to_set(&u, r),
            )));
        }
    }
    let goal: Dependency = if goal_is_fd {
        Dependency::from(Fd::new(mask_to_set(&u, goal_lhs), mask_to_set(&u, goal_rhs)))
    } else {
        Dependency::from(Mvd::new(
            u.clone(),
            mask_to_set(&u, goal_lhs),
            mask_to_set(&u, goal_rhs),
        ))
    };
    let sigma_normal: Vec<TdOrEgd> = deps
        .iter()
        .flat_map(|d| d.normalize(&u, &mut pool))
        .collect();
    let goal_parts = goal.normalize(&u, &mut pool);
    (sigma_normal, goal_parts, pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuel-sliced `DecideTask`s and service jobs agree with the one-shot
    /// `decide` on the fd/mvd corpus of `tests/oracle_agreement.rs`.
    #[test]
    fn stepped_decide_matches_blocking_decide(
        lhs_masks in prop::collection::vec(1u32..15, 1..4),
        rhs_masks in prop::collection::vec(1u32..15, 1..4),
        goal_lhs in 1u32..15,
        goal_rhs in 1u32..15,
        goal_is_fd in 0u32..2,
    ) {
        let (sigma_normal, goal_parts, pool) =
            corpus_query(&lhs_masks, &rhs_masks, goal_lhs, goal_rhs, goal_is_fd == 0);
        let cfg = DecideConfig::default();
        let client = ImplicationClient::new(ServiceConfig {
            slice_fuel: 1,
            ..ServiceConfig::default()
        });
        for g in goal_parts {
            let blocking = decide(&sigma_normal, &g, &mut pool.clone(), &cfg);
            prop_assert_ne!(blocking.implication, Answer::Unknown);

            let (imp, fin) = decide_stepped(&sigma_normal, &g, &pool, &cfg);
            prop_assert_eq!(imp, blocking.implication, "stepped implication diverged");
            prop_assert_eq!(fin, blocking.finite_implication, "stepped finite diverged");

            let job = client.submit(QuerySpec::new(sigma_normal.clone(), g.clone(), pool.clone()));
            client.run_to_completion();
            let JobStatus::Done(outcome) = job.poll() else {
                panic!("service left a job pending after run_to_completion");
            };
            prop_assert_eq!(outcome.implication, blocking.implication, "service diverged");
            prop_assert_eq!(outcome.finite_implication, blocking.finite_implication);
        }
    }
}

/// The acceptance scenario for the shared-state redesign: several threads
/// submit and step through clones of one client *concurrently* (every
/// method is `&self`), each blocking on its own handles with `wait`, and
/// every answer matches sequential blocking `decide`.
#[test]
fn concurrent_clients_match_blocking_decide() {
    // A deterministic slice of the fd/mvd corpus, a few queries per thread.
    type Case = (Vec<u32>, Vec<u32>, u32, u32, bool);
    let cases: Vec<Case> = (0u32..12)
        .map(|i| {
            (
                vec![1 + i % 14, 1 + (i * 5) % 14],
                vec![1 + (i * 3) % 14, 1 + (i * 7) % 14],
                1 + (i * 11) % 14,
                1 + (i * 13) % 14,
                i % 2 == 0,
            )
        })
        .collect();
    let cfg = DecideConfig::default();
    let expected: Vec<Vec<(Answer, Answer)>> = cases
        .iter()
        .map(|(l, r, gl, gr, fd)| {
            let (sigma, goals, pool) = corpus_query(l, r, *gl, *gr, *fd);
            goals
                .iter()
                .map(|g| {
                    let d = decide(&sigma, g, &mut pool.clone(), &cfg);
                    (d.implication, d.finite_implication)
                })
                .collect()
        })
        .collect();

    let client = ImplicationClient::new(ServiceConfig {
        slice_fuel: 2,
        shards: 4,
        ..ServiceConfig::default()
    });
    let threads = 3;
    let got: Vec<Vec<Vec<(Answer, Answer)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let client = client.clone();
                let cases = &cases;
                scope.spawn(move || {
                    cases
                        .iter()
                        .skip(t)
                        .step_by(threads)
                        .map(|(l, r, gl, gr, fd)| {
                            let (sigma, goals, pool) = corpus_query(l, r, *gl, *gr, *fd);
                            let jobs: Vec<_> = goals
                                .into_iter()
                                .map(|g| {
                                    client.submit(QuerySpec::new(
                                        sigma.clone(),
                                        g,
                                        pool.clone(),
                                    ))
                                })
                                .collect();
                            jobs.iter()
                                .map(|j| {
                                    let o = j.wait();
                                    (o.implication, o.finite_implication)
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, thread_answers) in got.iter().enumerate() {
        for (k, answers) in thread_answers.iter().enumerate() {
            let case_idx = t + k * threads;
            assert_eq!(
                answers, &expected[case_idx],
                "thread {t} case {case_idx} diverged from blocking decide"
            );
        }
    }
    assert_eq!(client.pending_jobs(), 0);
    assert!(
        stats_line(&client).contains(" inflight=0"),
        "the ledger must show the drained in-flight gauge: {}",
        stats_line(&client)
    );
    // Every handle dropped inside the threads: all storage reclaimed.
    assert_eq!(client.live_jobs(), 0, "retire-on-drop must free all slots");
}

/// The Exhausted → search phase transition steps identically too: a
/// divergent-chase query with a finite counterexample must hand over to
/// the search under fuel slicing exactly as the blocking driver does.
#[test]
fn stepped_decide_matches_blocking_through_the_search_phase() {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    // Successor td: every B'-value starts a row — the chase diverges.
    let successor = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    // Goal A' → B' as an egd: refuted by a small finite model.
    let fd_egd = egd_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    let sigma = vec![TdOrEgd::Td(successor)];
    let goal = TdOrEgd::Egd(fd_egd);
    let cfg = DecideConfig {
        chase: ChaseConfig::quick(),
        ..DecideConfig::default()
    };
    let blocking = decide(&sigma, &goal, &mut pool.clone(), &cfg);
    let (imp, fin) = decide_stepped(&sigma, &goal, &pool, &cfg);
    assert_eq!(imp, blocking.implication);
    assert_eq!(fin, blocking.finite_implication);
    assert_eq!(
        blocking.implication,
        Answer::No,
        "the finite-model search must refute this goal"
    );
}

fn divergent_query(u: &std::sync::Arc<Universe>) -> (Vec<TdOrEgd>, TdOrEgd, ValuePool) {
    let mut pool = ValuePool::new(u.clone());
    let successor = td_from_names(u, &mut pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    // Goal: an egd that never becomes derivable (no egd in Σ ever merges).
    let never = egd_from_names(
        u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    (vec![TdOrEgd::Td(successor)], TdOrEgd::Egd(never), pool)
}

fn big_chase_decide() -> DecideConfig {
    DecideConfig {
        chase: ChaseConfig {
            max_rounds: 100_000,
            max_rows: 1 << 20,
            max_steps: 1 << 24,
            ..ChaseConfig::default()
        },
        skip_search: true,
        ..DecideConfig::default()
    }
}

/// A divergent job cannot starve a terminating one: submitted first, given
/// astronomically larger budgets, it still cannot delay the terminating
/// job past a handful of fair sweeps.
#[test]
fn scheduler_fairness_divergent_cannot_starve() {
    let u = Universe::untyped_abc();
    let (divergent_sigma, divergent_goal, div_pool) = divergent_query(&u);

    let ut = Universe::typed(vec!["A", "B", "C"]);
    let mut term_pool = ValuePool::new(ut.clone());
    let fds = [Fd::parse(&ut, "A -> B").unwrap(), Fd::parse(&ut, "B -> C").unwrap()];
    let term_sigma: Vec<TdOrEgd> = fds
        .iter()
        .flat_map(|f| Dependency::from(f.clone()).normalize(&ut, &mut term_pool))
        .collect();
    let term_goal = Dependency::from(Fd::parse(&ut, "A -> C").unwrap())
        .normalize(&ut, &mut term_pool)
        .pop()
        .expect("fd goal normalizes to one egd");

    let client = ImplicationClient::new(ServiceConfig {
        // The divergent chase may burn 100k rounds before its budget
        // expires; fairness must not make the terminating job wait for
        // any of that.
        decide: big_chase_decide(),
        slice_fuel: 1,
        ..ServiceConfig::default()
    });
    let divergent = client.submit(QuerySpec::new(divergent_sigma, divergent_goal, div_pool));
    let terminating = client.submit(QuerySpec::new(term_sigma, term_goal, term_pool));

    let mut sweeps = 0;
    loop {
        assert!(client.tick(), "queue drained before the terminating job?");
        sweeps += 1;
        if let JobStatus::Done(outcome) = terminating.poll() {
            assert_eq!(outcome.implication, Answer::Yes, "fd transitivity");
            break;
        }
        assert!(
            sweeps <= 16,
            "terminating job starved: {sweeps} sweeps and still pending"
        );
    }
    assert!(
        matches!(divergent.poll(), JobStatus::Pending),
        "the divergent job must still be chasing"
    );

    // A global fuel budget converts the divergent leftovers into honest
    // Unknowns instead of hanging the batch.
    let capped = ImplicationClient::new(ServiceConfig {
        decide: big_chase_decide(),
        slice_fuel: 4,
        global_fuel: Some(64),
        ..ServiceConfig::default()
    });
    let (s2, g2, p2) = divergent_query(&u);
    let job = capped.submit(QuerySpec::new(s2, g2, p2));
    capped.run_to_completion();
    let JobStatus::Done(outcome) = job.poll() else {
        panic!("run_to_completion must resolve every job");
    };
    assert_eq!(outcome.implication, Answer::Unknown);
    assert_eq!(capped.stats().expired, 1);
    assert!(capped.stats().fuel_spent <= 64, "metered budget respected");
}

/// A per-job fuel cap expires exactly the capped job — its divergent chase
/// is answered `Unknown` while an uncapped neighbour still terminates.
#[test]
fn per_job_fuel_cap_expires_only_the_capped_job() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        decide: big_chase_decide(),
        slice_fuel: 4,
        ..ServiceConfig::default()
    });
    let (ds, dg, dp) = divergent_query(&u);
    let capped = client.submit(QuerySpec::new(ds, dg, dp).fuel_cap(12).priority(5));

    let mut pool = ValuePool::new(u.clone());
    let triv = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["x", "y", "z"]);
    // Nonempty Σ (structurally different) so the goal-in-Σ fast path
    // stays out of the way and the job really runs.
    let other = td_from_names(&u, &mut pool, &[&["a", "b", "b"]], &["a", "b", "b"]);
    let quick = client.submit(QuerySpec::new(
        vec![TdOrEgd::Td(other)],
        TdOrEgd::Td(triv),
        pool,
    ));

    let capped_out = capped.wait();
    assert_eq!(capped_out.implication, Answer::Unknown);
    assert!(
        capped_out.fuel_spent <= 12,
        "cap bounds the job's spend (spent {})",
        capped_out.fuel_spent
    );
    let quick_out = quick.wait();
    assert_eq!(quick_out.implication, Answer::Yes, "trivial td is implied");
    assert_eq!(client.stats().expired, 1, "only the capped job expired");
}

/// Renamed variables, reordered hypothesis rows, and reordered Σ all hit
/// the cache; coalescing catches identical in-flight queries; isomorphism
/// verification accepts every hit.
#[test]
fn cache_canonicalization_hits_on_renamings() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        verify_cache_hits: true,
        ..ServiceConfig::default()
    });

    let build = |names: [&str; 7], swap_rows: bool, swap_sigma: bool| {
        let mut pool = ValuePool::new(u.clone());
        let [x, y1, z1, y2, z2, q, r] = names;
        let rows: Vec<Vec<&str>> = if swap_rows {
            vec![vec![x, y2, z2], vec![x, y1, z1]]
        } else {
            vec![vec![x, y1, z1], vec![x, y2, z2]]
        };
        let row_slices: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        let mvd_td = td_from_names(&u, &mut pool, &row_slices, &[x, y1, z2]);
        let extra = td_from_names(&u, &mut pool, &[&[q, r, r]], &[q, r, r]);
        let mut sigma = vec![TdOrEgd::Td(mvd_td.clone()), TdOrEgd::Td(extra)];
        if swap_sigma {
            sigma.reverse();
        }
        // Goal: the *trivial* td over the mvd's hypothesis (conclusion =
        // first row) — implied instantly, but canonically distinct from
        // every element of Σ (the complement td would canonically EQUAL
        // the mvd: swapping rows renames it back), so the goal-in-Σ fast
        // path stays out of the way and the cache is what answers the
        // resubmissions.
        let goal = td_from_names(&u, &mut pool, &row_slices, &[x, y1, z1]);
        (sigma, TdOrEgd::Td(goal), pool)
    };

    let (s1, g1, p1) = build(["x", "y1", "z1", "y2", "z2", "q", "r"], false, false);
    let first = client.submit(QuerySpec::new(s1, g1, p1));
    client.run_to_completion();
    let JobStatus::Done(first_out) = first.poll() else {
        panic!("first job must resolve")
    };
    assert_eq!(first_out.implication, Answer::Yes);
    assert!(!first_out.from_cache);
    assert_eq!(client.stats().goal_in_sigma, 0, "fast path must not fire");

    // Renamed + row-swapped + Σ-reordered: must be a pure cache hit.
    let (s2, g2, p2) = build(["a", "b9", "c9", "b8", "c8", "k", "m"], true, true);
    let second = client.submit(QuerySpec::new(s2, g2, p2));
    let JobStatus::Done(second_out) = second.poll() else {
        panic!("cache hit must resolve at submit time")
    };
    assert_eq!(second_out.implication, Answer::Yes);
    assert!(second_out.from_cache);
    assert_eq!(second_out.fuel_spent, 0);
    assert_eq!(client.stats().cache_hits, 1);
    assert_eq!(client.stats().verify_rejects, 0, "verified hit must pass");

    // Identical queries submitted before any tick coalesce onto one job.
    let fresh_structure = {
        // A structurally new goal (three hypothesis rows) to avoid the
        // cache and the fast path.
        let mut pool = ValuePool::new(u.clone());
        let sig = td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let goal = td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"], &["x", "y3", "z3"]],
            &["x", "y1", "z3"],
        );
        (vec![TdOrEgd::Td(sig)], TdOrEgd::Td(goal), pool)
    };
    let leader = client.submit(QuerySpec::new(
        fresh_structure.0.clone(),
        fresh_structure.1.clone(),
        fresh_structure.2.clone(),
    ));
    let follower = client.submit(QuerySpec::new(
        fresh_structure.0,
        fresh_structure.1,
        fresh_structure.2,
    ));
    assert_eq!(client.stats().coalesced, 1);
    client.run_to_completion();
    let (JobStatus::Done(lead_out), JobStatus::Done(follow_out)) =
        (leader.poll(), follower.poll())
    else {
        panic!("both coalesced jobs must resolve")
    };
    assert_eq!(lead_out.implication, follow_out.implication);
    assert!(!lead_out.from_cache);
    assert!(follow_out.from_cache);
}

/// Column-permutation normalization: resubmitting a query with one column
/// permutation applied uniformly to every dependency (a relabeling of the
/// universe's attributes) is a pure cache hit — verified through the
/// isomorphism machinery — and a heterogeneous corpus of permuted
/// resubmissions sustains a high hit rate.
#[test]
fn permuted_column_resubmissions_hit_the_cache() {
    use typedtd::relational::Tuple;
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        verify_cache_hits: true,
        ..ServiceConfig::default()
    });

    // One structure: Σ = {fd-as-egd over col B, marker td}, goal = the
    // trivial td over a 2-row hypothesis (implied, runs once).
    let build = |perm: [usize; 3]| {
        let mut pool = ValuePool::new(u.clone());
        let pt = |names: [&str; 3], pool: &mut ValuePool| {
            let vals: Vec<_> = perm
                .iter()
                .map(|&c| pool.untyped(names[c]))
                .collect();
            Tuple::new(vals)
        };
        let fd = typedtd::dependencies::Egd::new(
            u.clone(),
            pool.untyped("y1"),
            pool.untyped("y2"),
            vec![
                pt(["x", "y1", "z1"], &mut pool),
                pt(["x", "y2", "z2"], &mut pool),
            ],
        );
        let marker = typedtd::dependencies::Td::new(
            u.clone(),
            pt(["q", "r", "r"], &mut pool),
            vec![pt(["q", "r", "r"], &mut pool)],
        );
        let goal = typedtd::dependencies::Td::new(
            u.clone(),
            pt(["x", "y1", "z1"], &mut pool),
            vec![
                pt(["x", "y1", "z1"], &mut pool),
                pt(["x", "y2", "z2"], &mut pool),
            ],
        );
        (
            vec![TdOrEgd::Egd(fd), TdOrEgd::Td(marker)],
            TdOrEgd::Td(goal),
            pool,
        )
    };

    let (s0, g0, p0) = build([0, 1, 2]);
    let first = client.submit(QuerySpec::new(s0, g0, p0));
    let first_out = first.wait();
    assert_eq!(first_out.implication, Answer::Yes);
    assert!(!first_out.from_cache, "first submission must run");

    // Every other permutation of the three columns, applied uniformly to
    // Σ and the goal, must be answered from the cache without fuel — and
    // pass isomorphism verification.
    for perm in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        let (s, g, p) = build(perm);
        let job = client.submit(QuerySpec::new(s, g, p));
        let JobStatus::Done(outcome) = job.poll() else {
            panic!("permuted resubmission {perm:?} must hit the cache at submit");
        };
        assert!(outcome.from_cache, "permutation {perm:?} missed the cache");
        assert_eq!(outcome.fuel_spent, 0);
        assert_eq!(outcome.implication, Answer::Yes);
    }
    let s = client.stats();
    assert_eq!(s.cache_hits, 5, "all five permutations hit");
    assert_eq!(s.verify_rejects, 0, "verified hits must pass the witness check");

    // Heterogeneous corpus: distinct structures, each resubmitted under
    // renamed values AND a column permutation. Hit rate must reflect one
    // miss per structure, hits for every permuted resubmission.
    let hetero = ImplicationClient::new(ServiceConfig {
        verify_cache_hits: true,
        ..ServiceConfig::default()
    });
    let perms4: [[usize; 4]; 3] = [[1, 0, 3, 2], [3, 2, 1, 0], [2, 3, 0, 1]];
    let structures: Vec<(u32, u32, bool)> =
        vec![(1, 2, true), (3, 4, false), (5, 9, true), (6, 8, false), (2, 12, true)];
    let mut submissions = 0u64;
    for (i, &(l, r, fd)) in structures.iter().enumerate() {
        // The reference submission (identity columns).
        let (sigma, goals, pool) = corpus_query(&[l], &[r], 1 + (i as u32 * 3) % 14, r, fd);
        for g in &goals {
            hetero
                .submit(QuerySpec::new(sigma.clone(), g.clone(), pool.clone()))
                .wait();
            submissions += 1;
        }
        // Permuted resubmissions: rebuild the same masks with columns
        // relabeled by permuting each mask's bits.
        for perm in &perms4 {
            let pmask = |m: u32| -> u32 {
                (0..4).filter(|&b| m & (1 << perm[b]) != 0).map(|b| 1 << b).sum()
            };
            let (psigma, pgoals, ppool) =
                corpus_query(&[pmask(l)], &[pmask(r)], pmask(1 + (i as u32 * 3) % 14), pmask(r), fd);
            for g in &pgoals {
                hetero
                    .submit(QuerySpec::new(psigma.clone(), g.clone(), ppool.clone()))
                    .wait();
                submissions += 1;
            }
        }
    }
    let hs = hetero.stats();
    assert_eq!(hs.verify_rejects, 0, "no permuted hit may fail verification");
    assert!(
        hs.cache_hit_rate() >= 0.5,
        "permuted resubmissions must sustain the hit rate: {:.2} over {} submissions \
         (hits={} misses={} coalesced={} fast={})",
        hs.cache_hit_rate(),
        submissions,
        hs.cache_hits,
        hs.cache_misses,
        hs.coalesced,
        hs.goal_in_sigma,
    );
}

/// A goal that is canonically an element of Σ is answered `Yes` at submit
/// time — no scheduling, no fuel — and counted in the stats.
#[test]
fn goal_in_sigma_is_answered_at_submit() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig::default());
    let mut pool = ValuePool::new(u.clone());
    let mvd = td_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        &["x", "y1", "z2"],
    );
    let extra = td_from_names(&u, &mut pool, &[&["q", "r", "r"]], &["q", "r", "r"]);
    let sigma = vec![TdOrEgd::Td(mvd), TdOrEgd::Td(extra)];
    // The goal is a *renamed* presentation of Σ's mvd td: still an element
    // post-canonicalization.
    let goal = td_from_names(
        &u,
        &mut pool,
        &[&["a", "b2", "c2"], &["a", "b1", "c1"]],
        &["a", "b2", "c1"],
    );
    let job = client.submit(QuerySpec::new(sigma, TdOrEgd::Td(goal), pool));
    let JobStatus::Done(outcome) = job.poll() else {
        panic!("fast path must resolve at submit time")
    };
    assert_eq!(outcome.implication, Answer::Yes);
    assert_eq!(outcome.finite_implication, Answer::Yes);
    assert!(outcome.from_cache);
    assert_eq!(outcome.fuel_spent, 0);
    let s = client.stats();
    assert_eq!(s.goal_in_sigma, 1);
    assert_eq!(s.fuel_spent, 0, "no chase ran");
    assert_eq!(s.cache_misses, 0, "nothing was scheduled");
}

/// Retiring a handle (drop or explicit) frees the job's slot for reuse,
/// and polling a retired id is the defined `Retired` answer — on every
/// subsequent poll, not just the first.
#[test]
fn retire_frees_storage_and_double_poll_is_defined() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig::default());
    let submit_trivial = |tag: &str| {
        let mut pool = ValuePool::new(u.clone());
        let triv = td_from_names(&u, &mut pool, &[&[tag, "y", "z"]], &[tag, "y", "z"]);
        let other = td_from_names(&u, &mut pool, &[&["a", "b", "b"]], &[tag, "b", "b"]);
        client.submit(QuerySpec::new(
            vec![TdOrEgd::Td(other)],
            TdOrEgd::Td(triv),
            pool,
        ))
    };
    let job = submit_trivial("x");
    client.run_to_completion();
    assert!(matches!(job.poll(), JobStatus::Done(_)));
    assert_eq!(client.live_jobs(), 1);
    let id = job.id();
    job.retire();
    assert_eq!(client.live_jobs(), 0, "retire must free the slot");
    // Double-poll after retire: defined, stable, repeatable.
    assert!(matches!(client.status(id), JobStatus::Retired));
    assert!(matches!(client.status(id), JobStatus::Retired));

    // The freed slot is *reused*, and the stale id still answers Retired
    // (generation guard), not the new job's outcome.
    let job2 = submit_trivial("x");
    client.run_to_completion();
    assert_eq!(client.live_jobs(), 1, "slot storage is reused, not grown");
    assert!(matches!(client.status(id), JobStatus::Retired));
    assert!(matches!(job2.poll(), JobStatus::Done(_)));
    drop(job2);
    assert_eq!(client.live_jobs(), 0, "drop retires too");
    assert_eq!(client.stats().retired, 2);

    // An id whose shard or slot doesn't exist in the queried service is
    // also just Retired — never a panic. (A foreign id that happens to
    // be in range is out of contract; see the JobId docs.)
    let tiny = ImplicationClient::new(ServiceConfig {
        shards: 1,
        ..ServiceConfig::default()
    });
    assert!(matches!(tiny.status(id), JobStatus::Retired));
}

/// Distinct single-row tds (varied by repeated-value pattern and width of
/// the repeated block) — cheap, terminating, canonically distinct queries
/// for cache-bound tests.
fn distinct_cheap_queries(u: &std::sync::Arc<Universe>, n: usize) -> Vec<(Vec<TdOrEgd>, TdOrEgd, ValuePool)> {
    (0..n)
        .map(|i| {
            let mut pool = ValuePool::new(u.clone());
            let rows: Vec<Vec<String>> = (0..=i)
                .map(|r| vec!["x".to_string(), format!("y{r}"), format!("z{r}")])
                .collect();
            let row_refs: Vec<Vec<&str>> = rows
                .iter()
                .map(|r| r.iter().map(String::as_str).collect())
                .collect();
            let slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
            let goal = td_from_names(u, &mut pool, &slices, &["x", "y0", "z0"]);
            let sig = td_from_names(u, &mut pool, &[&["a", "a", "b"]], &["a", "a", "b"]);
            (vec![TdOrEgd::Td(sig)], TdOrEgd::Td(goal), pool)
        })
        .collect()
}

/// The cache stays within its configured bound under a workload exceeding
/// it, evicts cold entries first, and surfaces the evictions in stats.
#[test]
fn cache_bound_holds_and_cold_entries_go_first() {
    let u = Universe::untyped_abc();
    // One shard so LRU order across the whole workload is deterministic.
    let client = ImplicationClient::new(ServiceConfig {
        shards: 1,
        cache_capacity: 2,
        ..ServiceConfig::default()
    });
    let queries = distinct_cheap_queries(&u, 3);
    let mut handles = Vec::new();
    for (s, g, p) in &queries[..2] {
        let job = client.submit(QuerySpec::new(s.clone(), g.clone(), p.clone()));
        job.wait();
        handles.push(job);
    }
    assert_eq!(client.cache_len(), 2);
    // Touch query 0: query 1 becomes the cold one.
    let touch = client.submit(QuerySpec::new(
        queries[0].0.clone(),
        queries[0].1.clone(),
        queries[0].2.clone(),
    ));
    assert!(matches!(touch.poll(), JobStatus::Done(_)), "cache hit");
    assert_eq!(client.stats().cache_hits, 1);
    // Insert query 2: capacity exceeded, the cold query 1 must go.
    let third = client.submit(QuerySpec::new(
        queries[2].0.clone(),
        queries[2].1.clone(),
        queries[2].2.clone(),
    ));
    third.wait();
    assert_eq!(client.cache_len(), 2, "bound holds under excess workload");
    assert_eq!(client.stats().evictions, 1, "eviction surfaced in stats");
    // Query 0 (hot) still hits; query 1 (cold) was evicted and must run.
    let hot = client.submit(QuerySpec::new(
        queries[0].0.clone(),
        queries[0].1.clone(),
        queries[0].2.clone(),
    ));
    assert!(matches!(hot.poll(), JobStatus::Done(_)), "hot entry kept");
    let misses_before = client.stats().cache_misses;
    let cold = client.submit(QuerySpec::new(
        queries[1].0.clone(),
        queries[1].1.clone(),
        queries[1].2.clone(),
    ));
    assert!(
        matches!(cold.poll(), JobStatus::Pending),
        "cold entry was evicted, so the query must run again"
    );
    assert_eq!(client.stats().cache_misses, misses_before + 1);
    cold.wait();
    assert!(client.cache_len() <= 2);
    assert!(client.stats().cache_hit_rate() > 0.0);
}

/// In-flight coalesced entries are pinned: flooding the cache past its
/// bound while a divergent leader runs must not break coalescing onto it.
#[test]
fn inflight_entries_survive_cache_pressure() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        shards: 1,
        cache_capacity: 2,
        decide: big_chase_decide(),
        slice_fuel: 1,
        ..ServiceConfig::default()
    });
    // A divergent leader: stays in flight for as long as we let it.
    let (ds, dg, dp) = divergent_query(&u);
    let leader = client.submit(QuerySpec::new(ds.clone(), dg.clone(), dp.clone()));
    for _ in 0..4 {
        client.tick(); // let it chase a little: genuinely in flight
    }
    assert!(matches!(leader.poll(), JobStatus::Pending));
    // Flood the cache well past its bound with cheap distinct queries.
    for (s, g, p) in distinct_cheap_queries(&u, 5) {
        client.submit(QuerySpec::new(s, g, p)).wait();
    }
    assert!(client.cache_len() <= 2, "bound holds during the flood");
    assert!(client.stats().evictions >= 3, "the flood evicted");
    // The in-flight entry survived: an identical submission coalesces
    // instead of starting a second chase.
    let twin = client.submit(QuerySpec::new(ds, dg, dp));
    assert_eq!(
        client.stats().coalesced,
        1,
        "identical in-flight query must coalesce — the entry was pinned"
    );
    assert!(matches!(twin.poll(), JobStatus::Pending));
    // Handles drop here: pending jobs are retired (storage freed on
    // completion) — nothing hangs the test.
}

/// Shard stepping is safe and productive from multiple threads: two
/// threads drive the same client's shards to completion concurrently.
#[test]
fn step_shard_from_two_threads() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        shards: 4,
        slice_fuel: 1,
        cache: false, // every job really runs
        ..ServiceConfig::default()
    });
    let handles: Vec<_> = distinct_cheap_queries(&u, 8)
        .into_iter()
        .map(|(s, g, p)| client.submit(QuerySpec::new(s, g, p)))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let client = client.clone();
            scope.spawn(move || loop {
                let mut all_empty = true;
                for idx in 0..client.num_shards() {
                    match client.step_shard(idx) {
                        ShardStep::Progressed => all_empty = false,
                        ShardStep::Idle => {
                            all_empty = false;
                            std::thread::yield_now();
                        }
                        ShardStep::Empty => {}
                        ShardStep::FuelExhausted => unreachable!("unmetered"),
                    }
                }
                if all_empty {
                    break;
                }
            });
        }
    });
    for h in &handles {
        let JobStatus::Done(outcome) = h.poll() else {
            panic!("concurrent stepping left a job pending");
        };
        assert_eq!(outcome.implication, Answer::Yes, "trivial tds are implied");
    }
    let s = client.stats();
    assert_eq!(s.completed, 8);
    assert_eq!(s.cache_misses, 8, "cache disabled: every job ran");
}

/// The batch front end parses, submits, and conjoins multi-part goals —
/// and malformed lines degrade to per-line errors instead of aborting.
#[test]
fn batch_front_end_round_trip() {
    use typedtd::service::submit_batch;
    let text = "\
# comment
@universe A B C
A -> B & B -> C |= A -> C
A -> B |= B -> A
B -> C & A -> B |= A -> C
@universe untyped A' B' C'
|= td [x y z] => x y z
";
    let client = ImplicationClient::new(ServiceConfig::default());
    let batch = submit_batch(&client, text);
    assert!(batch.errors.is_empty());
    client.run_to_completion();
    assert_eq!(batch.queries.len(), 4);
    let verdicts: Vec<_> = batch
        .queries
        .iter()
        .map(|q| q.conjoined().expect("resolved"))
        .collect();
    assert_eq!(verdicts[0].implication, Answer::Yes);
    assert_eq!(verdicts[1].implication, Answer::No);
    assert_eq!(verdicts[2].implication, Answer::Yes);
    assert!(
        verdicts[2].from_cache,
        "Σ-reordered resubmission must be served from cache"
    );
    assert_eq!(verdicts[3].implication, Answer::Yes, "trivial td");

    // Malformed lines are reported per line; the good lines still answer.
    let mixed = "\
A -> B |= B -> A
@universe A B
A -> B |= |= B -> A
A -> B & B -> A |= A -> B
@universes A B C
";
    let client2 = ImplicationClient::new(ServiceConfig::default());
    let batch2 = submit_batch(&client2, mixed);
    client2.run_to_completion();
    let error_lines: Vec<usize> = batch2.errors.iter().map(|e| e.line).collect();
    assert_eq!(
        error_lines,
        vec![1, 3, 5],
        "no-universe, double |=, and misspelled directive each report their line"
    );
    assert_eq!(batch2.queries.len(), 1, "the good line was still submitted");
    assert_eq!(
        batch2.queries[0].conjoined().expect("resolved").implication,
        Answer::Yes
    );
}

/// Dovetail mode agrees with sequential blocking `decide` on the fd/mvd
/// oracle corpus — both through the direct task API and the service.
#[test]
fn dovetail_matches_sequential_on_oracle_corpus() {
    type Case = (Vec<u32>, Vec<u32>, u32, u32, bool);
    let cases: Vec<Case> = (0u32..10)
        .map(|i| {
            (
                vec![1 + (i * 3) % 14, 1 + (i * 9) % 14],
                vec![1 + (i * 5) % 14, 1 + (i * 11) % 14],
                1 + (i * 7) % 14,
                1 + (i * 13) % 14,
                i % 2 == 1,
            )
        })
        .collect();
    let seq_cfg = DecideConfig::default();
    let client = ImplicationClient::new(ServiceConfig {
        decide: DecideConfig {
            mode: DecideMode::dovetail(2),
            ..DecideConfig::default()
        },
        cache: false, // every job really runs in dovetail mode
        ..ServiceConfig::default()
    });
    for (l, r, gl, gr, fd) in &cases {
        let (sigma, goals, pool) = corpus_query(l, r, *gl, *gr, *fd);
        for g in goals {
            let blocking = decide(&sigma, &g, &mut pool.clone(), &seq_cfg);
            assert_ne!(blocking.implication, Answer::Unknown, "corpus is decidable");
            let job = client.submit(QuerySpec::new(sigma.clone(), g, pool.clone()));
            let outcome = job.wait();
            assert_eq!(outcome.implication, blocking.implication, "dovetail diverged");
            assert_eq!(outcome.finite_implication, blocking.finite_implication);
        }
    }
}

/// The per-job dovetail acceptance bar: under the same fuel cap, a
/// refutable-but-divergent query expires to `Unknown` in sequential mode
/// but is refuted definitively (from the search phase) in dovetail mode.
#[test]
fn dovetail_refutes_divergent_query_where_sequential_expires() {
    let u = Universe::untyped_abc();
    let cap = 512u64;
    let run_mode = |mode: DecideMode| {
        let client = ImplicationClient::new(ServiceConfig {
            decide: DecideConfig {
                chase: ChaseConfig {
                    max_rounds: 100_000,
                    max_rows: 1 << 20,
                    max_steps: 1 << 24,
                    ..ChaseConfig::default()
                },
                mode,
                ..DecideConfig::default()
            },
            ..ServiceConfig::default()
        });
        let (s, g, p) = divergent_query(&u);
        let job = client.submit(QuerySpec::new(s, g, p).fuel_cap(cap));
        let outcome = job.wait();
        (outcome, client.stats())
    };
    let (seq_out, seq_stats) = run_mode(DecideMode::Sequential);
    assert_eq!(
        seq_out.implication,
        Answer::Unknown,
        "sequential burns the whole cap on the divergent chase"
    );
    assert_eq!(seq_stats.expired, 1);
    let (dov_out, dov_stats) = run_mode(DecideMode::dovetail(1));
    assert_eq!(
        dov_out.implication,
        Answer::No,
        "dovetail must answer from the search phase within the cap"
    );
    assert_eq!(dov_out.finite_implication, Answer::No);
    assert!(
        dov_out.fuel_spent <= cap,
        "refutation stayed within the cap (spent {})",
        dov_out.fuel_spent
    );
    assert_eq!(dov_stats.expired, 0);
}

/// `cancel()` on an in-flight divergent job stops it without burning
/// further fuel, frees its run-queue slot, and leaves its coalesced
/// waiter with the defined `Cancelled` status.
#[test]
fn cancel_mid_flight_bounds_fuel_and_resolves_waiters() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        decide: big_chase_decide(),
        slice_fuel: 8,
        ..ServiceConfig::default()
    });
    let (ds, dg, dp) = divergent_query(&u);
    let leader = client.submit(QuerySpec::new(ds.clone(), dg.clone(), dp.clone()));
    for _ in 0..3 {
        client.tick(); // let the chase make real progress
    }
    assert!(matches!(leader.poll(), JobStatus::Pending));
    let waiter = client.submit(QuerySpec::new(ds, dg, dp));
    assert_eq!(client.stats().coalesced, 1, "twin must coalesce");

    let fuel_before = client.stats().fuel_spent;
    leader.cancel();
    // The job was unclaimed, so cancellation is immediate: zero extra
    // fuel (well within the one-slice acceptance bound).
    assert!(matches!(leader.poll(), JobStatus::Cancelled));
    assert!(matches!(waiter.poll(), JobStatus::Cancelled));
    client.run_to_completion(); // nothing left to drive
    let stats = client.stats();
    assert_eq!(
        stats.fuel_spent, fuel_before,
        "fuel spent after cancel must be within one slice (here: zero)"
    );
    assert_eq!(stats.cancelled, 2, "leader and waiter both cancelled");
    assert_eq!(client.pending_jobs(), 0, "cancel frees the in-flight slots");
    assert!(
        stats_line(&client).contains(" inflight=0"),
        "the ledger must show the drained in-flight gauge: {}",
        stats_line(&client)
    );
    let outcome = leader.wait();
    assert!(outcome.cancelled);
    assert_eq!(outcome.implication, Answer::Unknown);
    // Cancel is idempotent and a cancelled job stays Cancelled.
    leader.cancel();
    assert!(matches!(leader.poll(), JobStatus::Cancelled));
}

/// A waiter that `detach()`ed before its leader's cancel keeps the
/// computation alive and still receives the real answer (which also
/// feeds the cache); only the canceller's view resolves `Cancelled`.
#[test]
fn detached_waiter_survives_leader_cancel_with_the_answer() {
    let ut = Universe::typed(vec!["A", "B", "C", "D"]);
    let build = || {
        // An mvd chain: the td chase needs several breadth-first rounds,
        // so at slice_fuel = 1 the job is reliably still in flight after
        // one tick (an fd chain would finish inside round 0's egd
        // saturation, which is not fuel-bounded per merge).
        let mut pool = ValuePool::new(ut.clone());
        let mvds = [
            Mvd::parse(&ut, "A ->> B").unwrap(),
            Mvd::parse(&ut, "B ->> C").unwrap(),
            Mvd::parse(&ut, "C ->> D").unwrap(),
        ];
        let sigma: Vec<TdOrEgd> = mvds
            .iter()
            .flat_map(|m| Dependency::from(m.clone()).normalize(&ut, &mut pool))
            .collect();
        let goal = Dependency::from(Mvd::parse(&ut, "A ->> D").unwrap())
            .normalize(&ut, &mut pool)
            .pop()
            .expect("mvd goal normalizes to one td");
        (sigma, goal, pool)
    };
    let client = ImplicationClient::new(ServiceConfig {
        slice_fuel: 1,
        ..ServiceConfig::default()
    });
    let (s, g, p) = build();
    let leader = client.submit(QuerySpec::new(s.clone(), g.clone(), p.clone()));
    client.tick(); // arm the task; the chain needs several single-round slices
    assert!(matches!(leader.poll(), JobStatus::Pending), "still chasing");
    let twin = client.submit(QuerySpec::new(s.clone(), g.clone(), p.clone()));
    assert_eq!(client.stats().coalesced, 1, "twin must coalesce");
    twin.detach();
    leader.cancel();
    client.run_to_completion();
    assert!(
        matches!(leader.poll(), JobStatus::Cancelled),
        "the canceller's view resolves Cancelled once the job lands"
    );
    let JobStatus::Done(twin_out) = twin.poll() else {
        panic!("detached waiter must receive the real answer");
    };
    assert_eq!(twin_out.implication, Answer::Yes, "mvd chain transitivity");
    assert!(twin_out.from_cache, "waiters are served the leader's answer");
    assert_eq!(client.stats().cancelled, 1, "only the canceller's view");
    // The kept-alive answer reached the cache too.
    let third = client.submit(QuerySpec::new(s, g, p));
    let JobStatus::Done(cached) = third.poll() else {
        panic!("resubmission must hit the cache");
    };
    assert!(cached.from_cache);
    assert_eq!(client.stats().cache_hits, 1);
}

/// A parked `wait` wakes on a completion landed by another thread's
/// sweep: the waiter contributes no sweeps of its own (no busy-spin —
/// the claim is observed, parked on, and the condvar wakes it).
#[test]
fn parked_wait_wakes_on_foreign_sweep_without_spinning() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        // One huge slice: the foreign sweep holds the claim for the whole
        // (budget-bounded) chase, guaranteeing the waiter finds the job
        // claimed and parks.
        slice_fuel: 1 << 20,
        decide: DecideConfig {
            chase: ChaseConfig {
                max_rounds: 30_000,
                max_rows: 1 << 20,
                max_steps: 1 << 24,
                ..ChaseConfig::default()
            },
            skip_search: true,
            ..DecideConfig::default()
        },
        ..ServiceConfig::default()
    });
    let (s, g, p) = divergent_query(&u);
    let job = client.submit(QuerySpec::new(s, g, p).pin_shard(0));
    let outcome = std::thread::scope(|scope| {
        let sweeper = client.clone();
        scope.spawn(move || {
            assert_eq!(sweeper.step_shard(0), ShardStep::Progressed);
        });
        // Deterministic hand-off: the sweep counter bumps at claim time
        // (before the long slice executes), so once it reads 1 the
        // foreign thread owns the job and wait() below must find the
        // shard claimed and park — no sleep-and-hope timing.
        while client.stats().sweeps == 0 {
            std::thread::yield_now();
        }
        job.wait()
    });
    assert_eq!(outcome.implication, Answer::Unknown, "budget-bounded chase");
    let stats = client.stats();
    assert_eq!(
        stats.sweeps, 1,
        "only the foreign thread swept; the waiter never claimed (no busy-spin)"
    );
    assert!(
        stats.parked >= 1,
        "the waiter must have parked on the shard condvar at least once"
    );
}

/// Steal-path parity: every job pinned onto one shard (a deliberately
/// skewed assignment), multiple pinned workers — idle workers steal from
/// the deep queue, and every answer still matches blocking `decide`.
#[test]
fn stealing_preserves_answers_under_skewed_shard_assignment() {
    let u = Universe::untyped_abc();
    type Case = (Vec<u32>, Vec<u32>, u32, u32, bool);
    let cases: Vec<Case> = (0u32..8)
        .map(|i| {
            (
                vec![1 + (i * 5) % 14],
                vec![1 + (i * 3) % 14, 1 + (i * 11) % 14],
                1 + (i * 9) % 14,
                1 + (i * 13) % 14,
                i % 2 == 0,
            )
        })
        .collect();
    let cfg = DecideConfig::default();
    let client = ImplicationClient::new(ServiceConfig {
        shards: 4,
        workers: 3,
        steal: true,
        cache: false,
        slice_fuel: 4,
        ..ServiceConfig::default()
    });
    // Divergent ballast (fuel-capped) keeps the hot queue deep long
    // enough that the idle workers reliably wake and steal.
    let ballast: Vec<_> = (0..2)
        .map(|_| {
            let (s, g, p) = divergent_query(&u);
            client.submit(
                QuerySpec::new(s, g, p)
                    .decide_config(big_chase_decide())
                    .fuel_cap(1024)
                    .pin_shard(0),
            )
        })
        .collect();
    let mut expected = Vec::new();
    let jobs: Vec<_> = cases
        .iter()
        .flat_map(|(l, r, gl, gr, fd)| {
            let (sigma, goals, pool) = corpus_query(l, r, *gl, *gr, *fd);
            goals
                .into_iter()
                .map(|g| {
                    let d = decide(&sigma, &g, &mut pool.clone(), &cfg);
                    expected.push((d.implication, d.finite_implication));
                    client.submit(QuerySpec::new(sigma.clone(), g, pool.clone()).pin_shard(0))
                })
                .collect::<Vec<_>>()
        })
        .collect();
    client.run_to_completion();
    for (job, (imp, fin)) in jobs.iter().zip(&expected) {
        let JobStatus::Done(outcome) = job.poll() else {
            panic!("run_to_completion must resolve every pinned job");
        };
        assert_eq!(outcome.implication, *imp, "steal-path answer diverged");
        assert_eq!(outcome.finite_implication, *fin);
    }
    for b in &ballast {
        let JobStatus::Done(outcome) = b.poll() else {
            panic!("capped ballast must expire");
        };
        assert_eq!(outcome.implication, Answer::Unknown);
    }
    assert!(
        client.stats().steals > 0,
        "idle pinned workers must steal from the deep shard"
    );
}

/// The small-capacity eviction regression: at `cache_capacity = 1` (fewer
/// than the shard count) a fresh insert must never be its own immediate
/// eviction victim — the latest answer is always cached.
#[test]
fn cache_capacity_one_keeps_the_latest_answer() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        cache_capacity: 1,
        ..ServiceConfig::default()
    });
    let queries = distinct_cheap_queries(&u, 4);
    for (i, (s, g, p)) in queries.iter().enumerate() {
        let job = client.submit(QuerySpec::new(s.clone(), g.clone(), p.clone()));
        job.wait();
        let hits_before = client.stats().cache_hits;
        let again = client.submit(QuerySpec::new(s.clone(), g.clone(), p.clone()));
        let JobStatus::Done(outcome) = again.poll() else {
            panic!("query {i}: the just-inserted answer must be served from cache");
        };
        assert!(outcome.from_cache, "query {i}: fresh insert was evicted");
        assert_eq!(client.stats().cache_hits, hits_before + 1);
        // The per-shard fresh-insert reserve bounds the transient excess.
        assert!(client.cache_len() <= client.num_shards());
    }
}

/// Regression: a spent global fuel budget must terminate a multi-worker
/// `run_to_completion` even when the starved queue lives outside an idle
/// worker's home stripe — the idle worker can't observe `FuelExhausted`
/// through its own (empty) shards and used to park forever on
/// `inflight > 0` while `expire_all` waited for it to exit.
#[test]
fn multi_worker_run_terminates_when_global_fuel_exhausts() {
    let u = Universe::untyped_abc();
    for steal in [true, false] {
        let client = ImplicationClient::new(ServiceConfig {
            decide: big_chase_decide(),
            shards: 4,
            workers: 2,
            steal,
            slice_fuel: 4,
            global_fuel: Some(16),
            ..ServiceConfig::default()
        });
        let (s, g, p) = divergent_query(&u);
        let job = client.submit(QuerySpec::new(s, g, p).pin_shard(0));
        client.run_to_completion();
        let JobStatus::Done(outcome) = job.poll() else {
            panic!("steal={steal}: the starved job must be expired, not stranded");
        };
        assert_eq!(outcome.implication, Answer::Unknown);
        let stats = client.stats();
        assert_eq!(stats.expired, 1, "steal={steal}");
        assert!(stats.fuel_spent <= 16, "steal={steal}: budget respected");
    }
}

/// Regression: when the last detached waiter that was keeping a
/// cancelled leader alive departs, the deferred cancel finally takes
/// effect — the leader must not burn its remaining budget with no
/// interested party left (the owner's repeat `cancel()` would no-op on
/// the idempotency guard).
#[test]
fn dropping_the_last_detached_waiter_completes_a_deferred_cancel() {
    let u = Universe::untyped_abc();
    let client = ImplicationClient::new(ServiceConfig {
        decide: big_chase_decide(),
        slice_fuel: 4,
        ..ServiceConfig::default()
    });
    let (s, g, p) = divergent_query(&u);
    let leader = client.submit(QuerySpec::new(s.clone(), g.clone(), p.clone()));
    client.tick();
    let twin = client.submit(QuerySpec::new(s, g, p));
    assert_eq!(client.stats().coalesced, 1);
    twin.detach();
    leader.cancel();
    assert!(
        matches!(leader.poll(), JobStatus::Pending),
        "the detached waiter keeps the computation alive"
    );
    let fuel_before = client.stats().fuel_spent;
    twin.retire(); // the last interested party leaves
    assert!(
        matches!(leader.poll(), JobStatus::Cancelled),
        "the deferred cancel must take effect once nobody wants the answer"
    );
    client.run_to_completion(); // returns immediately: nothing in flight
    assert_eq!(
        client.stats().fuel_spent,
        fuel_before,
        "no further fuel burned after the keep-alive dropped"
    );
    assert_eq!(client.pending_jobs(), 0);
    assert!(
        stats_line(&client).contains(" inflight=0"),
        "the ledger must show the drained in-flight gauge: {}",
        stats_line(&client)
    );
}

/// Lazy-LRU pinning for Σ-group registry entries: with `cache_capacity =
/// 1` the registry is permanently over budget, but an entry with live
/// members must never be evicted. Submitting a second Σ-group while the
/// first still has an un-stepped member must leave the first entry in
/// place, so a later member of the first group joins the existing shared
/// chase instead of starting a third one.
#[test]
fn group_entries_pinned_at_capacity_one() {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let rows: &[&[&str]] = &[&["x", "y1", "z1"], &["x", "y2", "z2"]];
    // Group A: the mvd-style td plus the B'-fd egd.
    let sigma_a = vec![
        TdOrEgd::Td(td_from_names(&u, &mut pool, rows, &["x", "y1", "z2"])),
        TdOrEgd::Egd(egd_from_names(&u, &mut pool, rows, ("B'", "y1"), ("B'", "y2"))),
    ];
    // Group B: a different Σ (the egd alone) over the same hypothesis.
    let sigma_b = vec![TdOrEgd::Egd(egd_from_names(
        &u,
        &mut pool,
        rows,
        ("B'", "y1"),
        ("B'", "y2"),
    ))];
    let goal_c = TdOrEgd::Egd(egd_from_names(&u, &mut pool, rows, ("C'", "z1"), ("C'", "z2")));
    let goal_xxx = TdOrEgd::Td(td_from_names(&u, &mut pool, rows, &["x", "x", "x"]));
    let client = ImplicationClient::new(ServiceConfig {
        cache_capacity: 1,
        group: true,
        ..ServiceConfig::default()
    });
    // a1 pins group A's entry (one live member, never stepped yet).
    let a1 = client.submit(QuerySpec::new(sigma_a.clone(), goal_c.clone(), pool.clone()));
    // b1 creates group B at capacity: A is pinned, so B must not evict it.
    let b1 = client.submit(QuerySpec::new(sigma_b, goal_c, pool.clone()));
    // a2 must find group A still resident and join its shared chase.
    let a2 = client.submit(QuerySpec::new(sigma_a, goal_xxx, pool.clone()));
    client.run_to_completion();
    for job in [&a1, &b1, &a2] {
        let JobStatus::Done(out) = job.poll() else {
            panic!("group member left unsettled");
        };
        assert_eq!(out.implication, Answer::No, "all three goals are refutable");
        assert_eq!(out.finite_implication, Answer::No);
    }
    let s = client.stats();
    assert_eq!(s.grouped, 3, "all submissions must group");
    assert_eq!(
        s.group_chases, 2,
        "a pinned entry was evicted: the returning member restarted its group"
    );
    assert_eq!(s.group_fallbacks, 0);
}
