//! Semigroup substrate for Theorems 1 and 3 of Vardi (PODS 1982 /
//! JCSS 1984).
//!
//! Theorem 1 (Beeri–Vardi [7]) supplies undecidable untyped instances by
//! reducing from equational reasoning over semigroups; Theorem 3 sharpens
//! it with the Gurevich–Lewis recursive-inseparability result for
//! cancellation semigroups. This crate provides the raw material:
//!
//! * [`term`] — groupoid terms, equations, and equational implications;
//! * [`models`] — exhaustive finite-semigroup enumeration and ei
//!   evaluation (the "fails finitely" enumerator);
//! * [`word_problem`] — breadth-first word rewriting (the "holds
//!   everywhere" enumerator for presented semigroups);
//! * [`reduction`] — the fixed dependency set `Σ₁` (functionality,
//!   totality, associativity over `U' = A'B'C'`) and the translation of an
//!   ei into a goal egd, meeting Theorem 1's side conditions exactly.

#![warn(missing_docs)]

pub mod models;
pub mod reduction;
pub mod term;
pub mod word_problem;

pub use models::{ei_holds, is_associative, refute_in_finite_semigroup, semigroups};
pub use reduction::{ei_goal, frontier_instance, semigroup_theory, FrontierInstance};
pub use term::{Ei, Equation, Term};
pub use word_problem::{ei_valid_by_rewriting, flatten, words_equal};
