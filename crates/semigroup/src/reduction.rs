//! The [7]-style reduction from equational implications to untyped
//! dependency implication (Theorems 1 and 3).
//!
//! A groupoid's multiplication is stored as the ternary untyped relation
//! `{(x, y, x·y)}` over `U' = A'B'C'`. The **fixed** dependency set
//! `Σ₁ = semigroup_theory()` says the relation really is a semigroup table:
//!
//! * functionality — the egd `A'B' → C'` (Theorem 1's condition (2));
//! * totality — nine `A'B'`-total tds closing every pair of occurring
//!   elements under product (condition (1));
//! * associativity — an egd equating the two ways of composing.
//!
//! An ei `∀y (∧ sᵢ = tᵢ → s = t)` becomes the goal egd `σ_φ`: its
//! hypothesis *composes* every premise term as a chain of multiplication
//! rows, sharing the result variable of both sides of each premise (the
//! tableau way of writing an equality), and the conclusion equates the two
//! composed results. Then `φ` holds in all semigroups iff `Σ₁ ⊨ σ_φ`, and
//! `φ` fails in some finite semigroup iff `Σ₁ ⊭_f σ_φ` — so the
//! Gurevich–Lewis inseparability transfers, making `Σ₁`'s implication
//! problem unsolvable (Theorem 3). This module is a reconstruction of the
//! cited technique (DESIGN.md §3); its fidelity is checked against the
//! finite-model enumerator and the chase on decidable instances.

use crate::term::{Ei, Term};
use typedtd_dependencies::{Egd, Td, TdOrEgd};
use typedtd_relational::{FxHashMap, Tuple, Universe, Value, ValuePool};
use std::sync::Arc;

/// The fixed dependency set `Σ₁` (semigroup theory) with display labels.
pub fn semigroup_theory(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
) -> (Vec<TdOrEgd>, Vec<String>) {
    assert_eq!(universe.width(), 3, "semigroup tables live over U' = A'B'C'");
    let mut sigma = Vec::new();
    let mut labels = Vec::new();

    // Functionality: A'B' → C'.
    {
        let x = pool.fresh(None, "x");
        let y = pool.fresh(None, "y");
        let z1 = pool.fresh(None, "z");
        let z2 = pool.fresh(None, "z");
        sigma.push(TdOrEgd::Egd(Egd::new(
            universe.clone(),
            z1,
            z2,
            vec![Tuple::new(vec![x, y, z1]), Tuple::new(vec![x, y, z2])],
        )));
        labels.push("functionality A'B' -> C'".to_string());
    }

    // Totality: products of any two occurring elements exist.
    for i in 0..3u16 {
        for j in 0..3u16 {
            let u1: Vec<Value> = (0..3).map(|_| pool.fresh(None, "u")).collect();
            let u2: Vec<Value> = (0..3).map(|_| pool.fresh(None, "v")).collect();
            let prod = pool.fresh(None, "p");
            let w = Tuple::new(vec![u1[i as usize], u2[j as usize], prod]);
            sigma.push(TdOrEgd::Td(Td::new(
                universe.clone(),
                w,
                vec![Tuple::new(u1), Tuple::new(u2)],
            )));
            labels.push(format!("totality col{i}·col{j}"));
        }
    }

    // Associativity: (x·y)·z = x·(y·z).
    {
        let x = pool.fresh(None, "x");
        let y = pool.fresh(None, "y");
        let z = pool.fresh(None, "z");
        let xy = pool.fresh(None, "m");
        let yz = pool.fresh(None, "m");
        let p = pool.fresh(None, "r");
        let q = pool.fresh(None, "r");
        sigma.push(TdOrEgd::Egd(Egd::new(
            universe.clone(),
            p,
            q,
            vec![
                Tuple::new(vec![x, y, xy]),
                Tuple::new(vec![xy, z, p]),
                Tuple::new(vec![y, z, yz]),
                Tuple::new(vec![x, yz, q]),
            ],
        )));
        labels.push("associativity".to_string());
    }
    (sigma, labels)
}

/// Builder that composes terms into multiplication rows with a union-find
/// over result variables (premise equalities collapse the two sides).
struct Composer<'a> {
    pool: &'a mut ValuePool,
    vars: Vec<Value>,
    rows: Vec<(Value, Value, Value)>,
    parent: FxHashMap<Value, Value>,
}

impl<'a> Composer<'a> {
    fn find(&mut self, v: Value) -> Value {
        let p = *self.parent.entry(v).or_insert(v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn unite(&mut self, a: Value, b: Value) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra.max(rb), ra.min(rb));
        }
    }

    fn compose(&mut self, t: &Term) -> Value {
        match t {
            Term::Var(v) => self.vars[*v as usize],
            Term::Mul(a, b) => {
                let ra = self.compose(a);
                let rb = self.compose(b);
                let r = self.pool.fresh(None, "t");
                self.rows.push((ra, rb, r));
                r
            }
        }
    }
}

/// Translates an ei into its goal egd `σ_φ` over `U'`.
///
/// # Panics
/// Panics if the ei contains no multiplication at all (its tableau would be
/// empty; such eis are not produced by the word-problem reduction).
pub fn ei_goal(ei: &Ei, universe: &Arc<Universe>, pool: &mut ValuePool) -> Egd {
    let vars: Vec<Value> = (0..ei.var_count().max(1))
        .map(|i| pool.fresh(None, &format!("y{i}_")))
        .collect();
    let mut c = Composer {
        pool,
        vars,
        rows: Vec::new(),
        parent: FxHashMap::default(),
    };
    for premise in &ei.premises {
        let l = c.compose(&premise.lhs);
        let r = c.compose(&premise.rhs);
        c.unite(l, r);
    }
    let goal_l = c.compose(&ei.conclusion.lhs);
    let goal_r = c.compose(&ei.conclusion.rhs);

    // Canonicalize all rows and the equated pair under the premise merges.
    let rows: Vec<Tuple> = c
        .rows
        .clone()
        .into_iter()
        .map(|(a, b, r)| {
            Tuple::new(vec![c.find(a), c.find(b), c.find(r)])
        })
        .collect();
    assert!(
        !rows.is_empty(),
        "ei without any multiplication has an empty tableau"
    );
    let left = c.find(goal_l);
    let right = c.find(goal_r);
    Egd::new(universe.clone(), left, right, rows)
}

/// The full Theorem 3 instance: `(Σ₁, σ_φ)` plus labels.
pub struct FrontierInstance {
    /// The untyped universe `U'`.
    pub universe: Arc<Universe>,
    /// The fixed semigroup theory.
    pub sigma: Vec<TdOrEgd>,
    /// Labels for `sigma`.
    pub labels: Vec<String>,
    /// The goal egd encoding the ei.
    pub goal: TdOrEgd,
}

/// Builds the instance for one ei.
pub fn frontier_instance(ei: &Ei, pool: &mut ValuePool, universe: &Arc<Universe>) -> FrontierInstance {
    let (sigma, labels) = semigroup_theory(universe, pool);
    let goal = TdOrEgd::Egd(ei_goal(ei, universe, pool));
    FrontierInstance {
        universe: universe.clone(),
        sigma,
        labels,
        goal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_chase::{
        chase_implication, random_counterexample, ChaseConfig, ChaseOutcome, SearchConfig,
    };

    fn setup() -> (Arc<Universe>, ValuePool) {
        let u = Universe::untyped_abc();
        let p = ValuePool::new(u.clone());
        (u, p)
    }

    #[test]
    fn theory_meets_theorem1_conditions() {
        let (u, mut p) = setup();
        let (sigma, _) = semigroup_theory(&u, &mut p);
        let ab = u.set("A' B'");
        let mut has_functionality = false;
        for dep in &sigma {
            match dep {
                TdOrEgd::Td(t) => assert!(t.is_v_total(&ab), "all tds must be A'B'-total"),
                TdOrEgd::Egd(e) => {
                    if e.hypothesis().len() == 2 {
                        has_functionality = true;
                    }
                }
            }
        }
        assert!(has_functionality, "A'B' → C' must be in Σ");
        assert_eq!(sigma.len(), 1 + 9 + 1);
    }

    #[test]
    fn congruence_ei_is_chase_provable() {
        // x = y ⟹ x·z = y·z: functionality alone suffices.
        let (u, mut p) = setup();
        let ei = Ei::parse("x = y => x*z = y*z").unwrap();
        let inst = frontier_instance(&ei, &mut p, &u);
        let run = chase_implication(&inst.sigma, &inst.goal, &mut p, &ChaseConfig::quick());
        assert_eq!(run.outcome, ChaseOutcome::Implied);
    }

    #[test]
    fn associativity_instance_is_chase_provable() {
        let (u, mut p) = setup();
        let ei = Ei::parse("=> (x*y)*z = x*(y*z)").unwrap();
        let inst = frontier_instance(&ei, &mut p, &u);
        let run = chase_implication(&inst.sigma, &inst.goal, &mut p, &ChaseConfig::quick());
        assert_eq!(run.outcome, ChaseOutcome::Implied);
    }

    #[test]
    fn derived_associativity_consequence() {
        // x·(x·x) = (x·x)·x, an instance with repeated variables.
        let (u, mut p) = setup();
        let ei = Ei::parse("=> x*(x*x) = (x*x)*x").unwrap();
        let inst = frontier_instance(&ei, &mut p, &u);
        let run = chase_implication(&inst.sigma, &inst.goal, &mut p, &ChaseConfig::quick());
        assert_eq!(run.outcome, ChaseOutcome::Implied);
    }

    #[test]
    fn commutativity_is_refuted_finitely() {
        // x·y = y·x fails in the left-zero semigroup; the dependency-level
        // search must find a finite counterexample (the chase alone cannot
        // terminate here — totality keeps generating products).
        let (u, mut p) = setup();
        let ei = Ei::parse("=> x*y = y*x").unwrap();
        let inst = frontier_instance(&ei, &mut p, &u);
        let run = chase_implication(&inst.sigma, &inst.goal, &mut p, &ChaseConfig::quick());
        assert_eq!(
            run.outcome,
            ChaseOutcome::Exhausted,
            "the free semigroup is infinite; the chase must not terminate"
        );
        let cfg = SearchConfig {
            max_domain: 2,
            attempts: 200,
            repair_steps: 256,
            max_rows: 64,
            ..Default::default()
        };
        let cex = random_counterexample(&inst.sigma, &inst.goal, &u, &mut p, &cfg)
            .expect("a 2-element refutation exists");
        assert!(typedtd_chase::is_counterexample(&cex, &inst.sigma, &inst.goal));
    }

    #[test]
    fn dependency_answers_agree_with_model_enumeration() {
        // Cross-check the reduction's fidelity on decidable instances.
        use crate::models::refute_in_finite_semigroup;
        let cases = [
            ("x = y => x*z = y*z", true),
            ("=> (x*y)*z = x*(y*z)", true),
            ("=> x*x = x", false),
        ];
        for (spec, expect_valid) in cases {
            let (u, mut p) = setup();
            let ei = Ei::parse(spec).unwrap();
            let finitely_refuted = refute_in_finite_semigroup(&ei, 2).is_some();
            assert_eq!(!finitely_refuted, expect_valid, "model-level sanity for {spec}");
            let inst = frontier_instance(&ei, &mut p, &u);
            if expect_valid {
                let run =
                    chase_implication(&inst.sigma, &inst.goal, &mut p, &ChaseConfig::quick());
                assert_eq!(run.outcome, ChaseOutcome::Implied, "chase must prove {spec}");
            } else {
                let cfg = SearchConfig {
                    max_domain: 2,
                    attempts: 200,
                    ..Default::default()
                };
                let cex = random_counterexample(&inst.sigma, &inst.goal, &u, &mut p, &cfg);
                assert!(cex.is_some(), "search must refute {spec}");
            }
        }
    }
}
