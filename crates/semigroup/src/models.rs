//! Finite semigroup enumeration and ei evaluation.
//!
//! `{φ : φ fails in some finite semigroup}` is recursively enumerable —
//! this module is that enumerator, restricted to the sizes a laptop can
//! exhaust. Together with the free-semigroup word rewriting of
//! [`crate::word_problem`], it brackets the recursively inseparable pair of
//! Gurevich–Lewis that Theorem 3 builds on.

use crate::term::Ei;

/// Iterates all associative multiplication tables ("semigroups") of the
/// given order. Order 3 means 3⁹ = 19 683 candidate tables; order 4 is
/// 4¹⁶ ≈ 4.3·10⁹ and is *not* attempted.
pub fn semigroups(order: usize) -> impl Iterator<Item = Vec<Vec<usize>>> {
    assert!((1..=3).contains(&order), "orders 1–3 are exhaustible");
    let cells = order * order;
    let total = order.pow(cells as u32);
    (0..total).filter_map(move |code| {
        let mut table = vec![vec![0usize; order]; order];
        let mut c = code;
        for row in &mut table {
            for cell in row.iter_mut() {
                *cell = c % order;
                c /= order;
            }
        }
        is_associative(&table).then_some(table)
    })
}

/// `true` if the table is associative.
pub fn is_associative(table: &[Vec<usize>]) -> bool {
    let n = table.len();
    for a in 0..n {
        for b in 0..n {
            for c in 0..n {
                if table[table[a][b]][c] != table[a][table[b][c]] {
                    return false;
                }
            }
        }
    }
    true
}

/// `true` if the ei holds in the given table (all assignments).
pub fn ei_holds(ei: &Ei, table: &[Vec<usize>]) -> bool {
    let n = table.len();
    let vars = ei.var_count().max(1);
    let mut assignment = vec![0usize; vars];
    loop {
        let premises_ok = ei
            .premises
            .iter()
            .all(|e| e.lhs.eval(table, &assignment) == e.rhs.eval(table, &assignment));
        if premises_ok
            && ei.conclusion.lhs.eval(table, &assignment)
                != ei.conclusion.rhs.eval(table, &assignment)
        {
            return false;
        }
        // Next assignment.
        let mut i = 0;
        loop {
            if i == vars {
                return true;
            }
            assignment[i] += 1;
            if assignment[i] < n {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Searches orders `1..=max_order` for a finite semigroup refuting the ei.
/// Returns the table if found.
pub fn refute_in_finite_semigroup(ei: &Ei, max_order: usize) -> Option<Vec<Vec<usize>>> {
    for order in 1..=max_order.min(3) {
        for table in semigroups(order) {
            if !ei_holds(ei, &table) {
                return Some(table);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semigroup_counts() {
        // Classical counts of associative binary operations on a set:
        // 1 element: 1; 2 elements: 8; 3 elements: 113.
        assert_eq!(semigroups(1).count(), 1);
        assert_eq!(semigroups(2).count(), 8);
        assert_eq!(semigroups(3).count(), 113);
    }

    #[test]
    fn commutativity_fails_in_left_zero_semigroup() {
        let ei = Ei::parse("=> x*y = y*x").unwrap();
        let table = refute_in_finite_semigroup(&ei, 2).expect("refutation");
        assert!(!ei_holds(&ei, &table));
        assert!(is_associative(&table));
    }

    #[test]
    fn instances_of_associativity_hold_everywhere() {
        let ei = Ei::parse("=> (x*y)*z = x*(y*z)").unwrap();
        assert!(refute_in_finite_semigroup(&ei, 3).is_none());
    }

    #[test]
    fn congruence_ei_holds_everywhere() {
        let ei = Ei::parse("x = y => x*z = y*z").unwrap();
        assert!(refute_in_finite_semigroup(&ei, 3).is_none());
    }

    #[test]
    fn idempotence_fails_somewhere() {
        let ei = Ei::parse("=> x*x = x").unwrap();
        assert!(refute_in_finite_semigroup(&ei, 2).is_some());
    }

    #[test]
    fn premises_restrict_the_check() {
        // In any semigroup where x*y = x holds for the chosen values, the
        // conclusion x*y*y = x follows; as an ei over all assignments it
        // must hold in every table.
        let ei = Ei::parse("x*y = x => (x*y)*y = x").unwrap();
        assert!(refute_in_finite_semigroup(&ei, 3).is_none());
    }
}
