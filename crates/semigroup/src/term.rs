//! Groupoid terms and equational implications (Theorem 3's raw material).
//!
//! An *equational implication* (ei) is a sentence
//! `∀y₁…y_n (s₁ = t₁ ∧ … ∧ s_k = t_k → s_{k+1} = t_{k+1})` whose terms are
//! built from the variables by a binary multiplication. Gurevich–Lewis
//! (the paper's [21]) proved that `{φ : φ holds in all semigroups}` and
//! `{φ : φ fails in some finite semigroup}` are recursively inseparable;
//! Theorem 3 pushes that through the [7]-style reduction implemented in
//! [`crate::reduction`].

use std::fmt;

/// A term over variables `y₀, y₁, …` with binary multiplication.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, by index.
    Var(u8),
    /// A product of two terms.
    Mul(Box<Term>, Box<Term>),
}

impl Term {
    /// Shorthand product. Not `std::ops::Mul`: this is a by-value static
    /// constructor over two terms, not an operator on `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Term, b: Term) -> Term {
        Term::Mul(Box::new(a), Box::new(b))
    }

    /// The largest variable index occurring, if any.
    pub fn max_var(&self) -> Option<u8> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Mul(a, b) => match (a.max_var(), b.max_var()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
        }
    }

    /// Number of multiplications in the term.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) => 0,
            Term::Mul(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Parses `x`, `y`, `z`, `w` or `y0..y9` variables combined with `*`
    /// and parentheses; `*` is *left*-associative: `x*y*z = (x*y)*z`.
    pub fn parse(s: &str) -> Result<Term, String> {
        let tokens: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
        let (t, rest) = parse_expr(&tokens)?;
        if rest.is_empty() {
            Ok(t)
        } else {
            Err(format!("trailing input: {rest:?}"))
        }
    }

    /// Evaluates the term in a finite groupoid given by `table` (a
    /// size×size multiplication table) under `assignment`.
    pub fn eval(&self, table: &[Vec<usize>], assignment: &[usize]) -> usize {
        match self {
            Term::Var(v) => assignment[*v as usize],
            Term::Mul(a, b) => table[a.eval(table, assignment)][b.eval(table, assignment)],
        }
    }
}

fn parse_expr(tokens: &[char]) -> Result<(Term, &[char]), String> {
    let (mut acc, mut rest) = parse_atom(tokens)?;
    while let Some('*') = rest.first() {
        let (rhs, r) = parse_atom(&rest[1..])?;
        acc = Term::mul(acc, rhs);
        rest = r;
    }
    Ok((acc, rest))
}

fn parse_atom(tokens: &[char]) -> Result<(Term, &[char]), String> {
    match tokens.first() {
        Some('(') => {
            let (t, rest) = parse_expr(&tokens[1..])?;
            match rest.first() {
                Some(')') => Ok((t, &rest[1..])),
                _ => Err("missing ')'".into()),
            }
        }
        Some('x') => Ok((Term::Var(0), &tokens[1..])),
        Some('z') => Ok((Term::Var(2), &tokens[1..])),
        Some('w') => Ok((Term::Var(3), &tokens[1..])),
        Some('y') => {
            // y alone is Var(1); y<digit> selects that index.
            if let Some(d) = tokens.get(1).and_then(|c| c.to_digit(10)) {
                Ok((Term::Var(d as u8), &tokens[2..]))
            } else {
                Ok((Term::Var(1), &tokens[1..]))
            }
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(0) => write!(f, "x"),
            Term::Var(1) => write!(f, "y"),
            Term::Var(2) => write!(f, "z"),
            Term::Var(3) => write!(f, "w"),
            Term::Var(v) => write!(f, "y{v}"),
            Term::Mul(a, b) => write!(f, "({a}*{b})"),
        }
    }
}

/// An equation between two terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Equation {
    /// Left term.
    pub lhs: Term,
    /// Right term.
    pub rhs: Term,
}

impl Equation {
    /// Parses `"x*y = y*x"`.
    pub fn parse(s: &str) -> Result<Equation, String> {
        let (l, r) = s.split_once('=').ok_or("equation needs '='")?;
        Ok(Equation {
            lhs: Term::parse(l)?,
            rhs: Term::parse(r)?,
        })
    }
}

/// An equational implication `premises → conclusion`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ei {
    /// Premise equations (may be empty).
    pub premises: Vec<Equation>,
    /// Conclusion equation.
    pub conclusion: Equation,
}

impl Ei {
    /// Parses `"x = y => x*z = y*z"` (premises `;`-separated, possibly
    /// empty before `=>`).
    pub fn parse(s: &str) -> Result<Ei, String> {
        let (pre, post) = s.split_once("=>").ok_or("ei needs '=>'")?;
        let premises = pre
            .split(';')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(Equation::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Ei {
            premises,
            conclusion: Equation::parse(post)?,
        })
    }

    /// Number of variables (max index + 1).
    pub fn var_count(&self) -> usize {
        self.premises
            .iter()
            .flat_map(|e| [&e.lhs, &e.rhs])
            .chain([&self.conclusion.lhs, &self.conclusion.rhs])
            .filter_map(|t| t.max_var())
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_left_associative() {
        let t = Term::parse("x*y*z").unwrap();
        assert_eq!(t, Term::mul(Term::mul(Term::Var(0), Term::Var(1)), Term::Var(2)));
        assert_eq!(t.to_string(), "((x*y)*z)");
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn parse_parenthesized() {
        let t = Term::parse("x*(y*z)").unwrap();
        assert_eq!(t, Term::mul(Term::Var(0), Term::mul(Term::Var(1), Term::Var(2))));
        assert_ne!(t, Term::parse("x*y*z").unwrap());
    }

    #[test]
    fn parse_indexed_vars() {
        let t = Term::parse("y0*y5").unwrap();
        assert_eq!(t, Term::mul(Term::Var(0), Term::Var(5)));
        assert_eq!(t.max_var(), Some(5));
    }

    #[test]
    fn parse_errors() {
        assert!(Term::parse("x*").is_err());
        assert!(Term::parse("(x*y").is_err());
        assert!(Term::parse("q").is_err());
    }

    #[test]
    fn ei_parse_and_vars() {
        let ei = Ei::parse("x = y => x*z = y*z").unwrap();
        assert_eq!(ei.premises.len(), 1);
        assert_eq!(ei.var_count(), 3);
        let no_premise = Ei::parse("=> x*y = y*x").unwrap();
        assert!(no_premise.premises.is_empty());
    }

    #[test]
    fn eval_in_table() {
        // Left-zero semigroup on {0,1}: a·b = a.
        let table = vec![vec![0, 0], vec![1, 1]];
        let t = Term::parse("x*y").unwrap();
        assert_eq!(t.eval(&table, &[0, 1]), 0);
        assert_eq!(t.eval(&table, &[1, 0]), 1);
    }
}
