//! Word rewriting in finitely presented semigroups — the r.e. side of the
//! Gurevich–Lewis pair.
//!
//! An ei `∀y (∧ sᵢ = tᵢ → s = t)` is valid in all semigroups iff `s = t`
//! holds in the semigroup presented by generators `y₁ … y_n` and relations
//! `sᵢ = tᵢ` (flattened to words — multiplication is associative there).
//! That word problem is semidecidable by breadth-first rewriting, which is
//! what [`words_equal`] does, with an explicit budget.

use crate::term::{Ei, Term};
use std::collections::{HashSet, VecDeque};

/// Flattens a groupoid term to the word of its variable indices (valid in
/// the semigroup view, where multiplication associates).
pub fn flatten(t: &Term) -> Vec<u8> {
    let mut out = Vec::new();
    fn go(t: &Term, out: &mut Vec<u8>) {
        match t {
            Term::Var(v) => out.push(*v),
            Term::Mul(a, b) => {
                go(a, out);
                go(b, out);
            }
        }
    }
    go(t, &mut out);
    out
}

/// Semidecides whether `lhs = rhs` follows from `relations` in the free
/// semigroup quotient, by breadth-first application of relations in both
/// directions at every position. `None` means the budget ran out.
pub fn words_equal(
    relations: &[(Vec<u8>, Vec<u8>)],
    lhs: &[u8],
    rhs: &[u8],
    budget: usize,
) -> Option<bool> {
    if lhs == rhs {
        return Some(true);
    }
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut queue: VecDeque<Vec<u8>> = VecDeque::new();
    seen.insert(lhs.to_vec());
    queue.push_back(lhs.to_vec());
    let mut expanded = 0usize;
    while let Some(word) = queue.pop_front() {
        expanded += 1;
        if expanded > budget {
            return None;
        }
        for (l, r) in relations.iter().flat_map(|(a, b)| [(a, b), (b, a)]) {
            if l.is_empty() || word.len() < l.len() {
                continue;
            }
            for start in 0..=(word.len() - l.len()) {
                if &word[start..start + l.len()] == l.as_slice() {
                    let mut next = Vec::with_capacity(word.len() - l.len() + r.len());
                    next.extend_from_slice(&word[..start]);
                    next.extend_from_slice(r);
                    next.extend_from_slice(&word[start + l.len()..]);
                    if next == rhs {
                        return Some(true);
                    }
                    if next.len() <= lhs.len().max(rhs.len()) + 4 && seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    // Bounded closure exhausted without reaching rhs: within this length
    // bound the words are distinct, but longer detours might still connect
    // them — report "unknown" rather than a hard no.
    None
}

/// Semidecides ei validity through the word problem of its presentation.
pub fn ei_valid_by_rewriting(ei: &Ei, budget: usize) -> Option<bool> {
    let relations: Vec<(Vec<u8>, Vec<u8>)> = ei
        .premises
        .iter()
        .map(|e| (flatten(&e.lhs), flatten(&e.rhs)))
        .collect();
    words_equal(
        &relations,
        &flatten(&ei.conclusion.lhs),
        &flatten(&ei.conclusion.rhs),
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Equation;

    #[test]
    fn flatten_ignores_association() {
        let a = Term::parse("(x*y)*z").unwrap();
        let b = Term::parse("x*(y*z)").unwrap();
        assert_eq!(flatten(&a), flatten(&b));
        assert_eq!(flatten(&a), vec![0, 1, 2]);
    }

    #[test]
    fn equal_words_are_equal() {
        assert_eq!(words_equal(&[], &[0, 1], &[0, 1], 10), Some(true));
    }

    #[test]
    fn relation_application() {
        // Relation: xy = y. Then xxy = xy = y.
        let rels = vec![(vec![0, 1], vec![1])];
        assert_eq!(words_equal(&rels, &[0, 0, 1], &[1], 1000), Some(true));
    }

    #[test]
    fn unrelated_words_hit_budget() {
        let rels = vec![(vec![0, 1], vec![1, 0])];
        // x vs y: no relation connects them.
        assert_eq!(words_equal(&rels, &[0], &[1], 1000), None);
    }

    #[test]
    fn ei_validity_by_rewriting() {
        let ei = Ei {
            premises: vec![Equation::parse("x*y = y").unwrap()],
            conclusion: Equation::parse("x*(x*y) = y").unwrap(),
        };
        assert_eq!(ei_valid_by_rewriting(&ei, 10_000), Some(true));
        let assoc = Ei::parse("=> (x*y)*z = x*(y*z)").unwrap();
        assert_eq!(
            ei_valid_by_rewriting(&assoc, 10),
            Some(true),
            "associativity instances flatten to syntactically equal words"
        );
    }
}
