//! Axiomatic proof-search oracles for heterogeneous dependency classes.
//!
//! Where [`crate::proof`] checks *chase* derivations, this module works with
//! *axiomatic* derivations: each [`AxStep`] names an inference rule, its
//! premises (earlier facts), and its conclusion, and [`verify`] replays the
//! side conditions of every rule independently of the search that produced
//! the proof. The systems implemented:
//!
//! * **Armstrong rules** for fds — reflexivity, augmentation, transitivity;
//!   sound and complete ([`fd_axiomatic_implies`] always answers).
//! * **Casanova–Fagin–Papadimitriou rules** for inclusion dependencies —
//!   reflexivity, projection/permutation/repetition, transitivity; complete,
//!   decided by reachability over the sequence graph
//!   ([`ind_axiomatic_implies`], fuel-capped with a three-valued
//!   [`Verdict`]).
//! * **Independence-atom rules** (after Hannula–Kontinen) — triviality,
//!   symmetry, decomposition, exchange, constancy; sound but necessarily
//!   incomplete for conditional atoms (no finite complete axiomatization
//!   exists, Parker–Parsaye-Ghomi).
//! * **Bridge rules** for the mixed system — an fd yields a self-atom
//!   (`X → Y ⊢ Y ⊥_X Y`), an atom's overlap yields an fd
//!   (`Y ⊥_X Z ⊢ X → (Y ∩ Z) − X`), and fds pull back along inclusion
//!   dependencies (`[S] ⊆ [T]` and `set(T∘J) → set(T∘K)` give
//!   `set(S∘J) → set(S∘K)`).
//!
//! The mixed prover [`mixed_axiomatic_implies`] saturates the fd pool
//! through the bridges and dispatches on the goal's class. It is sound by
//! construction (every answer carries a checkable proof) and *necessarily*
//! incomplete: implication for fds + inds together is undecidable, which is
//! exactly the regime the dovetail decision procedure handles by semantic
//! search. The differential tests cross-check both oracles against the
//! chase on their overlapping fragments.

use typedtd_dependencies::{Fd, Ind, IndependenceAtom};
use typedtd_relational::{AttrId, AttrSet, FxHashMap, FxHashSet};
use std::collections::VecDeque;

/// A fact of the mixed system: an fd, an ind, or an independence atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AxFact {
    /// Functional dependency.
    Fd(Fd),
    /// Inclusion dependency.
    Ind(Ind),
    /// Independence atom.
    Atom(IndependenceAtom),
}

impl From<Fd> for AxFact {
    fn from(f: Fd) -> Self {
        AxFact::Fd(f)
    }
}
impl From<Ind> for AxFact {
    fn from(i: Ind) -> Self {
        AxFact::Ind(i)
    }
}
impl From<IndependenceAtom> for AxFact {
    fn from(a: IndependenceAtom) -> Self {
        AxFact::Atom(a)
    }
}

/// The inference rules of the mixed system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AxRule {
    /// `⊢ X → Y` for `Y ⊆ X`.
    FdReflexive,
    /// `X → Y ⊢ XZ → YZ`.
    FdAugment,
    /// `X → Y, Y → Z ⊢ X → Z`.
    FdTransitive,
    /// `⊢ [X] ⊆ [X]`.
    IndReflexive,
    /// `[P] ⊆ [Q] ⊢ [P∘f] ⊆ [Q∘f]` for an index map `f` (projection,
    /// permutation, repetition).
    IndProject {
        /// The index map `f` into the premise's sides.
        map: Vec<usize>,
    },
    /// `[X] ⊆ [Y], [Y] ⊆ [Z] ⊢ [X] ⊆ [Z]`.
    IndTransitive,
    /// `⊢ Y ⊥_X Z` when trivial (`Y ⊆ X` or `Z ⊆ X`).
    AtomTrivial,
    /// `Y ⊥_X Z ⊢ Z ⊥_X Y`.
    AtomSymmetry,
    /// `Y ⊥_X Z ⊢ Y′ ⊥_X Z′` for `Y′ ⊆ Y`, `Z′ ⊆ Z`.
    AtomDecompose,
    /// `Y ⊥_X Z, YZ ⊥_X W ⊢ Y ⊥_X ZW`.
    AtomExchange,
    /// `Y ⊥_X Y ⊢ Y ⊥_X Z` for any `Z` (a self-atom makes `Y`
    /// `X`-determined, so any exchange partner works).
    AtomConstancy,
    /// Bridge: `X → Y ⊢ Y ⊥_X Y`.
    AtomFromFd,
    /// Bridge: `Y ⊥_X Z ⊢ X → (Y ∩ Z) − X`.
    FdFromAtom,
    /// Bridge: `[S] ⊆ [T], set(T∘j) → set(T∘k) ⊢ set(S∘j) → set(S∘k)`.
    FdPullback {
        /// Positions selecting the determinant inside the ind's sides.
        j: Vec<usize>,
        /// Positions selecting the dependent inside the ind's sides.
        k: Vec<usize>,
    },
}

/// One derivation step: a rule applied to earlier facts.
///
/// Premise index `i` refers to `sigma[i]` when `i < sigma.len()`, and to
/// the conclusion of step `i − sigma.len()` otherwise.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AxStep {
    /// The rule applied.
    pub rule: AxRule,
    /// Fact indices of the premises, in rule order.
    pub premises: Vec<usize>,
    /// The claimed conclusion.
    pub conclusion: AxFact,
}

/// A machine-checkable axiomatic derivation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AxProof {
    /// The derivation steps, last one concluding the goal.
    pub steps: Vec<AxStep>,
}

/// Outcome of a fuel-capped proof search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// A proof was found (and is returned alongside).
    Proved,
    /// The search is *complete* for this fragment and exhausted the space:
    /// the implication does not hold.
    Refuted,
    /// The fuel budget expired, or the fragment's system is incomplete.
    Unknown,
}

fn seq_set(seq: &[AttrId], positions: &[usize]) -> Option<AttrSet> {
    let mut out = AttrSet::new();
    for &p in positions {
        out = out.union(&[*seq.get(p)?].into_iter().collect());
    }
    Some(out)
}

/// Verifies `proof` as a derivation of `goal` from `sigma`, replaying every
/// rule's side conditions.
///
/// # Errors
/// Returns a human-readable description of the first unsound step.
pub fn verify(sigma: &[AxFact], goal: &AxFact, proof: &AxProof) -> Result<(), String> {
    let fact = |i: usize, steps: &[AxStep]| -> Result<AxFact, String> {
        if i < sigma.len() {
            Ok(sigma[i].clone())
        } else {
            steps
                .get(i - sigma.len())
                .map(|s| s.conclusion.clone())
                .ok_or_else(|| format!("premise index {i} refers to a later step"))
        }
    };
    for (n, step) in proof.steps.iter().enumerate() {
        let done = &proof.steps[..n];
        let prem: Vec<AxFact> = step
            .premises
            .iter()
            .map(|&i| fact(i, done))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("step {n}: {e}"))?;
        let fail = |msg: &str| Err(format!("step {n} ({:?}): {msg}", step.rule));
        match (&step.rule, prem.as_slice(), &step.conclusion) {
            (AxRule::FdReflexive, [], AxFact::Fd(c)) => {
                if !c.rhs.is_subset(&c.lhs) {
                    return fail("reflexivity needs Y ⊆ X");
                }
            }
            (AxRule::FdAugment, [AxFact::Fd(p)], AxFact::Fd(c)) => {
                let z = c.lhs.difference(&p.lhs).union(&c.rhs.difference(&p.rhs));
                if !p.lhs.is_subset(&c.lhs)
                    || c.lhs != p.lhs.union(&z)
                    || c.rhs != p.rhs.union(&z)
                {
                    return fail("conclusion is not an augmentation of the premise");
                }
            }
            (AxRule::FdTransitive, [AxFact::Fd(p1), AxFact::Fd(p2)], AxFact::Fd(c)) => {
                if p1.rhs != p2.lhs || c.lhs != p1.lhs || c.rhs != p2.rhs {
                    return fail("transitivity shape mismatch");
                }
            }
            (AxRule::IndReflexive, [], AxFact::Ind(c)) => {
                if !c.is_trivial() {
                    return fail("reflexivity needs [X] ⊆ [X]");
                }
            }
            (AxRule::IndProject { map }, [AxFact::Ind(p)], AxFact::Ind(c)) => {
                if map.is_empty() || c.lhs.len() != map.len() {
                    return fail("index map must match the conclusion length");
                }
                for (pos, &f) in map.iter().enumerate() {
                    if f >= p.lhs.len()
                        || c.lhs[pos] != p.lhs[f]
                        || c.rhs[pos] != p.rhs[f]
                    {
                        return fail("conclusion is not the mapped premise");
                    }
                }
            }
            (AxRule::IndTransitive, [AxFact::Ind(p1), AxFact::Ind(p2)], AxFact::Ind(c)) => {
                if p1.rhs != p2.lhs || c.lhs != p1.lhs || c.rhs != p2.rhs {
                    return fail("transitivity shape mismatch");
                }
            }
            (AxRule::AtomTrivial, [], AxFact::Atom(c)) => {
                if !c.is_trivial() {
                    return fail("atom is not trivial");
                }
            }
            (AxRule::AtomSymmetry, [AxFact::Atom(p)], AxFact::Atom(c)) => {
                if c.cond != p.cond || c.left != p.right || c.right != p.left {
                    return fail("conclusion is not the swapped premise");
                }
            }
            (AxRule::AtomDecompose, [AxFact::Atom(p)], AxFact::Atom(c)) => {
                if c.cond != p.cond
                    || !c.left.is_subset(&p.left)
                    || !c.right.is_subset(&p.right)
                {
                    return fail("conclusion sides must be subsets of the premise sides");
                }
            }
            (AxRule::AtomExchange, [AxFact::Atom(p1), AxFact::Atom(p2)], AxFact::Atom(c)) => {
                if p1.cond != p2.cond
                    || c.cond != p1.cond
                    || p2.left != p1.left.union(&p1.right)
                    || c.left != p1.left
                    || c.right != p1.right.union(&p2.right)
                {
                    return fail("exchange shape mismatch");
                }
            }
            (AxRule::AtomConstancy, [AxFact::Atom(p)], AxFact::Atom(c)) => {
                if p.left != p.right || c.cond != p.cond || c.left != p.left {
                    return fail("constancy needs a self-atom premise with the same left side");
                }
            }
            (AxRule::AtomFromFd, [AxFact::Fd(p)], AxFact::Atom(c)) => {
                if c.cond != p.lhs || c.left != p.rhs || c.right != p.rhs {
                    return fail("conclusion must be the self-atom of the fd");
                }
            }
            (AxRule::FdFromAtom, [AxFact::Atom(p)], AxFact::Fd(c)) => {
                let overlap = p.left.intersection(&p.right).difference(&p.cond);
                if c.lhs != p.cond || c.rhs != overlap {
                    return fail("conclusion must be X → (Y ∩ Z) − X");
                }
            }
            (
                AxRule::FdPullback { j, k },
                [AxFact::Ind(ind), AxFact::Fd(fd)],
                AxFact::Fd(c),
            ) => {
                let (tj, tk) = match (seq_set(&ind.rhs, j), seq_set(&ind.rhs, k)) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return fail("position out of range"),
                };
                let (sj, sk) = match (seq_set(&ind.lhs, j), seq_set(&ind.lhs, k)) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return fail("position out of range"),
                };
                if tj != fd.lhs || tk != fd.rhs || c.lhs != sj || c.rhs != sk {
                    return fail("pullback positions do not select the fd's sides");
                }
            }
            _ => return fail("rule arity or fact classes do not match"),
        }
    }
    let concluded = proof.steps.iter().any(|s| s.conclusion == *goal)
        || sigma.contains(goal);
    if concluded {
        Ok(())
    } else {
        Err("derivation complete but the goal is never concluded".into())
    }
}

/// Incremental proof builder: fact indices are `sigma`-relative.
struct Builder {
    sigma_len: usize,
    steps: Vec<AxStep>,
}

impl Builder {
    fn new(sigma_len: usize) -> Self {
        Self {
            sigma_len,
            steps: Vec::new(),
        }
    }

    fn push(&mut self, rule: AxRule, premises: Vec<usize>, conclusion: AxFact) -> usize {
        self.steps.push(AxStep {
            rule,
            premises,
            conclusion,
        });
        self.sigma_len + self.steps.len() - 1
    }

    fn finish(self) -> AxProof {
        AxProof { steps: self.steps }
    }
}

/// Emits an Armstrong-rule derivation of `goal` from the indexed fd pool,
/// or `None` when the closure does not reach the goal. Complete for fds.
fn prove_fd_from_pool(b: &mut Builder, pool: &[(usize, Fd)], goal: &Fd) -> Option<usize> {
    let mut acc = goal.lhs.clone();
    let mut acc_idx = b.push(
        AxRule::FdReflexive,
        vec![],
        Fd::new(goal.lhs.clone(), goal.lhs.clone()).into(),
    );
    loop {
        let mut changed = false;
        for (i, fd) in pool {
            if fd.lhs.is_subset(&acc) && !fd.rhs.is_subset(&acc) {
                let grown = acc.union(&fd.rhs);
                let aug = b.push(
                    AxRule::FdAugment,
                    vec![*i],
                    Fd::new(acc.clone(), grown.clone()).into(),
                );
                acc_idx = b.push(
                    AxRule::FdTransitive,
                    vec![acc_idx, aug],
                    Fd::new(goal.lhs.clone(), grown.clone()).into(),
                );
                acc = grown;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if !goal.rhs.is_subset(&acc) {
        return None;
    }
    let refl = b.push(
        AxRule::FdReflexive,
        vec![],
        Fd::new(acc.clone(), goal.rhs.clone()).into(),
    );
    Some(b.push(
        AxRule::FdTransitive,
        vec![acc_idx, refl],
        goal.clone().into(),
    ))
}

/// Decides `Σ_fd ⊢ goal` in the Armstrong system, returning a checkable
/// proof. Sound **and complete** (the closure is the canonical model), so
/// `None` means the implication does not hold.
pub fn fd_axiomatic_implies(sigma: &[AxFact], goal: &Fd) -> Option<AxProof> {
    let pool: Vec<(usize, Fd)> = sigma
        .iter()
        .enumerate()
        .filter_map(|(i, f)| match f {
            AxFact::Fd(fd) => Some((i, fd.clone())),
            _ => None,
        })
        .collect();
    let mut b = Builder::new(sigma.len());
    prove_fd_from_pool(&mut b, &pool, goal).map(|_| b.finish())
}

/// Enumerates all index maps `f` with `state[j] = pattern[f(j)]`, feeding
/// each to `emit`; returns `false` when the budget ran out mid-enumeration.
fn for_each_map(
    state: &[AttrId],
    pattern: &[AttrId],
    budget: &mut usize,
    mut emit: impl FnMut(&[usize]),
) -> bool {
    let choices: Vec<Vec<usize>> = state
        .iter()
        .map(|a| {
            pattern
                .iter()
                .enumerate()
                .filter(|(_, pa)| *pa == a)
                .map(|(p, _)| p)
                .collect()
        })
        .collect();
    if choices.iter().any(|c| c.is_empty()) {
        return true;
    }
    let mut odometer = vec![0usize; choices.len()];
    loop {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let map: Vec<usize> = odometer
            .iter()
            .zip(&choices)
            .map(|(&o, c)| c[o])
            .collect();
        emit(&map);
        // Advance the odometer.
        let mut pos = 0;
        loop {
            if pos == odometer.len() {
                return true;
            }
            odometer[pos] += 1;
            if odometer[pos] < choices[pos].len() {
                break;
            }
            odometer[pos] = 0;
            pos += 1;
        }
    }
}

/// Decides `Σ_ind ⊢ goal` in the Casanova–Fagin–Papadimitriou system by
/// breadth-first reachability over attribute sequences: from state `S`,
/// a premise `[P] ⊆ [Q]` and an index map `f` with `S = P∘f` move to
/// `Q∘f`. Projection commutes with transitivity, so every derivation
/// normalizes to such a chain — the search is **complete**, and `Refuted`
/// is definitive. `Unknown` only arises when `fuel` (counting map
/// enumeration) runs out first.
pub fn ind_axiomatic_implies(
    sigma: &[AxFact],
    goal: &Ind,
    fuel: usize,
) -> (Verdict, Option<AxProof>) {
    let mut b = Builder::new(sigma.len());
    if goal.is_trivial() {
        b.push(AxRule::IndReflexive, vec![], goal.clone().into());
        return (Verdict::Proved, Some(b.finish()));
    }
    let inds: Vec<(usize, Ind)> = sigma
        .iter()
        .enumerate()
        .filter_map(|(i, f)| match f {
            AxFact::Ind(ind) => Some((i, ind.clone())),
            _ => None,
        })
        .collect();
    // Backpointers: state → (previous state, sigma fact index, map).
    type BackPtr = Option<(Vec<AttrId>, usize, Vec<usize>)>;
    let mut seen: FxHashMap<Vec<AttrId>, BackPtr> = FxHashMap::default();
    seen.insert(goal.lhs.clone(), None);
    let mut queue: VecDeque<Vec<AttrId>> = VecDeque::new();
    queue.push_back(goal.lhs.clone());
    let mut budget = fuel;
    let mut exhausted = false;
    'bfs: while let Some(state) = queue.pop_front() {
        if state == goal.rhs {
            break;
        }
        for (i, ind) in &inds {
            let mut found: Vec<(Vec<AttrId>, Vec<usize>)> = Vec::new();
            let complete = for_each_map(&state, &ind.lhs, &mut budget, |map| {
                let succ: Vec<AttrId> = map.iter().map(|&p| ind.rhs[p]).collect();
                if !seen.contains_key(&succ) {
                    found.push((succ, map.to_vec()));
                }
            });
            for (succ, map) in found {
                if !seen.contains_key(&succ) {
                    seen.insert(succ.clone(), Some((state.clone(), *i, map)));
                    queue.push_back(succ);
                }
            }
            if !complete {
                exhausted = true;
                break 'bfs;
            }
        }
    }
    if !seen.contains_key(&goal.rhs) {
        return if exhausted {
            (Verdict::Unknown, None)
        } else {
            (Verdict::Refuted, None)
        };
    }
    // Reconstruct the chain goal.lhs = Z₀ → … → Z_m = goal.rhs.
    let mut chain: Vec<(Vec<AttrId>, usize, Vec<usize>)> = Vec::new();
    let mut cur = goal.rhs.clone();
    while let Some(Some((prev, i, map))) = seen.get(&cur) {
        chain.push((cur.clone(), *i, map.clone()));
        cur = prev.clone();
    }
    chain.reverse();
    let mk = |l: &[AttrId], r: &[AttrId]| -> AxFact {
        AxFact::Ind(Ind::new(l.to_vec(), r.to_vec()).expect("equal nonzero lengths"))
    };
    let mut prev_state = goal.lhs.clone();
    let mut cur_idx: Option<usize> = None;
    for (state, i, map) in chain {
        let proj = b.push(
            AxRule::IndProject { map },
            vec![i],
            mk(&prev_state, &state),
        );
        cur_idx = Some(match cur_idx {
            None => proj,
            Some(c) => b.push(
                AxRule::IndTransitive,
                vec![c, proj],
                mk(&goal.lhs, &state),
            ),
        });
        prev_state = state;
    }
    (Verdict::Proved, Some(b.finish()))
}

/// Saturates the independence-atom fragment (symmetry + exchange over a
/// seeded pool, one final decompose / constancy application) and returns a
/// proof of `goal` when found. Sound; incomplete (no finite complete
/// system exists for conditional atoms).
fn prove_atom_from_pool(
    b: &mut Builder,
    seeds: &[(usize, IndependenceAtom)],
    goal: &IndependenceAtom,
    max_facts: usize,
) -> Option<usize> {
    if goal.is_trivial() {
        return Some(b.push(AxRule::AtomTrivial, vec![], goal.clone().into()));
    }
    let mut pool: Vec<(usize, IndependenceAtom)> = seeds.to_vec();
    let mut known: FxHashSet<(AttrSet, AttrSet, AttrSet)> = pool
        .iter()
        .map(|(_, a)| (a.cond.clone(), a.left.clone(), a.right.clone()))
        .collect();
    let mut grown = true;
    while grown && pool.len() < max_facts {
        grown = false;
        // Symmetry closure.
        for n in 0..pool.len() {
            let (idx, a) = pool[n].clone();
            let sym = IndependenceAtom::new(a.cond.clone(), a.right.clone(), a.left.clone());
            let key = (sym.cond.clone(), sym.left.clone(), sym.right.clone());
            if known.insert(key) {
                let i = b.push(AxRule::AtomSymmetry, vec![idx], sym.clone().into());
                pool.push((i, sym));
                grown = true;
            }
        }
        // Exchange closure: Y ⊥_X Z and YZ ⊥_X W give Y ⊥_X ZW.
        for n1 in 0..pool.len() {
            for n2 in 0..pool.len() {
                if pool.len() >= max_facts {
                    break;
                }
                let (i1, p1) = pool[n1].clone();
                let (i2, p2) = pool[n2].clone();
                if p1.cond != p2.cond || p2.left != p1.left.union(&p1.right) {
                    continue;
                }
                let merged = IndependenceAtom::new(
                    p1.cond.clone(),
                    p1.left.clone(),
                    p1.right.union(&p2.right),
                );
                let key = (merged.cond.clone(), merged.left.clone(), merged.right.clone());
                if known.insert(key) {
                    let i = b.push(AxRule::AtomExchange, vec![i1, i2], merged.clone().into());
                    pool.push((i, merged));
                    grown = true;
                }
            }
        }
    }
    // Goal check: decompose a wider derived atom, or constancy from a
    // self-atom that covers the goal's left side.
    for (idx, a) in &pool {
        if a.cond == goal.cond && goal.left.is_subset(&a.left) && goal.right.is_subset(&a.right)
        {
            return Some(b.push(AxRule::AtomDecompose, vec![*idx], goal.clone().into()));
        }
    }
    for (idx, a) in &pool {
        if a.cond == goal.cond && a.left == a.right && goal.left.is_subset(&a.left) {
            let widened = IndependenceAtom::new(
                a.cond.clone(),
                a.left.clone(),
                goal.right.clone(),
            );
            let w = b.push(AxRule::AtomConstancy, vec![*idx], widened.into());
            return Some(b.push(AxRule::AtomDecompose, vec![w], goal.clone().into()));
        }
    }
    None
}

/// The sound mixed-system prover for heterogeneous Σ.
///
/// Builds the fd pool (`Σ_fd`, atoms' overlap fds, and pullbacks along
/// inds, to fixpoint), then dispatches on the goal's class:
///
/// * **fd goal** — Armstrong closure over the pool; when Σ is fd-only this
///   is complete, so failure refutes; otherwise failure is `Unknown`;
/// * **ind goal** — CFP reachability over `Σ_ind`; refutation is
///   definitive only when Σ is ind-only (mixed fd+ind implication is
///   undecidable — the dovetail procedure owns that regime);
/// * **atom goal** — bounded saturation seeded with `Σ_atom` and the
///   pool's self-atoms; failure is always `Unknown`.
///
/// Every `Proved` verdict returns a proof that [`verify`] accepts.
pub fn mixed_axiomatic_implies(
    sigma: &[AxFact],
    goal: &AxFact,
    fuel: usize,
) -> (Verdict, Option<AxProof>) {
    let mut b = Builder::new(sigma.len());
    // Seed the fd pool from Σ and the FdFromAtom bridge.
    let mut pool: Vec<(usize, Fd)> = Vec::new();
    let mut pool_known: FxHashSet<(AttrSet, AttrSet)> = FxHashSet::default();
    for (i, f) in sigma.iter().enumerate() {
        match f {
            AxFact::Fd(fd) => {
                if pool_known.insert((fd.lhs.clone(), fd.rhs.clone())) {
                    pool.push((i, fd.clone()));
                }
            }
            AxFact::Atom(a) => {
                let fd = a.overlap_fd();
                if !fd.rhs.is_empty()
                    && pool_known.insert((fd.lhs.clone(), fd.rhs.clone()))
                {
                    let idx = b.push(AxRule::FdFromAtom, vec![i], fd.clone().into());
                    pool.push((idx, fd));
                }
            }
            AxFact::Ind(_) => {}
        }
    }
    let inds: Vec<(usize, Ind)> = sigma
        .iter()
        .enumerate()
        .filter_map(|(i, f)| match f {
            AxFact::Ind(ind) => Some((i, ind.clone())),
            _ => None,
        })
        .collect();
    // Pull fds back along inds to fixpoint (bounded by fuel).
    let cap = fuel.min(512);
    let mut grown = true;
    while grown && pool.len() < cap {
        grown = false;
        for (ii, ind) in &inds {
            for n in 0..pool.len() {
                let (fi, fd) = pool[n].clone();
                let t = &ind.rhs;
                let tset: AttrSet = t.iter().copied().collect();
                if !fd.lhs.is_subset(&tset) || !fd.rhs.is_subset(&tset) {
                    continue;
                }
                let j: Vec<usize> = (0..t.len()).filter(|&p| fd.lhs.contains(t[p])).collect();
                let k: Vec<usize> = (0..t.len()).filter(|&p| fd.rhs.contains(t[p])).collect();
                let pulled = Fd::new(
                    j.iter().map(|&p| ind.lhs[p]).collect(),
                    k.iter().map(|&p| ind.lhs[p]).collect(),
                );
                if !pool_known.insert((pulled.lhs.clone(), pulled.rhs.clone())) {
                    continue;
                }
                let idx = b.push(
                    AxRule::FdPullback { j, k },
                    vec![*ii, fi],
                    pulled.clone().into(),
                );
                pool.push((idx, pulled));
                grown = true;
            }
        }
    }
    match goal {
        AxFact::Fd(fd) => match prove_fd_from_pool(&mut b, &pool, fd) {
            Some(_) => (Verdict::Proved, Some(b.finish())),
            None if sigma.iter().all(|f| matches!(f, AxFact::Fd(_))) => {
                (Verdict::Refuted, None)
            }
            None => (Verdict::Unknown, None),
        },
        AxFact::Ind(ind) => {
            let (v, p) = ind_axiomatic_implies(sigma, ind, fuel);
            let pure = sigma.iter().all(|f| matches!(f, AxFact::Ind(_)));
            match v {
                Verdict::Refuted if !pure => (Verdict::Unknown, None),
                _ => (v, p),
            }
        }
        AxFact::Atom(atom) => {
            let mut seeds: Vec<(usize, IndependenceAtom)> = sigma
                .iter()
                .enumerate()
                .filter_map(|(i, f)| match f {
                    AxFact::Atom(a) => Some((i, a.clone())),
                    _ => None,
                })
                .collect();
            for (fi, fd) in pool.clone() {
                if !fd.rhs.is_empty() {
                    let self_atom =
                        IndependenceAtom::new(fd.lhs.clone(), fd.rhs.clone(), fd.rhs.clone());
                    let idx = b.push(AxRule::AtomFromFd, vec![fi], self_atom.clone().into());
                    seeds.push((idx, self_atom));
                }
            }
            match prove_atom_from_pool(&mut b, &seeds, atom, fuel.min(256)) {
                Some(_) => (Verdict::Proved, Some(b.finish())),
                None => (Verdict::Unknown, None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::Universe;

    fn fd(u: &Universe, s: &str) -> AxFact {
        Fd::parse(u, s).unwrap().into()
    }
    fn ind(u: &Universe, s: &str) -> AxFact {
        Ind::parse(u, s).unwrap().into()
    }
    fn atom(u: &Universe, s: &str) -> AxFact {
        IndependenceAtom::parse(u, s).unwrap().into()
    }

    fn assert_proved(sigma: &[AxFact], goal: &AxFact, fuel: usize) {
        let (v, p) = mixed_axiomatic_implies(sigma, goal, fuel);
        assert_eq!(v, Verdict::Proved, "{goal:?} should be provable");
        verify(sigma, goal, &p.expect("proof")).expect("proof must verify");
    }

    #[test]
    fn fd_closure_proofs_verify() {
        let u = Universe::typed(vec!["A", "B", "C", "D"]);
        let sigma = vec![fd(&u, "A -> B"), fd(&u, "BC -> D")];
        for goal in ["AC -> D", "A -> B", "AC -> ABCD", "AB -> A"] {
            assert_proved(&sigma, &fd(&u, goal), 100);
        }
        let (v, p) = mixed_axiomatic_implies(&sigma, &fd(&u, "A -> D"), 100);
        assert_eq!(v, Verdict::Refuted, "fd-only refutation is definitive");
        assert!(p.is_none());
    }

    #[test]
    fn ind_reachability_proofs_verify() {
        let u = Universe::untyped(vec!["A", "B", "C", "D"]);
        let sigma = vec![ind(&u, "[AB] <= [BC]"), ind(&u, "[BC] <= [CD]")];
        // Transitivity chain.
        assert_proved(&sigma, &ind(&u, "[AB] <= [CD]"), 1000);
        // Projection of a premise.
        assert_proved(&sigma, &ind(&u, "[A] <= [B]"), 1000);
        // Repetition: [AA] <= [BB] from projecting [AB] <= [BC].
        assert_proved(&sigma, &ind(&u, "[AA] <= [BB]"), 1000);
        // Trivial goal.
        assert_proved(&sigma, &ind(&u, "[DA] <= [DA]"), 1000);
        let (v, _) = mixed_axiomatic_implies(&sigma, &ind(&u, "[D] <= [A]"), 1000);
        assert_eq!(v, Verdict::Refuted, "ind-only refutation is definitive");
        // Fuel exhaustion degrades to Unknown, never a wrong answer ([A]
        // matches a premise, so the search has maps to enumerate).
        let (v, _) = ind_axiomatic_implies(
            &sigma,
            &Ind::parse(&u, "[A] <= [D]").unwrap(),
            0,
        );
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn atom_rules_prove_and_verify() {
        let u = Universe::typed(vec!["A", "B", "C", "D"]);
        // Symmetry + decomposition.
        let sigma = vec![atom(&u, "AB _|_ CD")];
        assert_proved(&sigma, &atom(&u, "C _|_ A"), 100);
        // Exchange: B ⊥ C and BC ⊥ D give B ⊥ CD.
        let sigma = vec![atom(&u, "B _|_ C"), atom(&u, "BC _|_ D")];
        assert_proved(&sigma, &atom(&u, "B _|_ CD"), 100);
        // Triviality.
        assert_proved(&[], &atom(&u, "A _|_ B | AB"), 10);
    }

    #[test]
    fn bridges_cross_classes() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        // Fd gives the self-atom, widened by constancy.
        let sigma = vec![fd(&u, "A -> B")];
        assert_proved(&sigma, &atom(&u, "B _|_ C | A"), 100);
        // Atom overlap gives the fd.
        let sigma = vec![atom(&u, "AB _|_ BC")];
        assert_proved(&sigma, &fd(&u, " -> B"), 100);
        // Fd pullback along an ind (untyped universes for non-trivial inds).
        let uu = Universe::untyped(vec!["A", "B", "C"]);
        let sigma = vec![ind(&uu, "[AB] <= [BC]"), fd(&uu, "B -> C")];
        assert_proved(&sigma, &fd(&uu, "A -> B"), 100);
    }

    #[test]
    fn verifier_rejects_corrupted_proofs() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let sigma = vec![fd(&u, "A -> B"), fd(&u, "B -> C")];
        let goal = fd(&u, "A -> C");
        let (v, p) = mixed_axiomatic_implies(&sigma, &goal, 100);
        assert_eq!(v, Verdict::Proved);
        let proof = p.unwrap();
        verify(&sigma, &goal, &proof).unwrap();
        // Wrong goal.
        assert!(verify(&sigma, &fd(&u, "B -> A"), &proof).is_err());
        // Corrupt a step's conclusion.
        let mut bad = proof.clone();
        let last = bad.steps.len() - 1;
        bad.steps[last].conclusion = fd(&u, "C -> A");
        assert!(verify(&sigma, &goal, &bad).is_err());
        // Premise out of range.
        let mut bad = proof.clone();
        bad.steps[0].premises = vec![999];
        assert!(verify(&sigma, &goal, &bad).is_err());
        // Forward reference.
        let mut bad = proof;
        bad.steps[0].premises = vec![sigma.len() + last];
        assert!(verify(&sigma, &goal, &bad).is_err());
    }

    #[test]
    fn empty_proof_needs_goal_in_sigma() {
        let u = Universe::typed(vec!["A", "B"]);
        let sigma = vec![fd(&u, "A -> B")];
        assert!(verify(&sigma, &fd(&u, "A -> B"), &AxProof::default()).is_ok());
        assert!(verify(&sigma, &fd(&u, "B -> A"), &AxProof::default()).is_err());
    }
}
