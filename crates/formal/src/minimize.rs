//! Proof minimization: extracting the paper-style minimal derivation from
//! a breadth-first chase trace.
//!
//! The engine's fair scheduling fires every trigger per round, so its
//! traces contain many steps irrelevant to the goal. The paper's printed
//! derivations (Lemma 10's `s₁ … s₄, t`) are *goal-directed minimal*
//! chains. [`minimize`] recovers one by greedy deletion: drop a step, keep
//! the drop if the proof still verifies, repeat — a fixpoint of the
//! independent checker in [`crate::proof`].

use crate::proof::{verify, Proof};
use typedtd_chase::ChaseTrace;
use typedtd_dependencies::TdOrEgd;

/// Greedily removes unnecessary steps from a verified proof. The result
/// verifies and is *1-minimal*: removing any single remaining step breaks
/// it.
///
/// # Panics
/// Panics if the input proof does not verify to begin with.
pub fn minimize(sigma: &[TdOrEgd], goal: &TdOrEgd, proof: &Proof) -> Proof {
    verify(sigma, goal, proof).expect("minimize requires a valid proof");
    let mut steps = proof.trace.steps.clone();
    // Scan back-to-front so early deletions don't shift unexamined indices;
    // repeat until a full pass removes nothing.
    loop {
        let mut removed = false;
        let mut i = steps.len();
        while i > 0 {
            i -= 1;
            let mut candidate = steps.clone();
            candidate.remove(i);
            let p = Proof::from_trace(ChaseTrace { steps: candidate.clone() });
            if verify(sigma, goal, &p).is_ok() {
                steps = candidate;
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }
    Proof::from_trace(ChaseTrace { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::prove;
    use typedtd_chase::ChaseConfig;
    use typedtd_dependencies::Mvd;
    use typedtd_relational::{Universe, ValuePool};

    #[test]
    fn minimized_proofs_verify_and_shrink() {
        let u = Universe::typed(vec!["A", "B", "C", "D"]);
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = ["A ->> B", "B ->> C"]
            .iter()
            .map(|s| TdOrEgd::Td(Mvd::parse(&u, s).unwrap().to_pjd().to_td(&u, &mut pool)))
            .collect();
        let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").unwrap().to_pjd().to_td(&u, &mut pool));
        let proof = prove(&sigma, &goal, &mut pool, &ChaseConfig::default()).unwrap();
        let min = minimize(&sigma, &goal, &proof);
        assert!(min.trace.len() <= proof.trace.len());
        verify(&sigma, &goal, &min).unwrap();
        // 1-minimality.
        for i in 0..min.trace.len() {
            let mut steps = min.trace.steps.clone();
            steps.remove(i);
            let p = Proof::from_trace(ChaseTrace { steps });
            assert!(
                verify(&sigma, &goal, &p).is_err(),
                "step {i} should be necessary"
            );
        }
    }

    #[test]
    fn lemma10_chain_minimizes_to_paper_length() {
        // The paper's Lemma 10 derivation uses 5 added rows (s1..s4, t).
        let (_u, mut pool, sigma, _labels, goal) = typedtd_core::lemma10_exhibit();
        let proof = prove(&sigma, &goal, &mut pool, &ChaseConfig::default()).unwrap();
        let min = minimize(&sigma, &goal, &proof);
        assert!(
            min.trace.rows_added() <= 5,
            "minimal chain must be at most the paper's 5 rows, got {}",
            min.trace.rows_added()
        );
        assert!(min.trace.rows_added() >= 1);
    }
}
