//! Armstrong relations (Theorem 5 and the paper's reference [18]).
//!
//! A finite Armstrong relation for `Σ` within a class `C` satisfies
//! exactly the `C`-dependencies finitely implied by `Σ`. Theorem 5 shows
//! the fixed set `Σ₂` has none in the class of typed tds (else its finite
//! implication problem would be decidable). On the positive side, fd sets
//! famously *do* have Armstrong relations; [`fd_armstrong`] constructs one
//! by direct product of per-violation witnesses, and the tests check the
//! defining biconditional against the closure oracle.

use typedtd_dependencies::{Fd, TdOrEgd};
use typedtd_relational::{AttrSet, FxHashMap, Relation, Tuple, Universe, Value, ValuePool};
use std::sync::Arc;

/// Direct product of two relations over the same universe: rows pair up
/// componentwise, values are interned pairs. Classes defined by egds/fds
/// are closed under products, which is why the construction below works.
pub fn direct_product(
    r1: &Relation,
    r2: &Relation,
    pool: &mut ValuePool,
) -> Relation {
    let universe = r1.universe().clone();
    assert_eq!(universe.width(), r2.universe().width());
    let mut memo: FxHashMap<(Value, Value), Value> = FxHashMap::default();
    let mut out = Relation::new(universe.clone());
    for t1 in r1.iter() {
        for t2 in r2.iter() {
            let vals: Vec<Value> = universe
                .attrs()
                .map(|a| {
                    let key = (t1.get(a), t2.get(a));
                    *memo.entry(key).or_insert_with(|| {
                        pool.fresh(Some(a).filter(|_| universe.is_typed()), "pair")
                    })
                })
                .collect();
            out.insert(Tuple::new(vals));
        }
    }
    out
}

/// A two-row relation agreeing exactly on `agree` (the classical witness
/// violating every fd `X → A` with `X ⊆ agree`, `A ∉ agree`).
pub fn agreement_witness(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    agree: &AttrSet,
) -> Relation {
    let mut row1 = Vec::with_capacity(universe.width());
    let mut row2 = Vec::with_capacity(universe.width());
    for a in universe.attrs() {
        let sort = Some(a).filter(|_| universe.is_typed());
        if agree.contains(a) {
            let shared = pool.fresh(sort, "s");
            row1.push(shared);
            row2.push(shared);
        } else {
            row1.push(pool.fresh(sort, "l"));
            row2.push(pool.fresh(sort, "r"));
        }
    }
    Relation::from_rows(
        universe.clone(),
        [Tuple::new(row1), Tuple::new(row2)],
    )
}

/// Builds a finite Armstrong relation for a set of fds: a relation
/// satisfying exactly the fds implied by `fds`.
///
/// Construction: for every closed attribute set `X = X⁺` (other than `U`),
/// take the two-row witness agreeing exactly on `X`; direct-product them
/// all together.
pub fn fd_armstrong(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    fds: &[Fd],
) -> Relation {
    let n = universe.width();
    let mut witnesses: Vec<Relation> = Vec::new();
    for mask in 0..(1u32 << n) {
        let x: AttrSet = universe
            .attrs()
            .filter(|a| mask & (1 << a.index()) != 0)
            .collect();
        let closed = typedtd_dependencies::fd_closure(&x, fds);
        if closed == x && x != universe.all() {
            witnesses.push(agreement_witness(universe, pool, &x));
        }
    }
    match witnesses.len() {
        0 => {
            // Every set is a key: the single-row relation works.
            let row: Vec<Value> = universe
                .attrs()
                .map(|a| pool.fresh(Some(a).filter(|_| universe.is_typed()), "o"))
                .collect();
            Relation::from_rows(universe.clone(), [Tuple::new(row)])
        }
        _ => {
            let mut acc = witnesses.pop().unwrap();
            for w in witnesses {
                acc = direct_product(&acc, &w, pool);
            }
            acc
        }
    }
}

/// Checks the Armstrong biconditional for a probe set of dependencies:
/// `rel ⊨ σ ⇔ decided(σ)` for every probe, where `decided` is the caller's
/// ground truth for `Σ ⊨_f σ`. Returns offending probes.
pub fn armstrong_violations<'a>(
    rel: &Relation,
    probes: impl IntoIterator<Item = (&'a TdOrEgd, bool)>,
) -> Vec<usize> {
    probes
        .into_iter()
        .enumerate()
        .filter(|(_, (dep, expected))| dep.satisfied_by(rel) != *expected)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::fd_implies;

    fn u4() -> Arc<Universe> {
        Universe::typed(vec!["A", "B", "C", "D"])
    }

    #[test]
    fn product_preserves_fds_and_violations() {
        let u = u4();
        let mut pool = ValuePool::new(u.clone());
        let w1 = agreement_witness(&u, &mut pool, &u.set("AB"));
        let w2 = agreement_witness(&u, &mut pool, &u.set("C"));
        let prod = direct_product(&w1, &w2, &mut pool);
        assert_eq!(prod.len(), 4);
        // A fd violated in either factor is violated in the product.
        let fd = Fd::parse(&u, "AB -> C").unwrap();
        assert!(!fd.satisfied_by(&w1));
        assert!(!fd.satisfied_by(&prod));
        // A fd satisfied in both factors is satisfied in the product.
        let ok = Fd::parse(&u, "ABCD -> A").unwrap();
        assert!(ok.satisfied_by(&prod));
    }

    #[test]
    fn armstrong_for_simple_fd_set() {
        let u = u4();
        let mut pool = ValuePool::new(u.clone());
        let fds = vec![Fd::parse(&u, "A -> B").unwrap(), Fd::parse(&u, "B -> C").unwrap()];
        let arm = fd_armstrong(&u, &mut pool, &fds);
        // Probe EVERY single-attribute-rhs fd.
        for lhs_mask in 0..(1u32 << 4) {
            let x: AttrSet = u
                .attrs()
                .filter(|a| lhs_mask & (1 << a.index()) != 0)
                .collect();
            for a in u.attrs() {
                let goal = Fd::new(x.clone(), [a].into_iter().collect());
                assert_eq!(
                    goal.satisfied_by(&arm),
                    fd_implies(&fds, &goal),
                    "Armstrong biconditional fails for {}",
                    goal.render(&u)
                );
            }
        }
    }

    #[test]
    fn armstrong_for_empty_fd_set() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut pool = ValuePool::new(u.clone());
        let arm = fd_armstrong(&u, &mut pool, &[]);
        // Only trivial fds hold.
        assert!(Fd::parse(&u, "AB -> A").unwrap().satisfied_by(&arm));
        assert!(!Fd::parse(&u, "A -> B").unwrap().satisfied_by(&arm));
        assert!(!Fd::parse(&u, "B -> A").unwrap().satisfied_by(&arm));
    }

    #[test]
    fn armstrong_when_everything_is_a_key() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut pool = ValuePool::new(u.clone());
        let fds = vec![
            Fd::parse(&u, "A -> B").unwrap(),
            Fd::parse(&u, "B -> A").unwrap(),
        ];
        let arm = fd_armstrong(&u, &mut pool, &fds);
        for goal in ["A -> B", "B -> A", "A -> AB"] {
            let g = Fd::parse(&u, goal).unwrap();
            assert_eq!(g.satisfied_by(&arm), fd_implies(&fds, &g));
        }
    }

    #[test]
    fn violation_probe_reports_mismatches() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut pool = ValuePool::new(u.clone());
        let arm = fd_armstrong(&u, &mut pool, &[]);
        let egd = Fd::parse(&u, "A -> B").unwrap().to_egds(&u, &mut pool).remove(0);
        let dep = TdOrEgd::Egd(egd);
        // Claiming the fd should hold is a violation; claiming it fails is
        // not.
        assert_eq!(armstrong_violations(&arm, [(&dep, true)]), vec![0]);
        assert!(armstrong_violations(&arm, [(&dep, false)]).is_empty());
    }
}
