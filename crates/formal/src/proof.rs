//! Machine-checkable implication proofs.
//!
//! A proof that `Σ ⊨ σ` is a chase derivation; this module *verifies* such
//! derivations independently of the engine that produced them. The checker
//! replays each step against its own instance, re-establishing that
//!
//! * an `AddRow` step's row really is forced by the named dependency under
//!   some valuation into the instance so far, and
//! * a `Merge` step's equality really is forced by the named egd,
//!
//! and finally that the goal is derivable in the end instance. The paper's
//! notion of a formal system (Section 6) is exactly "a recursive set of
//! checkable proofs"; soundness of this system is the soundness of the
//! chase, and its *incompleteness for finite implication* is forced by
//! Theorem 2 — no recursive proof system can capture `⊨_f` for typed tds.

use typedtd_chase::{ChaseInstance, ChaseStep, ChaseTrace, StepKind};
use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{AttrId, Embedder, Tuple, Valuation};
use std::ops::ControlFlow;

/// A proof object: the claimed derivation for `Σ ⊨ goal`.
#[derive(Clone, Debug)]
pub struct Proof {
    /// The derivation steps.
    pub trace: ChaseTrace,
}

impl Proof {
    /// Wraps an engine trace as a proof.
    pub fn from_trace(trace: ChaseTrace) -> Self {
        Self { trace }
    }
}

/// Verifies `proof` as a derivation of `goal` from `sigma`.
///
/// # Errors
/// Returns a human-readable description of the first unsound step.
pub fn verify(sigma: &[TdOrEgd], goal: &TdOrEgd, proof: &Proof) -> Result<(), String> {
    let (universe, init) = match goal {
        TdOrEgd::Td(t) => (t.universe().clone(), t.hypothesis().to_vec()),
        TdOrEgd::Egd(e) => (e.universe().clone(), e.hypothesis().to_vec()),
    };
    let mut inst = ChaseInstance::new(universe.clone(), init);

    for (i, step) in proof.trace.steps.iter().enumerate() {
        let dep = sigma
            .get(step.dep)
            .ok_or_else(|| format!("step {i}: dependency index {} out of range", step.dep))?;
        match (&step.kind, dep) {
            (StepKind::AddRow { row }, TdOrEgd::Td(td)) => {
                // Constrain the conclusion to the claimed row, then embed
                // the hypothesis into the current instance.
                let mut seed = Valuation::new();
                for a in universe.attrs() {
                    let cv = td.conclusion().get(a);
                    let target = inst.resolve(row.get(a));
                    match seed.get(cv) {
                        Some(existing) if existing != target => {
                            return Err(format!(
                                "step {i}: claimed row is inconsistent with the conclusion pattern"
                            ));
                        }
                        Some(_) => {}
                        None => {
                            seed.bind(cv, target);
                        }
                    }
                }
                // Existential targets must not pre-exist unless the pattern
                // binds them through the hypothesis; soundness only needs
                // the implication "hypothesis matched ⇒ row is a legal
                // conclusion instance", which the embedding below checks.
                let emb = Embedder::new(inst.relation());
                let hyp_only_seed = restrict_to(td, &seed);
                if !emb.embeds(td.hypothesis(), &hyp_only_seed) {
                    return Err(format!(
                        "step {i}: no valuation maps the hypothesis of dependency {} into the instance consistently with the added row",
                        step.dep
                    ));
                }
                let canon = row.map(|v| inst.resolve(v));
                inst.insert(canon);
            }
            (StepKind::Merge { kept, gone }, TdOrEgd::Egd(egd)) => {
                let (k, g) = (inst.resolve(*kept), inst.resolve(*gone));
                let emb = Embedder::new(inst.relation());
                if k != g {
                    let mut justified = false;
                    for (l, r) in [(k, g), (g, k)] {
                        let mut seed = Valuation::new();
                        seed.bind(egd.left(), l);
                        seed.bind(egd.right(), r);
                        let mut found = false;
                        emb.for_each_embedding(egd.hypothesis(), &seed, |_| {
                            found = true;
                            ControlFlow::Break(())
                        });
                        if found {
                            justified = true;
                            break;
                        }
                    }
                    if !justified {
                        return Err(format!(
                            "step {i}: the egd does not force the claimed equality"
                        ));
                    }
                    drop(emb);
                    inst.merge(k, g);
                }
            }
            (StepKind::AddRow { .. }, TdOrEgd::Egd(_)) => {
                return Err(format!("step {i}: an egd cannot justify a row addition"));
            }
            (StepKind::Merge { .. }, TdOrEgd::Td(_)) => {
                return Err(format!("step {i}: a td cannot justify a merge"));
            }
        }
    }

    // Goal derivable in the final instance?
    let derived = match goal {
        TdOrEgd::Egd(e) => inst.identified(e.left(), e.right()),
        TdOrEgd::Td(td) => {
            let seed = Valuation::from_pairs(
                td.hypothesis_values()
                    .into_iter()
                    .map(|v| (v, inst.resolve(v))),
            );
            let emb = Embedder::new(inst.relation());
            emb.embeds(std::slice::from_ref(td.conclusion()), &seed)
        }
    };
    if derived {
        Ok(())
    } else {
        Err("derivation complete but the goal is not derivable".into())
    }
}

/// Keeps only the seed bindings for values that occur in the hypothesis
/// (the existentials of the conclusion are free for the embedding).
fn restrict_to(td: &typedtd_dependencies::Td, seed: &Valuation) -> Valuation {
    let hyp_vals = td.hypothesis_values();
    Valuation::from_pairs(seed.iter().filter(|(v, _)| hyp_vals.contains(v)))
}

/// Produces a proof by running the chase; `None` if the budget expires or
/// the implication is refuted.
///
/// ```
/// use typedtd_formal::{prove, verify};
/// use typedtd_chase::ChaseConfig;
/// use typedtd_dependencies::{Mvd, TdOrEgd};
/// use typedtd_relational::{Universe, ValuePool};
///
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let mut pool = ValuePool::new(u.clone());
/// let sigma = vec![TdOrEgd::Td(Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool))];
/// let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").unwrap().to_pjd().to_td(&u, &mut pool));
/// let proof = prove(&sigma, &goal, &mut pool, &ChaseConfig::default()).unwrap();
/// assert!(verify(&sigma, &goal, &proof).is_ok());
/// ```
pub fn prove(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut typedtd_relational::ValuePool,
    cfg: &typedtd_chase::ChaseConfig,
) -> Option<Proof> {
    let run = typedtd_chase::chase_implication(sigma, goal, pool, cfg);
    match run.outcome {
        typedtd_chase::ChaseOutcome::Implied => Some(Proof::from_trace(run.trace)),
        _ => None,
    }
}

/// Corrupts nothing: convenience that proves and immediately verifies,
/// returning the checked proof.
pub fn prove_checked(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut typedtd_relational::ValuePool,
    cfg: &typedtd_chase::ChaseConfig,
) -> Option<Proof> {
    let p = prove(sigma, goal, pool, cfg)?;
    verify(sigma, goal, &p).ok()?;
    Some(p)
}

/// A deliberately corrupted variant of a proof (for tests and the
/// experiment harness): the first added row gets one of its values swapped
/// for a hypothesis value of the goal.
pub fn corrupt(proof: &Proof, goal: &TdOrEgd) -> Option<Proof> {
    let poison = match goal {
        TdOrEgd::Td(t) => t.hypothesis()[0].get(AttrId(0)),
        TdOrEgd::Egd(e) => e.hypothesis()[0].get(AttrId(0)),
    };
    let mut out = proof.clone();
    for step in &mut out.trace.steps {
        if let StepKind::AddRow { row } = &mut step.kind {
            let width = row.width();
            let mut vals: Vec<_> = row.values().to_vec();
            vals[width - 1] = poison;
            let new_row = Tuple::new(vals);
            if new_row != *row {
                *step = ChaseStep {
                    dep: step.dep,
                    matched: step.matched.clone(),
                    kind: StepKind::AddRow { row: new_row },
                };
                return Some(out);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use typedtd_chase::ChaseConfig;
    use typedtd_dependencies::{td_from_names, Fd, Mvd};
    use typedtd_relational::{Universe, ValuePool};

    fn mvd_instance() -> (Arc<Universe>, ValuePool, Vec<TdOrEgd>, TdOrEgd) {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![TdOrEgd::Td(
            Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut p),
        )];
        let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").unwrap().to_pjd().to_td(&u, &mut p));
        (u, p, sigma, goal)
    }

    #[test]
    fn proofs_verify() {
        let (_u, mut p, sigma, goal) = mvd_instance();
        let proof = prove(&sigma, &goal, &mut p, &ChaseConfig::default()).expect("implied");
        verify(&sigma, &goal, &proof).expect("proof must verify");
    }

    #[test]
    fn corrupted_proofs_are_rejected() {
        let (_u, mut p, sigma, goal) = mvd_instance();
        let proof = prove(&sigma, &goal, &mut p, &ChaseConfig::default()).unwrap();
        if let Some(bad) = corrupt(&proof, &goal) {
            assert!(
                verify(&sigma, &goal, &bad).is_err(),
                "checker must reject the corrupted step"
            );
        }
    }

    #[test]
    fn wrong_sigma_is_rejected() {
        // A proof against a different Σ (whose dependency cannot justify
        // the steps) must fail verification.
        let (u, mut p, sigma, goal) = mvd_instance();
        let proof = prove(&sigma, &goal, &mut p, &ChaseConfig::default()).unwrap();
        let other_sigma = vec![TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["q", "r", "s"]],
            &["q", "r", "s"],
        ))];
        assert!(verify(&other_sigma, &goal, &proof).is_err());
    }

    #[test]
    fn egd_steps_verify() {
        // Fd transitivity: proof contains merges only.
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let mut sigma = Vec::new();
        for fd in ["A -> B", "B -> C"] {
            for e in Fd::parse(&u, fd).unwrap().to_egds(&u, &mut p) {
                sigma.push(TdOrEgd::Egd(e));
            }
        }
        let goal_egd = Fd::parse(&u, "A -> C").unwrap().to_egds(&u, &mut p).remove(0);
        let goal = TdOrEgd::Egd(goal_egd);
        let proof = prove(&sigma, &goal, &mut p, &ChaseConfig::default()).expect("implied");
        assert!(proof.trace.merges() > 0);
        verify(&sigma, &goal, &proof).expect("merge-only proof verifies");
    }

    #[test]
    fn empty_proof_only_verifies_trivial_goals() {
        let (u, mut p, sigma, goal) = mvd_instance();
        let empty = Proof::from_trace(ChaseTrace::default());
        assert!(verify(&sigma, &goal, &empty).is_err());
        // A trivial goal verifies with no steps.
        let trivial = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["q", "r", "s"]],
            &["q", "r", "s"],
        ));
        verify(&sigma, &trivial, &empty).expect("trivial goal");
    }
}
