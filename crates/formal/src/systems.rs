//! Formal systems for pjd implication (Theorems 7 and 8).
//!
//! **Theorem 7.** There are only finitely many `U`-pjds over a fixed
//! universe, so a sound and complete *universe-bounded* formal system would
//! decide pjd implication by enumerating the finitely many candidate
//! proofs — contradicting Theorem 6. [`all_pjds`] is that finite
//! enumeration, and [`universe_bounded_decides`] demonstrates the
//! enumeration argument on the *decidable* subclass of total jds (where a
//! universe-bounded complete system does exist, the paper's [11]).
//!
//! **Theorem 8.** A sound and complete system exists once proofs may leave
//! the universe: transform the pjds to tds (Lemma 6), chase, and present
//! the derivation — which travels through tableaux over arbitrarily many
//! fresh values. [`PjdProof`] packages exactly that, with
//! [`check_pjd_proof`] as the recursive proof-checking relation.

use crate::proof::{self, Proof};
use typedtd_chase::{ChaseConfig, ChaseOutcome};
use typedtd_dependencies::{Pjd, TdOrEgd};
use typedtd_relational::{AttrSet, Universe, ValuePool};
use std::sync::Arc;

/// Enumerates every pjd over `universe` with at most `max_components`
/// components (there are finitely many — the crux of Theorem 7).
///
/// Components are nonempty attribute subsets without repetition, in a
/// canonical order; projections range over subsets of the union.
pub fn all_pjds(universe: &Arc<Universe>, max_components: usize) -> Vec<Pjd> {
    let n = universe.width();
    let subsets: Vec<AttrSet> = (1..(1u32 << n))
        .map(|mask| {
            universe
                .attrs()
                .filter(|a| mask & (1 << a.index()) != 0)
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    // Choose a set of components (order is irrelevant for satisfaction, so
    // canonical ascending index order suffices).
    let k = subsets.len();
    let mut combo: Vec<usize> = Vec::new();
    fn rec(
        subsets: &[AttrSet],
        start: usize,
        combo: &mut Vec<usize>,
        max: usize,
        out: &mut Vec<Pjd>,
    ) {
        if !combo.is_empty() {
            let comps: Vec<AttrSet> = combo.iter().map(|&i| subsets[i].clone()).collect();
            let r = comps
                .iter()
                .fold(AttrSet::new(), |acc, c| acc.union(c));
            // All projections X ⊆ R.
            let r_attrs: Vec<_> = r.iter().collect();
            for mask in 0..(1u32 << r_attrs.len()) {
                let x: AttrSet = r_attrs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, a)| *a)
                    .collect();
                out.push(Pjd::new(comps.clone(), x));
            }
        }
        if combo.len() == max {
            return;
        }
        for i in start..subsets.len() {
            combo.push(i);
            rec(subsets, i + 1, combo, max, out);
            combo.pop();
        }
    }
    let _ = k;
    rec(&subsets, 0, &mut combo, max_components, &mut out);
    out
}

/// The enumeration argument of Theorem 7, run on the decidable total-jd
/// subclass: decides `Σ ⊨ σ` for total jds by the (terminating) chase.
/// Returns `None` when a budget is hit — which the theory says cannot
/// happen for total jds, and the tests confirm on their instances.
pub fn universe_bounded_decides(
    sigma: &[Pjd],
    goal: &Pjd,
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
) -> Option<bool> {
    for p in sigma.iter().chain(std::iter::once(goal)) {
        assert!(
            p.is_jd() && p.is_total(universe),
            "the decidable enumeration subclass is the total jds"
        );
    }
    let sigma_tds: Vec<TdOrEgd> = sigma
        .iter()
        .map(|p| TdOrEgd::Td(p.to_td(universe, pool)))
        .collect();
    let goal_td = TdOrEgd::Td(goal.to_td(universe, pool));
    let run = typedtd_chase::chase_implication(&sigma_tds, &goal_td, pool, &ChaseConfig::default());
    match run.outcome {
        ChaseOutcome::Implied => Some(true),
        ChaseOutcome::NotImplied => Some(false),
        ChaseOutcome::Exhausted | ChaseOutcome::Cancelled => None,
    }
}

/// A Theorem 8 proof: pjd implication certified through the td transform.
#[derive(Clone, Debug)]
pub struct PjdProof {
    /// The td forms of `Σ` (Lemma 6 images), in order.
    pub sigma_tds: Vec<TdOrEgd>,
    /// The td form of the goal.
    pub goal_td: TdOrEgd,
    /// The chase derivation.
    pub proof: Proof,
}

/// Searches for a Theorem 8 proof of `Σ ⊨ σ` between pjds.
pub fn prove_pjd(
    sigma: &[Pjd],
    goal: &Pjd,
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> Option<PjdProof> {
    let sigma_tds: Vec<TdOrEgd> = sigma
        .iter()
        .map(|p| TdOrEgd::Td(p.to_td(universe, pool)))
        .collect();
    let goal_td = TdOrEgd::Td(goal.to_td(universe, pool));
    let proof = proof::prove(&sigma_tds, &goal_td, pool, cfg)?;
    Some(PjdProof {
        sigma_tds,
        goal_td,
        proof,
    })
}

/// The recursive proof-checking relation for Theorem 8 proofs.
///
/// # Errors
/// Describes the first failure: a mismatched transform or an unsound step.
pub fn check_pjd_proof(
    sigma: &[Pjd],
    goal: &Pjd,
    p: &PjdProof,
) -> Result<(), String> {
    if p.sigma_tds.len() != sigma.len() {
        return Err("proof premise count differs from Σ".into());
    }
    // The td forms must be shallow tds matching the pjds structurally.
    for (i, (td, pjd)) in p.sigma_tds.iter().zip(sigma).enumerate() {
        let td = td
            .as_td()
            .ok_or_else(|| format!("premise {i} is not a td"))?;
        let back = Pjd::from_shallow_td(td)
            .map_err(|e| format!("premise {i} is not pjd-shaped: {e}"))?;
        if back.components() != pjd.components() || back.projection() != pjd.projection() {
            return Err(format!("premise {i} does not transform to its pjd"));
        }
    }
    let goal_td = p
        .goal_td
        .as_td()
        .ok_or_else(|| "goal form is not a td".to_string())?;
    let back = Pjd::from_shallow_td(goal_td).map_err(|e| format!("goal not pjd-shaped: {e}"))?;
    if back.components() != goal.components() || back.projection() != goal.projection() {
        return Err("goal does not transform to its pjd".into());
    }
    proof::verify(&p.sigma_tds, &p.goal_td, &p.proof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finitely_many_u_pjds() {
        // Over a 2-attribute universe with ≤ 2 components: a small, exactly
        // countable space. Subsets: {A}, {B}, {AB} → component sets of size
        // ≤ 2 ... each with its 2^|R| projections.
        let u = Universe::typed(vec!["A", "B"]);
        let pjds = all_pjds(&u, 2);
        // Component sets: {A}(2), {B}(2), {AB}(4), {A,B}(4), {A,AB}(4),
        // {B,AB}(4) → 20 pjds.
        assert_eq!(pjds.len(), 20);
        // And they are pairwise distinct.
        for (i, a) in pjds.iter().enumerate() {
            for b in &pjds[i + 1..] {
                assert!(a != b);
            }
        }
    }

    #[test]
    fn enumeration_decides_total_jds() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let sigma = vec![Pjd::parse(&u, "*[AB, AC]").unwrap()];
        let goal_same = Pjd::parse(&u, "*[AB, AC]").unwrap();
        assert_eq!(
            universe_bounded_decides(&sigma, &goal_same, &u, &mut pool),
            Some(true)
        );
        let goal_other = Pjd::parse(&u, "*[AB, BC]").unwrap();
        assert_eq!(
            universe_bounded_decides(&sigma, &goal_other, &u, &mut pool),
            Some(false)
        );
        // The 3-way jd follows from the mvd *[AB, AC].
        let goal_three = Pjd::parse(&u, "*[AB, AC, BC]").unwrap();
        assert_eq!(
            universe_bounded_decides(&sigma, &goal_three, &u, &mut pool),
            Some(true)
        );
    }

    #[test]
    fn pjd_proofs_roundtrip() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let sigma = vec![Pjd::parse(&u, "*[AB, AC]").unwrap()];
        let goal = Pjd::parse(&u, "*[AB, AC, BC]").unwrap();
        let proof = prove_pjd(&sigma, &goal, &u, &mut pool, &ChaseConfig::default())
            .expect("implication holds");
        check_pjd_proof(&sigma, &goal, &proof).expect("proof checks");
        // Checking against the wrong goal fails.
        let wrong = Pjd::parse(&u, "*[AB, BC]").unwrap();
        assert!(check_pjd_proof(&sigma, &wrong, &proof).is_err());
    }

    #[test]
    fn embedded_jd_proofs_work_too() {
        // pjds proper: project the joined result.
        let u = Universe::typed(vec!["A", "B", "C", "D"]);
        let mut pool = ValuePool::new(u.clone());
        let sigma = vec![Pjd::parse(&u, "*[AB, BC, CD]").unwrap()];
        let goal = Pjd::parse(&u, "*[AB, BC, CD] on AD").unwrap();
        let proof = prove_pjd(&sigma, &goal, &u, &mut pool, &ChaseConfig::default())
            .expect("a jd implies its projections");
        check_pjd_proof(&sigma, &goal, &proof).expect("proof checks");
    }
}
