//! Formal systems and Armstrong relations for dependency implication
//! (Section 5 and the end of Section 6 of Vardi, PODS 1982 / JCSS 1984).
//!
//! * [`proof`] — checkable chase proofs: a sound formal system for td/egd
//!   implication. Completeness for *finite* implication is impossible
//!   (Theorem 2 makes `⊭_f` non-r.e.), and this boundary is exactly what
//!   the paper's "no sound and complete formal system for finite
//!   implication" means.
//! * [`systems`] — Theorem 7's finite enumeration of `U`-pjds (why no
//!   *universe-bounded* system can be sound and complete) and Theorem 8's
//!   system that escapes the bound by transforming pjds to tds.
//! * [`armstrong`] — Theorem 5 context: direct products, agreement-set
//!   witnesses, and a real Armstrong-relation construction for fd sets.
//! * [`axiomatic`] — axiomatic (rule-based) proof-search oracles for the
//!   heterogeneous classes: Armstrong rules for fds, the
//!   Casanova–Fagin–Papadimitriou system for inclusion dependencies,
//!   independence-atom rules, and the sound mixed system bridging them.

#![warn(missing_docs)]

pub mod armstrong;
pub mod axiomatic;
pub mod minimize;
pub mod proof;
pub mod systems;

pub use armstrong::{agreement_witness, armstrong_violations, direct_product, fd_armstrong};
pub use axiomatic::{
    fd_axiomatic_implies, ind_axiomatic_implies, mixed_axiomatic_implies,
    verify as verify_axiomatic, AxFact, AxProof, AxRule, AxStep, Verdict,
};
pub use minimize::minimize;
pub use proof::{corrupt, prove, prove_checked, verify, Proof};
pub use systems::{all_pjds, check_pjd_proof, prove_pjd, universe_bounded_decides, PjdProof};
