//! Layout-parity property suite: the columnar [`Relation`] against a
//! reference row-vector model.
//!
//! The columnar store promises *exactly* the semantics of a deduplicating
//! `Vec<Tuple>` ("as if all rows had been re-inserted in order" — see
//! `Relation::rewrite_value`), with the inverted index, hash buckets, and
//! value counts merely accelerating it. This suite drives both
//! representations through randomized interleavings of `insert` and
//! `rewrite_value` and checks, after every operation:
//!
//! * row order and content (`tuples`) match the model verbatim;
//! * `RewriteReport` (changed/removed positions) matches the model's;
//! * the inverted index postings equal the model's recomputed postings,
//!   sorted ascending;
//! * `val`/`val_count`/`contains_value`/`column_values` agree with sets
//!   recomputed from the model;
//! * `project` equals the model's order-preserving deduplicated projection.
//!
//! No external property-testing dependency: a tiny LCG drives the cases.

use std::sync::Arc;
use typedtd_relational::{AttrSet, Relation, Tuple, Universe, Value, ValuePool};

/// Deterministic 64-bit LCG (MMIX constants); high bits are the sample.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn pick(state: &mut u64, n: usize) -> usize {
    (next(state) % n as u64) as usize
}

/// The reference model: rows in insertion order, first occurrence wins.
#[derive(Default)]
struct Model {
    rows: Vec<Vec<Value>>,
}

impl Model {
    fn insert(&mut self, row: Vec<Value>) -> bool {
        if self.rows.contains(&row) {
            false
        } else {
            self.rows.push(row);
            true
        }
    }

    /// Substitute then re-insert in order: duplicates drop (pre-compaction
    /// positions into `removed`), affected survivors land in `changed` at
    /// their post-compaction positions.
    fn rewrite(&mut self, from: Value, to: Value) -> Option<(Vec<u32>, Vec<u32>)> {
        if from == to || !self.rows.iter().flatten().any(|&v| v == from) {
            return None;
        }
        let mut out: Vec<Vec<Value>> = Vec::new();
        let mut changed = Vec::new();
        let mut removed = Vec::new();
        for (i, row) in self.rows.iter().enumerate() {
            let affected = row.contains(&from);
            let img: Vec<Value> = row
                .iter()
                .map(|&v| if v == from { to } else { v })
                .collect();
            if out.contains(&img) {
                removed.push(i as u32);
            } else {
                if affected {
                    changed.push(out.len() as u32);
                }
                out.push(img);
            }
        }
        self.rows = out;
        Some((changed, removed))
    }

    fn project(&self, attrs: &[usize]) -> Vec<Vec<Value>> {
        let mut out: Vec<Vec<Value>> = Vec::new();
        for row in &self.rows {
            let p: Vec<Value> = attrs.iter().map(|&a| row[a]).collect();
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }
}

/// Full structural comparison of the relation against the model.
fn assert_parity(rel: &Relation, model: &Model, u: &Arc<Universe>, ctx: &str) {
    assert_eq!(rel.len(), model.rows.len(), "{ctx}: row count");
    for (i, row) in model.rows.iter().enumerate() {
        let got: Vec<Value> = rel.row(i).values().collect();
        assert_eq!(&got, row, "{ctx}: row {i} content/order");
        assert!(rel.contains_values(row), "{ctx}: contains_values row {i}");
    }
    // tuples() adapts the columnar layout back to boxed rows, same order.
    let tuples = rel.tuples();
    for (i, t) in tuples.iter().enumerate() {
        let want = Tuple::new(model.rows[i].clone());
        assert_eq!(*t, want, "{ctx}: tuple {i}");
    }
    // VAL(I) and occurrence counts.
    let mut model_vals: Vec<Value> = model.rows.iter().flatten().copied().collect();
    model_vals.sort_unstable();
    model_vals.dedup();
    assert_eq!(rel.val_count(), model_vals.len(), "{ctx}: val_count");
    let mut rel_vals: Vec<Value> = rel.val().collect();
    rel_vals.sort_unstable();
    assert_eq!(rel_vals, model_vals, "{ctx}: VAL(I)");
    for &v in &model_vals {
        assert!(rel.contains_value(v), "{ctx}: contains_value");
    }
    // Inverted index postings, per column: sorted ascending and exactly
    // the model's occurrence positions.
    for (ci, a) in u.attrs().enumerate() {
        let mut col_vals: Vec<Value> = rel.column_values(a).collect();
        col_vals.sort_unstable();
        let mut model_col: Vec<Value> = model.rows.iter().map(|r| r[ci]).collect();
        model_col.sort_unstable();
        model_col.dedup();
        assert_eq!(col_vals, model_col, "{ctx}: column_values({ci})");
        for &v in &model_col {
            let postings = rel.index().rows_with(a, v);
            let want: Vec<u32> = model
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r[ci] == v)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(postings, &want[..], "{ctx}: postings col {ci}");
        }
        // The raw column slice is the layout itself.
        let col = rel.column(a);
        for (i, row) in model.rows.iter().enumerate() {
            assert_eq!(col[i], row[ci], "{ctx}: column slice {ci}[{i}]");
        }
    }
}

#[test]
fn columnar_matches_row_model_under_inserts_and_rewrites() {
    let u = Universe::untyped_abc();
    for case in 0..60u64 {
        let mut state = 0x9e3779b97f4a7c15u64 ^ (case.wrapping_mul(0x2545f4914f6cdd1d));
        let mut pool = ValuePool::new(u.clone());
        let vals: Vec<Value> = (0..6).map(|i| pool.untyped(&format!("v{i}"))).collect();
        let mut rel = Relation::new(u.clone());
        let mut model = Model::default();
        for op in 0..40 {
            if pick(&mut state, 4) < 3 {
                // Insert a random row (duplicates on purpose: ~6^3 space).
                let row: Vec<Value> = (0..3).map(|_| vals[pick(&mut state, vals.len())]).collect();
                let inserted = rel.insert(Tuple::new(row.clone()));
                let want = model.insert(row);
                assert_eq!(inserted, want, "case {case} op {op}: insert novelty");
            } else {
                // Rewrite one value into another (the egd merge step).
                let from = vals[pick(&mut state, vals.len())];
                let to = vals[pick(&mut state, vals.len())];
                let report = rel.rewrite_value(from, to);
                let want = model.rewrite(from, to);
                match (&report, &want) {
                    (None, None) => {}
                    (Some(r), Some((changed, removed))) => {
                        assert_eq!(&r.changed, changed, "case {case} op {op}: changed");
                        assert_eq!(&r.removed, removed, "case {case} op {op}: removed");
                    }
                    _ => panic!(
                        "case {case} op {op}: report mismatch: {report:?} vs {want:?}"
                    ),
                }
            }
            assert_parity(&rel, &model, &u, &format!("case {case} op {op}"));
        }
    }
}

#[test]
fn projection_matches_row_model() {
    let u = Universe::untyped_abc();
    let attrs: Vec<_> = u.attrs().collect();
    for case in 0..30u64 {
        let mut state = 0xd1b54a32d192ed03u64 ^ (case.wrapping_mul(0x94d049bb133111eb));
        let mut pool = ValuePool::new(u.clone());
        let vals: Vec<Value> = (0..4).map(|i| pool.untyped(&format!("p{i}"))).collect();
        let mut rel = Relation::new(u.clone());
        let mut model = Model::default();
        for _ in 0..12 {
            let row: Vec<Value> = (0..3).map(|_| vals[pick(&mut state, vals.len())]).collect();
            rel.insert(Tuple::new(row.clone()));
            model.insert(row);
        }
        // Every nonempty attribute subset.
        for mask in 1u32..8 {
            let chosen: Vec<usize> = (0..3).filter(|i| mask & (1 << i) != 0).collect();
            let set: AttrSet = chosen.iter().map(|&i| attrs[i]).collect();
            let projected = rel.project(&set);
            let want = model.project(&chosen);
            assert_eq!(projected.len(), want.len(), "case {case} mask {mask}: size");
            // The projection's schema is the chosen attributes in column
            // order; each row is a boxed slice in that same order.
            let schema: Vec<_> = chosen.iter().map(|&i| attrs[i]).collect();
            assert_eq!(projected.attrs(), &schema[..], "case {case} mask {mask}: schema");
            for row in &want {
                assert!(
                    projected.rows().contains(&row.clone().into_boxed_slice()),
                    "case {case} mask {mask}: projected row present"
                );
            }
        }
    }
}
