//! Tuples — `U`-values in the paper's terminology (Section 2.1).

use crate::bitset::AttrSet;
use crate::universe::{AttrId, Universe};
use crate::value::{Value, ValuePool};
use std::fmt;

/// A tuple over a universe: one [`Value`] per column, in column order.
///
/// The width is implicit; all operations that combine tuples with relations
/// or universes check it. Construction through [`Tuple::checked`] also
/// verifies typedness (each value's sort matches its column).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values in column order (no typedness check).
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    /// Builds a tuple, verifying width and (for typed universes) sorts.
    ///
    /// # Errors
    /// Returns a description of the first violation found.
    pub fn checked(
        universe: &Universe,
        pool: &ValuePool,
        values: Vec<Value>,
    ) -> Result<Self, String> {
        if values.len() != universe.width() {
            return Err(format!(
                "tuple width {} does not match universe width {}",
                values.len(),
                universe.width()
            ));
        }
        for (i, &v) in values.iter().enumerate() {
            let attr = AttrId(i as u16);
            if !pool.fits(v, attr) {
                return Err(format!(
                    "value {:?} ({}) has sort {:?} but sits in column {}",
                    v,
                    pool.name(v),
                    pool.sort(v).map(|a| universe.name(a).to_string()),
                    universe.name(attr),
                ));
            }
        }
        Ok(Self::new(values))
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Value in column `a` — `w[A]` in the paper.
    #[inline]
    pub fn get(&self, a: AttrId) -> Value {
        self.values[a.index()]
    }

    /// All values in column order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Restriction `w[Y]`: the values of `self` on the attributes of `set`,
    /// in column order.
    pub fn restrict(&self, set: &AttrSet) -> Box<[Value]> {
        set.iter().map(|a| self.get(a)).collect()
    }

    /// `true` if `self[X] = other[X]`.
    pub fn agrees_on(&self, other: &Tuple, set: &AttrSet) -> bool {
        set.iter().all(|a| self.get(a) == other.get(a))
    }

    /// Replaces the value in column `a`, returning a new tuple.
    pub fn with(&self, a: AttrId, v: Value) -> Tuple {
        let mut values = self.values.to_vec();
        values[a.index()] = v;
        Tuple::new(values)
    }

    /// Applies `f` to every value, returning the image tuple — `α(w)`.
    pub fn map(&self, mut f: impl FnMut(Value) -> Value) -> Tuple {
        Tuple::new(self.values.iter().map(|&v| f(v)).collect())
    }

    /// `VAL(w)`: the set of values occurring in the tuple.
    pub fn val(&self) -> impl Iterator<Item = Value> + '_ {
        self.values.iter().copied()
    }

    /// Renders the tuple as `(v1, v2, …)` using pool names.
    pub fn render(&self, pool: &ValuePool) -> String {
        let parts: Vec<&str> = self.values.iter().map(|&v| pool.name(v)).collect();
        format!("({})", parts.join(", "))
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tuple{:?}", self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (std::sync::Arc<Universe>, ValuePool) {
        let u = Universe::typed_abcdef();
        let p = ValuePool::new(u.clone());
        (u, p)
    }

    #[test]
    fn checked_rejects_wrong_width() {
        let (u, mut p) = setup();
        let a = p.typed(u.a("A"), "a");
        assert!(Tuple::checked(&u, &p, vec![a]).is_err());
    }

    #[test]
    fn checked_rejects_sort_violation() {
        let (u, mut p) = setup();
        let a = p.typed(u.a("A"), "a");
        let vals: Vec<Value> = std::iter::repeat_n(a, 6).collect();
        let err = Tuple::checked(&u, &p, vals).unwrap_err();
        assert!(err.contains("column B"), "unexpected error: {err}");
    }

    #[test]
    fn checked_accepts_well_typed_row() {
        let (u, mut p) = setup();
        let vals: Vec<Value> = u.attrs().map(|a| p.fresh(Some(a), "x")).collect();
        let t = Tuple::checked(&u, &p, vals).unwrap();
        assert_eq!(t.width(), 6);
    }

    #[test]
    fn restrict_and_agrees() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c, d) = (
            p.untyped("a"),
            p.untyped("b"),
            p.untyped("c"),
            p.untyped("d"),
        );
        let t1 = Tuple::new(vec![a, b, c]);
        let t2 = Tuple::new(vec![a, b, d]);
        let ab = u.set("A' B'");
        assert!(t1.agrees_on(&t2, &ab));
        assert!(!t1.agrees_on(&t2, &u.all()));
        assert_eq!(&*t1.restrict(&ab), &[a, b]);
    }

    #[test]
    fn with_replaces_single_column() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b) = (p.untyped("a"), p.untyped("b"));
        let t = Tuple::new(vec![a, a, a]).with(u.a("B'"), b);
        assert_eq!(t.get(u.a("A'")), a);
        assert_eq!(t.get(u.a("B'")), b);
    }
}
