//! Relational substrate for typed template dependency theory.
//!
//! This crate implements Section 2.1–2.2 of Vardi's *"The Implication and
//! Finite Implication Problems for Typed Template Dependencies"*
//! (PODS 1982 / JCSS 1984): universes of attributes with typed or untyped
//! domain disciplines, interned values, tuples, finite relations,
//! projections, natural joins and the project-join mapping `m_R`, valuations,
//! and a hash-join-shaped homomorphism (embedding) engine.
//!
//! Everything in the dependency layer, the chase engine, and the paper's
//! reductions is built on these primitives.
//!
//! # Storage model: arena-interned values, columnar relations
//!
//! Values are interned once into a [`ValuePool`] — the per-pool *arena* —
//! and handled everywhere as [`Value`], a plain `u32` index into that
//! arena. A [`Relation`] stores its rows **columnar**: one flat
//! `Vec<Value>` per attribute, so a chase scan probing one column touches a
//! contiguous `u32` vector instead of one heap allocation per row.
//! Alongside the columns the relation maintains, incrementally on every
//! insert and equality-rewrite:
//!
//! * a per-attribute inverted index `value → sorted row positions`
//!   ([`ColumnIndex`]) — the probe side of embedding search;
//! * row-hash buckets for duplicate elimination without materialized
//!   tuples;
//! * per-value occurrence counts, making `VAL(I)` ([`Relation::val`]) and
//!   value membership O(1) allocation-free views.
//!
//! [`Tuple`] remains the boxed row type of the paper-facing API
//! (dependencies, tableaux, rendered tables); [`Relation::tuples`] /
//! [`Relation::row_tuple`] adapt between the layouts, and
//! [`relation::RowRef`] gives hot paths a borrowed row view. The layout
//! invariants are spelled out in the [`relation`] module docs.
//!
//! # Quick tour
//!
//! ```
//! use typedtd_relational::{Universe, ValuePool, Tuple, Relation};
//!
//! let u = Universe::untyped_abc();            // U' = A'B'C'
//! let mut pool = ValuePool::new(u.clone());
//! let (a, b, c) = (pool.untyped("a"), pool.untyped("b"), pool.untyped("c"));
//! let rel = Relation::from_rows(u.clone(), [
//!     Tuple::new(vec![a, b, c]),
//!     Tuple::new(vec![b, a, c]),
//! ]);
//! assert_eq!(rel.len(), 2);
//! assert_eq!(rel.project(&u.set("C'")).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod display;
pub mod fx;
pub mod hom;
pub mod isomorphism;
pub mod relation;
pub mod tuple;
pub mod universe;
pub mod value;

pub use bitset::AttrSet;
pub use display::{render_relation, render_rows};
pub use fx::{FxHashMap, FxHashSet};
pub use hom::{embeds, find_embedding, satisfies_row, Embedder, RowDelta, ScanStats, Valuation};
pub use isomorphism::{isomorphic, isomorphism};
pub use relation::{project_join, ColumnIndex, Projection, Relation, RewriteReport, RowRef};
pub use tuple::Tuple;
pub use universe::{AttrId, Typing, Universe};
pub use value::{Value, ValuePool};
