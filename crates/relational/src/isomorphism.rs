//! Relation isomorphism: equality up to a bijective renaming of values.
//!
//! The paper's constructions are all "up to renaming" (`T⁻¹(T(I)) ≅ I`,
//! counterexamples are compared structurally); this module provides the
//! exact test. Isomorphism search is backtracking over rows with candidate
//! filtering by per-relation invariants, feasible at tableau scale.

use crate::fx::FxHashMap;
use crate::relation::Relation;
use crate::value::Value;

/// Finds a bijection `f : VAL(a) → VAL(b)` with `f(a) = b`, if one exists.
pub fn isomorphism(a: &Relation, b: &Relation) -> Option<FxHashMap<Value, Value>> {
    if a.universe() != b.universe() || a.len() != b.len() || a.val_count() != b.val_count() {
        return None;
    }
    let mut fwd: FxHashMap<Value, Value> = FxHashMap::default();
    let mut bwd: FxHashMap<Value, Value> = FxHashMap::default();
    let mut used = vec![false; b.len()];
    if match_rows(a, b, 0, &mut used, &mut fwd, &mut bwd) {
        Some(fwd)
    } else {
        None
    }
}

/// `true` if the relations are isomorphic.
pub fn isomorphic(a: &Relation, b: &Relation) -> bool {
    isomorphism(a, b).is_some()
}

fn match_rows(
    a: &Relation,
    b: &Relation,
    i: usize,
    used: &mut [bool],
    fwd: &mut FxHashMap<Value, Value>,
    bwd: &mut FxHashMap<Value, Value>,
) -> bool {
    if i == a.len() {
        return true;
    }
    let row_a = a.row(i);
    for j in 0..b.len() {
        if used[j] {
            continue;
        }
        let row_b = b.row(j);
        // Try to extend the bijection along this row pairing.
        let mut trail: Vec<Value> = Vec::new();
        let mut ok = true;
        for (va, vb) in row_a.values().zip(row_b.values()) {
            match (fwd.get(&va), bwd.get(&vb)) {
                (Some(&img), _) if img != vb => {
                    ok = false;
                    break;
                }
                (None, Some(&pre)) if pre != va => {
                    ok = false;
                    break;
                }
                (Some(_), _) => {}
                (None, _) => {
                    fwd.insert(va, vb);
                    bwd.insert(vb, va);
                    trail.push(va);
                }
            }
        }
        if ok {
            used[j] = true;
            if match_rows(a, b, i + 1, used, fwd, bwd) {
                return true;
            }
            used[j] = false;
        }
        for va in trail {
            let vb = fwd.remove(&va).expect("trail entry bound");
            bwd.remove(&vb);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::universe::Universe;
    use crate::value::ValuePool;
    use std::sync::Arc;

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[[&str; 3]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect())),
        )
    }

    #[test]
    fn renamed_relations_are_isomorphic() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let a = rel(&u, &mut p, &[["a", "b", "c"], ["b", "a", "c"]]);
        let b = rel(&u, &mut p, &[["x", "y", "z"], ["y", "x", "z"]]);
        let f = isomorphism(&a, &b).expect("isomorphic");
        // The bijection must respect the sharing pattern.
        let av = p.get(None, "a").unwrap();
        let cv = p.get(None, "c").unwrap();
        assert_ne!(f[&av], f[&cv]);
    }

    #[test]
    fn different_sharing_patterns_are_not_isomorphic() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // (a,a,b) shares across columns; (x,y,z) does not.
        let a = rel(&u, &mut p, &[["a", "a", "b"]]);
        let b = rel(&u, &mut p, &[["x", "y", "z"]]);
        assert!(!isomorphic(&a, &b));
        assert!(isomorphic(&a, &rel(&u, &mut p, &[["q", "q", "r"]])));
    }

    #[test]
    fn row_counts_must_match() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let a = rel(&u, &mut p, &[["a", "b", "c"]]);
        let b = rel(&u, &mut p, &[["a", "b", "c"], ["d", "e", "f"]]);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn value_counts_must_match() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let a = rel(&u, &mut p, &[["a", "b", "c"], ["a", "b", "d"]]);
        let b = rel(&u, &mut p, &[["a", "b", "c"], ["a", "e", "d"]]);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn isomorphism_is_an_equivalence_on_samples() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let a = rel(&u, &mut p, &[["a", "b", "c"], ["c", "b", "a"]]);
        let b = rel(&u, &mut p, &[["1", "2", "3"], ["3", "2", "1"]]);
        let c = rel(&u, &mut p, &[["p", "q", "r"], ["r", "q", "p"]]);
        assert!(isomorphic(&a, &a), "reflexive");
        assert!(isomorphic(&a, &b) && isomorphic(&b, &a), "symmetric");
        assert!(
            isomorphic(&a, &b) && isomorphic(&b, &c) && isomorphic(&a, &c),
            "transitive on this sample"
        );
    }

    #[test]
    fn typed_relations_compare_within_sorts() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut p = ValuePool::new(u.clone());
        let mk = |p: &mut ValuePool, a: &str, b: &str| {
            Tuple::new(vec![p.typed(u.a("A"), a), p.typed(u.a("B"), b)])
        };
        let r1 = Relation::from_rows(u.clone(), [mk(&mut p, "a1", "b1")]);
        let r2 = Relation::from_rows(u.clone(), [mk(&mut p, "a2", "b2")]);
        assert!(isomorphic(&r1, &r2));
    }
}
