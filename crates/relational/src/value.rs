//! Interned domain values.
//!
//! Every domain element (and every variable of a tableau — the paper does not
//! distinguish the two, a dependency simply *is* a pair of a tuple and a
//! finite relation) is an interned [`Value`] handle. A [`ValuePool`] owns the
//! metadata: a display name and, for typed universes, the *sort* — the unique
//! attribute whose domain the value belongs to. Sorts make the paper's
//! typedness restriction (`A ≠ B ⟹ DOM(A) ∩ DOM(B) = ∅`) machine-checked.

use crate::fx::FxHashMap;
use crate::universe::{AttrId, Typing, Universe};
use std::fmt;
use std::sync::Arc;

/// An interned domain value (or tableau variable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u32);

impl Value {
    /// Raw interner index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Owner of value metadata for one universe.
#[derive(Clone)]
pub struct ValuePool {
    universe: Arc<Universe>,
    names: Vec<String>,
    sorts: Vec<Option<AttrId>>,
    by_key: FxHashMap<(Option<AttrId>, String), Value>,
    fresh: u32,
}

impl ValuePool {
    /// Creates an empty pool for `universe`.
    pub fn new(universe: Arc<Universe>) -> Self {
        Self {
            universe,
            names: Vec::new(),
            sorts: Vec::new(),
            by_key: FxHashMap::default(),
            fresh: 0,
        }
    }

    /// The universe this pool belongs to.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn alloc(&mut self, sort: Option<AttrId>, name: String) -> Value {
        let v = Value(self.names.len() as u32);
        self.by_key.insert((sort, name.clone()), v);
        self.names.push(name);
        self.sorts.push(sort);
        v
    }

    /// Interns a value of attribute `attr`'s domain in a **typed** universe.
    ///
    /// Repeated calls with the same `(attr, name)` return the same handle.
    ///
    /// # Panics
    /// Panics if the universe is untyped.
    pub fn typed(&mut self, attr: AttrId, name: &str) -> Value {
        assert_eq!(
            self.universe.typing(),
            Typing::Typed,
            "typed() requires a typed universe; use untyped()"
        );
        if let Some(&v) = self.by_key.get(&(Some(attr), name.to_string())) {
            return v;
        }
        self.alloc(Some(attr), name.to_string())
    }

    /// Interns a value of the shared domain in an **untyped** universe.
    ///
    /// # Panics
    /// Panics if the universe is typed.
    pub fn untyped(&mut self, name: &str) -> Value {
        assert_eq!(
            self.universe.typing(),
            Typing::Untyped,
            "untyped() requires an untyped universe; use typed()"
        );
        if let Some(&v) = self.by_key.get(&(None, name.to_string())) {
            return v;
        }
        self.alloc(None, name.to_string())
    }

    /// Interns a value appropriate for `attr` under the pool's discipline:
    /// sorted in typed universes, unsorted otherwise.
    pub fn for_attr(&mut self, attr: AttrId, name: &str) -> Value {
        match self.universe.typing() {
            Typing::Typed => self.typed(attr, name),
            Typing::Untyped => self.untyped(name),
        }
    }

    /// Allocates a brand-new value that is distinct from every existing one.
    ///
    /// In a typed universe the value is sorted by `attr`. The generated name
    /// is `"{prefix}{counter}"`, adjusted to avoid clashes.
    pub fn fresh(&mut self, attr: Option<AttrId>, prefix: &str) -> Value {
        let sort = match self.universe.typing() {
            Typing::Typed => Some(attr.expect("typed universes require a sort for fresh values")),
            Typing::Untyped => None,
        };
        loop {
            self.fresh += 1;
            let name = format!("{prefix}{}", self.fresh);
            // Entry probes the map once with the owned key — fresh minting
            // is the chase's hottest allocation site, so the extra clone +
            // rehash of a contains-then-insert sequence matters.
            match self.by_key.entry((sort, name)) {
                std::collections::hash_map::Entry::Occupied(_) => continue,
                std::collections::hash_map::Entry::Vacant(e) => {
                    let v = Value(self.names.len() as u32);
                    self.names.push(e.key().1.clone());
                    self.sorts.push(sort);
                    e.insert(v);
                    return v;
                }
            }
        }
    }

    /// Looks a value up without interning it.
    pub fn get(&self, sort: Option<AttrId>, name: &str) -> Option<Value> {
        self.by_key.get(&(sort, name.to_string())).copied()
    }

    /// Display name of `v`.
    pub fn name(&self, v: Value) -> &str {
        &self.names[v.index()]
    }

    /// Sort of `v` (`None` in untyped universes).
    pub fn sort(&self, v: Value) -> Option<AttrId> {
        self.sorts[v.index()]
    }

    /// `true` if `v` may legally appear in column `attr`.
    pub fn fits(&self, v: Value, attr: AttrId) -> bool {
        match self.sorts[v.index()] {
            None => true,
            Some(s) => s == attr,
        }
    }
}

impl fmt::Debug for ValuePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ValuePool({} values over {:?})", self.len(), self.universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_interning_is_idempotent() {
        let u = Universe::typed_abcdef();
        let mut p = ValuePool::new(u.clone());
        let a1 = p.typed(u.a("A"), "a1");
        let a1_again = p.typed(u.a("A"), "a1");
        assert_eq!(a1, a1_again);
        assert_eq!(p.len(), 1);
        assert_eq!(p.name(a1), "a1");
        assert_eq!(p.sort(a1), Some(u.a("A")));
    }

    #[test]
    fn same_name_different_sorts_are_distinct() {
        let u = Universe::typed_abcdef();
        let mut p = ValuePool::new(u.clone());
        let va = p.typed(u.a("A"), "x");
        let vb = p.typed(u.a("B"), "x");
        assert_ne!(va, vb);
        assert!(p.fits(va, u.a("A")));
        assert!(!p.fits(va, u.a("B")));
    }

    #[test]
    fn untyped_values_fit_everywhere() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let a = p.untyped("a");
        assert!(p.fits(a, u.a("A'")));
        assert!(p.fits(a, u.a("C'")));
    }

    #[test]
    fn fresh_values_never_collide() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u);
        let named = p.untyped("n1");
        let f1 = p.fresh(None, "n");
        let f2 = p.fresh(None, "n");
        assert_ne!(f1, f2);
        assert_ne!(f1, named, "fresh must dodge existing names");
        assert_ne!(p.name(f1), p.name(named));
    }

    #[test]
    #[should_panic(expected = "typed() requires a typed universe")]
    fn typed_on_untyped_universe_panics() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let _ = p.typed(u.a("A'"), "a");
    }

    #[test]
    fn get_does_not_intern() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u);
        assert!(p.get(None, "ghost").is_none());
        let v = p.untyped("ghost");
        assert_eq!(p.get(None, "ghost"), Some(v));
    }
}
