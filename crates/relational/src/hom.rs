//! Valuations and homomorphism (embedding) search.
//!
//! A *valuation* (Section 2.2) is a partial map on values; in typed
//! universes it preserves sorts. Dependency satisfaction, chase triggers,
//! tableau cores, and the paper's `T⁻¹` construction all reduce to one
//! primitive: enumerate the valuations `α` with `α(I) ⊆ J` for a list of
//! source rows `I` and a target relation `J`, optionally extending a fixed
//! partial valuation.
//!
//! The search is backtracking over source rows, most-constrained-first, with
//! candidate rows filtered through the target's [`ColumnIndex`].

use crate::fx::FxHashMap;
use crate::relation::{ColumnIndex, Relation};
use crate::tuple::Tuple;
use crate::universe::AttrId;
use crate::value::Value;
use std::ops::ControlFlow;

/// A partial mapping from values to values.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Valuation {
    map: FxHashMap<Value, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a valuation from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Value, Value)>) -> Self {
        Self {
            map: pairs.into_iter().collect(),
        }
    }

    /// The identity valuation on `values`.
    pub fn identity_on(values: impl IntoIterator<Item = Value>) -> Self {
        Self::from_pairs(values.into_iter().map(|v| (v, v)))
    }

    /// Image of `v`, if bound.
    #[inline]
    pub fn get(&self, v: Value) -> Option<Value> {
        self.map.get(&v).copied()
    }

    /// Binds `v ↦ w`. Returns the previous image, if any.
    pub fn bind(&mut self, v: Value, w: Value) -> Option<Value> {
        self.map.insert(v, w)
    }

    /// Removes the binding of `v`.
    pub fn unbind(&mut self, v: Value) {
        self.map.remove(&v);
    }

    /// Number of bound values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(source, image)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Value, Value)> + '_ {
        self.map.iter().map(|(&a, &b)| (a, b))
    }

    /// Applies the valuation to a tuple — `α(w)`.
    ///
    /// # Panics
    /// Panics if some value of the tuple is unbound.
    pub fn apply_tuple(&self, t: &Tuple) -> Tuple {
        t.map(|v| {
            self.get(v)
                .unwrap_or_else(|| panic!("valuation undefined on {v:?}"))
        })
    }

    /// Applies the valuation to every row — `α(I)`.
    pub fn apply_rows(&self, rows: &[Tuple]) -> Vec<Tuple> {
        rows.iter().map(|t| self.apply_tuple(t)).collect()
    }

    /// Raw map access (for [`Relation::map`]).
    pub fn as_map(&self) -> &FxHashMap<Value, Value> {
        &self.map
    }
}

/// A set of target-row positions used to restrict embedding search: the
/// semi-naive chase's *delta* (rows added or rewritten since a dependency
/// was last checked).
#[derive(Clone, Debug, Default)]
pub struct RowDelta {
    sorted: Vec<u32>,
    set: crate::fx::FxHashSet<u32>,
}

impl RowDelta {
    /// Builds a delta from row positions (deduplicated, kept sorted).
    pub fn from_ids(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        let set = ids.iter().copied().collect();
        Self { sorted: ids, set }
    }

    /// Number of delta rows.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.set.contains(&id)
    }

    /// The positions, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.sorted
    }
}

/// How a source row may be placed during delta-restricted search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RowClass {
    /// Any target row.
    Any,
    /// Only delta rows (the pinned source row).
    Delta,
    /// Only non-delta rows (source rows before the pin, so each embedding is
    /// enumerated exactly once: at its smallest delta-touching source index).
    Old,
}

struct DeltaConstraint<'d> {
    classes: Vec<RowClass>,
    delta: &'d RowDelta,
}

/// Reusable embedding searcher for one target relation.
///
/// Borrows the target's incrementally maintained [`ColumnIndex`] —
/// construction is free of index-build cost.
pub struct Embedder<'a> {
    target: &'a Relation,
    index: &'a ColumnIndex,
    attrs: Vec<AttrId>,
}

impl<'a> Embedder<'a> {
    /// Prepares a searcher over `target` (no index build; the relation
    /// maintains its index incrementally).
    pub fn new(target: &'a Relation) -> Self {
        Self {
            target,
            index: target.index(),
            attrs: target.universe().attrs().collect(),
        }
    }

    /// The target relation.
    pub fn target(&self) -> &'a Relation {
        self.target
    }

    /// Calls `f` for every valuation `α ⊇ seed` with `α(source) ⊆ target`.
    ///
    /// Returns `true` if `f` broke out early. Valuations are *not*
    /// required to be injective (per the paper's definition).
    pub fn for_each_embedding(
        &self,
        source: &[Tuple],
        seed: &Valuation,
        mut f: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> bool {
        let order = self.plan(source, seed, None);
        let mut alpha = seed.clone();
        let f: &mut dyn FnMut(&Valuation) -> ControlFlow<()> = &mut f;
        self.search(source, &order, 0, &mut alpha, None, f).is_break()
    }

    /// Calls `f` for every valuation `α ⊇ seed` with `α(source) ⊆ target`
    /// that maps **at least one source row onto a row of `delta`** — the
    /// semi-naive trigger-discovery entry point.
    ///
    /// Each qualifying embedding is enumerated exactly once: it is produced
    /// for the *smallest* source-row index whose image lies in the delta
    /// (earlier rows are constrained to old rows, later rows are free).
    /// With an empty `source` or an empty `delta` nothing is enumerated.
    ///
    /// Returns `true` if `f` broke out early.
    pub fn for_each_embedding_touching(
        &self,
        source: &[Tuple],
        seed: &Valuation,
        delta: &RowDelta,
        mut f: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> bool {
        if source.is_empty() || delta.is_empty() {
            return false;
        }
        let f: &mut dyn FnMut(&Valuation) -> ControlFlow<()> = &mut f;
        for pin in 0..source.len() {
            let order = self.plan(source, seed, Some(pin));
            let constraint = DeltaConstraint {
                classes: (0..source.len())
                    .map(|i| match i.cmp(&pin) {
                        std::cmp::Ordering::Less => RowClass::Old,
                        std::cmp::Ordering::Equal => RowClass::Delta,
                        std::cmp::Ordering::Greater => RowClass::Any,
                    })
                    .collect(),
                delta,
            };
            let mut alpha = seed.clone();
            if self
                .search(source, &order, 0, &mut alpha, Some(&constraint), f)
                .is_break()
            {
                return true;
            }
        }
        false
    }

    /// First embedding extending `seed`, if any.
    pub fn find_embedding(&self, source: &[Tuple], seed: &Valuation) -> Option<Valuation> {
        let mut found = None;
        self.for_each_embedding(source, seed, |a| {
            found = Some(a.clone());
            ControlFlow::Break(())
        });
        found
    }

    /// `true` if some embedding extending `seed` exists.
    pub fn embeds(&self, source: &[Tuple], seed: &Valuation) -> bool {
        self.find_embedding(source, seed).is_some()
    }

    /// Number of embeddings extending `seed` (for tests and diagnostics).
    pub fn count_embeddings(&self, source: &[Tuple], seed: &Valuation) -> usize {
        let mut n = 0;
        self.for_each_embedding(source, seed, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// Orders source rows most-constrained-first: rows sharing values with
    /// the seed or with already-placed rows come early. With `first` set,
    /// that row is placed up front (the semi-naive pin, whose candidate set
    /// is the small delta).
    fn plan(&self, source: &[Tuple], seed: &Valuation, first: Option<usize>) -> Vec<usize> {
        let n = source.len();
        let mut placed = vec![false; n];
        let mut bound: std::collections::HashSet<Value> =
            seed.iter().map(|(v, _)| v).collect();
        let mut order = Vec::with_capacity(n);
        if let Some(pin) = first {
            placed[pin] = true;
            bound.extend(source[pin].val());
            order.push(pin);
        }
        while order.len() < n {
            let best = (0..n)
                .filter(|&i| !placed[i])
                .max_by_key(|&i| {
                    let b = source[i].val().filter(|v| bound.contains(v)).count();
                    // Tie-break toward earlier rows for determinism.
                    (b, usize::MAX - i)
                })
                .expect("unplaced row exists");
            placed[best] = true;
            bound.extend(source[best].val());
            order.push(best);
        }
        order
    }

    fn search(
        &self,
        source: &[Tuple],
        order: &[usize],
        depth: usize,
        alpha: &mut Valuation,
        constraint: Option<&DeltaConstraint<'_>>,
        f: &mut dyn FnMut(&Valuation) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if depth == order.len() {
            return f(alpha);
        }
        let row = &source[order[depth]];
        let class = constraint.map_or(RowClass::Any, |c| c.classes[order[depth]]);

        // Choose the cheapest candidate source: the bound column with the
        // shortest posting list, or the whole relation if nothing is bound.
        let mut best: Option<&[u32]> = None;
        for &a in &self.attrs {
            if let Some(img) = alpha.get(row.get(a)) {
                let posting = self.index.rows_with(a, img);
                if best.is_none_or(|b| posting.len() < b.len()) {
                    best = Some(posting);
                }
            }
        }

        let try_candidate = |this: &Self,
                                 ri: u32,
                                 alpha: &mut Valuation,
                                 f: &mut dyn FnMut(&Valuation) -> ControlFlow<()>|
         -> ControlFlow<()> {
            match class {
                RowClass::Any => {}
                RowClass::Delta => {
                    if !constraint.expect("delta class implies constraint").delta.contains(ri) {
                        return ControlFlow::Continue(());
                    }
                }
                RowClass::Old => {
                    if constraint.expect("old class implies constraint").delta.contains(ri) {
                        return ControlFlow::Continue(());
                    }
                }
            }
            let cand = &this.target.rows()[ri as usize];
            let mut trail: Vec<Value> = Vec::new();
            let mut ok = true;
            for &a in &this.attrs {
                let sv = row.get(a);
                let tv = cand.get(a);
                match alpha.get(sv) {
                    Some(existing) if existing != tv => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        alpha.bind(sv, tv);
                        trail.push(sv);
                    }
                }
            }
            let flow = if ok {
                this.search(source, order, depth + 1, alpha, constraint, f)
            } else {
                ControlFlow::Continue(())
            };
            for v in trail {
                alpha.unbind(v);
            }
            flow
        };

        // For a pinned (delta-class) row, the delta itself is usually the
        // smallest candidate set; consistency with `alpha` is re-checked by
        // `try_candidate`, so any superset of the true candidates is sound.
        let delta_ids = match class {
            RowClass::Delta => constraint.map(|c| c.delta.ids()),
            _ => None,
        };
        match (best, delta_ids) {
            (Some(posting), Some(ids)) if ids.len() < posting.len() => {
                for &ri in ids {
                    try_candidate(self, ri, alpha, f)?;
                }
            }
            (None, Some(ids)) => {
                for &ri in ids {
                    try_candidate(self, ri, alpha, f)?;
                }
            }
            (Some(posting), _) => {
                for &ri in posting {
                    try_candidate(self, ri, alpha, f)?;
                }
            }
            (None, None) => {
                for ri in 0..self.target.rows().len() as u32 {
                    try_candidate(self, ri, alpha, f)?;
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Convenience: `true` if the rows of `source` embed into `target` extending
/// `seed` (one-shot index build).
pub fn embeds(source: &[Tuple], target: &Relation, seed: &Valuation) -> bool {
    Embedder::new(target).embeds(source, seed)
}

/// Convenience: first embedding of `source` into `target` extending `seed`.
pub fn find_embedding(source: &[Tuple], target: &Relation, seed: &Valuation) -> Option<Valuation> {
    Embedder::new(target).find_embedding(source, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::value::ValuePool;
    use std::sync::Arc;

    fn rel(
        u: &Arc<Universe>,
        p: &mut ValuePool,
        rows: &[[&str; 3]],
    ) -> (Relation, Vec<Tuple>) {
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect()))
            .collect();
        (
            Relation::from_rows(u.clone(), tuples.iter().cloned()),
            tuples,
        )
    }

    #[test]
    fn identity_embedding_always_exists() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, rows) = rel(&u, &mut p, &[["a", "b", "c"], ["b", "a", "c"]]);
        let e = Embedder::new(&r);
        assert!(e.embeds(&rows, &Valuation::new()));
        // And the identity is among the embeddings.
        let id = Valuation::identity_on(r.val());
        assert!(e.embeds(&rows, &id));
    }

    #[test]
    fn embedding_respects_seed() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"]]);
        let x = p.untyped("x");
        let y = p.untyped("y");
        let z = p.untyped("z");
        let pattern = vec![Tuple::new(vec![x, y, z])];
        let e = Embedder::new(&r);
        // Unconstrained: embeds.
        assert!(e.embeds(&pattern, &Valuation::new()));
        // Seed forcing x ↦ b cannot match (a,b,c) in column A'.
        let b = p.get(None, "b").unwrap();
        let seed = Valuation::from_pairs([(x, b)]);
        assert!(!e.embeds(&pattern, &seed));
    }

    #[test]
    fn non_injective_embeddings_are_allowed() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "a", "a"]]);
        let x = p.untyped("x");
        let y = p.untyped("y");
        let z = p.untyped("z");
        // Pattern with three distinct variables maps onto the single
        // constant row by collapsing all of them.
        let pattern = vec![Tuple::new(vec![x, y, z])];
        assert!(embeds(&pattern, &r, &Valuation::new()));
    }

    #[test]
    fn shared_variable_forces_equality() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"], ["d", "d", "e"]]);
        let x = p.untyped("x");
        let z = p.untyped("z");
        // Pattern row (x, x, z): only (d,d,e) matches.
        let pattern = vec![Tuple::new(vec![x, x, z])];
        let e = Embedder::new(&r);
        assert_eq!(e.count_embeddings(&pattern, &Valuation::new()), 1);
        let hom = e.find_embedding(&pattern, &Valuation::new()).unwrap();
        assert_eq!(hom.get(x), p.get(None, "d"));
    }

    #[test]
    fn multi_row_pattern_with_join_variable() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(
            &u,
            &mut p,
            &[["a", "b", "c"], ["c", "d", "e"], ["a", "d", "e"]],
        );
        // Pattern: rows (x,_,m), (m,_,_) — chained through m.
        let x = p.untyped("x");
        let m = p.untyped("m");
        let q1 = p.untyped("q1");
        let q2 = p.untyped("q2");
        let q3 = p.untyped("q3");
        let pattern = vec![
            Tuple::new(vec![x, q1, m]),
            Tuple::new(vec![m, q2, q3]),
        ];
        let e = Embedder::new(&r);
        // (a,b,c) chains to (c,d,e); no other first row has its C'-value in
        // column A' of the relation... except (a,d,e)? e not in column A'.
        assert_eq!(e.count_embeddings(&pattern, &Valuation::new()), 1);
    }

    #[test]
    fn count_embeddings_product() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"], ["d", "e", "f"]]);
        // Two independent single-variable-per-column rows: 2 × 2 embeddings.
        let mk = |p: &mut ValuePool, i: usize| {
            Tuple::new(vec![
                p.untyped(&format!("x{i}")),
                p.untyped(&format!("y{i}")),
                p.untyped(&format!("z{i}")),
            ])
        };
        let pattern = vec![mk(&mut p, 1), mk(&mut p, 2)];
        let e = Embedder::new(&r);
        assert_eq!(e.count_embeddings(&pattern, &Valuation::new()), 4);
    }

    #[test]
    fn empty_source_has_exactly_the_seed_embedding() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"]]);
        let e = Embedder::new(&r);
        assert_eq!(e.count_embeddings(&[], &Valuation::new()), 1);
    }

    fn count_touching(
        e: &Embedder<'_>,
        source: &[Tuple],
        delta: &RowDelta,
    ) -> usize {
        let mut n = 0;
        e.for_each_embedding_touching(source, &Valuation::new(), delta, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// The delta-restricted enumeration must produce exactly the embeddings
    /// that touch the delta, each exactly once: full = touching + avoiding.
    #[test]
    fn touching_partitions_the_embedding_space() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(
            &u,
            &mut p,
            &[["a", "b", "c"], ["c", "d", "e"], ["a", "d", "e"], ["e", "b", "a"]],
        );
        // A two-row chained pattern with plenty of matches.
        let x = p.untyped("x");
        let m = p.untyped("m");
        let q1 = p.untyped("q1");
        let q2 = p.untyped("q2");
        let q3 = p.untyped("q3");
        let pattern = vec![Tuple::new(vec![x, q1, m]), Tuple::new(vec![m, q2, q3])];
        let e = Embedder::new(&r);

        for delta_ids in [vec![0u32], vec![1, 3], vec![0, 1, 2, 3], vec![]] {
            let delta = RowDelta::from_ids(delta_ids.clone());
            // Count "avoiding" embeddings: all rows land outside the delta.
            let old_rows: Vec<Tuple> = r
                .rows()
                .iter()
                .enumerate()
                .filter(|(i, _)| !delta.contains(*i as u32))
                .map(|(_, t)| t.clone())
                .collect();
            let old_rel = Relation::from_rows(u.clone(), old_rows);
            let old_emb = Embedder::new(&old_rel);
            let avoiding = old_emb.count_embeddings(&pattern, &Valuation::new());
            let total = e.count_embeddings(&pattern, &Valuation::new());
            assert_eq!(
                count_touching(&e, &pattern, &delta) + avoiding,
                total,
                "partition failed for delta {delta_ids:?}"
            );
        }
    }

    #[test]
    fn touching_with_empty_delta_or_source_finds_nothing() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, rows) = rel(&u, &mut p, &[["a", "b", "c"]]);
        let e = Embedder::new(&r);
        assert_eq!(count_touching(&e, &rows, &RowDelta::from_ids(vec![])), 0);
        assert_eq!(count_touching(&e, &[], &RowDelta::from_ids(vec![0])), 0);
    }

    #[test]
    fn touching_respects_break() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"], ["d", "e", "f"]]);
        let x = p.untyped("x");
        let y = p.untyped("y");
        let z = p.untyped("z");
        let pattern = vec![Tuple::new(vec![x, y, z])];
        let e = Embedder::new(&r);
        let delta = RowDelta::from_ids(vec![0, 1]);
        let mut calls = 0;
        let broke = e.for_each_embedding_touching(&pattern, &Valuation::new(), &delta, |_| {
            calls += 1;
            ControlFlow::Break(())
        });
        assert!(broke);
        assert_eq!(calls, 1);
    }
}
