//! Valuations and homomorphism (embedding) search.
//!
//! A *valuation* (Section 2.2) is a partial map on values; in typed
//! universes it preserves sorts. Dependency satisfaction, chase triggers,
//! tableau cores, and the paper's `T⁻¹` construction all reduce to one
//! primitive: enumerate the valuations `α` with `α(I) ⊆ J` for a list of
//! source rows `I` and a target relation `J`, optionally extending a fixed
//! partial valuation.
//!
//! The search is hash-join-shaped: source rows are placed
//! most-constrained-first ([`Embedder::scan_plan`]); at each level the
//! partially built valuation selects the shortest `(column, value) → rows`
//! posting of the target's [`ColumnIndex`] (or, for the semi-naive pinned
//! row, the delta itself) as the candidate list, and each candidate is
//! probed by comparing target cells column-wise against the bindings.
//! Bindings live on a linear *trail* of `(source, image)` pairs layered over
//! the read-only seed — source patterns bind a handful of values, so a
//! linear scan beats per-candidate hash-map writes, and backtracking is a
//! truncate. A full [`Valuation`] is materialized only when an embedding is
//! emitted.

use crate::fx::FxHashMap;
use crate::relation::{ColumnIndex, Relation};
use crate::tuple::Tuple;
use crate::universe::AttrId;
use crate::value::Value;
use std::ops::ControlFlow;

/// A partial mapping from values to values.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Valuation {
    map: FxHashMap<Value, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a valuation from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Value, Value)>) -> Self {
        Self {
            map: pairs.into_iter().collect(),
        }
    }

    /// The identity valuation on `values`.
    pub fn identity_on(values: impl IntoIterator<Item = Value>) -> Self {
        Self::from_pairs(values.into_iter().map(|v| (v, v)))
    }

    /// Image of `v`, if bound.
    #[inline]
    pub fn get(&self, v: Value) -> Option<Value> {
        self.map.get(&v).copied()
    }

    /// Binds `v ↦ w`. Returns the previous image, if any.
    pub fn bind(&mut self, v: Value, w: Value) -> Option<Value> {
        self.map.insert(v, w)
    }

    /// Removes the binding of `v`.
    pub fn unbind(&mut self, v: Value) {
        self.map.remove(&v);
    }

    /// Number of bound values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(source, image)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Value, Value)> + '_ {
        self.map.iter().map(|(&a, &b)| (a, b))
    }

    /// Applies the valuation to a tuple — `α(w)`.
    ///
    /// # Panics
    /// Panics if some value of the tuple is unbound.
    pub fn apply_tuple(&self, t: &Tuple) -> Tuple {
        t.map(|v| {
            self.get(v)
                .unwrap_or_else(|| panic!("valuation undefined on {v:?}"))
        })
    }

    /// Applies the valuation to every row — `α(I)`.
    pub fn apply_rows(&self, rows: &[Tuple]) -> Vec<Tuple> {
        rows.iter().map(|t| self.apply_tuple(t)).collect()
    }

    /// Raw map access (for [`Relation::map`]).
    pub fn as_map(&self) -> &FxHashMap<Value, Value> {
        &self.map
    }
}

/// A set of target-row positions used to restrict embedding search: the
/// semi-naive chase's *delta* (rows added or rewritten since a dependency
/// was last checked).
#[derive(Clone, Debug, Default)]
pub struct RowDelta {
    sorted: Vec<u32>,
}

impl RowDelta {
    /// Builds a delta from row positions (deduplicated, kept sorted).
    pub fn from_ids(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { sorted: ids }
    }

    /// Number of delta rows.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Membership test (binary search on the sorted positions).
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.sorted.binary_search(&id).is_ok()
    }

    /// The positions, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.sorted
    }
}

/// Per-scan join counters: how much work one embedding enumeration did.
///
/// `build_rows` counts delta rows taken as the pinned (build-side) source
/// row; `probe_hits` counts index-probe candidates that matched the partial
/// valuation. Returned per call so the [`Embedder`] stays shareable across
/// scoped threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Delta rows enumerated as the pinned source row.
    pub build_rows: u64,
    /// Probed candidate rows consistent with the bindings so far.
    pub probe_hits: u64,
}

impl ScanStats {
    /// Accumulates another scan's counters.
    pub fn absorb(&mut self, other: ScanStats) {
        self.build_rows += other.build_rows;
        self.probe_hits += other.probe_hits;
    }
}

/// How a source row may be placed during delta-restricted search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RowClass {
    /// Any target row.
    Any,
    /// Only delta rows (the pinned source row).
    Delta,
    /// Only non-delta rows (source rows before the pin, so each embedding is
    /// enumerated exactly once: at its smallest delta-touching source index).
    Old,
}

struct DeltaConstraint<'d> {
    classes: Vec<RowClass>,
    delta: &'d RowDelta,
    /// The slice of `delta.ids()` the pinned row actually enumerates —
    /// the whole delta normally, one shard of it under parallel scanning.
    /// `Old`-class exclusion still tests the full delta, so chunked scans
    /// partition (never duplicate) the unchunked emission set.
    pin_ids: &'d [u32],
}

/// Where emitted embeddings go. `Exists` short-circuits without
/// materializing a [`Valuation`]; `Each` materializes one per emission.
enum Sink<'s> {
    Exists(&'s mut bool),
    Each(&'s mut dyn FnMut(&Valuation) -> ControlFlow<()>),
}

impl Sink<'_> {
    fn emit(&mut self, seed: &Valuation, trail: &[(Value, Value)]) -> ControlFlow<()> {
        match self {
            Sink::Exists(found) => {
                **found = true;
                ControlFlow::Break(())
            }
            Sink::Each(f) => {
                let mut alpha = seed.clone();
                for &(s, t) in trail {
                    alpha.bind(s, t);
                }
                f(&alpha)
            }
        }
    }
}

/// Image of `v` under the layered bindings: trail first (most recent wins),
/// then the read-only seed. Trails hold at most one entry per source value.
#[inline]
fn lookup(seed: &Valuation, trail: &[(Value, Value)], v: Value) -> Option<Value> {
    for &(s, t) in trail.iter().rev() {
        if s == v {
            return Some(t);
        }
    }
    seed.get(v)
}

/// Reusable embedding searcher for one target relation.
///
/// Borrows the target's incrementally maintained [`ColumnIndex`] —
/// construction is free of index-build cost. Holds no interior mutability,
/// so one `Embedder` may be shared across scoped threads.
pub struct Embedder<'a> {
    target: &'a Relation,
    index: &'a ColumnIndex,
    attrs: Vec<AttrId>,
}

impl<'a> Embedder<'a> {
    /// Prepares a searcher over `target` (no index build; the relation
    /// maintains its index incrementally).
    pub fn new(target: &'a Relation) -> Self {
        Self {
            target,
            index: target.index(),
            attrs: target.universe().attrs().collect(),
        }
    }

    /// The target relation.
    pub fn target(&self) -> &'a Relation {
        self.target
    }

    /// Calls `f` for every valuation `α ⊇ seed` with `α(source) ⊆ target`.
    ///
    /// Returns `true` if `f` broke out early. Valuations are *not*
    /// required to be injective (per the paper's definition).
    pub fn for_each_embedding(
        &self,
        source: &[Tuple],
        seed: &Valuation,
        f: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> bool {
        let order = Self::scan_plan(source, seed);
        let mut stats = ScanStats::default();
        self.for_each_embedding_planned(source, seed, &order, &mut stats, f)
    }

    /// [`Self::for_each_embedding`] with a precomputed placement plan (see
    /// [`Self::scan_plan`]; plans depend only on the source rows and the
    /// seed's bound set, so callers scanning the same dependency every round
    /// compute them once). Join counters accumulate into `stats`.
    pub fn for_each_embedding_planned(
        &self,
        source: &[Tuple],
        seed: &Valuation,
        plan: &[usize],
        stats: &mut ScanStats,
        mut f: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> bool {
        let mut trail: Vec<(Value, Value)> = Vec::new();
        let mut sink = Sink::Each(&mut f);
        self.search(source, plan, 0, seed, &mut trail, None, stats, &mut sink)
            .is_break()
    }

    /// Calls `f` for every valuation `α ⊇ seed` with `α(source) ⊆ target`
    /// that maps **at least one source row onto a row of `delta`** — the
    /// semi-naive trigger-discovery entry point.
    ///
    /// Each qualifying embedding is enumerated exactly once: it is produced
    /// for the *smallest* source-row index whose image lies in the delta
    /// (earlier rows are constrained to old rows, later rows are free).
    /// With an empty `source` or an empty `delta` nothing is enumerated.
    ///
    /// Returns `true` if `f` broke out early.
    pub fn for_each_embedding_touching(
        &self,
        source: &[Tuple],
        seed: &Valuation,
        delta: &RowDelta,
        mut f: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> bool {
        if source.is_empty() || delta.is_empty() {
            return false;
        }
        let mut stats = ScanStats::default();
        for pin in 0..source.len() {
            let order = Self::plan(source, seed, Some(pin));
            if self.for_each_embedding_touching_pin(
                source, seed, delta, pin, &order, &mut stats, &mut f,
            ) {
                return true;
            }
        }
        false
    }

    /// One pin of the delta-touching enumeration: embeddings whose source
    /// row `pin` lands in `delta` while earlier rows avoid it. `plan` must
    /// be a placement order with `pin` first (see [`Self::touch_plans`]).
    ///
    /// This is the unit of work the parallel chase shards across threads —
    /// enumerating pins `0..source.len()` in order and concatenating the
    /// emissions reproduces [`Self::for_each_embedding_touching`] exactly.
    ///
    /// Returns `true` if `f` broke out early.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_embedding_touching_pin(
        &self,
        source: &[Tuple],
        seed: &Valuation,
        delta: &RowDelta,
        pin: usize,
        plan: &[usize],
        stats: &mut ScanStats,
        f: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> bool {
        self.for_each_embedding_touching_pin_range(
            source,
            seed,
            delta,
            pin,
            0..delta.len(),
            plan,
            stats,
            f,
        )
    }

    /// As [`Self::for_each_embedding_touching_pin`], but the pinned source
    /// row only ranges over `range` (indices into `delta.ids()`). Old-row
    /// exclusion for source rows before the pin still uses the *full*
    /// delta, so the emissions over a partition of `0..delta.len()` —
    /// concatenated in range order — reproduce the unchunked call exactly.
    /// This is the unit the parallel chase shards across worker threads.
    ///
    /// Returns `true` if `f` broke out early.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_embedding_touching_pin_range(
        &self,
        source: &[Tuple],
        seed: &Valuation,
        delta: &RowDelta,
        pin: usize,
        range: std::ops::Range<usize>,
        plan: &[usize],
        stats: &mut ScanStats,
        mut f: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> bool {
        if source.is_empty() || delta.is_empty() || range.is_empty() {
            return false;
        }
        let constraint = DeltaConstraint {
            classes: (0..source.len())
                .map(|i| match i.cmp(&pin) {
                    std::cmp::Ordering::Less => RowClass::Old,
                    std::cmp::Ordering::Equal => RowClass::Delta,
                    std::cmp::Ordering::Greater => RowClass::Any,
                })
                .collect(),
            delta,
            pin_ids: &delta.ids()[range],
        };
        let mut trail: Vec<(Value, Value)> = Vec::new();
        let mut sink = Sink::Each(&mut f);
        self.search(
            source,
            plan,
            0,
            seed,
            &mut trail,
            Some(&constraint),
            stats,
            &mut sink,
        )
        .is_break()
    }

    /// First embedding extending `seed`, if any.
    pub fn find_embedding(&self, source: &[Tuple], seed: &Valuation) -> Option<Valuation> {
        let mut found = None;
        self.for_each_embedding(source, seed, |a| {
            found = Some(a.clone());
            ControlFlow::Break(())
        });
        found
    }

    /// `true` if some embedding extending `seed` exists (no valuation is
    /// materialized).
    pub fn embeds(&self, source: &[Tuple], seed: &Valuation) -> bool {
        let order = Self::scan_plan(source, seed);
        self.embeds_planned(source, seed, &order)
    }

    /// [`Self::embeds`] with a precomputed placement plan.
    pub fn embeds_planned(&self, source: &[Tuple], seed: &Valuation, plan: &[usize]) -> bool {
        let mut found = false;
        let mut trail: Vec<(Value, Value)> = Vec::new();
        let mut stats = ScanStats::default();
        let mut sink = Sink::Exists(&mut found);
        let _ = self.search(source, plan, 0, seed, &mut trail, None, &mut stats, &mut sink);
        found
    }

    /// Number of embeddings extending `seed` (for tests and diagnostics).
    pub fn count_embeddings(&self, source: &[Tuple], seed: &Valuation) -> usize {
        let mut n = 0;
        self.for_each_embedding(source, seed, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// The placement order for a full (un-pinned) scan: source rows
    /// most-constrained-first. Depends only on the source rows and the
    /// seed's *bound set*, so a plan may be cached and reused across rounds
    /// whose seeds bind the same values.
    pub fn scan_plan(source: &[Tuple], seed: &Valuation) -> Vec<usize> {
        Self::plan(source, seed, None)
    }

    /// One placement plan per pin for delta-touching scans, for use with
    /// [`Self::for_each_embedding_touching_pin`]. Cache these per
    /// dependency: they are invariant across chase rounds.
    pub fn touch_plans(source: &[Tuple], seed: &Valuation) -> Vec<Vec<usize>> {
        (0..source.len())
            .map(|pin| Self::plan(source, seed, Some(pin)))
            .collect()
    }

    /// Orders source rows most-constrained-first: rows sharing values with
    /// the seed or with already-placed rows come early. With `first` set,
    /// that row is placed up front (the semi-naive pin, whose candidate set
    /// is the small delta).
    fn plan(source: &[Tuple], seed: &Valuation, first: Option<usize>) -> Vec<usize> {
        let n = source.len();
        if n <= 1 {
            return (0..n).collect();
        }
        let mut placed = vec![false; n];
        let mut bound: crate::fx::FxHashSet<Value> = seed.iter().map(|(v, _)| v).collect();
        let mut order = Vec::with_capacity(n);
        if let Some(pin) = first {
            placed[pin] = true;
            bound.extend(source[pin].val());
            order.push(pin);
        }
        while order.len() < n {
            let best = (0..n)
                .filter(|&i| !placed[i])
                .max_by_key(|&i| {
                    let b = source[i].val().filter(|v| bound.contains(v)).count();
                    // Tie-break toward earlier rows for determinism.
                    (b, usize::MAX - i)
                })
                .expect("unplaced row exists");
            placed[best] = true;
            bound.extend(source[best].val());
            order.push(best);
        }
        order
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        source: &[Tuple],
        order: &[usize],
        depth: usize,
        seed: &Valuation,
        trail: &mut Vec<(Value, Value)>,
        constraint: Option<&DeltaConstraint<'_>>,
        stats: &mut ScanStats,
        sink: &mut Sink<'_>,
    ) -> ControlFlow<()> {
        if depth == order.len() {
            return sink.emit(seed, trail);
        }
        let row = &source[order[depth]];
        let class = constraint.map_or(RowClass::Any, |c| c.classes[order[depth]]);

        // Choose the cheapest candidate source: the bound column with the
        // shortest posting list, or the whole relation if nothing is bound.
        let mut best: Option<&[u32]> = None;
        for &a in &self.attrs {
            if let Some(img) = lookup(seed, trail, row.get(a)) {
                let posting = self.index.rows_with(a, img);
                if best.is_none_or(|b| posting.len() < b.len()) {
                    best = Some(posting);
                }
            }
        }

        let try_candidate = |this: &Self,
                                 ri: u32,
                                 trail: &mut Vec<(Value, Value)>,
                                 stats: &mut ScanStats,
                                 sink: &mut Sink<'_>|
         -> ControlFlow<()> {
            match class {
                RowClass::Any => {}
                RowClass::Delta => {
                    if constraint
                        .expect("delta class implies constraint")
                        .pin_ids
                        .binary_search(&ri)
                        .is_err()
                    {
                        return ControlFlow::Continue(());
                    }
                    stats.build_rows += 1;
                }
                RowClass::Old => {
                    if constraint
                        .expect("old class implies constraint")
                        .delta
                        .contains(ri)
                    {
                        return ControlFlow::Continue(());
                    }
                }
            }
            let mark = trail.len();
            let mut ok = true;
            for &a in &this.attrs {
                let sv = row.get(a);
                let tv = this.target.cell(ri as usize, a);
                match lookup(seed, trail, sv) {
                    Some(existing) => {
                        if existing != tv {
                            ok = false;
                            break;
                        }
                    }
                    None => trail.push((sv, tv)),
                }
            }
            let flow = if ok {
                if class != RowClass::Delta {
                    stats.probe_hits += 1;
                }
                self.search(source, order, depth + 1, seed, trail, constraint, stats, sink)
            } else {
                ControlFlow::Continue(())
            };
            trail.truncate(mark);
            flow
        };

        // For a pinned (delta-class) row, the delta itself is usually the
        // smallest candidate set; consistency with the bindings is re-checked
        // by `try_candidate`, so any superset of the true candidates is sound.
        let delta_ids = match class {
            RowClass::Delta => constraint.map(|c| c.pin_ids),
            _ => None,
        };
        match (best, delta_ids) {
            (Some(posting), Some(ids)) if ids.len() < posting.len() => {
                for &ri in ids {
                    try_candidate(self, ri, trail, stats, sink)?;
                }
            }
            (None, Some(ids)) => {
                for &ri in ids {
                    try_candidate(self, ri, trail, stats, sink)?;
                }
            }
            (Some(posting), _) => {
                for &ri in posting {
                    try_candidate(self, ri, trail, stats, sink)?;
                }
            }
            (None, None) => {
                for ri in 0..self.target.len() as u32 {
                    try_candidate(self, ri, trail, stats, sink)?;
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Convenience: `true` if the rows of `source` embed into `target` extending
/// `seed` (one-shot index build).
pub fn embeds(source: &[Tuple], target: &Relation, seed: &Valuation) -> bool {
    Embedder::new(target).embeds(source, seed)
}

/// Convenience: first embedding of `source` into `target` extending `seed`.
pub fn find_embedding(source: &[Tuple], target: &Relation, seed: &Valuation) -> Option<Valuation> {
    Embedder::new(target).find_embedding(source, seed)
}

/// `true` if some row of `target` is an image of `row` under a valuation
/// extending `seed` — the satisfaction probe for a one-row td conclusion.
///
/// The depth-1 specialization of [`Embedder`]'s search: the same candidate
/// choice (shortest posting list among seed-bound columns, the whole
/// relation when nothing is bound) and the same consistency rule for a
/// value repeated across columns, but with no per-call allocation — the
/// caller lends `scratch` for the binding trail and no plan or attribute
/// vector is built. The chase's apply loop probes once per trigger, which
/// makes the setup cost of a full [`Embedder`] measurable.
pub fn satisfies_row(
    target: &Relation,
    row: &Tuple,
    seed: &Valuation,
    scratch: &mut Vec<(Value, Value)>,
) -> bool {
    let index = target.index();
    let mut best: Option<&[u32]> = None;
    for a in target.universe().attrs() {
        if let Some(img) = seed.get(row.get(a)) {
            let posting = index.rows_with(a, img);
            if best.is_none_or(|b| posting.len() < b.len()) {
                best = Some(posting);
            }
        }
    }
    let mut check = |ri: u32| -> bool {
        scratch.clear();
        for a in target.universe().attrs() {
            let sv = row.get(a);
            let tv = target.cell(ri as usize, a);
            match lookup(seed, scratch, sv) {
                Some(existing) if existing != tv => return false,
                Some(_) => {}
                None => scratch.push((sv, tv)),
            }
        }
        true
    };
    match best {
        Some(posting) => posting.iter().any(|&ri| check(ri)),
        None => (0..target.len() as u32).any(&mut check),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::value::ValuePool;
    use std::sync::Arc;

    fn rel(
        u: &Arc<Universe>,
        p: &mut ValuePool,
        rows: &[[&str; 3]],
    ) -> (Relation, Vec<Tuple>) {
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect()))
            .collect();
        (
            Relation::from_rows(u.clone(), tuples.iter().cloned()),
            tuples,
        )
    }

    #[test]
    fn identity_embedding_always_exists() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, rows) = rel(&u, &mut p, &[["a", "b", "c"], ["b", "a", "c"]]);
        let e = Embedder::new(&r);
        assert!(e.embeds(&rows, &Valuation::new()));
        // And the identity is among the embeddings.
        let id = Valuation::identity_on(r.val());
        assert!(e.embeds(&rows, &id));
    }

    #[test]
    fn embedding_respects_seed() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"]]);
        let x = p.untyped("x");
        let y = p.untyped("y");
        let z = p.untyped("z");
        let pattern = vec![Tuple::new(vec![x, y, z])];
        let e = Embedder::new(&r);
        // Unconstrained: embeds.
        assert!(e.embeds(&pattern, &Valuation::new()));
        // Seed forcing x ↦ b cannot match (a,b,c) in column A'.
        let b = p.get(None, "b").unwrap();
        let seed = Valuation::from_pairs([(x, b)]);
        assert!(!e.embeds(&pattern, &seed));
    }

    #[test]
    fn non_injective_embeddings_are_allowed() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "a", "a"]]);
        let x = p.untyped("x");
        let y = p.untyped("y");
        let z = p.untyped("z");
        // Pattern with three distinct variables maps onto the single
        // constant row by collapsing all of them.
        let pattern = vec![Tuple::new(vec![x, y, z])];
        assert!(embeds(&pattern, &r, &Valuation::new()));
    }

    #[test]
    fn shared_variable_forces_equality() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"], ["d", "d", "e"]]);
        let x = p.untyped("x");
        let z = p.untyped("z");
        // Pattern row (x, x, z): only (d,d,e) matches.
        let pattern = vec![Tuple::new(vec![x, x, z])];
        let e = Embedder::new(&r);
        assert_eq!(e.count_embeddings(&pattern, &Valuation::new()), 1);
        let hom = e.find_embedding(&pattern, &Valuation::new()).unwrap();
        assert_eq!(hom.get(x), p.get(None, "d"));
    }

    #[test]
    fn multi_row_pattern_with_join_variable() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(
            &u,
            &mut p,
            &[["a", "b", "c"], ["c", "d", "e"], ["a", "d", "e"]],
        );
        // Pattern: rows (x,_,m), (m,_,_) — chained through m.
        let x = p.untyped("x");
        let m = p.untyped("m");
        let q1 = p.untyped("q1");
        let q2 = p.untyped("q2");
        let q3 = p.untyped("q3");
        let pattern = vec![
            Tuple::new(vec![x, q1, m]),
            Tuple::new(vec![m, q2, q3]),
        ];
        let e = Embedder::new(&r);
        // (a,b,c) chains to (c,d,e); no other first row has its C'-value in
        // column A' of the relation... except (a,d,e)? e not in column A'.
        assert_eq!(e.count_embeddings(&pattern, &Valuation::new()), 1);
    }

    #[test]
    fn count_embeddings_product() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"], ["d", "e", "f"]]);
        // Two independent single-variable-per-column rows: 2 × 2 embeddings.
        let mk = |p: &mut ValuePool, i: usize| {
            Tuple::new(vec![
                p.untyped(&format!("x{i}")),
                p.untyped(&format!("y{i}")),
                p.untyped(&format!("z{i}")),
            ])
        };
        let pattern = vec![mk(&mut p, 1), mk(&mut p, 2)];
        let e = Embedder::new(&r);
        assert_eq!(e.count_embeddings(&pattern, &Valuation::new()), 4);
    }

    #[test]
    fn empty_source_has_exactly_the_seed_embedding() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"]]);
        let e = Embedder::new(&r);
        assert_eq!(e.count_embeddings(&[], &Valuation::new()), 1);
    }

    fn count_touching(
        e: &Embedder<'_>,
        source: &[Tuple],
        delta: &RowDelta,
    ) -> usize {
        let mut n = 0;
        e.for_each_embedding_touching(source, &Valuation::new(), delta, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// The delta-restricted enumeration must produce exactly the embeddings
    /// that touch the delta, each exactly once: full = touching + avoiding.
    #[test]
    fn touching_partitions_the_embedding_space() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(
            &u,
            &mut p,
            &[["a", "b", "c"], ["c", "d", "e"], ["a", "d", "e"], ["e", "b", "a"]],
        );
        // A two-row chained pattern with plenty of matches.
        let x = p.untyped("x");
        let m = p.untyped("m");
        let q1 = p.untyped("q1");
        let q2 = p.untyped("q2");
        let q3 = p.untyped("q3");
        let pattern = vec![Tuple::new(vec![x, q1, m]), Tuple::new(vec![m, q2, q3])];
        let e = Embedder::new(&r);

        for delta_ids in [vec![0u32], vec![1, 3], vec![0, 1, 2, 3], vec![]] {
            let delta = RowDelta::from_ids(delta_ids.clone());
            // Count "avoiding" embeddings: all rows land outside the delta.
            let old_rows: Vec<Tuple> = r
                .iter()
                .enumerate()
                .filter(|(i, _)| !delta.contains(*i as u32))
                .map(|(_, t)| t.to_tuple())
                .collect();
            let old_rel = Relation::from_rows(u.clone(), old_rows);
            let old_emb = Embedder::new(&old_rel);
            let avoiding = old_emb.count_embeddings(&pattern, &Valuation::new());
            let total = e.count_embeddings(&pattern, &Valuation::new());
            assert_eq!(
                count_touching(&e, &pattern, &delta) + avoiding,
                total,
                "partition failed for delta {delta_ids:?}"
            );
        }
    }

    /// The pin-level entry point, driven with cached plans in pin order,
    /// must reproduce the one-shot touching enumeration.
    #[test]
    fn pinned_scans_reproduce_touching_enumeration() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(
            &u,
            &mut p,
            &[["a", "b", "c"], ["c", "d", "e"], ["a", "d", "e"], ["e", "b", "a"]],
        );
        let x = p.untyped("x");
        let m = p.untyped("m");
        let q1 = p.untyped("q1");
        let q2 = p.untyped("q2");
        let q3 = p.untyped("q3");
        let pattern = vec![Tuple::new(vec![x, q1, m]), Tuple::new(vec![m, q2, q3])];
        let e = Embedder::new(&r);
        let seed = Valuation::new();
        let plans = Embedder::touch_plans(&pattern, &seed);
        let delta = RowDelta::from_ids(vec![1, 3]);

        let mut whole: Vec<Valuation> = Vec::new();
        e.for_each_embedding_touching(&pattern, &seed, &delta, |a| {
            whole.push(a.clone());
            ControlFlow::Continue(())
        });
        let mut pinned: Vec<Valuation> = Vec::new();
        let mut stats = ScanStats::default();
        for (pin, plan) in plans.iter().enumerate() {
            e.for_each_embedding_touching_pin(&pattern, &seed, &delta, pin, plan, &mut stats, |a| {
                pinned.push(a.clone());
                ControlFlow::Continue(())
            });
        }
        assert_eq!(whole, pinned);
        // Every emission pinned one source row onto a delta row, so the
        // build-side counter saw at least one row.
        assert!(!pinned.is_empty());
        assert!(stats.build_rows >= 1);
    }

    #[test]
    fn touching_with_empty_delta_or_source_finds_nothing() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, rows) = rel(&u, &mut p, &[["a", "b", "c"]]);
        let e = Embedder::new(&r);
        assert_eq!(count_touching(&e, &rows, &RowDelta::from_ids(vec![])), 0);
        assert_eq!(count_touching(&e, &[], &RowDelta::from_ids(vec![0])), 0);
    }

    #[test]
    fn touching_respects_break() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (r, _) = rel(&u, &mut p, &[["a", "b", "c"], ["d", "e", "f"]]);
        let x = p.untyped("x");
        let y = p.untyped("y");
        let z = p.untyped("z");
        let pattern = vec![Tuple::new(vec![x, y, z])];
        let e = Embedder::new(&r);
        let delta = RowDelta::from_ids(vec![0, 1]);
        let mut calls = 0;
        let broke = e.for_each_embedding_touching(&pattern, &Valuation::new(), &delta, |_| {
            calls += 1;
            ControlFlow::Break(())
        });
        assert!(broke);
        assert_eq!(calls, 1);
    }

    /// `satisfies_row` is a hand-specialized depth-1 search; pin it to the
    /// general machinery on random single-row probes, covering bound,
    /// unbound, and repeated-unbound cells against a random target.
    #[test]
    fn satisfies_row_matches_general_embeds() {
        let mut state = 0x853c_49e6_748f_ea9bu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let u = Universe::untyped_abc();
        for case in 0..200 {
            let mut p = ValuePool::new(u.clone());
            let consts: Vec<Value> = (0..4).map(|i| p.untyped(&format!("c{i}"))).collect();
            let mut r = Relation::new(u.clone());
            for _ in 0..(1 + next() % 4) {
                r.insert(Tuple::new(
                    (0..3).map(|_| consts[(next() % 4) as usize]).collect(),
                ));
            }
            // Probe-row cells draw from two existential variables (possibly
            // repeated across columns) and the constants; the seed binds a
            // random subset of the existentials.
            let exts = [p.untyped("e0"), p.untyped("e1")];
            let row = Tuple::new(
                (0..3)
                    .map(|_| {
                        if next() % 2 == 0 {
                            exts[(next() % 2) as usize]
                        } else {
                            consts[(next() % 4) as usize]
                        }
                    })
                    .collect(),
            );
            let mut seed = Valuation::new();
            for &e in &exts {
                if next() % 2 == 0 {
                    seed.bind(e, consts[(next() % 4) as usize]);
                }
            }
            let mut scratch = Vec::new();
            let fast = satisfies_row(&r, &row, &seed, &mut scratch);
            let slow = Embedder::new(&r).embeds(std::slice::from_ref(&row), &seed);
            assert_eq!(fast, slow, "case {case}: probe row {row:?} seed {seed:?}");
        }
    }
}
