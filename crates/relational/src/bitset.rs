//! Growable attribute bitsets.
//!
//! Universes produced by the hat-translation of Section 6 have
//! `|U| · (m(m−1)/2 + 1)` attributes, which exceeds 64 already for modest
//! tableaux, so a fixed-width word is not enough. `AttrSet` is a compact
//! variable-width bitset ordered lexicographically by attribute index.

use crate::universe::AttrId;
use std::fmt;

/// A set of attributes, stored as a bitmap.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct AttrSet {
    words: Vec<u64>,
}

impl AttrSet {
    /// The empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops trailing zero words so that derived `Eq`/`Hash` are semantic.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// The set `{0, 1, …, n−1}` (all attributes of a width-`n` universe).
    pub fn full(n: usize) -> Self {
        let mut s = Self::new();
        for i in 0..n {
            s.insert(AttrId(i as u16));
        }
        s
    }

    /// Inserts `a`; returns `true` if it was not already present.
    pub fn insert(&mut self, a: AttrId) -> bool {
        let (w, b) = (a.0 as usize / 64, a.0 as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `a`; returns `true` if it was present.
    pub fn remove(&mut self, a: AttrId) -> bool {
        let (w, b) = (a.0 as usize / 64, a.0 as usize % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.normalize();
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, a: AttrId) -> bool {
        let (w, b) = (a.0 as usize / 64, a.0 as usize % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Union, written `XY` in the paper.
    pub fn union(&self, other: &Self) -> Self {
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        Self { words }
    }

    /// Intersection.
    pub fn intersection(&self, other: &Self) -> Self {
        let n = self.words.len().min(other.words.len());
        let mut words = vec![0u64; n];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words[i] & other.words[i];
        }
        let mut out = Self { words };
        out.normalize();
        out
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut words = self.words.clone();
        for (i, w) in words.iter_mut().enumerate() {
            *w &= !other.words.get(i).copied().unwrap_or(0);
        }
        let mut out = Self { words };
        out.normalize();
        out
    }

    /// Complement within a width-`n` universe, written `X̄` in the paper.
    pub fn complement(&self, n: usize) -> Self {
        Self::full(n).difference(self)
    }

    /// `true` if `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates attributes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| AttrId((wi * 64 + b) as u16))
        })
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        let mut s = Self::new();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|a| a.0)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u16]) -> AttrSet {
        items.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut x = AttrSet::new();
        assert!(x.insert(AttrId(3)));
        assert!(!x.insert(AttrId(3)));
        assert!(x.contains(AttrId(3)));
        assert!(!x.contains(AttrId(4)));
        assert!(x.remove(AttrId(3)));
        assert!(!x.remove(AttrId(3)));
        assert!(x.is_empty());
    }

    #[test]
    fn works_beyond_64_attributes() {
        let mut x = AttrSet::new();
        x.insert(AttrId(130));
        x.insert(AttrId(2));
        assert!(x.contains(AttrId(130)));
        assert_eq!(x.len(), 2);
        assert_eq!(x.iter().collect::<Vec<_>>(), vec![AttrId(2), AttrId(130)]);
    }

    #[test]
    fn union_intersection_difference() {
        let a = s(&[1, 2, 3]);
        let b = s(&[3, 4]);
        assert_eq!(a.union(&b), s(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), s(&[3]));
        assert_eq!(a.difference(&b), s(&[1, 2]));
    }

    #[test]
    fn complement_in_universe() {
        let a = s(&[0, 2]);
        assert_eq!(a.complement(4), s(&[1, 3]));
    }

    #[test]
    fn subset() {
        assert!(s(&[1]).is_subset(&s(&[1, 2])));
        assert!(!s(&[1, 3]).is_subset(&s(&[1, 2])));
        assert!(AttrSet::new().is_subset(&s(&[])));
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut a = s(&[1]);
        a.insert(AttrId(100));
        a.remove(AttrId(100));
        assert_eq!(a, s(&[1]), "remove() must drop trailing zero words");
        assert_eq!(a.len(), 1);
    }
}
