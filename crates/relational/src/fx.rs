//! A small Fx-style hasher for integer-keyed maps on the hot path.
//!
//! The approved dependency list has no dedicated hasher crate, and the
//! default SipHash is measurably slow for the `u32`/`u64` keys that dominate
//! homomorphism search and chase trigger deduplication. This is the classic
//! Firefox/rustc multiply-rotate hash (public domain algorithm).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher specialized for small integer keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_integers_hash_distinctly_enough() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small dense range");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        for i in 0..100 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn byte_stream_matches_incremental_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }
}
