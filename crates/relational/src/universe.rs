//! Universes of attributes (Section 2.1 of the paper).
//!
//! A universe is a finite, ordered list of named attributes. The paper's two
//! domain disciplines are both supported:
//!
//! * **untyped** — all attributes share one domain (`DOM(U) = DOM(A) = …`);
//! * **typed** — distinct attributes have disjoint domains, so a value may
//!   only ever appear in the column it belongs to.
//!
//! Typedness is data, not convention: the [`crate::value::ValuePool`] of a
//! typed universe tags every value with its sort, and tuple construction
//! rejects values placed in a foreign column.

use crate::bitset::AttrSet;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within its [`Universe`] (column position).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Attr({})", self.0)
    }
}

impl AttrId {
    /// Column position as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether attribute domains are shared or pairwise disjoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Typing {
    /// All attributes share a single domain.
    Untyped,
    /// Distinct attributes have disjoint domains.
    Typed,
}

/// A finite ordered set of named attributes.
#[derive(Clone, PartialEq, Eq)]
pub struct Universe {
    names: Vec<String>,
    typing: Typing,
}

impl Universe {
    /// Creates a universe from attribute names.
    ///
    /// # Panics
    /// Panics on duplicate names, an empty list, or more than `u16::MAX`
    /// attributes.
    pub fn new<S: Into<String>>(names: Vec<S>, typing: Typing) -> Arc<Self> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "universe must have at least one attribute");
        assert!(names.len() <= u16::MAX as usize, "too many attributes");
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate attribute name {n:?} in universe"
            );
        }
        Arc::new(Self { names, typing })
    }

    /// A typed universe with the given attribute names.
    pub fn typed<S: Into<String>>(names: Vec<S>) -> Arc<Self> {
        Self::new(names, Typing::Typed)
    }

    /// An untyped universe with the given attribute names.
    pub fn untyped<S: Into<String>>(names: Vec<S>) -> Arc<Self> {
        Self::new(names, Typing::Untyped)
    }

    /// The paper's untyped universe `U' = A'B'C'`.
    pub fn untyped_abc() -> Arc<Self> {
        Self::untyped(vec!["A'", "B'", "C'"])
    }

    /// The paper's typed universe `U = ABCDEF` of Section 3.
    pub fn typed_abcdef() -> Arc<Self> {
        Self::typed(vec!["A", "B", "C", "D", "E", "F"])
    }

    /// Number of attributes (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Domain discipline of this universe.
    #[inline]
    pub fn typing(&self) -> Typing {
        self.typing
    }

    /// `true` if distinct attributes have disjoint domains.
    #[inline]
    pub fn is_typed(&self) -> bool {
        self.typing == Typing::Typed
    }

    /// Name of attribute `a`.
    pub fn name(&self, a: AttrId) -> &str {
        &self.names[a.index()]
    }

    /// Looks an attribute up by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| AttrId(i as u16))
    }

    /// Looks an attribute up by name, panicking when absent.
    ///
    /// Convenience for tests and examples where the name is a literal.
    pub fn a(&self, name: &str) -> AttrId {
        self.attr(name)
            .unwrap_or_else(|| panic!("no attribute named {name:?} in {self:?}"))
    }

    /// All attributes, in column order.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.names.len()).map(|i| AttrId(i as u16))
    }

    /// The full attribute set `U`.
    pub fn all(&self) -> AttrSet {
        AttrSet::full(self.width())
    }

    /// Parses a set of attributes from whitespace- or empty-separated names.
    ///
    /// Single-character attribute names may be run together, e.g. `"ABC"`;
    /// multi-character names must be whitespace separated, e.g. `"A' B'"`.
    pub fn set(&self, spec: &str) -> AttrSet {
        let mut out = AttrSet::new();
        if spec.split_whitespace().count() > 1 {
            for tok in spec.split_whitespace() {
                out.insert(self.a(tok));
            }
        } else if let Some(a) = self.attr(spec.trim()) {
            out.insert(a);
        } else {
            for ch in spec.trim().chars() {
                out.insert(self.a(&ch.to_string()));
            }
        }
        out
    }

    /// Fallible version of [`Universe::set`], for parsers that must turn
    /// malformed input into an error instead of a panic.
    ///
    /// # Errors
    /// Returns a description naming the first unknown attribute.
    pub fn try_set(&self, spec: &str) -> Result<AttrSet, String> {
        let mut out = AttrSet::new();
        let mut insert = |u: &Self, tok: &str| -> Result<(), String> {
            let a = u
                .attr(tok)
                .ok_or_else(|| format!("no attribute named {tok:?} in {u:?}"))?;
            out.insert(a);
            Ok(())
        };
        if spec.split_whitespace().count() > 1 {
            for tok in spec.split_whitespace() {
                insert(self, tok)?;
            }
        } else if self.attr(spec.trim()).is_some() {
            insert(self, spec.trim())?;
        } else {
            for ch in spec.trim().chars() {
                insert(self, &ch.to_string())?;
            }
        }
        Ok(out)
    }

    /// Parses an *ordered sequence* of attributes (repetitions allowed) —
    /// the shape inclusion dependencies are written over. Same tokenization
    /// as [`Universe::set`]: whitespace-separated names, or single-character
    /// names run together (`"ABA"` is the sequence `A, B, A`).
    ///
    /// # Errors
    /// Returns a description naming the first unknown attribute.
    pub fn try_seq(&self, spec: &str) -> Result<Vec<AttrId>, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let resolve = |u: &Self, tok: &str| -> Result<AttrId, String> {
            u.attr(tok)
                .ok_or_else(|| format!("no attribute named {tok:?} in {u:?}"))
        };
        if spec.split_whitespace().count() > 1 {
            for tok in spec.split_whitespace() {
                out.push(resolve(self, tok)?);
            }
        } else if let Some(a) = self.attr(spec) {
            out.push(a);
        } else {
            for ch in spec.chars() {
                out.push(resolve(self, &ch.to_string())?);
            }
        }
        Ok(out)
    }

    /// Renders an attribute sequence as concatenated names (`ABA`), falling
    /// back to space separation when any name is multi-character.
    pub fn render_seq(&self, seq: &[AttrId]) -> String {
        let parts: Vec<&str> = seq.iter().map(|&a| self.name(a)).collect();
        if parts.iter().all(|p| p.chars().count() == 1) {
            parts.concat()
        } else {
            parts.join(" ")
        }
    }

    /// Renders an attribute set as concatenated names (paper style: `ABCE`).
    pub fn render_set(&self, set: &AttrSet) -> String {
        let parts: Vec<&str> = set.iter().map(|a| self.name(a)).collect();
        if parts.iter().all(|p| p.chars().count() == 1) {
            parts.concat()
        } else {
            parts.join(" ")
        }
    }
}

impl fmt::Debug for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Universe[{}]({})",
            match self.typing {
                Typing::Typed => "typed",
                Typing::Untyped => "untyped",
            },
            self.names.join(" ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let u = Universe::typed_abcdef();
        assert_eq!(u.width(), 6);
        assert_eq!(u.a("C"), AttrId(2));
        assert_eq!(u.name(AttrId(5)), "F");
        assert!(u.attr("Z").is_none());
    }

    #[test]
    fn untyped_abc_names() {
        let u = Universe::untyped_abc();
        assert_eq!(u.a("B'"), AttrId(1));
        assert!(!u.is_typed());
    }

    #[test]
    fn set_parsing_single_chars() {
        let u = Universe::typed_abcdef();
        let x = u.set("ABCE");
        assert_eq!(x.len(), 4);
        assert!(x.contains(u.a("E")));
        assert!(!x.contains(u.a("D")));
        assert_eq!(u.render_set(&x), "ABCE");
    }

    #[test]
    fn set_parsing_multichar() {
        let u = Universe::untyped_abc();
        let x = u.set("A' B'");
        assert_eq!(x.len(), 2);
        assert_eq!(u.render_set(&x), "A' B'");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        let _ = Universe::typed(vec!["A", "A"]);
    }

    #[test]
    fn all_attrs() {
        let u = Universe::untyped_abc();
        assert_eq!(u.all().len(), 3);
        assert_eq!(u.attrs().count(), 3);
    }
}
