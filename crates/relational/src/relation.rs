//! Relations, projections, natural joins, and the project-join mapping
//! `m_R` (Sections 2.1 and 6 of the paper).
//!
//! # Columnar layout
//!
//! A [`Relation`] stores its tuples as **flat column vectors**: one
//! `Vec<Value>` per attribute (and a [`Value`] is a `u32` handle into the
//! owning [`ValuePool`]'s arena, so each column is machine-word-flat). The
//! chase's hot loops — embedding search probing `(column, value) → rows`
//! postings, egd rewrites patching one column value — read single cells of
//! single columns, and the columnar layout makes those reads contiguous
//! instead of chasing one heap allocation per row.
//!
//! Row identity is maintained without materializing tuples: a row-hash
//! bucket map (`hash → candidate row ids`) answers duplicate checks by
//! column-wise comparison, and a memoized per-value occurrence count keeps
//! `VAL(I)` available as an allocation-free view. The [`Tuple`] API stays
//! as a thin adapter ([`Relation::row_tuple`], [`Relation::tuples`]) for
//! cold callers; hot callers use [`Relation::cell`] / [`RowRef`].
//!
//! ## Invariants
//!
//! * every column vector has exactly `len()` entries (rectangularity);
//! * `seen` holds every row id exactly once, under its current row hash;
//! * [`ColumnIndex`] postings are sorted ascending and list exactly the
//!   rows holding the value in that column;
//! * `val_counts[v]` equals the number of cells holding `v`, and its key
//!   set is exactly `VAL(I)`.

use crate::bitset::AttrSet;
use crate::fx::{FxHashMap, FxHashSet, FxHasher};
use crate::tuple::Tuple;
use crate::universe::{AttrId, Universe};
use crate::value::{Value, ValuePool};
use std::fmt;
use std::hash::Hasher;
use std::sync::Arc;

/// Hash of a row's values in column order (the dedup key).
fn row_hash(vals: impl IntoIterator<Item = Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in vals {
        h.write_u32(v.0);
    }
    h.finish()
}

/// A finite relation: a duplicate-free, insertion-ordered set of tuples over
/// one universe, stored columnar (see the module docs).
///
/// Insertion order is preserved so that the paper's tables print
/// byte-for-byte; equality is *set* equality and ignores order.
///
/// The relation maintains its own inverted [`ColumnIndex`] incrementally:
/// [`Relation::insert`] appends postings and [`Relation::rewrite_value`]
/// (the equality-generating chase step) patches exactly the postings of the
/// rewritten value. Embedding search therefore never pays an index build.
#[derive(Clone)]
pub struct Relation {
    universe: Arc<Universe>,
    /// One flat vector per attribute: `cols[a][row]`.
    cols: Vec<Vec<Value>>,
    /// Row-hash buckets: `row_hash → rows with that hash` (dedup without
    /// storing tuples; collisions resolved by column-wise comparison).
    seen: FxHashMap<u64, Vec<u32>>,
    index: ColumnIndex,
    /// Memoized `VAL(I)` with per-value cell-occurrence counts.
    val_counts: FxHashMap<Value, u32>,
}

impl Relation {
    /// Creates an empty relation over `universe`.
    pub fn new(universe: Arc<Universe>) -> Self {
        let width = universe.width();
        Self {
            universe,
            cols: vec![Vec::new(); width],
            seen: FxHashMap::default(),
            index: ColumnIndex::new(width),
            val_counts: FxHashMap::default(),
        }
    }

    /// Creates a relation from rows (duplicates are dropped).
    pub fn from_rows(universe: Arc<Universe>, rows: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Self::new(universe);
        for t in rows {
            r.insert(t);
        }
        r
    }

    /// The universe of this relation.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple width does not match the universe.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.width(),
            self.universe.width(),
            "tuple width must match universe width"
        );
        self.insert_values(t.values())
    }

    /// Inserts a row given as a value slice in column order (width must
    /// match). Returns `true` if the row was new.
    fn insert_values(&mut self, vals: &[Value]) -> bool {
        let h = row_hash(vals.iter().copied());
        if let Some(cands) = self.seen.get(&h) {
            if cands.iter().any(|&i| self.row_equals(i as usize, vals)) {
                return false;
            }
        }
        let id = self.len() as u32;
        for (a, &v) in vals.iter().enumerate() {
            self.cols[a].push(v);
            *self.val_counts.entry(v).or_insert(0) += 1;
        }
        self.index.add_row(id, vals);
        self.seen.entry(h).or_default().push(id);
        true
    }

    /// Column-wise comparison of row `i` against a value slice.
    #[inline]
    fn row_equals(&self, i: usize, vals: &[Value]) -> bool {
        self.cols.iter().zip(vals).all(|(col, &v)| col[i] == v)
    }

    /// Hash of row `i`'s current values.
    fn hash_of_row(&self, i: usize) -> u64 {
        row_hash(self.cols.iter().map(|col| col[i]))
    }

    /// Membership test for a value slice in column order.
    pub fn contains_values(&self, vals: &[Value]) -> bool {
        debug_assert_eq!(vals.len(), self.universe.width());
        let h = row_hash(vals.iter().copied());
        self.seen
            .get(&h)
            .is_some_and(|cands| cands.iter().any(|&i| self.row_equals(i as usize, vals)))
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        t.width() == self.universe.width() && self.contains_values(t.values())
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.cols[0].len()
    }

    /// `true` if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.cols[0].is_empty()
    }

    /// The value in row `row`, column `a` — the hot-path cell accessor.
    #[inline]
    pub fn cell(&self, row: usize, a: AttrId) -> Value {
        self.cols[a.index()][row]
    }

    /// The flat column vector of attribute `a` (all of `I[A]`, row order,
    /// with repetitions).
    pub fn column(&self, a: AttrId) -> &[Value] {
        &self.cols[a.index()]
    }

    /// A borrowed view of row `i` (no allocation).
    #[inline]
    pub fn row(&self, i: usize) -> RowRef<'_> {
        RowRef {
            cols: &self.cols,
            i,
        }
    }

    /// Row `i` materialized as a [`Tuple`] (the compatibility adapter).
    pub fn row_tuple(&self, i: usize) -> Tuple {
        Tuple::new(self.cols.iter().map(|col| col[i]).collect())
    }

    /// Iterates borrowed row views in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// All rows materialized as [`Tuple`]s, in insertion order (the
    /// compatibility adapter for cold callers).
    pub fn tuples(&self) -> Vec<Tuple> {
        (0..self.len()).map(|i| self.row_tuple(i)).collect()
    }

    /// `VAL(I)`: every value appearing anywhere in the relation, as an
    /// allocation-free view (memoized; unspecified order).
    pub fn val(&self) -> impl Iterator<Item = Value> + '_ {
        self.val_counts.keys().copied()
    }

    /// `|VAL(I)|` in O(1).
    pub fn val_count(&self) -> usize {
        self.val_counts.len()
    }

    /// `true` if `v` occurs anywhere in the relation, in O(1).
    pub fn contains_value(&self, v: Value) -> bool {
        self.val_counts.contains_key(&v)
    }

    /// `I[A]` as a set view: the distinct values appearing in column `a`
    /// (allocation-free; unspecified order).
    pub fn column_values(&self, a: AttrId) -> impl Iterator<Item = Value> + '_ {
        self.index.column_values(a)
    }

    /// The projection `I[X]` (an X-relation).
    pub fn project(&self, set: &AttrSet) -> Projection {
        let attrs: Vec<AttrId> = set.iter().collect();
        let mut rows = FxHashSet::default();
        for i in 0..self.len() {
            rows.insert(attrs.iter().map(|&a| self.cell(i, a)).collect());
        }
        Projection { attrs, rows }
    }

    /// Applies a total valuation, returning the image relation `α(I)`.
    ///
    /// # Panics
    /// Panics if some value of the relation is not in the valuation's domain.
    pub fn map(&self, f: &FxHashMap<Value, Value>) -> Relation {
        let mut out = Relation::new(self.universe.clone());
        let mut buf: Vec<Value> = Vec::with_capacity(self.universe.width());
        for i in 0..self.len() {
            buf.clear();
            buf.extend(self.cols.iter().map(|col| {
                let v = col[i];
                *f.get(&v)
                    .unwrap_or_else(|| panic!("valuation undefined on {v:?}"))
            }));
            out.insert_values(&buf);
        }
        out
    }

    /// Set-union of two relations over the same universe.
    pub fn union(&self, other: &Relation) -> Relation {
        assert!(Arc::ptr_eq(&self.universe, &other.universe) || self.universe == other.universe);
        let mut out = self.clone();
        let mut buf: Vec<Value> = Vec::with_capacity(self.universe.width());
        for i in 0..other.len() {
            buf.clear();
            buf.extend(other.cols.iter().map(|col| col[i]));
            out.insert_values(&buf);
        }
        out
    }

    /// `true` if every tuple of `self` is in `other`.
    pub fn is_subrelation_of(&self, other: &Relation) -> bool {
        let mut buf: Vec<Value> = Vec::with_capacity(self.universe.width());
        (0..self.len()).all(|i| {
            buf.clear();
            buf.extend(self.cols.iter().map(|col| col[i]));
            other.contains_values(&buf)
        })
    }

    /// Verifies that every value sits in a column compatible with its sort.
    pub fn check_typed(&self, pool: &ValuePool) -> Result<(), String> {
        for a in self.universe.attrs() {
            for &v in &self.cols[a.index()] {
                if !pool.fits(v, a) {
                    return Err(format!(
                        "value {} may not appear in column {}",
                        pool.name(v),
                        self.universe.name(a)
                    ));
                }
            }
        }
        Ok(())
    }

    /// The incrementally maintained index from `(column, value)` to row
    /// positions. Always consistent with the stored rows.
    pub fn index(&self) -> &ColumnIndex {
        &self.index
    }

    /// Replaces every occurrence of `from` by `to`, in place — the
    /// equality-generating chase's row rewrite.
    ///
    /// Affected rows are located through the index (no full scan), and when
    /// no rows collapse into duplicates the columns are patched in place and
    /// `from`'s postings migrate to `to`. Returns `None` if `from` does not
    /// occur (or equals `to`); otherwise a [`RewriteReport`] naming the
    /// surviving rewritten rows and any removed duplicates.
    ///
    /// When a rewritten row collides with another row, the *first occurrence
    /// in row order of the resulting tuple* survives; later copies are
    /// removed and subsequent rows shift down, exactly as if all rows had
    /// been re-inserted in order.
    pub fn rewrite_value(&mut self, from: Value, to: Value) -> Option<RewriteReport> {
        if from == to {
            return None;
        }
        let width = self.universe.width();
        let mut affected: Vec<u32> = Vec::new();
        for a in self.universe.attrs() {
            affected.extend_from_slice(self.index.rows_with(a, from));
        }
        if affected.is_empty() {
            return None;
        }
        affected.sort_unstable();
        affected.dedup();

        // Optimistic fast path: detect collisions before touching anything.
        // An image may collide with an untouched row or with an earlier
        // image (two affected rows can rewrite to the same tuple).
        let mut images: Vec<Value> = Vec::with_capacity(affected.len() * width);
        let mut image_hashes: Vec<u64> = Vec::with_capacity(affected.len());
        let mut image_buckets: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        let mut collision = false;
        'detect: for (k, &i) in affected.iter().enumerate() {
            let start = images.len();
            for a in 0..width {
                let v = self.cols[a][i as usize];
                images.push(if v == from { to } else { v });
            }
            let img = &images[start..start + width];
            let h = row_hash(img.iter().copied());
            if let Some(prev) = image_buckets.get(&h) {
                for &p in prev {
                    if images[p * width..(p + 1) * width] == *img {
                        collision = true;
                        break 'detect;
                    }
                }
            }
            if let Some(cands) = self.seen.get(&h) {
                for &j in cands {
                    if affected.binary_search(&j).is_err() && self.row_equals(j as usize, img) {
                        collision = true;
                        break 'detect;
                    }
                }
            }
            image_hashes.push(h);
            image_buckets.entry(h).or_default().push(k);
        }

        if !collision {
            // No collapse: commit the images in place; `from`'s postings
            // migrate wholesale to `to`, and all of `from`'s cell
            // occurrences transfer to `to`'s count.
            for &i in &affected {
                let h_old = self.hash_of_row(i as usize);
                let bucket = self.seen.get_mut(&h_old).expect("row hashed");
                bucket.retain(|&j| j != i);
                if bucket.is_empty() {
                    self.seen.remove(&h_old);
                }
            }
            for (k, &i) in affected.iter().enumerate() {
                for a in 0..width {
                    self.cols[a][i as usize] = images[k * width + a];
                }
                self.seen.entry(image_hashes[k]).or_default().push(i);
            }
            self.index.merge_value_postings(from, to);
            let moved = self.val_counts.remove(&from).expect("from occurs");
            *self.val_counts.entry(to).or_insert(0) += moved;
            return Some(RewriteReport {
                changed: affected,
                removed: Vec::new(),
            });
        }

        // Slow path — some rows collapse. Replay the reference semantics
        // ("rewrite every row, re-insert in order, first occurrence wins"),
        // rebuilding columns, buckets, index, and counts from scratch. Note
        // the survivor of a collision group is the *earliest position*,
        // which may itself be a rewritten row standing in front of an
        // untouched duplicate.
        let n = self.len();
        let old_cols = std::mem::replace(&mut self.cols, vec![Vec::with_capacity(n); width]);
        self.seen.clear();
        self.index.clear();
        self.val_counts.clear();
        let mut changed: Vec<u32> = Vec::new();
        let mut removed: Vec<u32> = Vec::new();
        let mut buf: Vec<Value> = Vec::with_capacity(width);
        for i in 0..n {
            let was_affected = affected.binary_search(&(i as u32)).is_ok();
            buf.clear();
            for col in &old_cols {
                let v = col[i];
                buf.push(if v == from { to } else { v });
            }
            if !self.insert_values(&buf) {
                removed.push(i as u32);
                continue;
            }
            if was_affected {
                changed.push(self.len() as u32 - 1);
            }
        }
        Some(RewriteReport { changed, removed })
    }
}

/// A borrowed, allocation-free view of one relation row.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    cols: &'a [Vec<Value>],
    i: usize,
}

impl<'a> RowRef<'a> {
    /// Value in column `a` — `w[A]` in the paper.
    #[inline]
    pub fn get(&self, a: AttrId) -> Value {
        self.cols[a.index()][self.i]
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Row position within the relation.
    pub fn position(&self) -> usize {
        self.i
    }

    /// All values in column order.
    pub fn values(&self) -> impl Iterator<Item = Value> + 'a {
        let i = self.i;
        self.cols.iter().map(move |col| col[i])
    }

    /// Values restricted to `set`, in column order.
    pub fn restrict(self, set: &AttrSet) -> Box<[Value]> {
        set.iter().map(|a| self.get(a)).collect()
    }

    /// `true` if the two rows agree on every attribute of `set`.
    pub fn agrees_on(self, other: RowRef<'_>, set: &AttrSet) -> bool {
        set.iter().all(|a| self.get(a) == other.get(a))
    }

    /// Materializes the row as an owned [`Tuple`].
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(self.values().collect())
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowRef{:?}", self.values().collect::<Vec<_>>())
    }
}

/// What [`Relation::rewrite_value`] did to the row set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteReport {
    /// Row positions (post-compaction) whose tuple was rewritten.
    pub changed: Vec<u32>,
    /// Pre-compaction positions of rows removed as duplicates, ascending.
    /// When nonempty, every position after `removed[0]` has shifted down.
    pub removed: Vec<u32>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe
            && self.len() == other.len()
            && self.is_subrelation_of(other)
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} rows over {:?})", self.len(), self.universe)
    }
}

/// Inverted index over a relation: per attribute, `value → rows`.
///
/// Posting lists are kept sorted ascending by row position; every mutation
/// preserves that invariant, so iteration over candidates is deterministic.
#[derive(Clone)]
pub struct ColumnIndex {
    cols: Vec<FxHashMap<Value, Vec<u32>>>,
}

impl ColumnIndex {
    fn new(width: usize) -> Self {
        Self {
            cols: vec![FxHashMap::default(); width],
        }
    }

    /// Row positions whose column `a` holds `v`, ascending.
    pub fn rows_with(&self, a: AttrId, v: Value) -> &[u32] {
        self.cols[a.index()]
            .get(&v)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Distinct values present in column `a` (unspecified order). Every
    /// yielded value has a non-empty posting list.
    pub fn column_values(&self, a: AttrId) -> impl Iterator<Item = Value> + '_ {
        self.cols[a.index()].keys().copied()
    }

    /// Appends postings for a row being pushed at position `id`.
    fn add_row(&mut self, id: u32, vals: &[Value]) {
        for (col, &v) in self.cols.iter_mut().zip(vals) {
            col.entry(v).or_default().push(id);
        }
    }

    /// Moves every posting of `from` into `to`'s lists (merge of two sorted,
    /// disjoint lists per column).
    fn merge_value_postings(&mut self, from: Value, to: Value) {
        for col in &mut self.cols {
            let Some(old) = col.remove(&from) else {
                continue;
            };
            let entry = col.entry(to).or_default();
            if entry.is_empty() {
                *entry = old;
            } else {
                let mut merged = Vec::with_capacity(entry.len() + old.len());
                let (mut i, mut j) = (0, 0);
                while i < entry.len() && j < old.len() {
                    if entry[i] < old[j] {
                        merged.push(entry[i]);
                        i += 1;
                    } else {
                        merged.push(old[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&entry[i..]);
                merged.extend_from_slice(&old[j..]);
                *entry = merged;
            }
        }
    }

    /// Drops every posting (used before a from-scratch replay).
    fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
    }
}

/// An X-relation: the result of projecting onto an attribute set, or of a
/// join of such projections. Attribute order is the column order of the
/// parent universe.
#[derive(Clone, PartialEq, Eq)]
pub struct Projection {
    attrs: Vec<AttrId>,
    rows: FxHashSet<Box<[Value]>>,
}

impl Projection {
    /// The attributes (schema) of this projection, in column order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row set.
    pub fn rows(&self) -> &FxHashSet<Box<[Value]>> {
        &self.rows
    }

    /// Projects this projection further onto `set ⊆ attrs`.
    pub fn project(&self, set: &AttrSet) -> Projection {
        let keep: Vec<usize> = self
            .attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| set.contains(**a))
            .map(|(i, _)| i)
            .collect();
        let attrs = keep.iter().map(|&i| self.attrs[i]).collect();
        let mut rows = FxHashSet::default();
        for r in &self.rows {
            rows.insert(keep.iter().map(|&i| r[i]).collect());
        }
        Projection { attrs, rows }
    }

    /// Natural join with `other` on their shared attributes.
    ///
    /// The result's schema is the union of the two schemas in parent-universe
    /// column order. This is the engine behind the project-join mapping.
    pub fn join(&self, other: &Projection) -> Projection {
        // Positions of shared attributes in each side.
        let shared: Vec<(usize, usize)> = self
            .attrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| other.attrs.iter().position(|b| b == a).map(|j| (i, j)))
            .collect();
        let other_extra: Vec<usize> = (0..other.attrs.len())
            .filter(|&j| !shared.iter().any(|&(_, sj)| sj == j))
            .collect();

        // Output schema: self.attrs ++ other extras, then sorted by AttrId to
        // keep the canonical column order.
        let mut attrs: Vec<AttrId> = self.attrs.clone();
        attrs.extend(other_extra.iter().map(|&j| other.attrs[j]));
        let mut order: Vec<usize> = (0..attrs.len()).collect();
        order.sort_by_key(|&i| attrs[i]);
        let out_attrs: Vec<AttrId> = order.iter().map(|&i| attrs[i]).collect();

        // Hash join: bucket `other` rows by shared-attr key.
        let mut buckets: FxHashMap<Box<[Value]>, Vec<&Box<[Value]>>> = FxHashMap::default();
        for r in &other.rows {
            let key: Box<[Value]> = shared.iter().map(|&(_, j)| r[j]).collect();
            buckets.entry(key).or_default().push(r);
        }

        let mut rows = FxHashSet::default();
        for l in &self.rows {
            let key: Box<[Value]> = shared.iter().map(|&(i, _)| l[i]).collect();
            let Some(matches) = buckets.get(&key) else {
                continue;
            };
            for r in matches {
                let mut combined: Vec<Value> = l.to_vec();
                combined.extend(other_extra.iter().map(|&j| r[j]));
                let reordered: Box<[Value]> = order.iter().map(|&i| combined[i]).collect();
                rows.insert(reordered);
            }
        }
        Projection {
            attrs: out_attrs,
            rows,
        }
    }
}

impl fmt::Debug for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Projection({} rows over {} attrs)",
            self.rows.len(),
            self.attrs.len()
        )
    }
}

/// The project-join mapping `m_R` of Section 6:
/// `m_R(I) = { t : t is an R-value with t[Rᵢ] ∈ I[Rᵢ] for all i }`,
/// computed as the natural join `I[R₁] ⋈ … ⋈ I[R_k]`.
///
/// # Panics
/// Panics if `components` is empty.
pub fn project_join(relation: &Relation, components: &[AttrSet]) -> Projection {
    assert!(!components.is_empty(), "m_R needs at least one component");
    let mut acc = relation.project(&components[0]);
    for r in &components[1..] {
        acc = acc.join(&relation.project(r));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Arc<Universe>, ValuePool) {
        let u = Universe::untyped_abc();
        let p = ValuePool::new(u.clone());
        (u, p)
    }

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[[&str; 3]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect())),
        )
    }

    #[test]
    fn insert_dedups_and_preserves_order() {
        let (u, mut p) = abc();
        let mut r = Relation::new(u);
        let a = p.untyped("a");
        let b = p.untyped("b");
        assert!(r.insert(Tuple::new(vec![a, a, a])));
        assert!(r.insert(Tuple::new(vec![b, b, b])));
        assert!(!r.insert(Tuple::new(vec![a, a, a])));
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, AttrId(0)), a);
        assert_eq!(r.row_tuple(0).get(AttrId(0)), a);
    }

    #[test]
    fn set_equality_ignores_order() {
        let (u, mut p) = abc();
        let r1 = rel(&u, &mut p, &[["a", "b", "c"], ["x", "y", "z"]]);
        let r2 = rel(&u, &mut p, &[["x", "y", "z"], ["a", "b", "c"]]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn val_collects_all_values() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "a"]]);
        assert_eq!(r.val_count(), 2);
        assert_eq!(r.val().count(), 2);
        let a = p.get(None, "a").unwrap();
        assert!(r.contains_value(a));
    }

    #[test]
    fn column_views_match_rows() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "c"], ["a", "d", "c"]]);
        let a = p.get(None, "a").unwrap();
        assert_eq!(r.column(AttrId(0)), &[a, a]);
        let col_b: Vec<Value> = {
            let mut v: Vec<Value> = r.column_values(AttrId(1)).collect();
            v.sort_unstable();
            v
        };
        let mut want = vec![p.get(None, "b").unwrap(), p.get(None, "d").unwrap()];
        want.sort_unstable();
        assert_eq!(col_b, want);
    }

    #[test]
    fn projection_dedups() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "c"], ["a", "b", "d"]]);
        let ab = r.project(&u.set("A' B'"));
        assert_eq!(ab.len(), 1);
        let abc = r.project(&u.all());
        assert_eq!(abc.len(), 2);
    }

    #[test]
    fn join_recovers_lossless_decomposition() {
        let (u, mut p) = abc();
        // I = {(a,b,c)}: join of I[A'B'] and I[B'C'] over B' gives back I.
        let r = rel(&u, &mut p, &[["a", "b", "c"]]);
        let joined = project_join(&r, &[u.set("A' B'"), u.set("B' C'")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.attrs().len(), 3);
    }

    #[test]
    fn join_produces_spurious_tuples_when_lossy() {
        let (u, mut p) = abc();
        // Classic lossy decomposition: two tuples agreeing on B'.
        let r = rel(&u, &mut p, &[["a1", "b", "c1"], ["a2", "b", "c2"]]);
        let joined = project_join(&r, &[u.set("A' B'"), u.set("B' C'")]);
        assert_eq!(joined.len(), 4, "join must include the two spurious tuples");
    }

    #[test]
    fn join_on_disjoint_schemas_is_cross_product() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a1", "b1", "c1"], ["a2", "b2", "c2"]]);
        let joined = project_join(&r, &[u.set("A'"), u.set("C'")]);
        assert_eq!(joined.len(), 4);
    }

    #[test]
    fn projection_of_projection() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "c"], ["a", "d", "e"]]);
        let abc = r.project(&u.all());
        let a = abc.project(&u.set("A'"));
        assert_eq!(a.len(), 1);
    }

    /// The incrementally maintained index, hash buckets, and value counts
    /// must all match a from-scratch build.
    fn assert_index_consistent(r: &Relation) {
        let u = r.universe().clone();
        for (i, t) in r.iter().enumerate() {
            for a in u.attrs() {
                let posting = r.index().rows_with(a, t.get(a));
                assert!(
                    posting.contains(&(i as u32)),
                    "row {i} missing from posting ({a:?}, {:?})",
                    t.get(a)
                );
                assert!(
                    posting.windows(2).all(|w| w[0] < w[1]),
                    "posting ({a:?}, {:?}) not strictly sorted: {posting:?}",
                    t.get(a)
                );
            }
        }
        // No stale postings: every posting entry points at a row that
        // actually holds the value in that column.
        for a in u.attrs() {
            for v in r.column_values(a).collect::<Vec<_>>() {
                for &ri in r.index().rows_with(a, v) {
                    assert_eq!(r.cell(ri as usize, a), v);
                }
            }
        }
        // Value counts match a recount; membership matches the tuples.
        let mut recount: FxHashMap<Value, u32> = FxHashMap::default();
        for t in r.iter() {
            for v in t.values() {
                *recount.entry(v).or_insert(0) += 1;
            }
        }
        assert_eq!(recount, r.val_counts, "val_counts diverged");
        for t in r.tuples() {
            assert!(r.contains(&t), "stored row not found via hash buckets");
        }
    }

    #[test]
    fn insert_maintains_index() {
        let (u, mut p) = abc();
        let r = rel(
            &u,
            &mut p,
            &[["a", "b", "c"], ["b", "a", "c"], ["a", "a", "a"]],
        );
        assert_index_consistent(&r);
        let a = p.get(None, "a").unwrap();
        assert_eq!(r.index().rows_with(AttrId(0), a), &[0, 2]);
        assert_eq!(r.index().rows_with(AttrId(2), a), &[2]);
    }

    #[test]
    fn rewrite_value_patches_index_without_collapse() {
        let (u, mut p) = abc();
        let mut r = rel(&u, &mut p, &[["a", "b", "c"], ["b", "d", "e"]]);
        let (a, b) = (p.get(None, "a").unwrap(), p.get(None, "b").unwrap());
        let report = r.rewrite_value(b, a).expect("b occurs");
        assert_eq!(report.changed, vec![0, 1]);
        assert!(report.removed.is_empty());
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, AttrId(1)), a);
        assert_eq!(r.cell(1, AttrId(0)), a);
        // b's postings are gone; a's postings absorbed them, sorted.
        assert_eq!(r.index().rows_with(AttrId(0), a), &[0, 1]);
        assert!(r.index().rows_with(AttrId(0), b).is_empty());
        assert!(!r.contains_value(b), "b no longer occurs");
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_value_collapses_duplicates_and_rebuilds() {
        let (u, mut p) = abc();
        // Rewriting b2 -> b1 makes rows 0 and 1 equal; row 1 must vanish
        // and row 2 shift down.
        let mut r = rel(
            &u,
            &mut p,
            &[["a", "b1", "c"], ["a", "b2", "c"], ["x", "y", "z"]],
        );
        let (b1, b2) = (p.get(None, "b1").unwrap(), p.get(None, "b2").unwrap());
        let report = r.rewrite_value(b2, b1).expect("b2 occurs");
        assert_eq!(report.removed, vec![1]);
        assert_eq!(report.changed, Vec::<u32>::new());
        assert_eq!(r.len(), 2);
        let x = p.get(None, "x").unwrap();
        assert_eq!(r.index().rows_with(AttrId(0), x), &[1], "row 2 shifted to 1");
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_collision_with_later_row_keeps_earlier_position() {
        let (u, mut p) = abc();
        // Rewriting b -> a makes row 0 equal row 2. First occurrence in row
        // order wins: the (rewritten) row 0 survives, the later untouched
        // copy is removed — exactly as if all rows were re-inserted in
        // order.
        let mut r = rel(
            &u,
            &mut p,
            &[["b", "x", "c"], ["m", "n", "o"], ["a", "x", "c"]],
        );
        let (a, b) = (p.get(None, "a").unwrap(), p.get(None, "b").unwrap());
        let report = r.rewrite_value(b, a).expect("b occurs");
        assert_eq!(report.changed, vec![0]);
        assert_eq!(report.removed, vec![2]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, AttrId(0)), a, "survivor sits at position 0");
        let m = p.get(None, "m").unwrap();
        assert_eq!(r.cell(1, AttrId(0)), m);
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_collision_between_two_images_collapses() {
        let (u, mut p) = abc();
        // Rewriting b -> a maps BOTH rows to (a, a, c): two affected rows
        // collide with each other, not with an untouched row.
        let mut r = rel(&u, &mut p, &[["b", "a", "c"], ["a", "b", "c"]]);
        let (a, b) = (p.get(None, "a").unwrap(), p.get(None, "b").unwrap());
        let report = r.rewrite_value(b, a).expect("b occurs");
        assert_eq!(report.changed, vec![0]);
        assert_eq!(report.removed, vec![1]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, AttrId(0)), a);
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_value_missing_is_noop() {
        let (u, mut p) = abc();
        let mut r = rel(&u, &mut p, &[["a", "b", "c"]]);
        let ghost = p.untyped("ghost");
        let a = p.get(None, "a").unwrap();
        assert!(r.rewrite_value(ghost, a).is_none());
        assert!(r.rewrite_value(a, a).is_none());
        assert_eq!(r.len(), 1);
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_value_chain_keeps_index_consistent() {
        let (u, mut p) = abc();
        let mut r = rel(
            &u,
            &mut p,
            &[
                ["v0", "v1", "v2"],
                ["v1", "v2", "v3"],
                ["v2", "v3", "v4"],
                ["v3", "v4", "v0"],
            ],
        );
        let v: Vec<Value> = (0..5)
            .map(|i| p.get(None, &format!("v{i}")).unwrap())
            .collect();
        // Collapse the whole chain into v0, one merge at a time.
        for i in 1..5 {
            r.rewrite_value(v[i], v[0]);
            assert_index_consistent(&r);
        }
        assert_eq!(r.len(), 1, "all rows collapse to (v0, v0, v0)");
        assert!(r.row(0).values().all(|x| x == v[0]));
    }

    #[test]
    fn map_applies_valuation() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "c"]]);
        let x = p.untyped("x");
        let mut f = FxHashMap::default();
        for v in r.val() {
            f.insert(v, x);
        }
        let image = r.map(&f);
        assert_eq!(image.len(), 1);
        assert!(image.row(0).values().all(|v| v == x));
    }
}
