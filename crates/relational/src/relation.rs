//! Relations, projections, natural joins, and the project-join mapping
//! `m_R` (Sections 2.1 and 6 of the paper).

use crate::bitset::AttrSet;
use crate::fx::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;
use crate::universe::{AttrId, Universe};
use crate::value::{Value, ValuePool};
use std::fmt;
use std::sync::Arc;

/// A finite relation: a duplicate-free, insertion-ordered set of tuples over
/// one universe.
///
/// Insertion order is preserved so that the paper's tables print
/// byte-for-byte; equality is *set* equality and ignores order.
///
/// The relation maintains its own inverted [`ColumnIndex`] incrementally:
/// [`Relation::insert`] appends postings and [`Relation::rewrite_value`]
/// (the equality-generating chase step) patches exactly the postings of the
/// rewritten value. Embedding search therefore never pays an index build.
#[derive(Clone)]
pub struct Relation {
    universe: Arc<Universe>,
    rows: Vec<Tuple>,
    seen: FxHashSet<Tuple>,
    index: ColumnIndex,
}

impl Relation {
    /// Creates an empty relation over `universe`.
    pub fn new(universe: Arc<Universe>) -> Self {
        Self {
            universe,
            rows: Vec::new(),
            seen: FxHashSet::default(),
            index: ColumnIndex::default(),
        }
    }

    /// Creates a relation from rows (duplicates are dropped).
    pub fn from_rows(universe: Arc<Universe>, rows: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Self::new(universe);
        for t in rows {
            r.insert(t);
        }
        r
    }

    /// The universe of this relation.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple width does not match the universe.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.width(),
            self.universe.width(),
            "tuple width must match universe width"
        );
        if self.seen.contains(&t) {
            return false;
        }
        self.index.add_row(self.rows.len() as u32, self.universe.width(), &t);
        self.seen.insert(t.clone());
        self.rows.push(t);
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Tuples in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Iterates tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// `VAL(I)`: every value appearing anywhere in the relation.
    pub fn val(&self) -> FxHashSet<Value> {
        let mut s = FxHashSet::default();
        for t in &self.rows {
            s.extend(t.val());
        }
        s
    }

    /// `I[A]` as a set: the values appearing in column `a`.
    pub fn column_values(&self, a: AttrId) -> FxHashSet<Value> {
        self.rows.iter().map(|t| t.get(a)).collect()
    }

    /// The projection `I[X]` (an X-relation).
    pub fn project(&self, set: &AttrSet) -> Projection {
        let attrs: Vec<AttrId> = set.iter().collect();
        let mut rows = FxHashSet::default();
        for t in &self.rows {
            rows.insert(t.restrict(set));
        }
        Projection { attrs, rows }
    }

    /// Applies a total valuation, returning the image relation `α(I)`.
    ///
    /// # Panics
    /// Panics if some value of the relation is not in the valuation's domain.
    pub fn map(&self, f: &FxHashMap<Value, Value>) -> Relation {
        let mut out = Relation::new(self.universe.clone());
        for t in &self.rows {
            out.insert(t.map(|v| {
                *f.get(&v)
                    .unwrap_or_else(|| panic!("valuation undefined on {v:?}"))
            }));
        }
        out
    }

    /// Set-union of two relations over the same universe.
    pub fn union(&self, other: &Relation) -> Relation {
        assert!(Arc::ptr_eq(&self.universe, &other.universe) || self.universe == other.universe);
        let mut out = self.clone();
        for t in other.iter() {
            out.insert(t.clone());
        }
        out
    }

    /// `true` if every tuple of `self` is in `other`.
    pub fn is_subrelation_of(&self, other: &Relation) -> bool {
        self.rows.iter().all(|t| other.contains(t))
    }

    /// Verifies that every value sits in a column compatible with its sort.
    pub fn check_typed(&self, pool: &ValuePool) -> Result<(), String> {
        for t in &self.rows {
            for a in self.universe.attrs() {
                if !pool.fits(t.get(a), a) {
                    return Err(format!(
                        "value {} may not appear in column {}",
                        pool.name(t.get(a)),
                        self.universe.name(a)
                    ));
                }
            }
        }
        Ok(())
    }

    /// The incrementally maintained index from `(column, value)` to row
    /// positions. Always consistent with [`Relation::rows`].
    pub fn index(&self) -> &ColumnIndex {
        &self.index
    }

    /// Replaces every occurrence of `from` by `to`, in place — the
    /// equality-generating chase's row rewrite.
    ///
    /// Affected rows are located through the index (no full scan), and when
    /// no rows collapse into duplicates the index is patched rather than
    /// rebuilt. Returns `None` if `from` does not occur (or equals `to`);
    /// otherwise a [`RewriteReport`] naming the surviving rewritten rows and
    /// any removed duplicates.
    ///
    /// When a rewritten row collides with another row, the *first occurrence
    /// in row order of the resulting tuple* survives; later copies are
    /// removed and subsequent rows shift down, exactly as if all rows had
    /// been re-inserted in order.
    pub fn rewrite_value(&mut self, from: Value, to: Value) -> Option<RewriteReport> {
        if from == to {
            return None;
        }
        let mut affected: Vec<u32> = Vec::new();
        for a in self.universe.attrs() {
            affected.extend_from_slice(self.index.rows_with(a, from));
        }
        if affected.is_empty() {
            return None;
        }
        affected.sort_unstable();
        affected.dedup();

        // Optimistic fast path: detect collisions before touching any row.
        // `seen` temporarily loses the affected originals and gains their
        // images; on a collision it is reconstructed by the slow path.
        for &i in &affected {
            self.seen.remove(&self.rows[i as usize]);
        }
        let mut images: Vec<Tuple> = Vec::with_capacity(affected.len());
        let mut collision = false;
        for &i in &affected {
            let rewritten = self.rows[i as usize].map(|v| if v == from { to } else { v });
            if self.seen.contains(&rewritten) {
                collision = true;
                break;
            }
            self.seen.insert(rewritten.clone());
            images.push(rewritten);
        }

        if !collision {
            // No collapse: commit the images in place; `from`'s postings
            // migrate wholesale to `to`.
            for (&i, image) in affected.iter().zip(images) {
                self.rows[i as usize] = image;
            }
            self.index.merge_value_postings(self.universe.width(), from, to);
            return Some(RewriteReport {
                changed: affected,
                removed: Vec::new(),
            });
        }

        // Slow path — some rows collapse. Replay the reference semantics
        // ("rewrite every row, re-insert in order, first occurrence wins"),
        // rebuilding rows, seen, and index from scratch. Note the survivor
        // of a collision group is the *earliest position*, which may itself
        // be a rewritten row standing in front of an untouched duplicate.
        let affected_lookup: FxHashSet<u32> = affected.iter().copied().collect();
        let old_rows = std::mem::take(&mut self.rows);
        self.seen.clear();
        let mut changed: Vec<u32> = Vec::new();
        let mut removed: Vec<u32> = Vec::new();
        for (i, t) in old_rows.into_iter().enumerate() {
            let was_affected = affected_lookup.contains(&(i as u32));
            let nt = if was_affected {
                t.map(|v| if v == from { to } else { v })
            } else {
                t
            };
            if self.seen.contains(&nt) {
                removed.push(i as u32);
                continue;
            }
            if was_affected {
                changed.push(self.rows.len() as u32);
            }
            self.seen.insert(nt.clone());
            self.rows.push(nt);
        }
        self.index.rebuild(self.universe.width(), &self.rows);
        Some(RewriteReport { changed, removed })
    }
}

/// What [`Relation::rewrite_value`] did to the row set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteReport {
    /// Row positions (post-compaction) whose tuple was rewritten.
    pub changed: Vec<u32>,
    /// Pre-compaction positions of rows removed as duplicates, ascending.
    /// When nonempty, every position after `removed[0]` has shifted down.
    pub removed: Vec<u32>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe
            && self.rows.len() == other.rows.len()
            && self.rows.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} rows over {:?})", self.rows.len(), self.universe)
    }
}

/// Inverted index over a relation: `(column, value) → rows`.
///
/// Posting lists are kept sorted ascending by row position; every mutation
/// preserves that invariant, so iteration over candidates is deterministic.
#[derive(Clone, Default)]
pub struct ColumnIndex {
    map: FxHashMap<(AttrId, Value), Vec<u32>>,
}

impl ColumnIndex {
    /// Row positions whose column `a` holds `v`, ascending.
    pub fn rows_with(&self, a: AttrId, v: Value) -> &[u32] {
        self.map.get(&(a, v)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Appends postings for a row being pushed at position `id`.
    fn add_row(&mut self, id: u32, width: usize, t: &Tuple) {
        for a in (0..width).map(|i| AttrId(i as u16)) {
            self.map.entry((a, t.get(a))).or_default().push(id);
        }
    }

    /// Moves every posting of `from` into `to`'s lists (merge of two sorted,
    /// disjoint lists per column).
    fn merge_value_postings(&mut self, width: usize, from: Value, to: Value) {
        for a in (0..width).map(|i| AttrId(i as u16)) {
            let Some(old) = self.map.remove(&(a, from)) else {
                continue;
            };
            let entry = self.map.entry((a, to)).or_default();
            if entry.is_empty() {
                *entry = old;
            } else {
                let mut merged = Vec::with_capacity(entry.len() + old.len());
                let (mut i, mut j) = (0, 0);
                while i < entry.len() && j < old.len() {
                    if entry[i] < old[j] {
                        merged.push(entry[i]);
                        i += 1;
                    } else {
                        merged.push(old[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&entry[i..]);
                merged.extend_from_slice(&old[j..]);
                *entry = merged;
            }
        }
    }

    /// Rebuilds from scratch (used after row compaction).
    fn rebuild(&mut self, width: usize, rows: &[Tuple]) {
        self.map.clear();
        for (i, t) in rows.iter().enumerate() {
            self.add_row(i as u32, width, t);
        }
    }
}

/// An X-relation: the result of projecting onto an attribute set, or of a
/// join of such projections. Attribute order is the column order of the
/// parent universe.
#[derive(Clone, PartialEq, Eq)]
pub struct Projection {
    attrs: Vec<AttrId>,
    rows: FxHashSet<Box<[Value]>>,
}

impl Projection {
    /// The attributes (schema) of this projection, in column order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row set.
    pub fn rows(&self) -> &FxHashSet<Box<[Value]>> {
        &self.rows
    }

    /// Projects this projection further onto `set ⊆ attrs`.
    pub fn project(&self, set: &AttrSet) -> Projection {
        let keep: Vec<usize> = self
            .attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| set.contains(**a))
            .map(|(i, _)| i)
            .collect();
        let attrs = keep.iter().map(|&i| self.attrs[i]).collect();
        let mut rows = FxHashSet::default();
        for r in &self.rows {
            rows.insert(keep.iter().map(|&i| r[i]).collect());
        }
        Projection { attrs, rows }
    }

    /// Natural join with `other` on their shared attributes.
    ///
    /// The result's schema is the union of the two schemas in parent-universe
    /// column order. This is the engine behind the project-join mapping.
    pub fn join(&self, other: &Projection) -> Projection {
        // Positions of shared attributes in each side.
        let shared: Vec<(usize, usize)> = self
            .attrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| other.attrs.iter().position(|b| b == a).map(|j| (i, j)))
            .collect();
        let other_extra: Vec<usize> = (0..other.attrs.len())
            .filter(|&j| !shared.iter().any(|&(_, sj)| sj == j))
            .collect();

        // Output schema: self.attrs ++ other extras, then sorted by AttrId to
        // keep the canonical column order.
        let mut attrs: Vec<AttrId> = self.attrs.clone();
        attrs.extend(other_extra.iter().map(|&j| other.attrs[j]));
        let mut order: Vec<usize> = (0..attrs.len()).collect();
        order.sort_by_key(|&i| attrs[i]);
        let out_attrs: Vec<AttrId> = order.iter().map(|&i| attrs[i]).collect();

        // Hash join: bucket `other` rows by shared-attr key.
        let mut buckets: FxHashMap<Box<[Value]>, Vec<&Box<[Value]>>> = FxHashMap::default();
        for r in &other.rows {
            let key: Box<[Value]> = shared.iter().map(|&(_, j)| r[j]).collect();
            buckets.entry(key).or_default().push(r);
        }

        let mut rows = FxHashSet::default();
        for l in &self.rows {
            let key: Box<[Value]> = shared.iter().map(|&(i, _)| l[i]).collect();
            let Some(matches) = buckets.get(&key) else {
                continue;
            };
            for r in matches {
                let mut combined: Vec<Value> = l.to_vec();
                combined.extend(other_extra.iter().map(|&j| r[j]));
                let reordered: Box<[Value]> = order.iter().map(|&i| combined[i]).collect();
                rows.insert(reordered);
            }
        }
        Projection {
            attrs: out_attrs,
            rows,
        }
    }
}

impl fmt::Debug for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Projection({} rows over {} attrs)",
            self.rows.len(),
            self.attrs.len()
        )
    }
}

/// The project-join mapping `m_R` of Section 6:
/// `m_R(I) = { t : t is an R-value with t[Rᵢ] ∈ I[Rᵢ] for all i }`,
/// computed as the natural join `I[R₁] ⋈ … ⋈ I[R_k]`.
///
/// # Panics
/// Panics if `components` is empty.
pub fn project_join(relation: &Relation, components: &[AttrSet]) -> Projection {
    assert!(!components.is_empty(), "m_R needs at least one component");
    let mut acc = relation.project(&components[0]);
    for r in &components[1..] {
        acc = acc.join(&relation.project(r));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Arc<Universe>, ValuePool) {
        let u = Universe::untyped_abc();
        let p = ValuePool::new(u.clone());
        (u, p)
    }

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[[&str; 3]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect())),
        )
    }

    #[test]
    fn insert_dedups_and_preserves_order() {
        let (u, mut p) = abc();
        let mut r = Relation::new(u);
        let a = p.untyped("a");
        let b = p.untyped("b");
        assert!(r.insert(Tuple::new(vec![a, a, a])));
        assert!(r.insert(Tuple::new(vec![b, b, b])));
        assert!(!r.insert(Tuple::new(vec![a, a, a])));
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0].get(AttrId(0)), a);
    }

    #[test]
    fn set_equality_ignores_order() {
        let (u, mut p) = abc();
        let r1 = rel(&u, &mut p, &[["a", "b", "c"], ["x", "y", "z"]]);
        let r2 = rel(&u, &mut p, &[["x", "y", "z"], ["a", "b", "c"]]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn val_collects_all_values() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "a"]]);
        assert_eq!(r.val().len(), 2);
    }

    #[test]
    fn projection_dedups() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "c"], ["a", "b", "d"]]);
        let ab = r.project(&u.set("A' B'"));
        assert_eq!(ab.len(), 1);
        let abc = r.project(&u.all());
        assert_eq!(abc.len(), 2);
    }

    #[test]
    fn join_recovers_lossless_decomposition() {
        let (u, mut p) = abc();
        // I = {(a,b,c)}: join of I[A'B'] and I[B'C'] over B' gives back I.
        let r = rel(&u, &mut p, &[["a", "b", "c"]]);
        let joined = project_join(&r, &[u.set("A' B'"), u.set("B' C'")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.attrs().len(), 3);
    }

    #[test]
    fn join_produces_spurious_tuples_when_lossy() {
        let (u, mut p) = abc();
        // Classic lossy decomposition: two tuples agreeing on B'.
        let r = rel(&u, &mut p, &[["a1", "b", "c1"], ["a2", "b", "c2"]]);
        let joined = project_join(&r, &[u.set("A' B'"), u.set("B' C'")]);
        assert_eq!(joined.len(), 4, "join must include the two spurious tuples");
    }

    #[test]
    fn join_on_disjoint_schemas_is_cross_product() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a1", "b1", "c1"], ["a2", "b2", "c2"]]);
        let joined = project_join(&r, &[u.set("A'"), u.set("C'")]);
        assert_eq!(joined.len(), 4);
    }

    #[test]
    fn projection_of_projection() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "c"], ["a", "d", "e"]]);
        let abc = r.project(&u.all());
        let a = abc.project(&u.set("A'"));
        assert_eq!(a.len(), 1);
    }

    /// The incrementally maintained index must match a from-scratch build.
    fn assert_index_consistent(r: &Relation) {
        let u = r.universe().clone();
        for (i, t) in r.rows().iter().enumerate() {
            for a in u.attrs() {
                let posting = r.index().rows_with(a, t.get(a));
                assert!(
                    posting.contains(&(i as u32)),
                    "row {i} missing from posting ({a:?}, {:?})",
                    t.get(a)
                );
                assert!(
                    posting.windows(2).all(|w| w[0] < w[1]),
                    "posting ({a:?}, {:?}) not strictly sorted: {posting:?}",
                    t.get(a)
                );
            }
        }
        // No stale postings: every posting entry points at a row that
        // actually holds the value in that column.
        for a in u.attrs() {
            for t in r.rows() {
                for &ri in r.index().rows_with(a, t.get(a)) {
                    assert_eq!(r.rows()[ri as usize].get(a), t.get(a));
                }
            }
        }
    }

    #[test]
    fn insert_maintains_index() {
        let (u, mut p) = abc();
        let r = rel(
            &u,
            &mut p,
            &[["a", "b", "c"], ["b", "a", "c"], ["a", "a", "a"]],
        );
        assert_index_consistent(&r);
        let a = p.get(None, "a").unwrap();
        assert_eq!(r.index().rows_with(AttrId(0), a), &[0, 2]);
        assert_eq!(r.index().rows_with(AttrId(2), a), &[2]);
    }

    #[test]
    fn rewrite_value_patches_index_without_collapse() {
        let (u, mut p) = abc();
        let mut r = rel(&u, &mut p, &[["a", "b", "c"], ["b", "d", "e"]]);
        let (a, b) = (p.get(None, "a").unwrap(), p.get(None, "b").unwrap());
        let report = r.rewrite_value(b, a).expect("b occurs");
        assert_eq!(report.changed, vec![0, 1]);
        assert!(report.removed.is_empty());
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0].get(AttrId(1)), a);
        assert_eq!(r.rows()[1].get(AttrId(0)), a);
        // b's postings are gone; a's postings absorbed them, sorted.
        assert_eq!(r.index().rows_with(AttrId(0), a), &[0, 1]);
        assert!(r.index().rows_with(AttrId(0), b).is_empty());
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_value_collapses_duplicates_and_rebuilds() {
        let (u, mut p) = abc();
        // Rewriting b2 -> b1 makes rows 0 and 1 equal; row 1 must vanish
        // and row 2 shift down.
        let mut r = rel(
            &u,
            &mut p,
            &[["a", "b1", "c"], ["a", "b2", "c"], ["x", "y", "z"]],
        );
        let (b1, b2) = (p.get(None, "b1").unwrap(), p.get(None, "b2").unwrap());
        let report = r.rewrite_value(b2, b1).expect("b2 occurs");
        assert_eq!(report.removed, vec![1]);
        assert_eq!(report.changed, Vec::<u32>::new());
        assert_eq!(r.len(), 2);
        let x = p.get(None, "x").unwrap();
        assert_eq!(r.index().rows_with(AttrId(0), x), &[1], "row 2 shifted to 1");
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_collision_with_later_row_keeps_earlier_position() {
        let (u, mut p) = abc();
        // Rewriting b -> a makes row 0 equal row 2. First occurrence in row
        // order wins: the (rewritten) row 0 survives, the later untouched
        // copy is removed — exactly as if all rows were re-inserted in
        // order.
        let mut r = rel(
            &u,
            &mut p,
            &[["b", "x", "c"], ["m", "n", "o"], ["a", "x", "c"]],
        );
        let (a, b) = (p.get(None, "a").unwrap(), p.get(None, "b").unwrap());
        let report = r.rewrite_value(b, a).expect("b occurs");
        assert_eq!(report.changed, vec![0]);
        assert_eq!(report.removed, vec![2]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0].get(AttrId(0)), a, "survivor sits at position 0");
        let m = p.get(None, "m").unwrap();
        assert_eq!(r.rows()[1].get(AttrId(0)), m);
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_value_missing_is_noop() {
        let (u, mut p) = abc();
        let mut r = rel(&u, &mut p, &[["a", "b", "c"]]);
        let ghost = p.untyped("ghost");
        let a = p.get(None, "a").unwrap();
        assert!(r.rewrite_value(ghost, a).is_none());
        assert!(r.rewrite_value(a, a).is_none());
        assert_eq!(r.len(), 1);
        assert_index_consistent(&r);
    }

    #[test]
    fn rewrite_value_chain_keeps_index_consistent() {
        let (u, mut p) = abc();
        let mut r = rel(
            &u,
            &mut p,
            &[
                ["v0", "v1", "v2"],
                ["v1", "v2", "v3"],
                ["v2", "v3", "v4"],
                ["v3", "v4", "v0"],
            ],
        );
        let v: Vec<Value> = (0..5)
            .map(|i| p.get(None, &format!("v{i}")).unwrap())
            .collect();
        // Collapse the whole chain into v0, one merge at a time.
        for i in 1..5 {
            r.rewrite_value(v[i], v[0]);
            assert_index_consistent(&r);
        }
        assert_eq!(r.len(), 1, "all rows collapse to (v0, v0, v0)");
        assert!(r.rows()[0].val().all(|x| x == v[0]));
    }

    #[test]
    fn map_applies_valuation() {
        let (u, mut p) = abc();
        let r = rel(&u, &mut p, &[["a", "b", "c"]]);
        let x = p.untyped("x");
        let mut f = FxHashMap::default();
        for v in r.val() {
            f.insert(v, x);
        }
        let image = r.map(&f);
        assert_eq!(image.len(), 1);
        assert!(image.rows()[0].val().all(|v| v == x));
    }
}
