//! Paper-style table rendering for relations and tableaux.
//!
//! The experiment harness reproduces the paper's displayed tables
//! (Examples 1–4, `Σ₀`, the Lemma 10 derivation) byte-for-byte; this module
//! is the shared renderer.

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::universe::Universe;
use crate::value::ValuePool;

/// Renders labelled rows under attribute headers, columns padded to fit.
///
/// ```text
///        A    B    C
/// s      a0   b0   c0
/// T(w1)  a1   b1   c1
/// ```
pub fn render_rows(
    universe: &Universe,
    pool: &ValuePool,
    rows: &[(String, &Tuple)],
) -> String {
    let header: Vec<String> = universe
        .attrs()
        .map(|a| universe.name(a).to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(_, t)| t.values().iter().map(|&v| pool.name(v).to_string()).collect())
        .collect();

    let label_w = rows.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
    let mut col_w: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for r in &body {
        for (i, cell) in r.iter().enumerate() {
            col_w[i] = col_w[i].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    let pad = |s: &str, w: usize| {
        let mut t = s.to_string();
        while t.chars().count() < w {
            t.push(' ');
        }
        t
    };
    out.push_str(&pad("", label_w));
    for (i, h) in header.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&pad(h, col_w[i]));
    }
    out.push('\n');
    for ((label, _), cells) in rows.iter().zip(&body) {
        out.push_str(&pad(label, label_w));
        for (i, cell) in cells.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&pad(cell, col_w[i]));
        }
        out.push('\n');
    }
    // Trim trailing spaces per line for clean diffs.
    out.lines()
        .map(|l| l.trim_end())
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Renders a relation with empty labels.
pub fn render_relation(relation: &Relation, pool: &ValuePool) -> String {
    let tuples = relation.tuples();
    let rows: Vec<(String, &Tuple)> = tuples.iter().map(|t| (String::new(), t)).collect();
    render_rows(relation.universe(), pool, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn renders_aligned_table() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let t1 = Tuple::new(vec![p.untyped("a"), p.untyped("bb"), p.untyped("c")]);
        let t2 = Tuple::new(vec![p.untyped("xxx"), p.untyped("y"), p.untyped("z")]);
        let s = render_rows(&u, &p, &[("w1".into(), &t1), ("w2".into(), &t2)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("A'"));
        assert!(lines[1].starts_with("w1"));
        assert!(lines[2].contains("xxx"));
        // Alignment: headers of equal-width columns line up.
        let a_col = lines[0].find("A'").unwrap();
        assert_eq!(lines[1].as_bytes()[a_col], b'a');
    }

    #[test]
    fn render_relation_smoke() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let r = Relation::from_rows(
            u.clone(),
            [Tuple::new(vec![p.untyped("a"), p.untyped("b"), p.untyped("c")])],
        );
        let s = render_relation(&r, &p);
        assert!(s.contains('a') && s.contains("B'"));
    }
}
