//! The reductions of Vardi, *"The Implication and Finite Implication
//! Problems for Typed Template Dependencies"* (PODS 1982 / JCSS 28, 1984).
//!
//! This crate is the paper's primary contribution, executable:
//!
//! * [`typing`] — Section 3: the translation `T` from untyped tuples and
//!   relations over `U' = A'B'C'` to typed ones over `U = ABCDEF`
//!   (`T(w)`, `N(a)`, `s`; Example 1; the Lemma 1 fds);
//! * [`translate`] — Section 4: `T` on dependencies (`T(θ) = (T(w), T(I))`,
//!   Example 2; `T((a=b, I)) = (a¹=b¹, T(I))`), with Lemma 2 checkers;
//! * [`sigma0`] — the auxiliary td `σ₀` and set `Σ₀`, with Lemma 4;
//! * [`t_inverse`] — Lemma 3: reconstructing an untyped counterexample
//!   from a typed one;
//! * [`egd_elim`] — Lemmas 5 and 9: `θ_{X→A}` (Example 4) and the
//!   generalized `θ_ε`, eliminating equality generation;
//! * [`shallow`] — Section 6: the hat translation `θ̂` over
//!   `Û = {Aᵢ}` (Example 3), the duplication `Î` (Lemma 8), the block
//!   fds/mvds, and the Lemma 10 exhibit;
//! * [`pipeline`] — Theorem 6: the complete td → shallow-td/pjd reduction.
//!
//! Because the end problems are undecidable, "executable" means: every
//! translation is computed exactly as printed, and every lemma's
//! *equivalence of satisfaction* is checked on concrete finite relations
//! (decidable) and on decidable implication fragments via the chase.

#![warn(missing_docs)]

pub mod egd_elim;
pub mod pipeline;
pub mod shallow;
pub mod sigma0;
pub mod t_inverse;
pub mod theorem2;
pub mod translate;
pub mod typing;

pub use egd_elim::{eliminate_egds, lemma5_instance, theta_egd, theta_fd, theta_fd_single};
pub use pipeline::{theorem6_instance, PjdInstance};
pub use shallow::{lemma10_exhibit, HatContext};
pub use sigma0::{lemma4_check, sigma0, sigma0_display, sigma0_set};
pub use t_inverse::{t_inverse, TInverse};
pub use theorem2::{abc_functionality, theorem2_instance, TypedInstance};
pub use translate::{lemma2_check, t_dep, t_egd, t_td};
pub use typing::Translator;
