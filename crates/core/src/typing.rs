//! Section 3 — translating untyped tuples and relations to typed ones.
//!
//! The paper fixes the untyped universe `U' = A'B'C'` and the typed universe
//! `U = ABCDEF`. Every untyped element `a` has three typed avatars
//! `a¹ ∈ DOM(A)`, `a² ∈ DOM(B)`, `a³ ∈ DOM(C)`, an `E`-avatar (the element
//! itself), and the special elements `a0, b0, c0, d0, e0, f0, f1` exist in
//! the respective domains. An untyped tuple `w = (a, b, c)` becomes
//!
//! ```text
//! T(w) = (a¹, b², c³, w, e0, f1)          — the tuple row
//! N(a) = (a¹, a², a³, d0, a, f1)          — "a¹,a²,a³ name the same element"
//! s    = (a0, b0, c0, d0, e0, f0)         — the anchor row
//! ```
//!
//! and `T(I) = {T(w) : w ∈ I} ∪ {N(a) : a ∈ VAL(I)} ∪ {s}` (Example 1).
//! Lemma 1: `T(I) ⊨ {AD→U, BD→U, CD→U, ABCE→U}` always.

use typedtd_dependencies::Fd;
use typedtd_relational::{
    AttrId, FxHashMap, Relation, Tuple, Universe, Value, ValuePool,
};
use std::sync::Arc;

/// Stateful translator from the untyped `A'B'C'` world into the typed
/// `ABCDEF` world. It owns the typed value pool and memoizes every avatar,
/// so translating dependencies and relations through the same translator
/// keeps shared variables shared — exactly what the reduction requires.
pub struct Translator {
    untyped: Arc<Universe>,
    typed: Arc<Universe>,
    pool: ValuePool,
    /// `(untyped value, column 0/1/2) → aⁱ⁺¹` avatar.
    sup: FxHashMap<(Value, u8), Value>,
    /// untyped value → its `E`-avatar.
    e_avatar: FxHashMap<Value, Value>,
    /// untyped tuple → its `D`-avatar.
    d_avatar: FxHashMap<Tuple, Value>,
    /// The special elements `a0, b0, c0, d0, e0, f0, f1`.
    specials: [Value; 7],
}

impl Translator {
    /// Creates a translator for one untyped pool's values.
    pub fn new(untyped: Arc<Universe>) -> Self {
        assert_eq!(
            untyped.width(),
            3,
            "the Section 3 translation is defined for the 3-attribute untyped universe U' = A'B'C'"
        );
        assert!(!untyped.is_typed(), "source universe must be untyped");
        let typed = Universe::typed_abcdef();
        let mut pool = ValuePool::new(typed.clone());
        let specials = [
            pool.typed(typed.a("A"), "a0"),
            pool.typed(typed.a("B"), "b0"),
            pool.typed(typed.a("C"), "c0"),
            pool.typed(typed.a("D"), "d0"),
            pool.typed(typed.a("E"), "e0"),
            pool.typed(typed.a("F"), "f0"),
            pool.typed(typed.a("F"), "f1"),
        ];
        Self {
            untyped,
            typed,
            pool,
            sup: FxHashMap::default(),
            e_avatar: FxHashMap::default(),
            d_avatar: FxHashMap::default(),
            specials,
        }
    }

    /// The typed universe `U = ABCDEF`.
    pub fn typed_universe(&self) -> &Arc<Universe> {
        &self.typed
    }

    /// The untyped universe `U' = A'B'C'`.
    pub fn untyped_universe(&self) -> &Arc<Universe> {
        &self.untyped
    }

    /// The typed value pool (fresh nulls for chasing come from here too).
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Mutable access to the typed pool.
    pub fn pool_mut(&mut self) -> &mut ValuePool {
        &mut self.pool
    }

    /// The special element `a0` / `b0` / `c0` / `d0` / `e0` / `f0` / `f1`.
    pub fn special(&self, name: &str) -> Value {
        let idx = ["a0", "b0", "c0", "d0", "e0", "f0", "f1"]
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown special element {name:?}"));
        self.specials[idx]
    }

    /// Interns a typed value with a preferred name, dodging collisions with
    /// unrelated values that happen to carry the same rendered name.
    fn unique(&mut self, attr: AttrId, base: String) -> Value {
        let mut name = base;
        while self.pool.get(Some(attr), &name).is_some() {
            name.push('\'');
        }
        self.pool.typed(attr, &name)
    }

    /// The avatar `aⁱ` (`i ∈ {1,2,3}`) of untyped value `a`, memoized.
    pub fn avatar(&mut self, untyped_pool: &ValuePool, a: Value, i: u8) -> Value {
        assert!((1..=3).contains(&i));
        if let Some(&v) = self.sup.get(&(a, i - 1)) {
            return v;
        }
        let attr = AttrId((i - 1) as u16);
        let v = self.unique(attr, format!("{}{}", untyped_pool.name(a), i));
        self.sup.insert((a, i - 1), v);
        v
    }

    /// The `E`-avatar of untyped value `a`, memoized.
    pub fn e_avatar(&mut self, untyped_pool: &ValuePool, a: Value) -> Value {
        if let Some(&v) = self.e_avatar.get(&a) {
            return v;
        }
        let e = self.typed.a("E");
        let v = self.unique(e, untyped_pool.name(a).to_string());
        self.e_avatar.insert(a, v);
        v
    }

    /// The `D`-avatar of untyped tuple `w`, memoized. Its rendered name is
    /// the tuple itself, e.g. `(a,b,c)`.
    pub fn d_avatar(&mut self, untyped_pool: &ValuePool, w: &Tuple) -> Value {
        if let Some(&v) = self.d_avatar.get(w) {
            return v;
        }
        let d = self.typed.a("D");
        let name = format!(
            "({})",
            w.values()
                .iter()
                .map(|&v| untyped_pool.name(v))
                .collect::<Vec<_>>()
                .join(",")
        );
        let v = self.unique(d, name);
        self.d_avatar.insert(w.clone(), v);
        v
    }

    /// `T(w) = (a¹, b², c³, w, e0, f1)` for `w = (a, b, c)`.
    pub fn t_tuple(&mut self, untyped_pool: &ValuePool, w: &Tuple) -> Tuple {
        assert_eq!(w.width(), 3);
        let vals = [w.values()[0], w.values()[1], w.values()[2]];
        Tuple::new(vec![
            self.avatar(untyped_pool, vals[0], 1),
            self.avatar(untyped_pool, vals[1], 2),
            self.avatar(untyped_pool, vals[2], 3),
            self.d_avatar(untyped_pool, w),
            self.special("e0"),
            self.special("f1"),
        ])
    }

    /// `N(a) = (a¹, a², a³, d0, a, f1)`.
    pub fn n_tuple(&mut self, untyped_pool: &ValuePool, a: Value) -> Tuple {
        Tuple::new(vec![
            self.avatar(untyped_pool, a, 1),
            self.avatar(untyped_pool, a, 2),
            self.avatar(untyped_pool, a, 3),
            self.special("d0"),
            self.e_avatar(untyped_pool, a),
            self.special("f1"),
        ])
    }

    /// `s = (a0, b0, c0, d0, e0, f0)`.
    pub fn s_tuple(&self) -> Tuple {
        Tuple::new(vec![
            self.specials[0],
            self.specials[1],
            self.specials[2],
            self.specials[3],
            self.specials[4],
            self.specials[5],
        ])
    }

    /// `T(I)`: tuple rows, then name rows `N(a)` for `a ∈ VAL(I)` in first-
    /// occurrence order, then the anchor `s` (the paper lists `s` first; the
    /// set is the same, and we print `s` first in the harness).
    pub fn t_relation(&mut self, untyped_pool: &ValuePool, i: &Relation) -> Relation {
        assert_eq!(i.universe().width(), 3);
        let mut out = Relation::new(self.typed.clone());
        out.insert(self.s_tuple());
        for w in i.tuples() {
            let t = self.t_tuple(untyped_pool, &w);
            out.insert(t);
        }
        // First-occurrence order over rows/columns for determinism.
        let mut seen = typedtd_relational::FxHashSet::default();
        for w in i.iter() {
            for a in w.values() {
                if seen.insert(a) {
                    let n = self.n_tuple(untyped_pool, a);
                    out.insert(n);
                }
            }
        }
        out
    }

    /// The functional dependencies of **Lemma 1**:
    /// `AD → U, BD → U, CD → U, ABCE → U`.
    pub fn lemma1_fds(&self) -> Vec<Fd> {
        let u = &self.typed;
        ["AD", "BD", "CD", "ABCE"]
            .iter()
            .map(|x| Fd::new(u.set(x), u.all()))
            .collect()
    }

    /// Checks Lemma 1 on a concrete relation: `T(I)` must satisfy the fds.
    pub fn lemma1_holds(&self, t_of_i: &Relation) -> bool {
        self.lemma1_fds().iter().all(|fd| fd.satisfied_by(t_of_i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example1() -> (Arc<Universe>, ValuePool, Relation) {
        // I = {(a,b,c), (b,a,c)} — the paper's Example 1.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c) = (p.untyped("a"), p.untyped("b"), p.untyped("c"));
        let i = Relation::from_rows(
            u.clone(),
            [Tuple::new(vec![a, b, c]), Tuple::new(vec![b, a, c])],
        );
        (u, p, i)
    }

    #[test]
    fn example1_shape() {
        let (u, p, i) = example1();
        let mut tr = Translator::new(u);
        let ti = tr.t_relation(&p, &i);
        // s + 2 tuple rows + 3 name rows.
        assert_eq!(ti.len(), 6);
        ti.check_typed(tr.pool()).unwrap();
        // T(w1) = (a1, b2, c3, (a,b,c), e0, f1).
        let tu = tr.typed_universe().clone();
        let t_w1 = ti.row(1);
        assert_eq!(tr.pool().name(t_w1.get(tu.a("A"))), "a1");
        assert_eq!(tr.pool().name(t_w1.get(tu.a("B"))), "b2");
        assert_eq!(tr.pool().name(t_w1.get(tu.a("C"))), "c3");
        assert_eq!(tr.pool().name(t_w1.get(tu.a("D"))), "(a,b,c)");
        assert_eq!(tr.pool().name(t_w1.get(tu.a("E"))), "e0");
        assert_eq!(tr.pool().name(t_w1.get(tu.a("F"))), "f1");
        // N(a) = (a1, a2, a3, d0, a, f1).
        let n_a = ti.row(3);
        assert_eq!(tr.pool().name(n_a.get(tu.a("A"))), "a1");
        assert_eq!(tr.pool().name(n_a.get(tu.a("B"))), "a2");
        assert_eq!(tr.pool().name(n_a.get(tu.a("D"))), "d0");
        assert_eq!(tr.pool().name(n_a.get(tu.a("E"))), "a");
    }

    #[test]
    fn lemma1_on_example1() {
        let (u, p, i) = example1();
        let mut tr = Translator::new(u);
        let ti = tr.t_relation(&p, &i);
        assert!(tr.lemma1_holds(&ti));
    }

    #[test]
    fn avatars_are_memoized_and_injective() {
        let (u, mut p, _) = example1();
        let x = p.untyped("x");
        let y = p.untyped("y");
        let mut tr = Translator::new(u);
        let x1 = tr.avatar(&p, x, 1);
        assert_eq!(tr.avatar(&p, x, 1), x1, "memoized");
        assert_ne!(tr.avatar(&p, y, 1), x1, "one-to-one");
        assert_ne!(tr.avatar(&p, x, 2), x1, "per-column avatars differ");
    }

    #[test]
    fn name_collisions_are_dodged() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // "a1" and "a" both exist untyped; avatar("a11") vs avatar("a1"+"1").
        let a1 = p.untyped("a1");
        let a11 = p.untyped("a11");
        let a = p.untyped("a");
        let mut tr = Translator::new(u);
        let v1 = tr.avatar(&p, a11, 1); // wants name "a111"
        let v2 = tr.avatar(&p, a1, 1); // wants name "a11"
        let v3 = tr.avatar(&p, a, 1); // wants name "a1"
        assert_ne!(v1, v2);
        assert_ne!(v2, v3);
        // A later avatar whose preferred name is taken gets a primed name.
        let a111 = p.untyped("a111"); // wants "a1111"; fine
        let _ = tr.avatar(&p, a111, 1);
        let clash = p.untyped("a11"); // same name as a11! untyped pool dedups
        assert_eq!(clash, a11);
    }

    #[test]
    fn t_preserves_monotonicity_and_finiteness() {
        // I ⊆ J entails T(I) ⊆ T(J) (through one translator).
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c, d) = (
            p.untyped("a"),
            p.untyped("b"),
            p.untyped("c"),
            p.untyped("d"),
        );
        let small = Relation::from_rows(u.clone(), [Tuple::new(vec![a, b, c])]);
        let big = Relation::from_rows(
            u.clone(),
            [Tuple::new(vec![a, b, c]), Tuple::new(vec![b, d, a])],
        );
        let mut tr = Translator::new(u);
        let t_small = tr.t_relation(&p, &small);
        let t_big = tr.t_relation(&p, &big);
        assert!(t_small.is_subrelation_of(&t_big));
        assert_eq!(t_big.len(), 1 + 2 + 4);
    }

    #[test]
    fn lemma1_can_fail_for_non_image_relations() {
        // A hand-made typed relation that is NOT a T-image can violate the
        // fds; lemma1_holds is a real check, not a tautology.
        let u = Universe::untyped_abc();
        let mut tr = Translator::new(u);
        let tu = tr.typed_universe().clone();
        let mut rel = Relation::new(tu.clone());
        let mk = |tr: &mut Translator, n: &str, col: &str| {
            let attr = tr.typed_universe().a(col);
            tr.pool_mut().typed(attr, n)
        };
        let (a1, b1, b2, c1, d1, e1, f1) = (
            mk(&mut tr, "a1", "A"),
            mk(&mut tr, "b1", "B"),
            mk(&mut tr, "b2", "B"),
            mk(&mut tr, "c1", "C"),
            mk(&mut tr, "d1", "D"),
            mk(&mut tr, "e1", "E"),
            mk(&mut tr, "f1x", "F"),
        );
        rel.insert(Tuple::new(vec![a1, b1, c1, d1, e1, f1]));
        rel.insert(Tuple::new(vec![a1, b2, c1, d1, e1, f1]));
        assert!(!tr.lemma1_holds(&rel), "AD → U is violated");
    }
}
