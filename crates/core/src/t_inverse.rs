//! Section 4, Lemma 3 — the inverse translation `T⁻¹`.
//!
//! A typed counterexample relation `I′` (satisfying `Σ₀` but violating
//! `T(σ)`) need not be a `T`-image, so the reduction reconstructs an
//! untyped relation from its *structure*: values are identified through the
//! rows that "look like" `N(c)` (those with `u[D] = d0`), and a row
//! contributes `p(u[ABC])` when it looks like a `T`-row (`u[E] = e0`,
//! `u[F] = α(f1)`) whose three coordinates are certified by `N`-like rows.
//!
//! The distinguished values `d0, e0, f1` are the images under the violating
//! valuation `α` (the paper normalizes `α(s) = s` by renaming; we pass the
//! images explicitly instead).

use typedtd_relational::{FxHashMap, Relation, Tuple, Universe, Value, ValuePool};
use std::sync::Arc;

/// Result of the `T⁻¹` construction.
pub struct TInverse {
    /// The reconstructed untyped relation `I`.
    pub relation: Relation,
    /// The collapse map `p : VAL(I′) → DOM'` restricted to the values that
    /// occur in `A/B/C` columns (class representatives share images).
    pub p: FxHashMap<Value, Value>,
}

/// Computes `T⁻¹(I′)` with distinguished values `d0`, `e0`, `f1`.
///
/// `untyped` is the target universe `U' = A'B'C'`; `untyped_pool` mints the
/// fresh untyped elements that classes collapse to.
pub fn t_inverse(
    i_prime: &Relation,
    d0: Value,
    e0: Value,
    f1: Value,
    untyped: &Arc<Universe>,
    untyped_pool: &mut ValuePool,
) -> TInverse {
    let tu = i_prime.universe();
    assert_eq!(tu.width(), 6, "T⁻¹ expects the typed universe ABCDEF");
    assert_eq!(untyped.width(), 3);
    let (a, b, c, d, e, f) = (
        tu.a("A"),
        tu.a("B"),
        tu.a("C"),
        tu.a("D"),
        tu.a("E"),
        tu.a("F"),
    );

    // Equivalence ≡: d ≡ e if some row u with u[D] = d0 has both in
    // u[ABC]. Union-find via a parent map.
    let mut parent: FxHashMap<Value, Value> = FxHashMap::default();
    fn find(parent: &mut FxHashMap<Value, Value>, v: Value) -> Value {
        let p = *parent.entry(v).or_insert(v);
        if p == v {
            return v;
        }
        let root = find(parent, p);
        parent.insert(v, root);
        root
    }
    let union = |parent: &mut FxHashMap<Value, Value>, x: Value, y: Value| {
        let rx = find(parent, x);
        let ry = find(parent, y);
        if rx != ry {
            parent.insert(rx.max(ry), rx.min(ry));
        }
    };
    for u in i_prime.iter() {
        if u.get(d) == d0 {
            union(&mut parent, u.get(a), u.get(b));
            union(&mut parent, u.get(b), u.get(c));
        }
    }

    // p: class representative → fresh untyped element.
    let mut p_map: FxHashMap<Value, Value> = FxHashMap::default();
    let mut p_of = |parent: &mut FxHashMap<Value, Value>,
                    pool: &mut ValuePool,
                    v: Value|
     -> Value {
        let root = find(parent, v);
        *p_map
            .entry(root)
            .or_insert_with(|| pool.fresh(None, "p"))
    };

    // Assemble I.
    let mut out = Relation::new(untyped.clone());
    for u in i_prime.iter() {
        if u.get(e) != e0 || u.get(f) != f1 {
            continue;
        }
        let certified = |col: typedtd_relational::AttrId| {
            i_prime
                .iter()
                .any(|n| n.get(d) == d0 && n.get(f) == f1 && n.get(col) == u.get(col))
        };
        if !(certified(a) && certified(b) && certified(c)) {
            continue;
        }
        let row = Tuple::new(vec![
            p_of(&mut parent, untyped_pool, u.get(a)),
            p_of(&mut parent, untyped_pool, u.get(b)),
            p_of(&mut parent, untyped_pool, u.get(c)),
        ]);
        out.insert(row);
    }

    // Expose p on every A/B/C value for callers (e.g. egd checking).
    let mut p = FxHashMap::default();
    for u in i_prime.iter() {
        for col in [a, b, c] {
            let v = u.get(col);
            let img = p_of(&mut parent, untyped_pool, v);
            p.insert(v, img);
        }
    }

    TInverse { relation: out, p }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typing::Translator;

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[[&str; 3]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect())),
        )
    }

    /// `T⁻¹ ∘ T` recovers the original relation up to renaming, with the
    /// explicit bijection available through `p` and the translator.
    #[test]
    fn t_inverse_of_t_image_recovers_original() {
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = rel(
            &u,
            &mut pool,
            &[["a", "b", "c"], ["b", "a", "c"], ["c", "c", "a"]],
        );
        let mut tr = Translator::new(u.clone());
        let t_i = tr.t_relation(&pool, &i);
        let (d0, e0, f1) = (tr.special("d0"), tr.special("e0"), tr.special("f1"));
        let inv = t_inverse(&t_i, d0, e0, f1, &u, &mut pool);
        assert_eq!(inv.relation.len(), i.len());
        // The explicit mapping: row w of I maps to (p(w[A']¹), p(w[B']²), p(w[C']³)).
        for w in i.tuples() {
            let expected = Tuple::new(vec![
                inv.p[&tr.avatar(&pool, w.values()[0], 1)],
                inv.p[&tr.avatar(&pool, w.values()[1], 2)],
                inv.p[&tr.avatar(&pool, w.values()[2], 3)],
            ]);
            assert!(inv.relation.contains(&expected));
        }
        // And the collapse is injective on original elements: distinct
        // untyped values get distinct p-images.
        let pa = inv.p[&tr.avatar(&pool, pool.get(None, "a").unwrap(), 1)];
        let pb = inv.p[&tr.avatar(&pool, pool.get(None, "b").unwrap(), 1)];
        assert_ne!(pa, pb);
        // All three avatars of one element share an image.
        let a = pool.get(None, "a").unwrap();
        assert_eq!(
            inv.p[&tr.avatar(&pool, a, 1)],
            inv.p[&tr.avatar(&pool, a, 2)]
        );
    }

    #[test]
    fn rows_without_certifying_n_rows_are_dropped() {
        // Build a T-image, then add a rogue T-like row whose A-value has no
        // N-like certificate: T⁻¹ must ignore it.
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = rel(&u, &mut pool, &[["a", "b", "c"]]);
        let mut tr = Translator::new(u.clone());
        let mut t_i = tr.t_relation(&pool, &i);
        let tu = tr.typed_universe().clone();
        let rogue_a = tr.pool_mut().typed(tu.a("A"), "rogue");
        let (d0, e0, f1) = (tr.special("d0"), tr.special("e0"), tr.special("f1"));
        let some_b = t_i.cell(1, tu.a("B"));
        let some_c = t_i.cell(1, tu.a("C"));
        let rogue_d = tr.pool_mut().typed(tu.a("D"), "rogued");
        t_i.insert(Tuple::new(vec![rogue_a, some_b, some_c, rogue_d, e0, f1]));
        let inv = t_inverse(&t_i, d0, e0, f1, &u, &mut pool);
        assert_eq!(inv.relation.len(), 1, "rogue row must not survive T⁻¹");
    }

    #[test]
    fn collapse_identifies_avatars_linked_by_n_rows() {
        // Two untyped elements that are *different* stay different even
        // when they co-occur in T-rows (only D = d0 rows identify).
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let i = rel(&u, &mut pool, &[["a", "a", "b"]]);
        let mut tr = Translator::new(u.clone());
        let t_i = tr.t_relation(&pool, &i);
        let (d0, e0, f1) = (tr.special("d0"), tr.special("e0"), tr.special("f1"));
        let inv = t_inverse(&t_i, d0, e0, f1, &u, &mut pool);
        let row = inv.relation.row(0);
        assert_eq!(row.get(u.a("A'")), row.get(u.a("B'")), "a ≡ a");
        assert_ne!(row.get(u.a("A'")), row.get(u.a("C'")), "a ≢ b");
    }
}
