//! Section 4 — translating untyped dependencies to typed ones.
//!
//! A td is a pair of a tuple and a relation, so the Section 3 translation
//! lifts pointwise: `T((w, J)) = (T(w), T(J))` (Example 2), and for egds
//! `T((a = b, J)) = (a¹ = b¹, T(J))`. Lemma 2 states the equivalence
//! `I ⊨ θ ⇔ T(I) ⊨ T(θ)` for `A'B'`-total untyped tds and for untyped
//! egds; [`lemma2_check`] verifies it on concrete finite relations.

use crate::typing::Translator;
use typedtd_dependencies::{Egd, Td, TdOrEgd};
use typedtd_relational::{Relation, ValuePool};

/// `T(θ)` for an untyped td `θ = (w, J)`.
///
/// # Panics
/// Panics unless `θ` is `A'B'`-total — the only case the reduction needs
/// (Theorem 1 guarantees it) and the only case Lemma 2 covers.
pub fn t_td(tr: &mut Translator, untyped_pool: &ValuePool, td: &Td) -> Td {
    let ab = td.universe().set("A' B'");
    assert!(
        td.is_v_total(&ab),
        "Lemma 2 requires A'B'-total untyped tds"
    );
    let hyp_rel = td.hypothesis_relation();
    let t_hyp = tr.t_relation(untyped_pool, &hyp_rel);
    let t_w = tr.t_tuple(untyped_pool, td.conclusion());
    Td::new(tr.typed_universe().clone(), t_w, t_hyp.tuples())
}

/// `T(η)` for an untyped egd `η = (a = b, J)`: becomes `(a¹ = b¹, T(J))`.
pub fn t_egd(tr: &mut Translator, untyped_pool: &ValuePool, egd: &Egd) -> Egd {
    let hyp_rel = egd.hypothesis_relation();
    let t_hyp = tr.t_relation(untyped_pool, &hyp_rel);
    let a1 = tr.avatar(untyped_pool, egd.left(), 1);
    let b1 = tr.avatar(untyped_pool, egd.right(), 1);
    Egd::new(tr.typed_universe().clone(), a1, b1, t_hyp.tuples())
}

/// `T` on a mixed td/egd dependency.
pub fn t_dep(tr: &mut Translator, untyped_pool: &ValuePool, dep: &TdOrEgd) -> TdOrEgd {
    match dep {
        TdOrEgd::Td(t) => TdOrEgd::Td(t_td(tr, untyped_pool, t)),
        TdOrEgd::Egd(e) => TdOrEgd::Egd(t_egd(tr, untyped_pool, e)),
    }
}

/// Concrete Lemma 2 check: `I ⊨ θ ⇔ T(I) ⊨ T(θ)` for one finite `I`.
///
/// Returns `(lhs, rhs)` so tests can assert equality and diagnose failures.
pub fn lemma2_check(
    tr: &mut Translator,
    untyped_pool: &ValuePool,
    i: &Relation,
    dep: &TdOrEgd,
) -> (bool, bool) {
    let t_i = tr.t_relation(untyped_pool, i);
    let t_dep = t_dep(tr, untyped_pool, dep);
    let lhs = dep.satisfied_by(i);
    let rhs = t_dep.satisfied_by(&t_i);
    (lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use typedtd_dependencies::{egd_from_names, td_from_names};
    use typedtd_relational::{Tuple, Universe};

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[[&str; 3]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect())),
        )
    }

    #[test]
    fn example2_shape() {
        // σ = (w, {u}), u = (a, b, c), w = (b, a, d) — the paper's Example 2.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["a", "b", "c"]], &["b", "a", "d"]);
        let mut tr = Translator::new(u);
        let t = t_td(&mut tr, &p, &td);
        // Hypothesis: s + T(u) + N(a) + N(b) + N(c) = 5 rows.
        assert_eq!(t.hypothesis().len(), 5);
        let tu = tr.typed_universe().clone();
        // Conclusion (b1, a2, d3, (b,a,d), e0, f1).
        assert_eq!(tr.pool().name(t.conclusion().get(tu.a("A"))), "b1");
        assert_eq!(tr.pool().name(t.conclusion().get(tu.a("B"))), "a2");
        assert_eq!(tr.pool().name(t.conclusion().get(tu.a("C"))), "d3");
        assert_eq!(tr.pool().name(t.conclusion().get(tu.a("D"))), "(b,a,d)");
        t.check_typed(tr.pool()).unwrap();
        // d ∉ VAL(J): the C-avatar d3 is existential, so T(σ) is not total,
        // but it is ABDEF-total... at least AB-total:
        assert!(t.is_v_total(&tu.set("AB")));
    }

    #[test]
    #[should_panic(expected = "A'B'-total")]
    fn non_ab_total_td_rejected() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["a", "b", "c"]], &["q", "a", "c"]);
        let mut tr = Translator::new(u);
        let _ = t_td(&mut tr, &p, &td);
    }

    #[test]
    fn lemma2_td_positive_and_negative() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // θ: the A' ↠ B' exchange td (A'B'-total).
        let td = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        ));
        let closed = rel(
            &u,
            &mut p,
            &[
                ["a", "b1", "c1"],
                ["a", "b2", "c2"],
                ["a", "b1", "c2"],
                ["a", "b2", "c1"],
            ],
        );
        let open = rel(&u, &mut p, &[["a", "b1", "c1"], ["a", "b2", "c2"]]);
        let mut tr = Translator::new(u.clone());
        let (l1, r1) = lemma2_check(&mut tr, &p, &closed, &td);
        assert!(l1 && r1, "satisfied on both sides");
        let mut tr2 = Translator::new(u);
        let (l2, r2) = lemma2_check(&mut tr2, &p, &open, &td);
        assert!(!l2 && !r2, "violated on both sides");
    }

    #[test]
    fn lemma2_egd_positive_and_negative() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // η: A' → B' as an egd.
        let egd = TdOrEgd::Egd(egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        ));
        let good = rel(&u, &mut p, &[["a", "b", "c"], ["a", "b", "d"]]);
        let bad = rel(&u, &mut p, &[["a", "b", "c"], ["a", "e", "d"]]);
        let mut tr = Translator::new(u.clone());
        let (l1, r1) = lemma2_check(&mut tr, &p, &good, &egd);
        assert_eq!((l1, r1), (true, true));
        let mut tr2 = Translator::new(u);
        let (l2, r2) = lemma2_check(&mut tr2, &p, &bad, &egd);
        assert_eq!((l2, r2), (false, false));
    }

    #[test]
    fn shared_variables_stay_shared_across_translations() {
        // Translating Σ and σ through one translator must identify common
        // symbols — otherwise the reduction would decouple them.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td1 = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["y", "x", "z"]);
        let td2 = td_from_names(&u, &mut p, &[&["x", "y", "q"]], &["x", "y", "q"]);
        let mut tr = Translator::new(u);
        let t1 = t_td(&mut tr, &p, &td1);
        let t2 = t_td(&mut tr, &p, &td2);
        let tu = tr.typed_universe().clone();
        // x1 appears in both translated hypotheses (same typed value).
        let x1 = t1.hypothesis()[1].get(tu.a("A"));
        assert_eq!(tr.pool().name(x1), "x1");
        assert!(t2
            .hypothesis()
            .iter()
            .any(|row| row.get(tu.a("A")) == x1));
    }
}
