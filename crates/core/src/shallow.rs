//! Section 6 — spreading template dependencies into shallow ones.
//!
//! The reduction takes a td `θ = (w, {w₁, …, w_m})` over `U` to a *shallow*
//! td `θ̂` over the enlarged universe `Û = {Aᵢ : A ∈ U, 0 ≤ i ≤ n}` with
//! `n = m(m−1)/2`. Every unordered pair `{i, j}` of hypothesis rows gets its
//! own copy `A_{i,j}` of each attribute, and the equality `wᵢ[A] = wⱼ[A]`
//! of the original tableau is recorded in *that copy only* — so each column
//! of `θ̂` has at most one repeating value, which is shallowness
//! (Example 3). Lemma 7/8 relate `U`-relations and `Û`-relations through
//! the `(n+1)`-fold duplication `Î` and the fds `Aᵢ → Aⱼ`; Lemma 10 then
//! trades those fds for the mvds `Aᵢ ↠ Aⱼ`, whose chase derivation the
//! paper prints — and which [`lemma10_exhibit`] regenerates.

use typedtd_dependencies::{Mvd, Td};
use typedtd_relational::{
    AttrId, FxHashMap, Relation, Tuple, Universe, Value, ValuePool,
};
use std::sync::Arc;

/// The enlarged universe `Û` and the `{i,j} ↦ A_k` pair enumeration shared
/// by all translations of one instance.
pub struct HatContext {
    base: Arc<Universe>,
    hat: Arc<Universe>,
    pool: ValuePool,
    m: usize,
    n: usize,
    /// `pairs[k-1] = (i, j)` with `i < j`, 1-based row indices: `A_{i,j}`
    /// is the copy `A_k`. Lexicographic, matching Example 3
    /// (`A_{1,2} = A₁, A_{1,3} = A₂, A_{2,3} = A₃`).
    pairs: Vec<(usize, usize)>,
}

impl HatContext {
    /// Builds `Û` for tableaux of up to `m` rows over typed `base`.
    pub fn new(base: &Arc<Universe>, m: usize) -> Self {
        assert!(base.is_typed(), "Section 6 deals with the typed case");
        assert!(m >= 1);
        let n = m * (m - 1) / 2;
        let mut names = Vec::with_capacity(base.width() * (n + 1));
        for a in base.attrs() {
            for i in 0..=n {
                names.push(format!("{}{}", base.name(a), i));
            }
        }
        let hat = Universe::typed(names);
        let pool = ValuePool::new(hat.clone());
        let mut pairs = Vec::with_capacity(n);
        for i in 1..=m {
            for j in (i + 1)..=m {
                pairs.push((i, j));
            }
        }
        Self {
            base: base.clone(),
            hat,
            pool,
            m,
            n,
            pairs,
        }
    }

    /// The enlarged universe `Û`.
    pub fn hat_universe(&self) -> &Arc<Universe> {
        &self.hat
    }

    /// The original universe `U`.
    pub fn base_universe(&self) -> &Arc<Universe> {
        &self.base
    }

    /// `m`: the maximum tableau size this context supports.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `n = m(m−1)/2`: copies per attribute (beyond copy 0).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The value pool of `Û`.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Mutable pool access (the chase mints nulls here).
    pub fn pool_mut(&mut self) -> &mut ValuePool {
        &mut self.pool
    }

    /// The attribute `A_i` of `Û` for base attribute `a`.
    pub fn attr(&self, a: AttrId, i: usize) -> AttrId {
        assert!(i <= self.n);
        AttrId((a.index() * (self.n + 1) + i) as u16)
    }

    /// The copy index `k` with `A_k = A_{i,j}` (1-based rows, `i ≠ j`).
    pub fn pair_index(&self, i: usize, j: usize) -> usize {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        1 + self
            .pairs
            .iter()
            .position(|&(a, b)| (a, b) == (lo, hi))
            .unwrap_or_else(|| panic!("pair ({i},{j}) outside 1..={}", self.m))
    }

    /// The numeric tableau value `k` in column `A_i` of `Û`.
    fn num(&mut self, attr: AttrId, k: usize) -> Value {
        self.pool.typed(attr, &k.to_string())
    }

    /// Translates `θ = (w, I)` to the shallow td `θ̂ = (u, Î)` (Example 3).
    ///
    /// # Panics
    /// Panics if the td has more than `m` hypothesis rows or is over a
    /// different base universe.
    pub fn hat_td(&mut self, td: &Td) -> Td {
        assert_eq!(td.universe().width(), self.base.width());
        let rows = td.hypothesis();
        let m_td = rows.len();
        assert!(m_td <= self.m, "td arity exceeds the context's m");

        let pairs = self.pairs.clone();
        let base_attrs: Vec<AttrId> = self.base.attrs().collect();
        let mut hyp = Vec::with_capacity(m_td);
        for k in 1..=m_td {
            let mut vals = Vec::with_capacity(self.hat.width());
            for &a in &base_attrs {
                // Copy 0 always carries the row number.
                let a0 = self.attr(a, 0);
                vals.push(self.num(a0, k));
                for (p, &(i, j)) in pairs.iter().enumerate() {
                    let attr = self.attr(a, p + 1);
                    let v = if k != i && k != j {
                        k
                    } else {
                        // Nonexistent partner rows count as "different".
                        let equal = i <= m_td
                            && j <= m_td
                            && rows[i - 1].get(a) == rows[j - 1].get(a);
                        if equal {
                            i.min(j)
                        } else {
                            k
                        }
                    };
                    vals.push(self.num(attr, v));
                }
            }
            hyp.push(Tuple::new(vals));
        }

        let marker = self.m + 1;
        let mut u = Vec::with_capacity(self.hat.width());
        for &a in &base_attrs {
            let a0 = self.attr(a, 0);
            let k0 = (1..=m_td).find(|&k| rows[k - 1].get(a) == td.conclusion().get(a));
            u.push(match k0 {
                Some(k) => self.num(a0, k),
                None => self.num(a0, marker),
            });
            for p in 1..=self.n {
                let attr = self.attr(a, p);
                u.push(self.num(attr, marker));
            }
        }
        Td::new(self.hat.clone(), Tuple::new(u), hyp)
    }

    /// Lemma 8's `(n+1)`-fold duplication `Î` of a `U`-relation: every row
    /// `t` becomes the `Û`-row with `s[Aᵢ] = (Aᵢ, t[A])` for all `i`.
    pub fn hat_relation(&mut self, i: &Relation, base_pool: &ValuePool) -> Relation {
        assert_eq!(i.universe().width(), self.base.width());
        let base_attrs: Vec<AttrId> = self.base.attrs().collect();
        let mut out = Relation::new(self.hat.clone());
        for t in i.iter() {
            let mut vals = Vec::with_capacity(self.hat.width());
            for &a in &base_attrs {
                let name = format!("<{}>", base_pool.name(t.get(a)));
                for p in 0..=self.n {
                    let attr = self.attr(a, p);
                    vals.push(self.pool.typed(attr, &name));
                }
            }
            out.insert(Tuple::new(vals));
        }
        out
    }

    /// The mvd set of Theorem 6: `Aᵢ ↠ Aⱼ` for every base attribute `A`
    /// and every ordered pair `i ≠ j` in `0 ..= n`.
    pub fn block_mvds(&self) -> Vec<Mvd> {
        let mut out = Vec::new();
        for a in self.base.attrs() {
            for i in 0..=self.n {
                for j in 0..=self.n {
                    if i == j {
                        continue;
                    }
                    let lhs = [self.attr(a, i)].into_iter().collect();
                    let rhs = [self.attr(a, j)].into_iter().collect();
                    out.push(Mvd::new(self.hat.clone(), lhs, rhs));
                }
            }
        }
        out
    }

    /// The fd set of Lemma 8 (before the mvd replacement): `Aᵢ → Aⱼ`.
    pub fn block_fds(&self) -> Vec<typedtd_dependencies::Fd> {
        self.block_mvds()
            .into_iter()
            .map(|m| typedtd_dependencies::Fd::new(m.lhs, m.rhs))
            .collect()
    }

    /// Lemma 7 concrete check: `I ⊨ θ ⇔ Î ⊨ θ̂`. Returns `(lhs, rhs)`.
    pub fn lemma7_check(
        &mut self,
        i: &Relation,
        base_pool: &ValuePool,
        td: &Td,
    ) -> (bool, bool) {
        let hat_i = self.hat_relation(i, base_pool);
        let hat_td = self.hat_td(td);
        (td.satisfied_by(i), hat_td.satisfied_by(&hat_i))
    }
}

/// The Lemma 10 exhibit: over the 4-attribute view `(Aᵢ, Aⱼ, A_k, R)`
/// (the paper lumps the remaining attributes into one displayed column),
/// the six mvds among `{Aᵢ, Aⱼ, A_k}` chase-derive `θ_{Aᵢ→Aⱼ}`.
///
/// Returns the dependency set, its labels, and the goal — ready for
/// [`typedtd_chase::chase_implication`]; the trace replays the printed
/// `s₁ … s₄, t` chain.
pub fn lemma10_exhibit() -> (
    Arc<Universe>,
    ValuePool,
    Vec<typedtd_dependencies::TdOrEgd>,
    Vec<String>,
    typedtd_dependencies::TdOrEgd,
) {
    use typedtd_dependencies::TdOrEgd;
    let u = Universe::typed(vec!["Ai", "Aj", "Ak", "R"]);
    let mut pool = ValuePool::new(u.clone());
    let names = ["Ai", "Aj", "Ak"];
    let mut sigma = Vec::new();
    let mut labels = Vec::new();
    for p in 0..3 {
        for q in 0..3 {
            if p == q {
                continue;
            }
            let mvd = Mvd::new(
                u.clone(),
                [u.a(names[p])].into_iter().collect(),
                [u.a(names[q])].into_iter().collect(),
            );
            labels.push(format!("{} ->> {}", names[p], names[q]));
            sigma.push(TdOrEgd::Td(mvd.to_pjd().to_td(&u, &mut pool)));
        }
    }
    let goal = crate::egd_elim::theta_fd_single(
        &u,
        &mut pool,
        &u.set("Ai"),
        u.a("Aj"),
    );
    (u, pool, sigma, labels, TdOrEgd::Td(goal))
}

/// Renders the hat-universe attributes of a value map for diagnostics:
/// `A0 A1 … B0 …` header order.
pub fn hat_header(ctx: &HatContext) -> Vec<String> {
    ctx.hat_universe()
        .attrs()
        .map(|a| ctx.hat_universe().name(a).to_string())
        .collect()
}

/// Convenience: a map from every `Û` attribute to its `(base attr, copy)`.
pub fn hat_layout(ctx: &HatContext) -> FxHashMap<AttrId, (AttrId, usize)> {
    let mut out = FxHashMap::default();
    for a in ctx.base_universe().attrs() {
        for i in 0..=ctx.n() {
            out.insert(ctx.attr(a, i), (a, i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_chase::{chase_implication, ChaseConfig, ChaseOutcome};
    use typedtd_dependencies::{td_from_names, TdOrEgd};

    /// The paper's Example 3 td over U = ABC.
    fn example3_td(u: &Arc<Universe>, pool: &mut ValuePool) -> Td {
        td_from_names(
            u,
            pool,
            &[
                &["a", "b1", "c1"],
                &["a1", "b", "c1"],
                &["a1", "b1", "c2"],
            ],
            &["a", "b", "c3"],
        )
    }

    #[test]
    fn example3_exact_tableau() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let td = example3_td(&u, &mut pool);
        let mut ctx = HatContext::new(&u, 3);
        let hat = ctx.hat_td(&td);
        assert!(hat.is_shallow());
        assert_eq!(ctx.n(), 3);
        assert_eq!(hat.universe().width(), 12);

        // Expected rows from the paper (columns A0..A3 B0..B3 C0..C3):
        let expect = [
            ("u", vec![1, 4, 4, 4, 2, 4, 4, 4, 4, 4, 4, 4]),
            ("u1", vec![1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1]),
            ("u2", vec![2, 2, 2, 2, 2, 2, 2, 2, 2, 1, 2, 2]),
            ("u3", vec![3, 3, 3, 2, 3, 3, 1, 3, 3, 3, 3, 3]),
        ];
        let render = |t: &Tuple| -> Vec<usize> {
            t.values()
                .iter()
                .map(|&v| ctx.pool().name(v).parse::<usize>().unwrap())
                .collect()
        };
        assert_eq!(render(hat.conclusion()), expect[0].1, "conclusion u");
        for (k, (_, want)) in expect[1..].iter().enumerate() {
            assert_eq!(&render(&hat.hypothesis()[k]), want, "row u{}", k + 1);
        }
    }

    #[test]
    fn pair_enumeration_matches_example3() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let ctx = HatContext::new(&u, 3);
        assert_eq!(ctx.pair_index(1, 2), 1);
        assert_eq!(ctx.pair_index(1, 3), 2);
        assert_eq!(ctx.pair_index(2, 3), 3);
        assert_eq!(ctx.pair_index(3, 2), 3, "unordered");
    }

    #[test]
    fn hat_td_is_always_shallow() {
        // Even a deeply non-shallow td spreads into a shallow one.
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let deep = td_from_names(
            &u,
            &mut pool,
            &[
                &["x", "y", "z1"],
                &["x", "y2", "z"],
                &["x2", "y", "z"],
                &["x2", "y2", "z1"],
            ],
            &["x", "y", "z"],
        );
        assert!(!deep.is_shallow());
        let mut ctx = HatContext::new(&u, 4);
        let hat = ctx.hat_td(&deep);
        assert!(hat.is_shallow());
        hat.check_typed(ctx.pool()).unwrap();
    }

    #[test]
    fn lemma7_equivalence_on_concrete_relations() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let td = example3_td(&u, &mut pool);
        // A relation satisfying the td (closed under its rule) and one not.
        let mk = |pool: &mut ValuePool, rows: &[[&str; 3]]| {
            Relation::from_rows(
                u.clone(),
                rows.iter().map(|r| {
                    Tuple::new(
                        r.iter()
                            .enumerate()
                            .map(|(i, n)| pool.for_attr(AttrId(i as u16), n))
                            .collect(),
                    )
                }),
            )
        };
        let single = mk(&mut pool, &[["p", "q", "r"]]);
        let mut ctx = HatContext::new(&u, 3);
        let (lhs, rhs) = ctx.lemma7_check(&single, &pool, &td);
        assert_eq!(lhs, rhs, "Lemma 7 on a single-row relation");
        assert!(lhs, "one row matches all three hypothesis rows and itself");

        let open = mk(
            &mut pool,
            &[["p", "q1", "r1"], ["p1", "q", "r1"], ["p1", "q1", "r2"]],
        );
        let mut ctx2 = HatContext::new(&u, 3);
        let (lhs2, rhs2) = ctx2.lemma7_check(&open, &pool, &td);
        assert_eq!(lhs2, rhs2, "Lemma 7 on the open relation");
        assert!(!lhs2, "the witness tuple (p, q, -) is missing");
    }

    #[test]
    fn block_mvd_count() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let ctx = HatContext::new(&u, 3);
        // 3 attributes × (n+1)·n ordered pairs = 3 × 12 = 36.
        assert_eq!(ctx.block_mvds().len(), 36);
        assert_eq!(ctx.block_fds().len(), 36);
    }

    #[test]
    fn lemma10_mvds_derive_theta() {
        let (_u, mut pool, sigma, _labels, goal) = lemma10_exhibit();
        let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
        assert_eq!(
            run.outcome,
            ChaseOutcome::Implied,
            "the paper's Lemma 10 derivation must be found by the chase"
        );
        // The paper's chain uses 5 added rows (s1..s4 and t); the chase may
        // find a shorter or equal derivation but never needs merges.
        assert_eq!(run.trace.merges(), 0);
    }

    #[test]
    fn theta_derives_its_mvd_back() {
        // The corollary's other direction: θ_{Ai→Aj} ⊨ Ai ↠ Aj.
        use crate::egd_elim::theta_fd_single;
        let u = Universe::typed(vec!["Ai", "Aj", "Ak", "R"]);
        let mut pool = ValuePool::new(u.clone());
        let theta = theta_fd_single(&u, &mut pool, &u.set("Ai"), u.a("Aj"));
        let mvd = Mvd::new(
            u.clone(),
            [u.a("Ai")].into_iter().collect(),
            [u.a("Aj")].into_iter().collect(),
        );
        let goal = TdOrEgd::Td(mvd.to_pjd().to_td(&u, &mut pool));
        let run = chase_implication(
            &[TdOrEgd::Td(theta)],
            &goal,
            &mut pool,
            &ChaseConfig::default(),
        );
        assert_eq!(run.outcome, ChaseOutcome::Implied);
    }
}
