//! Theorem 6 — the end-to-end reduction from typed td implication to
//! projected-join-dependency implication.
//!
//! Given `Σ ∪ {σ}` over `U`, let `m` be the largest tableau among them and
//! `n = m(m−1)/2`. Then
//!
//! ```text
//! Σ ⊨(f) σ   ⇔   {θ̂ : θ ∈ Σ} ∪ {Aᵢ ↠ Aⱼ : 0 ≤ i, j ≤ n}  ⊨(f)  σ̂
//! ```
//!
//! where the left set consists of *shallow* tds (equivalently pjds, by
//! Lemma 6) and mvds. The proof chains Lemma 8 (spread over `Û`, keep the
//! fds `Aᵢ → Aⱼ`), Lemma 9 (replace the fds by `θ_{Aᵢ→Aⱼ}`), and Lemma 10
//! (replace those by the mvds). Since pjd implication inherits the
//! undecidability of td implication through this effective map, the
//! implication and finite implication problems for pjds are unsolvable.

use crate::shallow::HatContext;
use typedtd_dependencies::{Mvd, Pjd, Td, TdOrEgd};
use typedtd_relational::Universe;
use std::sync::Arc;

/// The output of the Theorem 6 translation.
pub struct PjdInstance {
    /// The shared hat context (universe `Û`, pools, pair enumeration).
    pub ctx: HatContext,
    /// `{θ̂ : θ ∈ Σ}` — shallow tds.
    pub sigma_hat: Vec<Td>,
    /// The block mvds `Aᵢ ↠ Aⱼ`.
    pub mvds: Vec<Mvd>,
    /// `σ̂` — a shallow td.
    pub goal_hat: Td,
    /// `Σ̂` as pjds (Lemma 6 images of `sigma_hat`).
    pub sigma_pjds: Vec<Pjd>,
    /// `σ̂` as a pjd.
    pub goal_pjd: Pjd,
}

impl PjdInstance {
    /// The whole translated premise set in chase-ready form
    /// (`θ̂`s plus the mvds converted to their tds).
    pub fn chase_sigma(&mut self) -> Vec<TdOrEgd> {
        let mut out: Vec<TdOrEgd> = self
            .sigma_hat
            .iter()
            .cloned()
            .map(TdOrEgd::Td)
            .collect();
        let hat = self.ctx.hat_universe().clone();
        let mvds = self.mvds.clone();
        for m in mvds {
            out.push(TdOrEgd::Td(m.to_pjd().to_td(&hat, self.ctx.pool_mut())));
        }
        out
    }

    /// Labels matching [`Self::chase_sigma`] order, for trace rendering.
    pub fn chase_labels(&self) -> Vec<String> {
        let mut out: Vec<String> = (0..self.sigma_hat.len())
            .map(|i| format!("hat(sigma[{i}])"))
            .collect();
        out.extend(self.mvds.iter().map(|m| m.render()));
        out
    }
}

/// Builds the Theorem 6 instance for typed tds `Σ` and goal `σ` over one
/// universe.
///
/// # Panics
/// Panics if the tds are over different universes or the universe is
/// untyped.
pub fn theorem6_instance(sigma: &[Td], goal: &Td) -> PjdInstance {
    let base: Arc<Universe> = goal.universe().clone();
    for t in sigma {
        assert_eq!(
            t.universe().width(),
            base.width(),
            "all tds must share one universe"
        );
    }
    let m = sigma
        .iter()
        .chain(std::iter::once(goal))
        .map(|t| t.arity())
        .max()
        .unwrap()
        .max(2); // n ≥ 1 keeps Û nontrivial, matching "2 ≤ n" in the paper
    let mut ctx = HatContext::new(&base, m);
    let sigma_hat: Vec<Td> = sigma.iter().map(|t| ctx.hat_td(t)).collect();
    let goal_hat = ctx.hat_td(goal);
    let mvds = ctx.block_mvds();
    let sigma_pjds: Vec<Pjd> = sigma_hat
        .iter()
        .map(|t| Pjd::from_shallow_td(t).expect("hat tds are shallow"))
        .collect();
    let goal_pjd = Pjd::from_shallow_td(&goal_hat).expect("hat tds are shallow");
    PjdInstance {
        ctx,
        sigma_hat,
        mvds,
        goal_hat,
        sigma_pjds,
        goal_pjd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_chase::{chase_implication, ChaseConfig, ChaseOutcome};
    use typedtd_dependencies::td_from_names;
    use typedtd_relational::ValuePool;

    #[test]
    fn instance_shapes() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        // Σ = {mvd A ↠ B as a td}, σ = the same td: trivially implied.
        let td = td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let inst = theorem6_instance(std::slice::from_ref(&td), &td);
        assert_eq!(inst.ctx.m(), 2);
        assert_eq!(inst.ctx.n(), 1);
        assert_eq!(inst.ctx.hat_universe().width(), 6); // 3 attrs × (n+1)
        assert!(inst.goal_hat.is_shallow());
        assert_eq!(inst.sigma_pjds.len(), 1);
        // Each pjd projects within Û.
        assert!(inst
            .goal_pjd
            .attr()
            .is_subset(&inst.ctx.hat_universe().all()));
    }

    #[test]
    fn self_implication_survives_the_translation() {
        // σ ∈ Σ ⟹ Σ̂ ∪ mvds ⊨ σ̂ (the easy direction, end to end).
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let td = td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let mut inst = theorem6_instance(std::slice::from_ref(&td), &td);
        let sigma = inst.chase_sigma();
        let goal = TdOrEgd::Td(inst.goal_hat.clone());
        let run = chase_implication(
            &sigma,
            &goal,
            inst.ctx.pool_mut(),
            &ChaseConfig::default(),
        );
        assert_eq!(run.outcome, ChaseOutcome::Implied);
    }

    #[test]
    fn non_implication_survives_the_translation() {
        // Σ = ∅ (no premises): σ̂ must not follow from the mvds alone.
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let td = td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let mut inst = theorem6_instance(&[], &td);
        let sigma = inst.chase_sigma();
        let goal = TdOrEgd::Td(inst.goal_hat.clone());
        let run = chase_implication(
            &sigma,
            &goal,
            inst.ctx.pool_mut(),
            &ChaseConfig::default(),
        );
        assert_eq!(
            run.outcome,
            ChaseOutcome::NotImplied,
            "the block mvds alone must not prove a real td"
        );
    }

    #[test]
    fn pjd_views_agree_with_td_views() {
        // Lemma 6 consistency inside the pipeline: the pjd forms satisfy
        // exactly the relations their shallow tds do.
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let td = td_from_names(
            &u,
            &mut pool,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let mut inst = theorem6_instance(std::slice::from_ref(&td), &td);
        // Build a couple of Û-relations via the duplication of Lemma 8.
        let mk = |pool: &mut ValuePool, rows: &[[&str; 3]]| {
            typedtd_relational::Relation::from_rows(
                u.clone(),
                rows.iter().map(|r| {
                    typedtd_relational::Tuple::new(
                        r.iter()
                            .enumerate()
                            .map(|(i, n)| {
                                pool.for_attr(typedtd_relational::AttrId(i as u16), n)
                            })
                            .collect(),
                    )
                }),
            )
        };
        for rows in [
            vec![["a", "b", "c"]],
            vec![["a", "b1", "c1"], ["a", "b2", "c2"]],
        ] {
            let base_rel = mk(&mut pool, &rows);
            let hat_rel = inst.ctx.hat_relation(&base_rel, &pool);
            assert_eq!(
                inst.goal_hat.satisfied_by(&hat_rel),
                inst.goal_pjd.satisfied_by(&hat_rel),
                "Lemma 6 equivalence on {rows:?}"
            );
        }
    }
}
