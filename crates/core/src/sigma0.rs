//! Section 4 — the auxiliary typed td `σ₀` and the set `Σ₀`.
//!
//! `T(I)` has the property that `T((a,b,c)) ∈ T(I)` forces
//! `N(a), N(b), N(c) ∈ T(I)`. That property is not td-expressible, but the
//! weaker statement "if `T((a,b,c))`, `N(a)`, `N(b)` are present then so is
//! `N(c)`" is: it is the td `σ₀ = (w₀, I₀)`, `I₀ = {s, w₁, w₂, w₃}`:
//!
//! ```text
//!      A    B    C    D    E    F
//! s    a0   b0   c0   d0   e0   f0
//! w1   a1   b2   c3   d1   e0   f1
//! w2   a1   a2   a3   d0   e1   f1
//! w3   b1   b2   b3   d0   e2   f1
//!
//! w0   c1   c2   c3   d0   e3   f1
//! ```
//!
//! `Σ₀ = {σ₀, AD → U, BD → U, CD → U, ABCE → U}`. Lemma 4: if
//! `I ⊨ A'B' → C'` then `T(I) ⊨ σ₀`.

use crate::typing::Translator;
use typedtd_dependencies::{Dependency, Fd, Td, TdOrEgd};
use typedtd_relational::{Relation, Tuple, Universe, ValuePool};
use std::sync::Arc;

/// Builds `σ₀` over the translator's typed universe, reusing its special
/// elements (`a0, …, f1`) so that `σ₀` composes with translated relations.
pub fn sigma0(tr: &mut Translator) -> Td {
    let u = tr.typed_universe().clone();
    let s = tr.s_tuple();
    let (d0, e0, f1) = (tr.special("d0"), tr.special("e0"), tr.special("f1"));
    let mut v = |col: &str, name: &str| {
        let attr = u.a(col);
        tr.pool_mut().typed(attr, name)
    };
    let w1 = Tuple::new(vec![
        v("A", "a1*"),
        v("B", "b2*"),
        v("C", "c3*"),
        v("D", "d1*"),
        e0,
        f1,
    ]);
    let w2 = Tuple::new(vec![
        v("A", "a1*"),
        v("B", "a2*"),
        v("C", "a3*"),
        d0,
        v("E", "e1*"),
        f1,
    ]);
    let w3 = Tuple::new(vec![
        v("A", "b1*"),
        v("B", "b2*"),
        v("C", "b3*"),
        d0,
        v("E", "e2*"),
        f1,
    ]);
    let w0 = Tuple::new(vec![
        v("A", "c1*"),
        v("B", "c2*"),
        v("C", "c3*"),
        d0,
        v("E", "e3*"),
        f1,
    ]);
    Td::new(u, w0, vec![s, w1, w2, w3])
}

/// `Σ₀` as chase-ready dependencies: `σ₀` plus the Lemma 1 fds (normalized
/// to egds through `pool`).
pub fn sigma0_set(tr: &mut Translator) -> Vec<TdOrEgd> {
    let s0 = sigma0(tr);
    let u = tr.typed_universe().clone();
    let mut out = vec![TdOrEgd::Td(s0)];
    let fds: Vec<Fd> = tr.lemma1_fds();
    for fd in fds {
        out.extend(Dependency::from(fd).normalize(&u, tr.pool_mut()));
    }
    out
}

/// `Σ₀` in declarative form (σ₀ plus fds), for display.
pub fn sigma0_display(tr: &mut Translator) -> (Td, Vec<Fd>) {
    (sigma0(tr), tr.lemma1_fds())
}

/// Lemma 4 check on a concrete untyped relation: if `I ⊨ A'B' → C'` then
/// `T(I) ⊨ σ₀`. Returns `(premise, conclusion)`.
pub fn lemma4_check(
    tr: &mut Translator,
    untyped_pool: &ValuePool,
    i: &Relation,
) -> (bool, bool) {
    let uu: Arc<Universe> = tr.untyped_universe().clone();
    let fd = Fd::new(uu.set("A' B'"), uu.set("C'"));
    let premise = fd.satisfied_by(i);
    let t_i = tr.t_relation(untyped_pool, i);
    let s0 = sigma0(tr);
    (premise, s0.satisfied_by(&t_i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::Universe;

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[[&str; 3]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|n| p.untyped(n)).collect())),
        )
    }

    #[test]
    fn sigma0_is_well_typed_and_not_total() {
        let u = Universe::untyped_abc();
        let mut tr = Translator::new(u);
        let s0 = sigma0(&mut tr);
        s0.check_typed(tr.pool()).unwrap();
        assert_eq!(s0.hypothesis().len(), 4);
        // c1*, c2*, e3* are existential.
        assert!(!s0.is_total());
        let tu = tr.typed_universe().clone();
        assert!(s0.is_v_total(&tu.set("CDF")));
    }

    #[test]
    fn lemma4_positive() {
        // I satisfies A'B' → C' (it is a graph of a partial function).
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let i = rel(&u, &mut p, &[["a", "b", "c"], ["b", "a", "c"], ["a", "a", "b"]]);
        let mut tr = Translator::new(u);
        let (premise, conclusion) = lemma4_check(&mut tr, &p, &i);
        assert!(premise);
        assert!(conclusion, "Lemma 4: T(I) ⊨ σ₀");
    }

    #[test]
    fn lemma4_contrapositive_shape() {
        // When A'B' → C' fails, σ₀ may fail on T(I): take I where (a,b)
        // maps to two C'-values; T(I) then contains T((a,b,c)), N(a), N(b)
        // and does contain N(c) — so σ₀ actually still holds here. The
        // paper only claims one direction; we check σ₀'s satisfaction is
        // *decided* (no panic) and premise is false.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let i = rel(&u, &mut p, &[["a", "b", "c"], ["a", "b", "d"]]);
        let mut tr = Translator::new(u);
        let (premise, _conclusion) = lemma4_check(&mut tr, &p, &i);
        assert!(!premise);
    }

    #[test]
    fn sigma0_set_contains_td_and_egds() {
        let u = Universe::untyped_abc();
        let mut tr = Translator::new(u);
        let set = sigma0_set(&mut tr);
        let tds = set.iter().filter(|d| d.as_td().is_some()).count();
        let egds = set.iter().filter(|d| d.as_egd().is_some()).count();
        assert_eq!(tds, 1);
        // AD→U contributes 4 egds (B,C,E,F), BD→U 4, CD→U 4, ABCE→U 2.
        assert_eq!(egds, 4 + 4 + 4 + 2);
    }

    #[test]
    fn t_image_of_functional_relation_satisfies_sigma0_set() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let i = rel(&u, &mut p, &[["a", "b", "c"], ["c", "b", "a"]]);
        let mut tr = Translator::new(u);
        let t_i = tr.t_relation(&p, &i);
        for dep in sigma0_set(&mut tr) {
            assert!(dep.satisfied_by(&t_i), "T(I) must satisfy Σ₀: {dep:?}");
        }
    }
}
