//! Lemmas 5 and 9 — eliminating equality-generating dependencies.
//!
//! The paper replaces an fd `X → A` by the **total** td `θ_{X→A}`
//! (Example 4): two rows agreeing exactly on `X`, a third row agreeing with
//! the second on `A` and fresh elsewhere, and a conclusion that grafts the
//! first row's `A`-value onto the third row. Chasing with `θ_{X→A}` lets
//! any row's `A`-value be swapped for the one the fd would have equated —
//! equality is simulated by tuple generation.
//!
//! `θ` generalizes verbatim to an arbitrary typed egd `ε = (a = b, I)`:
//! hypothesis `I ∪ {u₃}` with `u₃[A] = b` and fresh values elsewhere,
//! conclusion `u₃` with its `A`-value replaced by `a` (the printed
//! `θ_{X→A}` is exactly this construction applied to the fd read as an
//! egd). Lemma 9 (= Sadri–Ullman's result for unrestricted implication)
//! justifies the replacement inside `Σ`; Lemma 5 (from the Beeri–Vardi
//! report [9], reconstructed here — see DESIGN.md §3) additionally converts
//! the *goal* egd into the total td `θ_σ`.
//!
//! Every `θ` is total, so a chase using only `θ`s never invents values:
//! the fragment is decidable and the tests verify the replacement against
//! the Armstrong-closure oracle.

use typedtd_dependencies::{Egd, Fd, Td, TdOrEgd};
use typedtd_relational::{AttrId, Tuple, Universe, Value, ValuePool};
use std::sync::Arc;

/// Builds `θ_{X→A}` for a single target attribute `A ∉ X` (Lemma 9,
/// Example 4).
pub fn theta_fd_single(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    x: &typedtd_relational::AttrSet,
    a: AttrId,
) -> Td {
    assert!(!x.contains(a), "target attribute must lie outside X");
    let sorted = universe.is_typed();
    let fresh = |pool: &mut ValuePool, attr: AttrId, p: &str| -> Value {
        pool.fresh(Some(attr).filter(|_| sorted), p)
    };
    let mut u1 = Vec::with_capacity(universe.width());
    let mut u2 = Vec::with_capacity(universe.width());
    let mut u3 = Vec::with_capacity(universe.width());
    for b in universe.attrs() {
        let v1 = fresh(pool, b, "v1_");
        u1.push(v1);
        u2.push(if x.contains(b) { v1 } else { fresh(pool, b, "v2_") });
        u3.push(if b == a {
            *u2.last().unwrap()
        } else {
            fresh(pool, b, "v3_")
        });
    }
    let u: Vec<Value> = universe
        .attrs()
        .map(|b| if b == a { u1[b.index()] } else { u3[b.index()] })
        .collect();
    Td::new(
        universe.clone(),
        Tuple::new(u),
        vec![Tuple::new(u1), Tuple::new(u2), Tuple::new(u3)],
    )
}

/// Replaces an fd `X → Y` by one `θ_{X→A}` per `A ∈ Y − X`.
pub fn theta_fd(universe: &Arc<Universe>, pool: &mut ValuePool, fd: &Fd) -> Vec<Td> {
    fd.rhs
        .difference(&fd.lhs)
        .iter()
        .map(|a| theta_fd_single(universe, pool, &fd.lhs, a))
        .collect()
}

/// Builds `θ_ε` for a typed egd `ε = (a = b, I)`: hypothesis `I ∪ {u₃}`
/// with `u₃[A] = b`, conclusion `u₃` with `a` in column `A`.
///
/// # Panics
/// Panics on untyped egds (the construction needs the sort of `a`/`b`).
pub fn theta_egd(egd: &Egd, pool: &mut ValuePool) -> Td {
    let universe = egd.universe().clone();
    assert!(
        universe.is_typed(),
        "θ_ε is defined for typed egds (Lemma 5 is about the typed case)"
    );
    let sort = pool
        .sort(egd.left())
        .expect("typed value has a sort");
    assert_eq!(
        Some(sort),
        pool.sort(egd.right()),
        "egd equates same-sorted values"
    );
    let mut u3 = Vec::with_capacity(universe.width());
    for b in universe.attrs() {
        u3.push(if b == sort {
            egd.right()
        } else {
            pool.fresh(Some(b), "v3_")
        });
    }
    let w: Vec<Value> = universe
        .attrs()
        .map(|b| if b == sort { egd.left() } else { u3[b.index()] })
        .collect();
    let mut hyp = egd.hypothesis().to_vec();
    hyp.push(Tuple::new(u3));
    Td::new(universe, Tuple::new(w), hyp)
}

/// Lemma 9 transformation of a dependency set: every egd is replaced by its
/// `θ`; tds pass through.
pub fn eliminate_egds(sigma: &[TdOrEgd], pool: &mut ValuePool) -> Vec<Td> {
    sigma
        .iter()
        .map(|d| match d {
            TdOrEgd::Td(t) => t.clone(),
            TdOrEgd::Egd(e) => theta_egd(e, pool),
        })
        .collect()
}

/// Lemma 5 instance: `(Σ′, σ′)` with `Σ′ = eliminate_egds(Σ)` and
/// `σ′ = θ_σ` — a set of typed tds and a typed **total** td such that
/// `Σ ⊨ σ ⇔ Σ′ ⊨ σ′` (and likewise finitely).
pub fn lemma5_instance(
    sigma: &[TdOrEgd],
    goal: &Egd,
    pool: &mut ValuePool,
) -> (Vec<Td>, Td) {
    let sigma_prime = eliminate_egds(sigma, pool);
    let goal_prime = theta_egd(goal, pool);
    debug_assert!(goal_prime.is_total(), "θ_σ must be total");
    (sigma_prime, goal_prime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_chase::{chase_implication, ChaseConfig, ChaseOutcome};
    use typedtd_dependencies::fd_implies;

    fn u6() -> Arc<Universe> {
        Universe::typed_abcdef()
    }

    #[test]
    fn example4_shape() {
        // θ_{A→B} over U = ABCDEF, as printed in Example 4.
        let u = u6();
        let mut p = ValuePool::new(u.clone());
        let td = theta_fd_single(&u, &mut p, &u.set("A"), u.a("B"));
        assert!(td.is_total());
        assert_eq!(td.hypothesis().len(), 3);
        let [u1, u2, u3] = [&td.hypothesis()[0], &td.hypothesis()[1], &td.hypothesis()[2]];
        let w = td.conclusion();
        // (1) u1[A] = u2[A], all other columns differ.
        assert_eq!(u1.get(u.a("A")), u2.get(u.a("A")));
        for col in ["B", "C", "D", "E", "F"] {
            assert_ne!(u1.get(u.a(col)), u2.get(u.a(col)));
        }
        // (2) u3[B] = u2[B]; u3 fresh elsewhere.
        assert_eq!(u3.get(u.a("B")), u2.get(u.a("B")));
        for col in ["A", "C", "D", "E", "F"] {
            assert_ne!(u3.get(u.a(col)), u1.get(u.a(col)));
            assert_ne!(u3.get(u.a(col)), u2.get(u.a(col)));
        }
        // (3) w[B] = u1[B], w agrees with u3 off B.
        assert_eq!(w.get(u.a("B")), u1.get(u.a("B")));
        for col in ["A", "C", "D", "E", "F"] {
            assert_eq!(w.get(u.a(col)), u3.get(u.a(col)));
        }
        td.check_typed(&p).unwrap();
    }

    /// The θ replacement must agree with the Armstrong oracle on fd
    /// implication (the decidable fragment): Σ ⊨ X→A iff {θ_fd} ⊨ θ_{X→A}.
    #[test]
    fn theta_replacement_agrees_with_fd_oracle() {
        let u = Universe::typed(vec!["A", "B", "C", "D"]);
        let cases = [
            (vec!["A -> B", "B -> C"], "A -> C", true),
            (vec!["A -> B", "B -> C"], "C -> A", false),
            (vec!["A -> B"], "AC -> B", true),
            (vec!["AB -> C", "A -> B"], "A -> C", true),
            (vec!["AB -> C"], "A -> C", false),
        ];
        for (fd_specs, goal_spec, expected) in cases {
            let mut p = ValuePool::new(u.clone());
            let fds: Vec<Fd> = fd_specs.iter().map(|s| Fd::parse(&u, s).unwrap()).collect();
            let goal_fd = Fd::parse(&u, goal_spec).unwrap();
            assert_eq!(fd_implies(&fds, &goal_fd), expected, "oracle sanity");

            let mut sigma: Vec<TdOrEgd> = Vec::new();
            for fd in &fds {
                sigma.extend(theta_fd(&u, &mut p, fd).into_iter().map(TdOrEgd::Td));
            }
            let target_attr = goal_fd.rhs.difference(&goal_fd.lhs).iter().next().unwrap();
            let goal_td = theta_fd_single(&u, &mut p, &goal_fd.lhs, target_attr);
            let run = chase_implication(
                &sigma,
                &TdOrEgd::Td(goal_td),
                &mut p,
                &ChaseConfig::default(),
            );
            let got = match run.outcome {
                ChaseOutcome::Implied => true,
                ChaseOutcome::NotImplied => false,
                ChaseOutcome::Exhausted | ChaseOutcome::Cancelled => {
                    panic!("total-td chase must terminate")
                }
            };
            assert_eq!(
                got, expected,
                "θ-replacement implication mismatch for {fd_specs:?} ⊨ {goal_spec}"
            );
        }
    }

    #[test]
    fn theta_egd_generalizes_theta_fd() {
        // For an fd-shaped egd the generalized construction produces the
        // same tableau pattern as θ_{X→A}.
        let u = u6();
        let mut p = ValuePool::new(u.clone());
        let fd = Fd::parse(&u, "A -> B").unwrap();
        let egd = fd.to_egds(&u, &mut p).remove(0);
        let td = theta_egd(&egd, &mut p);
        assert!(td.is_total());
        assert_eq!(td.hypothesis().len(), 3);
        // Conclusion's B-value is the egd's left side; off B it copies u3.
        assert_eq!(td.conclusion().get(u.a("B")), egd.left());
        let u3 = &td.hypothesis()[2];
        assert_eq!(u3.get(u.a("B")), egd.right());
        td.check_typed(&p).unwrap();
    }

    #[test]
    fn lemma5_goal_is_total() {
        let u = u6();
        let mut p = ValuePool::new(u.clone());
        let fd = Fd::parse(&u, "AB -> C").unwrap();
        let egd = fd.to_egds(&u, &mut p).remove(0);
        let (sigma_prime, goal_prime) = lemma5_instance(&[TdOrEgd::Egd(egd.clone())], &egd, &mut p);
        assert!(goal_prime.is_total());
        assert_eq!(sigma_prime.len(), 1);
        // Σ contains σ itself, so Σ′ ⊨ σ′ must hold (σ′ ∈ Σ′ up to renaming).
        let sigma_tds: Vec<TdOrEgd> = sigma_prime.into_iter().map(TdOrEgd::Td).collect();
        let run = chase_implication(
            &sigma_tds,
            &TdOrEgd::Td(goal_prime),
            &mut p,
            &ChaseConfig::default(),
        );
        assert_eq!(run.outcome, ChaseOutcome::Implied);
    }
}
