//! Theorem 2 — the complete Section 4 reduction.
//!
//! For untyped `Σ, σ` (with `Σ`'s tds `A'B'`-total and `A'B' → C' ∈ Σ`, as
//! Theorem 1 provides), define `T(Σ) = {T(θ) : θ ∈ Σ} ∪ Σ₀`. Then
//! `Σ ⊨(f) σ  ⇔  T(Σ) ⊨(f) T(σ)`: the translation is effective and
//! conservative, so the unsolvability of the untyped problems (Theorem 1)
//! transfers to typed tds and egds — and, through Lemma 5, to typed tds
//! alone.

use crate::sigma0::sigma0_set;
use crate::translate::t_dep;
use crate::typing::Translator;
use typedtd_dependencies::{Egd, Fd, TdOrEgd};
use typedtd_relational::{Universe, ValuePool};
use std::sync::Arc;

/// The output of the Theorem 2 translation.
pub struct TypedInstance {
    /// The translator (owns the typed pool; chase nulls come from here).
    pub translator: Translator,
    /// `T(Σ) ∪ Σ₀`, chase-ready.
    pub sigma: Vec<TdOrEgd>,
    /// Labels aligned with `sigma` for trace rendering.
    pub labels: Vec<String>,
    /// `T(σ)`.
    pub goal: TdOrEgd,
}

/// Builds the typed instance `(T(Σ) ∪ Σ₀, T(σ))` from an untyped one.
///
/// # Panics
/// Panics if some td in `Σ ∪ {σ}` is not `A'B'`-total (the reduction is
/// defined — and Lemma 2 proved — for the instances Theorem 1 produces).
pub fn theorem2_instance(
    untyped_universe: &Arc<Universe>,
    untyped_pool: &ValuePool,
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
) -> TypedInstance {
    let mut tr = Translator::new(untyped_universe.clone());
    let mut out = Vec::with_capacity(sigma.len() + 15);
    let mut labels = Vec::with_capacity(sigma.len() + 15);
    for (i, dep) in sigma.iter().enumerate() {
        out.push(t_dep(&mut tr, untyped_pool, dep));
        labels.push(format!("T(sigma[{i}])"));
    }
    let s0 = sigma0_set(&mut tr);
    for (i, dep) in s0.into_iter().enumerate() {
        labels.push(if i == 0 {
            "sigma0".to_string()
        } else {
            format!("Sigma0 fd-egd[{i}]")
        });
        out.push(dep);
    }
    let goal = t_dep(&mut tr, untyped_pool, goal);
    TypedInstance {
        translator: tr,
        sigma: out,
        labels,
        goal,
    }
}

/// Convenience: the Theorem 1 side condition `A'B' → C'` as untyped egds.
pub fn abc_functionality(
    untyped_universe: &Arc<Universe>,
    untyped_pool: &mut ValuePool,
) -> Vec<Egd> {
    let fd = Fd::new(
        untyped_universe.set("A' B'"),
        untyped_universe.set("C'"),
    );
    fd.to_egds(untyped_universe, untyped_pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_chase::{chase_implication, ChaseConfig, ChaseOutcome};
    use typedtd_dependencies::{egd_from_names, td_from_names};

    /// An untyped instance meeting Theorem 1's side conditions, where the
    /// implication holds, and its typed image must also hold (checked by
    /// chase — the decidable direction of the equivalence).
    #[test]
    fn positive_instance_transfers() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // Σ: A'B' → C' plus the td σ itself; goal σ (A'B'-total).
        let td = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z3"],
        );
        let mut sigma: Vec<TdOrEgd> = abc_functionality(&u, &mut p)
            .into_iter()
            .map(TdOrEgd::Egd)
            .collect();
        sigma.push(TdOrEgd::Td(td.clone()));
        let goal = TdOrEgd::Td(td);

        // Untyped side: Σ ⊨ σ trivially (σ ∈ Σ).
        let run_untyped = chase_implication(&sigma, &goal, &mut p, &ChaseConfig::default());
        assert_eq!(run_untyped.outcome, ChaseOutcome::Implied);

        // Typed side.
        let mut inst = theorem2_instance(&u, &p, &sigma, &goal);
        assert_eq!(inst.sigma.len(), sigma.len() + 15);
        let run_typed = chase_implication(
            &inst.sigma,
            &inst.goal,
            inst.translator.pool_mut(),
            &ChaseConfig::default(),
        );
        assert_eq!(run_typed.outcome, ChaseOutcome::Implied);
    }

    /// A non-implication transfers too: the typed chase reaches a terminal
    /// counterexample (or we refute via T of an untyped counterexample —
    /// here the chase itself terminates).
    #[test]
    fn negative_instance_transfers() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // Σ: only A'B' → C'. Goal: the egd "A' → B'" — clearly not implied.
        let sigma: Vec<TdOrEgd> = abc_functionality(&u, &mut p)
            .into_iter()
            .map(TdOrEgd::Egd)
            .collect();
        let goal = TdOrEgd::Egd(egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        ));
        let run_untyped = chase_implication(&sigma, &goal, &mut p, &ChaseConfig::default());
        assert_eq!(run_untyped.outcome, ChaseOutcome::NotImplied);

        let mut inst = theorem2_instance(&u, &p, &sigma, &goal);
        let run_typed = chase_implication(
            &inst.sigma,
            &inst.goal,
            inst.translator.pool_mut(),
            &ChaseConfig::default(),
        );
        assert_eq!(
            run_typed.outcome,
            ChaseOutcome::NotImplied,
            "T(Σ) ∪ Σ₀ must not prove T(σ) when Σ ⊭ σ"
        );
    }

    /// The typed counterexample converts back through T⁻¹ (Lemma 3) to an
    /// untyped counterexample — closing the reduction circle on a concrete
    /// instance.
    #[test]
    fn counterexample_roundtrip_through_t_inverse() {
        use crate::t_inverse::t_inverse;
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = abc_functionality(&u, &mut p)
            .into_iter()
            .map(TdOrEgd::Egd)
            .collect();
        let goal_egd = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        let goal = TdOrEgd::Egd(goal_egd.clone());
        let mut inst = theorem2_instance(&u, &p, &sigma, &goal);
        let run_typed = chase_implication(
            &inst.sigma,
            &inst.goal,
            inst.translator.pool_mut(),
            &ChaseConfig::default(),
        );
        assert_eq!(run_typed.outcome, ChaseOutcome::NotImplied);
        let typed_cex = run_typed.final_relation;
        // Σ₀ holds in the counterexample (it was chased in).
        for dep in &inst.sigma {
            assert!(dep.satisfied_by(&typed_cex));
        }
        // Reconstruct an untyped relation.
        let (d0, e0, f1) = (
            inst.translator.special("d0"),
            inst.translator.special("e0"),
            inst.translator.special("f1"),
        );
        let inv = t_inverse(&typed_cex, d0, e0, f1, &u, &mut p);
        assert!(!inv.relation.is_empty());
        // It satisfies Σ and violates σ.
        for dep in &sigma {
            assert!(
                dep.satisfied_by(&inv.relation),
                "T⁻¹ image must satisfy Σ"
            );
        }
        assert!(
            !goal.satisfied_by(&inv.relation),
            "T⁻¹ image must violate σ"
        );
    }
}
