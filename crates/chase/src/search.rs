//! Finite counterexample search: the *other* semidecision procedure.
//!
//! Section 2.3 of the paper observes that `{(Σ, σ) : Σ ⊭_f σ}` is
//! recursively enumerable: enumerate finite relations and test each. This
//! module implements that enumeration two ways:
//!
//! * [`exhaustive_counterexample`] — systematic enumeration of all small
//!   relations over a bounded domain (complete up to the bound);
//! * [`random_counterexample`] — randomized model construction with chase
//!   style *repair over a finite domain*: td violations are fixed by binding
//!   existentials to random existing domain values instead of fresh nulls,
//!   egd violations by collapsing the two values. Much better scaling.
//!
//! Together with the chase (the r.e. procedure for `Σ ⊨ σ`) these bracket
//! the undecidable gap the paper establishes: for typed tds and pjds no
//! total procedure can close it.
//!
//! Like the chase, the randomized search is *resumable*: a [`SearchTask`]
//! holds the enumeration state (current domain size, remaining restarts,
//! RNG) and [`SearchTask::step`] runs at most `fuel` repair attempts before
//! yielding, so a scheduler can dovetail many searches — and dovetail each
//! against its chase — fairly. [`random_counterexample`] is the blocking
//! driver over it.

use crate::cancel::CancelToken;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{FxHashMap, Relation, Tuple, Universe, Value, ValuePool};

/// Budget for counterexample search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Largest per-attribute domain size tried.
    pub max_domain: usize,
    /// Random restarts per domain size.
    pub attempts: usize,
    /// Repair iterations per attempt.
    pub repair_steps: usize,
    /// Abort an attempt when the relation grows past this.
    pub max_rows: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            max_domain: 4,
            attempts: 64,
            repair_steps: 512,
            max_rows: 256,
            seed: 0x7d0_1982,
        }
    }
}

/// Mints a domain of `k` values per attribute (typed) or `k` shared values
/// (untyped), returning per-attribute candidate lists.
fn make_domain(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    k: usize,
) -> Vec<Vec<Value>> {
    if universe.is_typed() {
        universe
            .attrs()
            .map(|a| (0..k).map(|_| pool.fresh(Some(a), "d")).collect())
            .collect()
    } else {
        let shared: Vec<Value> = (0..k).map(|_| pool.fresh(None, "d")).collect();
        universe.attrs().map(|_| shared.clone()).collect()
    }
}

/// `true` if `rel` satisfies all of `sigma` but violates `goal`.
pub fn is_counterexample(rel: &Relation, sigma: &[TdOrEgd], goal: &TdOrEgd) -> bool {
    !rel.is_empty()
        && sigma.iter().all(|d| d.satisfied_by(rel))
        && !goal.satisfied_by(rel)
}

/// Systematically enumerates relations over a `k`-per-attribute domain with
/// at most `max_rows` rows (and at most `max_candidates` candidates in
/// total), returning the first counterexample.
///
/// Complete for the given bounds: if it returns `None`, no counterexample
/// exists within them.
pub fn exhaustive_counterexample(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    k: usize,
    max_rows: usize,
    max_candidates: usize,
) -> Option<Relation> {
    let domain = make_domain(universe, pool, k);
    let width = universe.width();
    // Materialize the tuple space.
    let mut space: Vec<Tuple> = Vec::new();
    let mut idx = vec![0usize; width];
    'outer: loop {
        space.push(Tuple::new(
            (0..width).map(|i| domain[i][idx[i]]).collect(),
        ));
        for i in (0..width).rev() {
            idx[i] += 1;
            if idx[i] < k {
                continue 'outer;
            }
            idx[i] = 0;
        }
        break;
    }

    // Subsets by increasing cardinality (small models first).
    let mut tried = 0usize;
    for size in 1..=max_rows.min(space.len()) {
        let mut combo: Vec<usize> = (0..size).collect();
        loop {
            tried += 1;
            if tried > max_candidates {
                return None;
            }
            let rel = Relation::from_rows(
                universe.clone(),
                combo.iter().map(|&i| space[i].clone()),
            );
            if is_counterexample(&rel, sigma, goal) {
                return Some(rel);
            }
            if !next_combination(&mut combo, space.len()) {
                break;
            }
        }
    }
    None
}

/// Advances `combo` to the next k-combination of `{0, …, n−1}` in
/// lexicographic order; returns `false` when exhausted.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] < n - k + i {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Randomized finite-model search with repair. Thin driver over
/// [`SearchTask`]: snapshots the pool into a task, runs it to completion,
/// and writes the evolved pool back.
pub fn random_counterexample(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    cfg: &SearchConfig,
) -> Option<Relation> {
    let empty = ValuePool::new(pool.universe().clone());
    let taken = std::mem::replace(pool, empty);
    let mut task = SearchTask::new(sigma.to_vec(), goal.clone(), universe.clone(), taken, cfg.clone());
    task.run_to_completion();
    let (found, evolved) = task.finish();
    *pool = evolved;
    found
}

/// Whether a [`SearchTask`] needs more fuel or has finished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchStatus {
    /// The fuel slice ran out; step again.
    Pending,
    /// The enumeration finished; `true` means a counterexample was found.
    Done(bool),
}

/// A resumable randomized counterexample search: the enumeration of
/// [`random_counterexample`] (domain sizes `1..=max_domain`, `attempts`
/// seeded restarts each) preemptible at attempt granularity.
///
/// The task owns its [`ValuePool`] snapshot (domains are minted from it)
/// and its RNG, so many searches can be held and interleaved. Stepping a
/// task to completion visits exactly the attempts the blocking driver
/// would, in the same order, with the same RNG stream.
pub struct SearchTask {
    sigma: Arc<[TdOrEgd]>,
    goal: TdOrEgd,
    universe: Arc<Universe>,
    pool: ValuePool,
    cfg: SearchConfig,
    rng: StdRng,
    /// Current per-attribute domain size; `0` until the first attempt.
    k: usize,
    domain: Vec<Vec<Value>>,
    attempts_left: usize,
    /// Repair attempts actually executed (the task's fuel meter).
    attempts_done: u64,
    /// `Some` once the enumeration finished.
    found: Option<Option<Relation>>,
    /// Checked at attempt granularity; tripping it finishes the task
    /// empty-handed with [`SearchTask::was_cancelled`] set.
    cancel: CancelToken,
    /// `true` if the task finished because its token was tripped (rather
    /// than exhausting the enumeration or finding a witness).
    cancelled: bool,
}

impl SearchTask {
    /// A resumable search for a finite model of `sigma` violating `goal`.
    pub fn new(
        sigma: impl Into<Arc<[TdOrEgd]>>,
        goal: TdOrEgd,
        universe: Arc<Universe>,
        pool: ValuePool,
        cfg: SearchConfig,
    ) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            sigma: sigma.into(),
            goal,
            universe,
            pool,
            cfg,
            rng,
            k: 0,
            domain: Vec::new(),
            attempts_left: 0,
            attempts_done: 0,
            found: None,
            cancel: CancelToken::new(),
            cancelled: false,
        }
    }

    /// Installs a shared cancellation token (builder style). The task
    /// checks it before every attempt.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The task's cancellation token (see [`crate::cancel::CancelToken`]).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// `true` if the task stopped because its token was tripped. Only
    /// meaningful once `step` reports [`SearchStatus::Done`].
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Runs at most `fuel` repair attempts. A finished task ignores further
    /// fuel and keeps reporting its status.
    pub fn step(&mut self, fuel: usize) -> SearchStatus {
        for _ in 0..fuel {
            if self.found.is_some() {
                break;
            }
            if self.cancel.is_cancelled() {
                self.cancelled = true;
                self.found = Some(None);
                break;
            }
            self.attempt_once();
        }
        match &self.found {
            Some(f) => SearchStatus::Done(f.is_some()),
            None => SearchStatus::Pending,
        }
    }

    /// Drives the task to completion. Always terminates: the attempt count
    /// is bounded by `max_domain * attempts`.
    pub fn run_to_completion(&mut self) -> bool {
        loop {
            if let SearchStatus::Done(found) = self.step(64) {
                return found;
            }
        }
    }

    /// Attempts executed so far count toward this total before exhaustion.
    pub fn attempts_budget(&self) -> usize {
        self.cfg.max_domain * self.cfg.attempts
    }

    /// Repair attempts executed so far (the task's fuel meter).
    pub fn attempts_done(&self) -> u64 {
        self.attempts_done
    }

    /// Extracts the result and the evolved pool.
    ///
    /// # Panics
    /// Panics if the task has not finished.
    pub fn finish(self) -> (Option<Relation>, ValuePool) {
        let found = self
            .found
            .expect("SearchTask::finish on an unfinished task; step it to Done first");
        (found, self.pool)
    }

    /// One seeded restart (minting the next domain when the previous size
    /// is out of attempts).
    fn attempt_once(&mut self) {
        if self.attempts_left == 0 {
            if self.k >= self.cfg.max_domain {
                self.found = Some(None);
                return;
            }
            self.k += 1;
            self.domain = make_domain(&self.universe, &mut self.pool, self.k);
            self.attempts_left = self.cfg.attempts;
            if self.attempts_left == 0 {
                // Degenerate config (zero attempts per size): exhaust sizes.
                return;
            }
        }
        self.attempts_left -= 1;
        self.attempts_done += 1;
        if let Some(rel) = attempt(
            &self.sigma,
            &self.goal,
            &self.universe,
            &self.domain,
            &self.cfg,
            &mut self.rng,
        ) {
            self.found = Some(Some(rel));
        }
    }
}

fn attempt(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    universe: &Arc<Universe>,
    domain: &[Vec<Value>],
    cfg: &SearchConfig,
    rng: &mut StdRng,
) -> Option<Relation> {
    let width = universe.width();
    let k = domain[0].len();
    let n_rows = rng.random_range(1..=(2 * k).max(2));
    let mut rel = Relation::new(universe.clone());
    for _ in 0..n_rows {
        rel.insert(Tuple::new(
            (0..width)
                .map(|i| domain[i][rng.random_range(0..k)])
                .collect(),
        ));
    }

    for _ in 0..cfg.repair_steps {
        if rel.len() > cfg.max_rows {
            return None;
        }
        let mut repaired = false;
        for dep in sigma {
            match dep {
                TdOrEgd::Egd(e) => {
                    if let Some(alpha) = e.violation(&rel) {
                        let a = alpha.get(e.left()).expect("bound");
                        let b = alpha.get(e.right()).expect("bound");
                        // Collapse b into a everywhere.
                        let map: FxHashMap<Value, Value> = rel
                            .val()
                            .map(|v| (v, if v == b { a } else { v }))
                            .collect();
                        rel = rel.map(&map);
                        repaired = true;
                        break;
                    }
                }
                TdOrEgd::Td(t) => {
                    if let Some(alpha) = t.violation(&rel) {
                        // Bind existentials to random domain values of the
                        // right column — the finite twist.
                        let mut ext = alpha.clone();
                        for (i, attr) in universe.attrs().enumerate() {
                            let v = t.conclusion().get(attr);
                            if ext.get(v).is_none() {
                                ext.bind(v, domain[i][rng.random_range(0..k)]);
                            }
                        }
                        rel.insert(ext.apply_tuple(t.conclusion()));
                        repaired = true;
                        break;
                    }
                }
            }
        }
        if !repaired {
            break;
        }
    }
    if is_counterexample(&rel, sigma, goal) {
        Some(rel)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::{egd_from_names, td_from_names};

    #[test]
    fn mvd_does_not_imply_fd() {
        // A' ↠ B' (as td) does not imply A' → B' (as egd): search finds a
        // finite witness.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let mvd_td = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let fd_egd = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        let sigma = vec![TdOrEgd::Td(mvd_td)];
        let goal = TdOrEgd::Egd(fd_egd);
        let found = random_counterexample(&sigma, &goal, &u, &mut p, &SearchConfig::default());
        let rel = found.expect("counterexample must exist");
        assert!(is_counterexample(&rel, &sigma, &goal));
    }

    #[test]
    fn no_counterexample_for_reflexive_goal() {
        // Goal: trivial td implied by anything; search must fail.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let trivial = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "z"]);
        let goal = TdOrEgd::Td(trivial);
        let cfg = SearchConfig {
            max_domain: 2,
            attempts: 8,
            ..Default::default()
        };
        assert!(random_counterexample(&[], &goal, &u, &mut p, &cfg).is_none());
    }

    #[test]
    fn exhaustive_finds_two_row_witness() {
        // ∅ does not imply A' → B': minimal witness has 2 rows.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let fd_egd = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        let goal = TdOrEgd::Egd(fd_egd);
        let found =
            exhaustive_counterexample(&[], &goal, &u, &mut p, 2, 3, 100_000).expect("witness");
        assert!(found.len() <= 2);
        assert!(is_counterexample(&found, &[], &goal));
    }
}
