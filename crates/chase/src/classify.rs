//! Syntactic fragment classification and sound query routing.
//!
//! The paper's main theorems say that no total algorithm decides (finite)
//! implication for typed tds — so a production service cannot hope for a
//! universally terminating path. What it *can* do is recognize, before any
//! fuel burns, the large syntactic fragments where cheaper paths are
//! guaranteed sound, and route each query accordingly:
//!
//! * **Weakly acyclic Σ** (Fagin–Kolaitis–Miller–Popa, see
//!   [`crate::termination`]): every chase sequence terminates, so the
//!   chase alone decides *both* implication problems — a terminal instance
//!   is a finite universal model, so `Implied` means `Yes/Yes` and a
//!   terminal `NotImplied` means `No/No` with the terminal instance as a
//!   finite counterexample. Dovetailing a finite-model search next to such
//!   a chase is pure overhead, and capping the chase budget only
//!   manufactures avoidable `Unknown`s. [`routed_decide_config`] therefore
//!   rewrites the configuration to a sequential, search-free chase with
//!   effectively unbounded budgets.
//! * **Linear Σ**: every dependency has a single-row hypothesis (the
//!   single-body-atom tgds of PDQ's `TGD.isLinear`). Trigger discovery
//!   never joins rows. This crate has no dedicated linear decision
//!   procedure, so the route is *observational*: the service counts it
//!   (`class_routed_linear`) but executes the default dovetail, which is
//!   always sound.
//! * **Guarded Σ**: some hypothesis row of each dependency carries all of
//!   its hypothesis values (PDQ's `TGD.isGuarded`); linear ⇒ guarded.
//!   Also observational, for the same reason.
//! * **Everything else** routes to the default dovetail
//!   ([`RouteClass::Dovetail`]) — the fair pairing of the two r.e.
//!   procedures, the only always-sound general answer.
//!
//! The precedence is `Terminating > Linear > Guarded > Dovetail`: weak
//! acyclicity is the only property that changes *execution*, so it wins
//! whenever it holds; the observational classes refine the remainder.
//! Routing never changes an answer — only how fast (and how definitely)
//! it arrives — which the differential suite `tests/classifier_parity.rs`
//! pins against the unclassified baseline.

use crate::engine::ChaseConfig;
use crate::implication::{DecideConfig, DecideMode};
use crate::termination::{is_guarded, is_linear, weakly_acyclic};
use typedtd_dependencies::TdOrEgd;

/// Which routing fragment a Σ falls into, in precedence order. The names
/// are stable: they ride `class_routed_*` stats tokens and metrics labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteClass {
    /// Weakly acyclic: the chase terminates, deciding both problems.
    Terminating,
    /// Every dependency has a single-row hypothesis (and Σ is not
    /// detectably terminating). Observational.
    Linear,
    /// Every dependency is guarded but not all linear (and Σ is not
    /// detectably terminating). Observational.
    Guarded,
    /// No recognized fragment: the general dovetail path.
    Dovetail,
}

impl RouteClass {
    /// Every route, in precedence order (index order = [`Self::index`]).
    pub const ALL: [RouteClass; 4] = [
        RouteClass::Terminating,
        RouteClass::Linear,
        RouteClass::Guarded,
        RouteClass::Dovetail,
    ];

    /// Number of routes (array-size companion of [`Self::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index into `[_; RouteClass::COUNT]` stats arrays.
    pub fn index(self) -> usize {
        match self {
            RouteClass::Terminating => 0,
            RouteClass::Linear => 1,
            RouteClass::Guarded => 2,
            RouteClass::Dovetail => 3,
        }
    }

    /// Stable lowercase name (used as a stats token and metrics label).
    pub fn as_str(self) -> &'static str {
        match self {
            RouteClass::Terminating => "terminating",
            RouteClass::Linear => "linear",
            RouteClass::Guarded => "guarded",
            RouteClass::Dovetail => "dovetail",
        }
    }
}

/// The syntactic properties of one Σ, as one classification pass sees
/// them. Produced by [`classify`]; collapse to a route with
/// [`FragmentReport::route`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FragmentReport {
    /// No cycle of the position dependency graph crosses a special edge:
    /// every chase over this Σ terminates.
    pub weakly_acyclic: bool,
    /// Every dependency has a single-row hypothesis.
    pub linear: bool,
    /// Every dependency has a guard row covering its hypothesis values.
    pub guarded: bool,
}

impl FragmentReport {
    /// The cheapest sound route for this Σ, by precedence
    /// `Terminating > Linear > Guarded > Dovetail`.
    pub fn route(&self) -> RouteClass {
        if self.weakly_acyclic {
            RouteClass::Terminating
        } else if self.linear {
            RouteClass::Linear
        } else if self.guarded {
            RouteClass::Guarded
        } else {
            RouteClass::Dovetail
        }
    }
}

/// Classifies `Σ` in one syntactic pass (no chasing, no search): weak
/// acyclicity over the position dependency graph plus per-dependency
/// linearity/guardedness. Cost is polynomial in `|Σ|` and the universe
/// width — negligible next to a single chase round.
pub fn classify(sigma: &[TdOrEgd]) -> FragmentReport {
    FragmentReport {
        weakly_acyclic: weakly_acyclic(sigma),
        linear: sigma.iter().all(is_linear),
        guarded: sigma.iter().all(is_guarded),
    }
}

/// A chase budget that will never expire before a terminating chase
/// reaches its verdict, keeping `base`'s strategy knobs (variant,
/// parallelism, semi-naive, shard count).
pub fn terminating_chase_config(base: &ChaseConfig) -> ChaseConfig {
    ChaseConfig {
        max_rounds: usize::MAX,
        max_rows: usize::MAX,
        max_steps: usize::MAX,
        ..base.clone()
    }
}

/// Rewrites `base` into the configuration `route` justifies.
///
/// Only [`RouteClass::Terminating`] changes anything: the chase is then a
/// total decision procedure for both problems, so the mode drops to
/// [`DecideMode::Sequential`], the finite-model search is skipped (a
/// terminal `NotImplied` already carries a finite counterexample), and the
/// chase budgets open up ([`terminating_chase_config`]). The observational
/// routes return `base` unchanged — there is no cheaper procedure that is
/// also sound for them, and misrouting must never alter an answer.
pub fn routed_decide_config(base: &DecideConfig, route: RouteClass) -> DecideConfig {
    match route {
        RouteClass::Terminating => DecideConfig {
            chase: terminating_chase_config(&base.chase),
            search: base.search.clone(),
            skip_search: true,
            mode: DecideMode::Sequential,
        },
        RouteClass::Linear | RouteClass::Guarded | RouteClass::Dovetail => base.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::{td_from_names, Fd, Mvd};
    use typedtd_relational::{Universe, ValuePool};

    #[test]
    fn route_precedence_and_names() {
        assert_eq!(RouteClass::ALL.len(), RouteClass::COUNT);
        for (i, r) in RouteClass::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(RouteClass::Terminating.as_str(), "terminating");
        assert_eq!(RouteClass::Dovetail.as_str(), "dovetail");
    }

    #[test]
    fn mvd_and_fd_mixes_route_terminating() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut pool = ValuePool::new(u.clone());
        let mut sigma: Vec<TdOrEgd> = ["A ->> B"]
            .iter()
            .map(|s| TdOrEgd::Td(Mvd::parse(&u, s).unwrap().to_pjd().to_td(&u, &mut pool)))
            .collect();
        sigma.extend(
            Fd::parse(&u, "A -> C")
                .unwrap()
                .to_egds(&u, &mut pool)
                .into_iter()
                .map(TdOrEgd::Egd),
        );
        let report = classify(&sigma);
        assert!(report.weakly_acyclic);
        assert_eq!(report.route(), RouteClass::Terminating);
    }

    #[test]
    fn self_feeding_linear_td_routes_linear() {
        // Single-row hypothesis, but the existential feeds back: not
        // weakly acyclic, so the linear (observational) route wins.
        let untyped = Universe::untyped_abc();
        let mut pool = ValuePool::new(untyped.clone());
        let td = td_from_names(&untyped, &mut pool, &[&["x", "y", "z"]], &["y", "q", "z"]);
        let sigma = vec![TdOrEgd::Td(td)];
        let report = classify(&sigma);
        assert!(!report.weakly_acyclic);
        assert!(report.linear && report.guarded);
        assert_eq!(report.route(), RouteClass::Linear);
    }

    #[test]
    fn joins_with_cycles_route_dovetail() {
        let untyped = Universe::untyped_abc();
        let mut pool = ValuePool::new(untyped.clone());
        let td = td_from_names(
            &untyped,
            &mut pool,
            &[&["x", "y", "z"], &["z", "v", "w"]],
            &["y", "q", "x"],
        );
        let sigma = vec![TdOrEgd::Td(td)];
        let report = classify(&sigma);
        if !report.weakly_acyclic {
            assert_eq!(report.route(), RouteClass::Dovetail);
        }
    }

    #[test]
    fn terminating_route_rewrites_config_others_do_not() {
        let base = DecideConfig::default();
        let routed = routed_decide_config(&base, RouteClass::Terminating);
        assert_eq!(routed.mode, DecideMode::Sequential);
        assert!(routed.skip_search);
        assert_eq!(routed.chase.max_rounds, usize::MAX);
        assert_eq!(routed.chase.variant, base.chase.variant);
        for r in [RouteClass::Linear, RouteClass::Guarded, RouteClass::Dovetail] {
            let same = routed_decide_config(&base, r);
            assert_eq!(same.chase.max_rounds, base.chase.max_rounds);
            assert_eq!(same.skip_search, base.skip_search);
        }
    }
}
