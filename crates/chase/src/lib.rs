//! The chase: a fair semidecision procedure for (finite) implication of
//! template and equality-generating dependencies, plus its dual — finite
//! counterexample search — and the combined three-valued decision API.
//!
//! This crate is the computational engine behind the reproduction of
//! Vardi's PODS 1982 / JCSS 1984 paper. The paper's main theorems say that
//! no total algorithm exists for typed td (or pjd) implication; what *does*
//! exist, and what this crate provides, is:
//!
//! * [`chase_implication`] / [`saturate`] — the chase, in standard,
//!   oblivious, and core variants, with machine-checkable
//!   [`trace::ChaseTrace`]s (the paper's own Lemma 10 is a chase
//!   derivation). Trigger discovery is *semi-naive*: per-row version
//!   stamps restrict each round's embedding search to the delta (see
//!   [`engine`] for the architecture and the naive reference mode);
//! * [`search::random_counterexample`] / [`search::exhaustive_counterexample`]
//!   — enumeration of finite models, the r.e. procedure for `Σ ⊭_f σ`;
//! * [`decide`] / [`decide_dependencies`] — both procedures dovetailed into
//!   a three-valued [`Answer`] (`Yes` / `No` / `Unknown`);
//! * [`ChaseTask`] / [`SearchTask`] / [`DecideTask`] — the same three
//!   procedures as *resumable* tasks (`step(fuel) → Pending | Done`),
//!   preemptible at round/attempt granularity so a scheduler can dovetail
//!   many queries fairly (the `typedtd-service` crate builds on these).
//!   A [`DecideTask`] can also dovetail *within* itself
//!   ([`DecideMode::Dovetail`]: chase rounds alternate with search
//!   attempts), and every task carries a [`CancelToken`] that stops it
//!   mid-slice instead of letting it burn its remaining budget;
//! * [`core_retract`] / [`minimize_td`] — tableau cores (reference [19]).

#![warn(missing_docs)]

pub mod cancel;
pub mod classify;
pub mod core_retract;
pub mod engine;
pub mod implication;
pub mod instance;
pub mod search;
pub mod termination;
pub mod trace;
pub mod unionfind;

pub use cancel::CancelToken;
pub use classify::{
    classify, routed_decide_config, terminating_chase_config, FragmentReport, RouteClass,
};
pub use core_retract::{core_retract, minimize_td};
pub use engine::{
    chase_implication, saturate, ChaseConfig, ChaseOutcome, ChaseRun, ChaseTask, ChaseVariant,
    Goal, StepStatus,
};
pub use implication::{
    decide, decide_dependencies, Answer, DecideConfig, DecideMode, DecideStatus, DecideTask,
    Decision, MultiDecision, ProgressSnapshot, TaskPhase,
};
pub use instance::ChaseInstance;
pub use termination::{dependency_graph, is_guarded, is_linear, weakly_acyclic, Edge};
pub use search::{
    exhaustive_counterexample, is_counterexample, random_counterexample, SearchConfig,
    SearchStatus, SearchTask,
};
pub use trace::{ChaseStep, ChaseTrace, StepKind};
pub use unionfind::UnionFind;
