//! Static chase-termination analysis: weak acyclicity.
//!
//! The paper's Theorems 2 and 6 say no procedure decides td implication in
//! general; the classical *weak acyclicity* condition (Fagin–Kolaitis–
//! Miller–Popa) identifies a large syntactic class where the chase is
//! guaranteed to terminate, making implication decidable. The dependency
//! graph has one node per attribute position:
//!
//! * a **regular** edge `p → q` whenever a hypothesis value at position `p`
//!   reappears in the conclusion at position `q`;
//! * a **special** edge `p → q` whenever a hypothesis value at position `p`
//!   reappears anywhere in the conclusion *and* the conclusion has an
//!   existential (fresh) value at position `q`.
//!
//! `Σ` is weakly acyclic iff no cycle passes through a special edge; then
//! every chase sequence terminates (egds cannot break this). The engines in
//! this crate do not require the check — budgets handle divergence — but
//! [`weakly_acyclic`] lets callers know in advance that
//! [`crate::ChaseOutcome::Exhausted`] is impossible.

use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{AttrId, FxHashSet};

/// An edge of the position dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source position.
    pub from: AttrId,
    /// Target position.
    pub to: AttrId,
    /// `true` for special (existential-creating) edges.
    pub special: bool,
}

/// Builds the position dependency graph of `Σ` (egds contribute nothing).
pub fn dependency_graph(sigma: &[TdOrEgd]) -> Vec<Edge> {
    let mut edges: FxHashSet<Edge> = FxHashSet::default();
    for dep in sigma {
        let TdOrEgd::Td(td) = dep else { continue };
        let universe = td.universe();
        let hyp_vals = td.hypothesis_values();
        let w = td.conclusion();
        // Existential conclusion positions.
        let existential: Vec<AttrId> = universe
            .attrs()
            .filter(|&q| !hyp_vals.contains(&w.get(q)))
            .collect();
        for t in td.hypothesis() {
            for p in universe.attrs() {
                let x = t.get(p);
                // x reappears in the conclusion?
                let head_positions: Vec<AttrId> = universe
                    .attrs()
                    .filter(|&q| w.get(q) == x)
                    .collect();
                if head_positions.is_empty() {
                    continue;
                }
                for &q in &head_positions {
                    edges.insert(Edge {
                        from: p,
                        to: q,
                        special: false,
                    });
                }
                for &q in &existential {
                    edges.insert(Edge {
                        from: p,
                        to: q,
                        special: true,
                    });
                }
            }
        }
    }
    edges.into_iter().collect()
}

/// `true` if `Σ` is weakly acyclic: no cycle of the position graph goes
/// through a special edge. Every chase over such a `Σ` terminates.
pub fn weakly_acyclic(sigma: &[TdOrEgd]) -> bool {
    let edges = dependency_graph(sigma);
    // For each special edge p →* q: is p reachable back from q?
    for e in edges.iter().filter(|e| e.special) {
        if reachable(&edges, e.to, e.from) {
            return false;
        }
    }
    true
}

/// `true` if `dep` is *linear*: its hypothesis is a single row (the
/// single-body-atom tgds of the PDQ/guarded literature). A linear td's
/// chase step never joins rows, so linear Σ admit much cheaper trigger
/// discovery; every linear dependency is trivially guarded.
pub fn is_linear(dep: &TdOrEgd) -> bool {
    match dep {
        TdOrEgd::Td(td) => td.hypothesis().len() == 1,
        TdOrEgd::Egd(e) => e.hypothesis().len() == 1,
    }
}

/// `true` if `dep` is *guarded*: some hypothesis row (the guard) contains
/// every value occurring in the hypothesis. Guarded tgds are the classical
/// decidable fragment; in this single-relation setting a guard must carry
/// all the variables the other hypothesis rows mention. Linear implies
/// guarded.
pub fn is_guarded(dep: &TdOrEgd) -> bool {
    let hyp = match dep {
        TdOrEgd::Td(td) => td.hypothesis(),
        TdOrEgd::Egd(e) => e.hypothesis(),
    };
    let mut vals: FxHashSet<typedtd_relational::Value> = FxHashSet::default();
    for row in hyp {
        vals.extend(row.values().iter().copied());
    }
    hyp.iter().any(|guard| {
        let gv: FxHashSet<_> = guard.values().iter().copied().collect();
        vals.iter().all(|v| gv.contains(v))
    })
}

fn reachable(edges: &[Edge], from: AttrId, to: AttrId) -> bool {
    if from == to {
        return true;
    }
    let mut seen: FxHashSet<AttrId> = FxHashSet::default();
    let mut stack = vec![from];
    seen.insert(from);
    while let Some(cur) = stack.pop() {
        for e in edges.iter().filter(|e| e.from == cur) {
            if e.to == to {
                return true;
            }
            if seen.insert(e.to) {
                stack.push(e.to);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use typedtd_dependencies::{td_from_names, Fd, Mvd};
    use typedtd_relational::{Universe, ValuePool};

    fn u3() -> Arc<Universe> {
        Universe::typed(vec!["A", "B", "C"])
    }

    #[test]
    fn total_tds_are_weakly_acyclic() {
        // Total tds (mvd encodings) have no existential positions at all.
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = ["A ->> B", "B ->> C"]
            .iter()
            .map(|s| TdOrEgd::Td(Mvd::parse(&u, s).unwrap().to_pjd().to_td(&u, &mut pool)))
            .collect();
        assert!(weakly_acyclic(&sigma));
        assert!(dependency_graph(&sigma).iter().all(|e| !e.special));
    }

    #[test]
    fn egds_contribute_nothing() {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = Fd::parse(&u, "A -> BC").unwrap()
            .to_egds(&u, &mut pool)
            .into_iter()
            .map(TdOrEgd::Egd)
            .collect();
        assert!(weakly_acyclic(&sigma));
        assert!(dependency_graph(&sigma).is_empty());
    }

    #[test]
    fn self_feeding_td_is_not_weakly_acyclic() {
        // (x, y, z) ⊢ (x, y', z): fresh B-value each firing… but the
        // conclusion copies x and z, so the B existential is fed by A and C
        // positions; a cycle needs B to feed back. Make it feed back:
        // (x, y, z) ⊢ (y, y', z) — B flows to A and B is re-created.
        let untyped = Universe::untyped_abc();
        let mut pool = ValuePool::new(untyped.clone());
        let td = td_from_names(&untyped, &mut pool, &[&["x", "y", "z"]], &["y", "q", "z"]);
        let sigma = vec![TdOrEgd::Td(td)];
        // Regular edge B→A; special edges A→B, B→B, C→B. Cycle A→B→A
        // through the special edge A→B (and B→B is itself a special loop).
        assert!(!weakly_acyclic(&sigma));
    }

    #[test]
    fn semigroup_totality_is_not_weakly_acyclic() {
        // The Theorem 1 theory diverges by design; the analyzer agrees.
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let (sigma, _) = typedtd_semigroup_theory(&u, &mut pool);
        assert!(!weakly_acyclic(&sigma));
    }

    // Local copy to avoid a dependency cycle with the semigroup crate:
    // the nine totality tds are what matters.
    fn typedtd_semigroup_theory(
        u: &Arc<Universe>,
        pool: &mut ValuePool,
    ) -> (Vec<TdOrEgd>, ()) {
        let mut sigma = Vec::new();
        for i in 0..3u16 {
            for j in 0..3u16 {
                let u1: Vec<_> = (0..3).map(|_| pool.fresh(None, "u")).collect();
                let u2: Vec<_> = (0..3).map(|_| pool.fresh(None, "v")).collect();
                let prod = pool.fresh(None, "p");
                let w = typedtd_relational::Tuple::new(vec![
                    u1[i as usize],
                    u2[j as usize],
                    prod,
                ]);
                sigma.push(TdOrEgd::Td(typedtd_dependencies::Td::new(
                    u.clone(),
                    w,
                    vec![
                        typedtd_relational::Tuple::new(u1),
                        typedtd_relational::Tuple::new(u2),
                    ],
                )));
            }
        }
        (sigma, ())
    }

    #[test]
    fn single_row_hypotheses_are_linear_and_guarded() {
        let untyped = Universe::untyped_abc();
        let mut pool = ValuePool::new(untyped.clone());
        let td = td_from_names(&untyped, &mut pool, &[&["x", "y", "z"]], &["x", "q", "z"]);
        let dep = TdOrEgd::Td(td);
        assert!(is_linear(&dep));
        assert!(is_guarded(&dep));
    }

    #[test]
    fn joins_are_not_linear_but_may_be_guarded() {
        let untyped = Universe::untyped_abc();
        let mut pool = ValuePool::new(untyped.clone());
        // Two-row hypothesis where one row repeats every value of the
        // other: guarded but not linear.
        let guarded = td_from_names(
            &untyped,
            &mut pool,
            &[&["x", "y", "z"], &["x", "y", "z"]],
            &["x", "y", "q"],
        );
        let dep = TdOrEgd::Td(guarded);
        assert!(!is_linear(&dep));
        assert!(is_guarded(&dep));
        // A genuine join — no row sees the other's private values.
        let join = td_from_names(
            &untyped,
            &mut pool,
            &[&["x", "y", "z"], &["z", "v", "w"]],
            &["x", "v", "w"],
        );
        let dep = TdOrEgd::Td(join);
        assert!(!is_linear(&dep));
        assert!(!is_guarded(&dep));
    }

    #[test]
    fn fd_egds_are_not_linear_but_detectors_accept_egds() {
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let egds: Vec<TdOrEgd> = Fd::parse(&u, "A -> B")
            .unwrap()
            .to_egds(&u, &mut pool)
            .into_iter()
            .map(TdOrEgd::Egd)
            .collect();
        for e in &egds {
            // An fd egd has a two-row hypothesis sharing only the lhs.
            assert!(!is_linear(e));
            assert!(!is_guarded(e));
        }
    }

    #[test]
    fn weakly_acyclic_chase_never_exhausts() {
        // Empirical tie-in: on a weakly acyclic Σ the chase reaches a
        // verdict, never the budget.
        use crate::{chase_implication, ChaseConfig, ChaseOutcome};
        let u = u3();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = ["A ->> B"]
            .iter()
            .map(|s| TdOrEgd::Td(Mvd::parse(&u, s).unwrap().to_pjd().to_td(&u, &mut pool)))
            .collect();
        assert!(weakly_acyclic(&sigma));
        let goal = TdOrEgd::Td(Mvd::parse(&u, "B ->> A").unwrap().to_pjd().to_td(&u, &mut pool));
        let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
        assert_ne!(run.outcome, ChaseOutcome::Exhausted);
    }
}
