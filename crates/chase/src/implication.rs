//! High-level decision API pairing the two semidecision procedures.
//!
//! The paper (Section 2.3) frames the landscape exactly as this module
//! implements it:
//!
//! * `{(Σ, σ) : Σ ⊨ σ}` is r.e. — enumerated here by the chase;
//! * `{(Σ, σ) : Σ ⊭_f σ}` is r.e. — enumerated here by finite model search;
//! * a chase that *terminates* answers both problems at once (its terminal
//!   instance is a finite universal model);
//! * no algorithm closes the remaining gap for typed tds or pjds — that is
//!   the paper's main theorem — so [`decide`] can and does return
//!   [`Answer::Unknown`] when budgets expire.
//!
//! Both semidecision procedures are resumable, so the pairing is too: a
//! [`DecideTask`] first steps a [`ChaseTask`] and, if the chase exhausts
//! its budget without a certificate, hands the evolved pool to a
//! [`SearchTask`] — the same two-phase dovetailing [`decide`] performs
//! blockingly, preemptible at round/attempt granularity. This is the unit
//! the `typedtd-service` scheduler multiplexes.

use crate::engine::{ChaseConfig, ChaseOutcome, ChaseRun, ChaseTask, StepStatus};
use crate::search::{SearchConfig, SearchStatus, SearchTask};
use std::sync::Arc;
use typedtd_dependencies::{Dependency, TdOrEgd};
use typedtd_relational::{Relation, Universe, ValuePool};

/// A three-valued answer: the problems are undecidable, so `Unknown` is an
/// honest possible outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// Implication holds (certificate: a chase derivation).
    Yes,
    /// Implication fails (certificate: a finite counterexample relation).
    No,
    /// Budget exhausted with no certificate either way.
    Unknown,
}

/// Knobs for [`decide`].
#[derive(Clone, Debug, Default)]
pub struct DecideConfig {
    /// Chase budget and variant.
    pub chase: ChaseConfig,
    /// Counterexample search budget.
    pub search: SearchConfig,
    /// Skip the model search (pure chase mode).
    pub skip_search: bool,
}

/// A full verdict for one implication instance `Σ ⊨(f) σ`.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// The chase run (trace is a proof when `implication` is `Yes`).
    pub chase: ChaseRun,
    /// A finite counterexample when either answer is `No`.
    pub counterexample: Option<Relation>,
}

/// Decides `Σ ⊨ σ` and `Σ ⊨_f σ` as far as the budgets allow. Thin driver
/// over [`DecideTask`]: snapshots the pool into a task, runs it to
/// completion, and writes the evolved pool back.
pub fn decide(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut ValuePool,
    cfg: &DecideConfig,
) -> Decision {
    let empty = ValuePool::new(pool.universe().clone());
    let taken = std::mem::replace(pool, empty);
    let mut task = DecideTask::new(sigma.to_vec(), goal.clone(), taken, cfg.clone());
    task.run_to_completion();
    let (decision, evolved) = task.finish();
    *pool = evolved;
    decision
}

/// Whether a [`DecideTask`] needs more fuel or has finished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecideStatus {
    /// The fuel slice ran out; step again.
    Pending,
    /// The decision is in; the payload is the unrestricted-implication
    /// [`Answer`] (the full [`Decision`] comes from [`DecideTask::finish`]).
    Done(Answer),
}

/// Progress phase of a [`DecideTask`].
enum DecidePhase {
    /// Running the chase (the r.e. procedure for `Σ ⊨ σ`).
    Chasing(Box<ChaseTask>),
    /// Chase budget exhausted; running finite-model search (the r.e.
    /// procedure for `Σ ⊭_f σ`).
    Searching {
        chase_run: Box<ChaseRun>,
        task: Box<SearchTask>,
    },
    /// Finished.
    Done(Box<Decision>, ValuePool),
    /// Transient state during a phase transition; never observable.
    Poisoned,
}

/// A resumable [`decide`]: one implication query `Σ ⊨(f) σ` as a
/// preemptible task.
///
/// The task steps its chase until a certificate appears or the chase budget
/// runs out, then (unless [`DecideConfig::skip_search`]) steps the
/// counterexample search over the same evolved pool — exactly the blocking
/// driver's two phases, preemptible at round/attempt granularity. One fuel
/// unit is one chase round or one search attempt, so interleaving many
/// tasks with small slices is fair in the dovetailing sense: a terminating
/// query finishes within a bounded number of global slices no matter how
/// many divergent queries run beside it.
pub struct DecideTask {
    /// Shared with the chase (and, on exhaustion, the search) task: the
    /// `Arc` makes the hand-offs allocation-free.
    sigma: Arc<[TdOrEgd]>,
    goal: TdOrEgd,
    cfg: DecideConfig,
    phase: DecidePhase,
    fuel_spent: u64,
}

impl DecideTask {
    /// A resumable decision task for `Σ ⊨(f) σ`.
    ///
    /// `pool` must be (a snapshot of) the pool the dependencies' values came
    /// from; it is returned, evolved, by [`DecideTask::finish`].
    pub fn new(
        sigma: impl Into<Arc<[TdOrEgd]>>,
        goal: TdOrEgd,
        pool: ValuePool,
        cfg: DecideConfig,
    ) -> Self {
        let sigma: Arc<[TdOrEgd]> = sigma.into();
        let chase = ChaseTask::implication(sigma.clone(), goal.clone(), pool, cfg.chase.clone());
        Self {
            sigma,
            goal,
            cfg,
            phase: DecidePhase::Chasing(Box::new(chase)),
            fuel_spent: 0,
        }
    }

    /// Runs at most `fuel` units (chase rounds + search attempts). A
    /// finished task ignores further fuel and keeps reporting its answer.
    pub fn step(&mut self, fuel: usize) -> DecideStatus {
        let mut left = fuel;
        loop {
            match &mut self.phase {
                DecidePhase::Poisoned => unreachable!("DecideTask phase poisoned"),
                DecidePhase::Done(d, _) => return DecideStatus::Done(d.implication),
                DecidePhase::Chasing(task) => {
                    if left == 0 {
                        return DecideStatus::Pending;
                    }
                    let before = task.rounds();
                    let status = task.step(left);
                    let used = (task.rounds() - before).max(1);
                    left = left.saturating_sub(used);
                    self.fuel_spent += used as u64;
                    match status {
                        StepStatus::Pending => return DecideStatus::Pending,
                        StepStatus::Done(outcome) => self.leave_chase(outcome),
                    }
                }
                DecidePhase::Searching { task, .. } => {
                    if left == 0 {
                        return DecideStatus::Pending;
                    }
                    let before = task.attempts_done();
                    let status = task.step(left);
                    let used = ((task.attempts_done() - before) as usize).max(1);
                    left = left.saturating_sub(used);
                    self.fuel_spent += used as u64;
                    if let SearchStatus::Done(_) = status {
                        self.leave_search();
                    } else {
                        return DecideStatus::Pending;
                    }
                }
            }
        }
    }

    /// Drives the task to completion (the blocking mode). Always
    /// terminates: the chase is bounded by its round budget and the search
    /// by its attempt budget.
    pub fn run_to_completion(&mut self) -> Answer {
        loop {
            if let DecideStatus::Done(a) = self.step(256) {
                return a;
            }
        }
    }

    /// The finished decision, if any (borrowing poll).
    pub fn decision(&self) -> Option<&Decision> {
        match &self.phase {
            DecidePhase::Done(d, _) => Some(d),
            _ => None,
        }
    }

    /// Fuel units (chase rounds + search attempts) consumed so far.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent
    }

    /// Extracts the decision and the evolved pool.
    ///
    /// # Panics
    /// Panics if the task has not finished.
    pub fn finish(self) -> (Decision, ValuePool) {
        match self.phase {
            DecidePhase::Done(d, pool) => (*d, pool),
            _ => panic!("DecideTask::finish on an unfinished task; step it to Done first"),
        }
    }

    /// Transitions out of the chase phase on its outcome.
    fn leave_chase(&mut self, outcome: ChaseOutcome) {
        let DecidePhase::Chasing(task) =
            std::mem::replace(&mut self.phase, DecidePhase::Poisoned)
        else {
            unreachable!("leave_chase outside the chase phase");
        };
        let (run, pool) = task.finish();
        self.phase = match outcome {
            ChaseOutcome::Implied => DecidePhase::Done(
                Box::new(Decision {
                    implication: Answer::Yes,
                    // Implication entails finite implication (every finite
                    // relation is a relation).
                    finite_implication: Answer::Yes,
                    chase: run,
                    counterexample: None,
                }),
                pool,
            ),
            ChaseOutcome::NotImplied => {
                // The terminal chase instance is a finite model of Σ
                // violating σ, so both problems are answered negatively.
                let cex = run.final_relation.clone();
                DecidePhase::Done(
                    Box::new(Decision {
                        implication: Answer::No,
                        finite_implication: Answer::No,
                        chase: run,
                        counterexample: Some(cex),
                    }),
                    pool,
                )
            }
            ChaseOutcome::Exhausted if self.cfg.skip_search => DecidePhase::Done(
                Box::new(Decision {
                    implication: Answer::Unknown,
                    finite_implication: Answer::Unknown,
                    chase: run,
                    counterexample: None,
                }),
                pool,
            ),
            ChaseOutcome::Exhausted => {
                let universe: Arc<Universe> = match &self.goal {
                    TdOrEgd::Td(t) => t.universe().clone(),
                    TdOrEgd::Egd(e) => e.universe().clone(),
                };
                DecidePhase::Searching {
                    chase_run: Box::new(run),
                    task: Box::new(SearchTask::new(
                        self.sigma.clone(),
                        self.goal.clone(),
                        universe,
                        pool,
                        self.cfg.search.clone(),
                    )),
                }
            }
        };
    }

    /// Transitions out of the search phase once it finishes.
    fn leave_search(&mut self) {
        let DecidePhase::Searching { chase_run, task } =
            std::mem::replace(&mut self.phase, DecidePhase::Poisoned)
        else {
            unreachable!("leave_search outside the search phase");
        };
        let (found, pool) = task.finish();
        let decision = match found {
            Some(rel) => Decision {
                // A finite model of Σ violating σ refutes both notions.
                implication: Answer::No,
                finite_implication: Answer::No,
                chase: *chase_run,
                counterexample: Some(rel),
            },
            None => Decision {
                implication: Answer::Unknown,
                finite_implication: Answer::Unknown,
                chase: *chase_run,
                counterexample: None,
            },
        };
        self.phase = DecidePhase::Done(Box::new(decision), pool);
    }
}

/// Aggregated verdict when the goal normalizes to several td/egd parts
/// (e.g. an fd goal becomes one egd per dependent attribute).
#[derive(Clone, Debug)]
pub struct MultiDecision {
    /// Conjunction over parts.
    pub implication: Answer,
    /// Conjunction over parts.
    pub finite_implication: Answer,
    /// First counterexample found, if any part failed.
    pub counterexample: Option<Relation>,
    /// Per-part decisions, in normalization order.
    pub parts: Vec<Decision>,
}

fn conjoin(parts: impl Iterator<Item = Answer>) -> Answer {
    let mut acc = Answer::Yes;
    for a in parts {
        match a {
            Answer::No => return Answer::No,
            Answer::Unknown => acc = Answer::Unknown,
            Answer::Yes => {}
        }
    }
    acc
}

/// Decides implication between [`Dependency`] values of any class by
/// normalizing both sides into the td/egd fragment.
pub fn decide_dependencies(
    sigma: &[Dependency],
    goal: &Dependency,
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    cfg: &DecideConfig,
) -> MultiDecision {
    let sigma_normal: Vec<TdOrEgd> = sigma
        .iter()
        .flat_map(|d| d.normalize(universe, pool))
        .collect();
    let goal_parts = goal.normalize(universe, pool);
    if goal_parts.is_empty() {
        // A goal that normalizes to nothing (e.g. an fd with Y ⊆ X) is
        // vacuously implied.
        return MultiDecision {
            implication: Answer::Yes,
            finite_implication: Answer::Yes,
            counterexample: None,
            parts: Vec::new(),
        };
    }
    let parts: Vec<Decision> = goal_parts
        .iter()
        .map(|g| decide(&sigma_normal, g, pool, cfg))
        .collect();
    MultiDecision {
        implication: conjoin(parts.iter().map(|p| p.implication)),
        finite_implication: conjoin(parts.iter().map(|p| p.finite_implication)),
        counterexample: parts.iter().find_map(|p| p.counterexample.clone()),
        parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::{egd_from_names, td_from_names, Fd, Mvd, Pjd};
    use typedtd_relational::Universe;

    #[test]
    fn fd_transitivity_via_chase() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![
            Dependency::from(Fd::parse(&u, "A -> B")),
            Dependency::from(Fd::parse(&u, "B -> C")),
        ];
        let goal = Dependency::from(Fd::parse(&u, "A -> C"));
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
        assert_eq!(d.finite_implication, Answer::Yes);
    }

    #[test]
    fn fd_non_implication_has_counterexample() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![Dependency::from(Fd::parse(&u, "A -> B"))];
        let goal = Dependency::from(Fd::parse(&u, "B -> A"));
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::No);
        assert_eq!(d.finite_implication, Answer::No);
        let cex = d.counterexample.expect("counterexample");
        assert!(sigma[0].satisfied_by(&cex) && !goal.satisfied_by(&cex));
    }

    #[test]
    fn mvd_complementation_via_chase() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![Dependency::from(Mvd::parse(&u, "A ->> B"))];
        let goal = Dependency::from(Mvd::parse(&u, "A ->> C"));
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
    }

    #[test]
    fn fd_implies_mvd_but_not_conversely() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let fd: Dependency = Fd::parse(&u, "A -> B").into();
        let mvd: Dependency = Mvd::parse(&u, "A ->> B").into();
        let cfg = DecideConfig::default();
        let d1 = decide_dependencies(std::slice::from_ref(&fd), &mvd, &u, &mut p, &cfg);
        assert_eq!(d1.implication, Answer::Yes, "X → Y ⊨ X ↠ Y");
        let d2 = decide_dependencies(std::slice::from_ref(&mvd), &fd, &u, &mut p, &cfg);
        assert_eq!(d2.implication, Answer::No, "X ↠ Y ⊭ X → Y");
        assert!(d2.counterexample.is_some());
    }

    #[test]
    fn jd_implied_by_its_mvd() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let mvd: Dependency = Mvd::parse(&u, "A ->> B").into();
        let jd: Dependency = Pjd::parse(&u, "*[AB, AC]").into();
        let d = decide_dependencies(std::slice::from_ref(&mvd), &jd, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
        let d2 = decide_dependencies(std::slice::from_ref(&jd), &mvd, &u, &mut p, &DecideConfig::default());
        assert_eq!(d2.implication, Answer::Yes);
    }

    #[test]
    fn td_goal_with_egd_support() {
        // Σ = {A' → B' (egd), td: (x,y,z) ⊢ (x,y,z')} over untyped ABC —
        // goal follows because the td is its own goal.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "z2"]);
        let egd = egd_from_names(
            &u,
            &mut p,
            &[&["q", "r1", "s1"], &["q", "r2", "s2"]],
            ("B'", "r1"),
            ("B'", "r2"),
        );
        let sigma = vec![TdOrEgd::Td(td.clone()), TdOrEgd::Egd(egd)];
        let goal = TdOrEgd::Td(td);
        let d = decide(&sigma, &goal, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
    }
}
