//! High-level decision API pairing the two semidecision procedures.
//!
//! The paper (Section 2.3) frames the landscape exactly as this module
//! implements it:
//!
//! * `{(Σ, σ) : Σ ⊨ σ}` is r.e. — enumerated here by the chase;
//! * `{(Σ, σ) : Σ ⊭_f σ}` is r.e. — enumerated here by finite model search;
//! * a chase that *terminates* answers both problems at once (its terminal
//!   instance is a finite universal model);
//! * no algorithm closes the remaining gap for typed tds or pjds — that is
//!   the paper's main theorem — so [`decide`] can and does return
//!   [`Answer::Unknown`] when budgets expire.

use crate::engine::{chase_implication, ChaseConfig, ChaseOutcome, ChaseRun};
use crate::search::{random_counterexample, SearchConfig};
use std::sync::Arc;
use typedtd_dependencies::{Dependency, TdOrEgd};
use typedtd_relational::{Relation, Universe, ValuePool};

/// A three-valued answer: the problems are undecidable, so `Unknown` is an
/// honest possible outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// Implication holds (certificate: a chase derivation).
    Yes,
    /// Implication fails (certificate: a finite counterexample relation).
    No,
    /// Budget exhausted with no certificate either way.
    Unknown,
}

/// Knobs for [`decide`].
#[derive(Clone, Debug, Default)]
pub struct DecideConfig {
    /// Chase budget and variant.
    pub chase: ChaseConfig,
    /// Counterexample search budget.
    pub search: SearchConfig,
    /// Skip the model search (pure chase mode).
    pub skip_search: bool,
}

/// A full verdict for one implication instance `Σ ⊨(f) σ`.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// The chase run (trace is a proof when `implication` is `Yes`).
    pub chase: ChaseRun,
    /// A finite counterexample when either answer is `No`.
    pub counterexample: Option<Relation>,
}

/// Decides `Σ ⊨ σ` and `Σ ⊨_f σ` as far as the budgets allow.
pub fn decide(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut ValuePool,
    cfg: &DecideConfig,
) -> Decision {
    let run = chase_implication(sigma, goal, pool, &cfg.chase);
    match run.outcome {
        ChaseOutcome::Implied => Decision {
            implication: Answer::Yes,
            // Implication entails finite implication (every finite relation
            // is a relation).
            finite_implication: Answer::Yes,
            chase: run,
            counterexample: None,
        },
        ChaseOutcome::NotImplied => {
            // The terminal chase instance is a finite model of Σ violating
            // σ, so both problems are answered negatively.
            let cex = run.final_relation.clone();
            Decision {
                implication: Answer::No,
                finite_implication: Answer::No,
                chase: run,
                counterexample: Some(cex),
            }
        }
        ChaseOutcome::Exhausted => {
            let universe: Arc<Universe> = match goal {
                TdOrEgd::Td(t) => t.universe().clone(),
                TdOrEgd::Egd(e) => e.universe().clone(),
            };
            let cex = if cfg.skip_search {
                None
            } else {
                random_counterexample(sigma, goal, &universe, pool, &cfg.search)
            };
            match cex {
                Some(rel) => Decision {
                    // A finite model of Σ violating σ refutes both notions.
                    implication: Answer::No,
                    finite_implication: Answer::No,
                    chase: run,
                    counterexample: Some(rel),
                },
                None => Decision {
                    implication: Answer::Unknown,
                    finite_implication: Answer::Unknown,
                    chase: run,
                    counterexample: None,
                },
            }
        }
    }
}

/// Aggregated verdict when the goal normalizes to several td/egd parts
/// (e.g. an fd goal becomes one egd per dependent attribute).
#[derive(Clone, Debug)]
pub struct MultiDecision {
    /// Conjunction over parts.
    pub implication: Answer,
    /// Conjunction over parts.
    pub finite_implication: Answer,
    /// First counterexample found, if any part failed.
    pub counterexample: Option<Relation>,
    /// Per-part decisions, in normalization order.
    pub parts: Vec<Decision>,
}

fn conjoin(parts: impl Iterator<Item = Answer>) -> Answer {
    let mut acc = Answer::Yes;
    for a in parts {
        match a {
            Answer::No => return Answer::No,
            Answer::Unknown => acc = Answer::Unknown,
            Answer::Yes => {}
        }
    }
    acc
}

/// Decides implication between [`Dependency`] values of any class by
/// normalizing both sides into the td/egd fragment.
pub fn decide_dependencies(
    sigma: &[Dependency],
    goal: &Dependency,
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    cfg: &DecideConfig,
) -> MultiDecision {
    let sigma_normal: Vec<TdOrEgd> = sigma
        .iter()
        .flat_map(|d| d.normalize(universe, pool))
        .collect();
    let goal_parts = goal.normalize(universe, pool);
    if goal_parts.is_empty() {
        // A goal that normalizes to nothing (e.g. an fd with Y ⊆ X) is
        // vacuously implied.
        return MultiDecision {
            implication: Answer::Yes,
            finite_implication: Answer::Yes,
            counterexample: None,
            parts: Vec::new(),
        };
    }
    let parts: Vec<Decision> = goal_parts
        .iter()
        .map(|g| decide(&sigma_normal, g, pool, cfg))
        .collect();
    MultiDecision {
        implication: conjoin(parts.iter().map(|p| p.implication)),
        finite_implication: conjoin(parts.iter().map(|p| p.finite_implication)),
        counterexample: parts.iter().find_map(|p| p.counterexample.clone()),
        parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::{egd_from_names, td_from_names, Fd, Mvd, Pjd};
    use typedtd_relational::Universe;

    #[test]
    fn fd_transitivity_via_chase() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![
            Dependency::from(Fd::parse(&u, "A -> B")),
            Dependency::from(Fd::parse(&u, "B -> C")),
        ];
        let goal = Dependency::from(Fd::parse(&u, "A -> C"));
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
        assert_eq!(d.finite_implication, Answer::Yes);
    }

    #[test]
    fn fd_non_implication_has_counterexample() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![Dependency::from(Fd::parse(&u, "A -> B"))];
        let goal = Dependency::from(Fd::parse(&u, "B -> A"));
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::No);
        assert_eq!(d.finite_implication, Answer::No);
        let cex = d.counterexample.expect("counterexample");
        assert!(sigma[0].satisfied_by(&cex) && !goal.satisfied_by(&cex));
    }

    #[test]
    fn mvd_complementation_via_chase() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![Dependency::from(Mvd::parse(&u, "A ->> B"))];
        let goal = Dependency::from(Mvd::parse(&u, "A ->> C"));
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
    }

    #[test]
    fn fd_implies_mvd_but_not_conversely() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let fd: Dependency = Fd::parse(&u, "A -> B").into();
        let mvd: Dependency = Mvd::parse(&u, "A ->> B").into();
        let cfg = DecideConfig::default();
        let d1 = decide_dependencies(std::slice::from_ref(&fd), &mvd, &u, &mut p, &cfg);
        assert_eq!(d1.implication, Answer::Yes, "X → Y ⊨ X ↠ Y");
        let d2 = decide_dependencies(std::slice::from_ref(&mvd), &fd, &u, &mut p, &cfg);
        assert_eq!(d2.implication, Answer::No, "X ↠ Y ⊭ X → Y");
        assert!(d2.counterexample.is_some());
    }

    #[test]
    fn jd_implied_by_its_mvd() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let mvd: Dependency = Mvd::parse(&u, "A ->> B").into();
        let jd: Dependency = Pjd::parse(&u, "*[AB, AC]").into();
        let d = decide_dependencies(std::slice::from_ref(&mvd), &jd, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
        let d2 = decide_dependencies(std::slice::from_ref(&jd), &mvd, &u, &mut p, &DecideConfig::default());
        assert_eq!(d2.implication, Answer::Yes);
    }

    #[test]
    fn td_goal_with_egd_support() {
        // Σ = {A' → B' (egd), td: (x,y,z) ⊢ (x,y,z')} over untyped ABC —
        // goal follows because the td is its own goal.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "z2"]);
        let egd = egd_from_names(
            &u,
            &mut p,
            &[&["q", "r1", "s1"], &["q", "r2", "s2"]],
            ("B'", "r1"),
            ("B'", "r2"),
        );
        let sigma = vec![TdOrEgd::Td(td.clone()), TdOrEgd::Egd(egd)];
        let goal = TdOrEgd::Td(td);
        let d = decide(&sigma, &goal, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
    }
}
