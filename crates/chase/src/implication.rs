//! High-level decision API pairing the two semidecision procedures.
//!
//! The paper (Section 2.3) frames the landscape exactly as this module
//! implements it:
//!
//! * `{(Σ, σ) : Σ ⊨ σ}` is r.e. — enumerated here by the chase;
//! * `{(Σ, σ) : Σ ⊭_f σ}` is r.e. — enumerated here by finite model search;
//! * a chase that *terminates* answers both problems at once (its terminal
//!   instance is a finite universal model);
//! * no algorithm closes the remaining gap for typed tds or pjds — that is
//!   the paper's main theorem — so [`decide`] can and does return
//!   [`Answer::Unknown`] when budgets expire.
//!
//! Both semidecision procedures are resumable, so the pairing is too: a
//! [`DecideTask`] is an explicit phase machine over a [`ChaseTask`] and a
//! [`SearchTask`], preemptible at round/attempt granularity, in one of two
//! modes ([`DecideMode`]):
//!
//! * **Sequential** (the default): step the chase until a certificate
//!   appears or its budget runs out, then hand the evolved pool to the
//!   search — exactly the two phases the blocking [`decide`] historically
//!   performed, trace-for-trace;
//! * **Dovetail**: alternate fuel between the chase and the search at a
//!   configurable ratio, so a *refutable-but-divergent* query (the chase
//!   never terminates, but a finite counterexample exists) is answered
//!   `No` from the search without waiting for a chase budget that may be
//!   astronomically large. This is the textbook dovetailing of the two
//!   r.e. sets, now *within* one query rather than only across queries.
//!
//! Every task also carries a [`CancelToken`] shared with its sub-tasks:
//! tripping it stops the task at the next round/attempt boundary with
//! [`Decision::cancelled`] set, instead of burning the remaining budget —
//! the hook the `typedtd-service` scheduler's `JobHandle::cancel` pulls.
//! This is the unit the scheduler multiplexes.

use crate::cancel::CancelToken;
use crate::engine::{ChaseConfig, ChaseOutcome, ChaseRun, ChaseTask, StepStatus};
use crate::search::{SearchConfig, SearchStatus, SearchTask};
use std::sync::Arc;
use typedtd_dependencies::{Dependency, TdOrEgd};
use typedtd_relational::{Relation, Universe, ValuePool};

/// A three-valued answer: the problems are undecidable, so `Unknown` is an
/// honest possible outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// Implication holds (certificate: a chase derivation).
    Yes,
    /// Implication fails (certificate: a finite counterexample relation).
    No,
    /// Budget exhausted with no certificate either way.
    Unknown,
}

impl Answer {
    /// Three-valued conjunction: `No` dominates (one failing conjunct
    /// refutes the whole goal), `Unknown` propagates otherwise, and
    /// `Yes` requires every conjunct. This is how multi-part goals (a
    /// dependency normalizing to several tds/egds) fold their parts'
    /// verdicts.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (Self::No, _) | (_, Self::No) => Self::No,
            (Self::Unknown, _) | (_, Self::Unknown) => Self::Unknown,
            (Self::Yes, Self::Yes) => Self::Yes,
        }
    }
}

/// How a [`DecideTask`] schedules its two semidecision procedures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DecideMode {
    /// Chase to a verdict or budget exhaustion, then search — the
    /// historical [`decide`] order, trace-for-trace.
    #[default]
    Sequential,
    /// Alternate fuel between the chase and the search:
    /// `chase_ratio` chase rounds per search attempt (clamped to ≥ 1).
    /// Refutable-but-divergent queries answer from the search phase
    /// without waiting on a chase that never terminates.
    Dovetail {
        /// Chase rounds granted per search attempt.
        chase_ratio: u32,
    },
    /// Like [`DecideMode::Dovetail`], but the ratio adapts at every period
    /// boundary toward whichever procedure progressed last slice: a chase
    /// period that merged values or stopped deriving is converging and
    /// earns a doubled ratio (capped at 8× the initial), while a period of
    /// pure row growth looks divergent and halves the ratio (floored at 1)
    /// so the refutation search gets fuel sooner.
    AdaptiveDovetail {
        /// Initial chase rounds per search attempt.
        chase_ratio: u32,
    },
}

impl DecideMode {
    /// Dovetail with the given fixed chase:search fuel ratio.
    pub fn dovetail(chase_ratio: u32) -> Self {
        Self::Dovetail { chase_ratio }
    }

    /// Dovetail with a self-adjusting ratio starting at `chase_ratio`.
    pub fn adaptive_dovetail(chase_ratio: u32) -> Self {
        Self::AdaptiveDovetail { chase_ratio }
    }

    /// The configured starting chase:search ratio, if dovetailing.
    pub fn initial_ratio(self) -> Option<u32> {
        match self {
            Self::Sequential => None,
            Self::Dovetail { chase_ratio } | Self::AdaptiveDovetail { chase_ratio } => {
                Some(chase_ratio.max(1))
            }
        }
    }
}

/// Knobs for [`decide`].
#[derive(Clone, Debug, Default)]
pub struct DecideConfig {
    /// Chase budget and variant.
    pub chase: ChaseConfig,
    /// Counterexample search budget.
    pub search: SearchConfig,
    /// Skip the model search (pure chase mode).
    pub skip_search: bool,
    /// Phase scheduling: sequential (default) or dovetailed.
    pub mode: DecideMode,
}

/// A full verdict for one implication instance `Σ ⊨(f) σ`.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// The chase run (trace is a proof when `implication` is `Yes`; in
    /// dovetail mode an abandoned chase reports
    /// [`ChaseOutcome::Cancelled`] with its progress so far).
    pub chase: ChaseRun,
    /// A finite counterexample when either answer is `No`.
    pub counterexample: Option<Relation>,
    /// `true` if the task was stopped by its [`CancelToken`] before
    /// either certificate appeared (the answers are then `Unknown`).
    pub cancelled: bool,
}

/// Decides `Σ ⊨ σ` and `Σ ⊨_f σ` as far as the budgets allow. Thin driver
/// over [`DecideTask`]: snapshots the pool into a task, runs it to
/// completion, and writes the evolved pool back.
pub fn decide(
    sigma: &[TdOrEgd],
    goal: &TdOrEgd,
    pool: &mut ValuePool,
    cfg: &DecideConfig,
) -> Decision {
    let empty = ValuePool::new(pool.universe().clone());
    let taken = std::mem::replace(pool, empty);
    let mut task = DecideTask::new(sigma.to_vec(), goal.clone(), taken, cfg.clone());
    task.run_to_completion();
    let (decision, evolved) = task.finish();
    *pool = evolved;
    decision
}

/// Whether a [`DecideTask`] needs more fuel or has finished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecideStatus {
    /// The fuel slice ran out; step again.
    Pending,
    /// The decision is in; the payload is the unrestricted-implication
    /// [`Answer`] (the full [`Decision`] comes from [`DecideTask::finish`]).
    Done(Answer),
}

/// Coarse phase of a [`DecideTask`], as reported by
/// [`DecideTask::progress_snapshot`]. The names are stable: they ride
/// wire-protocol `PROGRESS` frames and metrics labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TaskPhase {
    /// Running the chase alone (the r.e. procedure for `Σ ⊨ σ`).
    #[default]
    Chase,
    /// Running finite-model search alone (the r.e. procedure for
    /// `Σ ⊭_f σ`).
    Search,
    /// Both procedures live, fuel alternating between them.
    Dovetail,
    /// Finished; the decision is in.
    Done,
}

impl TaskPhase {
    /// Stable lowercase name (used as a wire/metrics label).
    pub fn as_str(self) -> &'static str {
        match self {
            TaskPhase::Chase => "chase",
            TaskPhase::Search => "search",
            TaskPhase::Dovetail => "dovetail",
            TaskPhase::Done => "done",
        }
    }
}

/// A point-in-time profile of a [`DecideTask`]: which procedure is
/// running and how much work each has done. Every field is a plain
/// counter read — sampling one per fuel slice costs no allocation and
/// no locking, so schedulers can attribute fuel per phase cheaply.
///
/// Counters are cumulative and never decrease over the task's life;
/// after a phase transition the finished procedure's last readings are
/// retained (not reset).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProgressSnapshot {
    /// Which procedure(s) the task is running right now.
    pub phase: TaskPhase,
    /// Fuel units (chase rounds + search attempts) consumed so far.
    pub fuel_spent: u64,
    /// Breadth-first chase rounds executed.
    pub chase_rounds: u64,
    /// Chase steps applied (row adds + equality merges).
    pub chase_steps: u64,
    /// Equality merges applied by the chase (the egd share of steps).
    pub chase_merges: u64,
    /// Rows in the chase instance (its final size once the chase ended).
    pub instance_rows: u64,
    /// Finite-model search attempts completed.
    pub search_attempts: u64,
    /// Hash-join build-side rows taken by the chase's trigger scans.
    pub join_build_rows: u64,
    /// Hash-join probe-side hits scored by the chase's trigger scans.
    pub join_probe_hits: u64,
    /// Worker shards spawned by the chase's parallel trigger scans.
    pub parallel_shards: u64,
}

/// Progress phase of a [`DecideTask`].
enum DecidePhase {
    /// Running the chase alone (the r.e. procedure for `Σ ⊨ σ`): the
    /// sequential first phase, or a dovetail whose search has exhausted
    /// its enumeration.
    Chasing(Box<ChaseTask>),
    /// Chase concluded without a verdict; running finite-model search
    /// alone (the r.e. procedure for `Σ ⊭_f σ`).
    Searching {
        chase_run: Box<ChaseRun>,
        task: Box<SearchTask>,
    },
    /// [`DecideMode::Dovetail`] / [`DecideMode::AdaptiveDovetail`]: both
    /// procedures live, fuel alternating between them. `chase_turn` counts
    /// the chase rounds left before the search's next attempt; `ratio` is
    /// the current period length (fixed mode never changes it). The
    /// `last_*` counters are the chase readings at the previous period
    /// boundary, the adaptive mode's progress baseline. The search runs
    /// over its own snapshot of the initial pool (the procedures are
    /// independent enumerations).
    Dovetailing {
        chase: Box<ChaseTask>,
        search: Box<SearchTask>,
        chase_turn: u32,
        ratio: u32,
        last_steps: u64,
        last_merges: u64,
    },
    /// Finished.
    Done(Box<Decision>, ValuePool),
    /// Transient state during a phase transition; never observable.
    Poisoned,
}

/// A resumable [`decide`]: one implication query `Σ ⊨(f) σ` as a
/// preemptible task.
///
/// In [`DecideMode::Sequential`] the task steps its chase until a
/// certificate appears or the chase budget runs out, then (unless
/// [`DecideConfig::skip_search`]) steps the counterexample search over the
/// same evolved pool — exactly the blocking driver's historical two
/// phases, trace-for-trace. In [`DecideMode::Dovetail`] both procedures
/// run from the start, fuel alternating at the configured ratio, so a
/// refutable query whose chase diverges is still answered `No` once the
/// search finds its witness. Either way one fuel unit is one chase round
/// or one search attempt, so interleaving many tasks with small slices is
/// fair in the dovetailing sense: a terminating query finishes within a
/// bounded number of global slices no matter how many divergent queries
/// run beside it. A shared [`CancelToken`] ([`DecideTask::cancel_token`])
/// stops the task mid-slice with [`Decision::cancelled`] set.
pub struct DecideTask {
    /// Shared with the chase (and, on exhaustion, the search) task: the
    /// `Arc` makes the hand-offs allocation-free.
    sigma: Arc<[TdOrEgd]>,
    goal: TdOrEgd,
    cfg: DecideConfig,
    phase: DecidePhase,
    fuel_spent: u64,
    /// Shared with both sub-tasks; tripping it finishes the task with
    /// [`Decision::cancelled`] within the current fuel slice.
    cancel: CancelToken,
    /// Dovetail bookkeeping: the search exhausted its enumeration, so a
    /// later chase exhaustion must conclude `Unknown` instead of starting
    /// a second search.
    search_exhausted: bool,
    /// Last readings of sub-task counters, frozen at each phase
    /// transition (transitions consume the sub-tasks, so
    /// [`DecideTask::progress_snapshot`] falls back to these once a
    /// procedure is gone). The `phase`/`fuel_spent` fields are
    /// overwritten at snapshot time.
    mirror: ProgressSnapshot,
}

impl DecideTask {
    /// A resumable decision task for `Σ ⊨(f) σ`.
    ///
    /// `pool` must be (a snapshot of) the pool the dependencies' values came
    /// from; it is returned, evolved, by [`DecideTask::finish`]. In
    /// dovetail mode the search runs over its own clone of the pool, and
    /// `finish` returns the pool of whichever phase the task *ended in*:
    /// the chase's when the chase decided (or outlived an exhausted
    /// search), the search's when it found the counterexample (its values
    /// are the witness's) or ran last after the chase budget expired.
    pub fn new(
        sigma: impl Into<Arc<[TdOrEgd]>>,
        goal: TdOrEgd,
        pool: ValuePool,
        cfg: DecideConfig,
    ) -> Self {
        let sigma: Arc<[TdOrEgd]> = sigma.into();
        let cancel = CancelToken::new();
        let phase = match cfg.mode.initial_ratio() {
            Some(ratio) if !cfg.skip_search => {
                let universe: Arc<Universe> = match &goal {
                    TdOrEgd::Td(t) => t.universe().clone(),
                    TdOrEgd::Egd(e) => e.universe().clone(),
                };
                let search = SearchTask::new(
                    sigma.clone(),
                    goal.clone(),
                    universe,
                    pool.clone(),
                    cfg.search.clone(),
                )
                .with_cancel_token(cancel.clone());
                let chase =
                    ChaseTask::implication(sigma.clone(), goal.clone(), pool, cfg.chase.clone())
                        .with_cancel_token(cancel.clone());
                DecidePhase::Dovetailing {
                    chase: Box::new(chase),
                    search: Box::new(search),
                    chase_turn: ratio,
                    ratio,
                    last_steps: 0,
                    last_merges: 0,
                }
            }
            _ => DecidePhase::Chasing(Box::new(
                ChaseTask::implication(sigma.clone(), goal.clone(), pool, cfg.chase.clone())
                    .with_cancel_token(cancel.clone()),
            )),
        };
        Self {
            sigma,
            goal,
            cfg,
            phase,
            fuel_spent: 0,
            cancel,
            search_exhausted: false,
            mirror: ProgressSnapshot::default(),
        }
    }

    /// The task's cancellation token. Tripping it (from any thread) makes
    /// the task stop at its next round/attempt boundary and report a
    /// [`Decision`] with `cancelled` set instead of spending the rest of
    /// its budgets. Cancelling a finished task is a no-op.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs at most `fuel` units (chase rounds + search attempts). A
    /// finished task ignores further fuel and keeps reporting its answer.
    pub fn step(&mut self, fuel: usize) -> DecideStatus {
        let mut left = fuel;
        loop {
            match &mut self.phase {
                DecidePhase::Poisoned => unreachable!("DecideTask phase poisoned"),
                DecidePhase::Done(d, _) => return DecideStatus::Done(d.implication),
                DecidePhase::Chasing(task) => {
                    if left == 0 {
                        return DecideStatus::Pending;
                    }
                    let before = task.rounds();
                    let status = task.step(left);
                    let used = (task.rounds() - before).max(1);
                    left = left.saturating_sub(used);
                    self.fuel_spent += used as u64;
                    match status {
                        StepStatus::Pending => return DecideStatus::Pending,
                        StepStatus::Done(outcome) => self.leave_chase(outcome),
                    }
                }
                DecidePhase::Searching { task, .. } => {
                    if left == 0 {
                        return DecideStatus::Pending;
                    }
                    let before = task.attempts_done();
                    let status = task.step(left);
                    let used = ((task.attempts_done() - before) as usize).max(1);
                    left = left.saturating_sub(used);
                    self.fuel_spent += used as u64;
                    if let SearchStatus::Done(_) = status {
                        self.leave_search();
                    } else {
                        return DecideStatus::Pending;
                    }
                }
                DecidePhase::Dovetailing {
                    chase,
                    search,
                    chase_turn,
                    ratio,
                    last_steps,
                    last_merges,
                } => {
                    if left == 0 {
                        return DecideStatus::Pending;
                    }
                    if *chase_turn > 0 {
                        // The chase's share of the period (bounded by the
                        // slice so preemption stays fair across tasks).
                        let want = (*chase_turn as usize).min(left);
                        let before = chase.rounds();
                        let status = chase.step(want);
                        let used = (chase.rounds() - before).max(1);
                        left = left.saturating_sub(used);
                        self.fuel_spent += used as u64;
                        *chase_turn = chase_turn.saturating_sub(used as u32);
                        if let StepStatus::Done(outcome) = status {
                            self.leave_dovetail_chase(outcome);
                        }
                    } else {
                        // The search's turn: one attempt, then a new period.
                        let before = search.attempts_done();
                        let status = search.step(1);
                        let used = ((search.attempts_done() - before) as usize).max(1);
                        left = left.saturating_sub(used);
                        self.fuel_spent += used as u64;
                        match self.cfg.mode {
                            DecideMode::Dovetail { .. } => {}
                            DecideMode::AdaptiveDovetail { chase_ratio } => {
                                // Re-ratio toward whoever progressed: a
                                // period with merges or with no new steps
                                // means the chase is converging (give it
                                // more); pure row growth looks divergent
                                // (let the search in sooner).
                                let steps = chase.steps_applied() as u64;
                                let merges = chase.merges() as u64;
                                let converging =
                                    steps == *last_steps || merges > *last_merges;
                                let cap = chase_ratio.max(1).saturating_mul(8);
                                *ratio = if converging {
                                    ratio.saturating_mul(2).min(cap)
                                } else {
                                    (*ratio / 2).max(1)
                                };
                                *last_steps = steps;
                                *last_merges = merges;
                            }
                            DecideMode::Sequential => {
                                unreachable!("dovetail phase outside dovetail mode")
                            }
                        }
                        *chase_turn = (*ratio).max(1);
                        if let SearchStatus::Done(found) = status {
                            self.leave_dovetail_search(found);
                        }
                    }
                }
            }
        }
    }

    /// Drives the task to completion (the blocking mode). Always
    /// terminates: the chase is bounded by its round budget and the search
    /// by its attempt budget.
    pub fn run_to_completion(&mut self) -> Answer {
        loop {
            if let DecideStatus::Done(a) = self.step(256) {
                return a;
            }
        }
    }

    /// The finished decision, if any (borrowing poll).
    pub fn decision(&self) -> Option<&Decision> {
        match &self.phase {
            DecidePhase::Done(d, _) => Some(d),
            _ => None,
        }
    }

    /// Fuel units (chase rounds + search attempts) consumed so far.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent
    }

    /// A cheap point-in-time profile: current phase plus cumulative
    /// per-procedure counters (see [`ProgressSnapshot`]). O(1) field
    /// reads; intended to be sampled once per fuel slice.
    pub fn progress_snapshot(&self) -> ProgressSnapshot {
        let mut snap = self.mirror;
        snap.fuel_spent = self.fuel_spent;
        match &self.phase {
            DecidePhase::Chasing(task) => {
                snap.phase = TaskPhase::Chase;
                Self::read_chase(&mut snap, task);
            }
            DecidePhase::Searching { task, .. } => {
                snap.phase = TaskPhase::Search;
                snap.search_attempts = task.attempts_done();
            }
            DecidePhase::Dovetailing { chase, search, .. } => {
                snap.phase = TaskPhase::Dovetail;
                Self::read_chase(&mut snap, chase);
                snap.search_attempts = search.attempts_done();
            }
            DecidePhase::Done(..) | DecidePhase::Poisoned => snap.phase = TaskPhase::Done,
        }
        snap
    }

    fn read_chase(snap: &mut ProgressSnapshot, task: &ChaseTask) {
        snap.chase_rounds = task.rounds() as u64;
        snap.chase_steps = task.steps_applied() as u64;
        snap.chase_merges = task.merges() as u64;
        snap.instance_rows = task.instance_rows() as u64;
        snap.join_build_rows = task.join_build_rows();
        snap.join_probe_hits = task.join_probe_hits();
        snap.parallel_shards = task.parallel_shards();
    }

    /// Freezes the chase counters into the mirror before the sub-task is
    /// consumed by a phase transition.
    fn mirror_chase(&mut self, task: &ChaseTask) {
        Self::read_chase(&mut self.mirror, task);
    }

    /// Freezes the search counter into the mirror before the sub-task is
    /// consumed by a phase transition.
    fn mirror_search(&mut self, task: &SearchTask) {
        self.mirror.search_attempts = task.attempts_done();
    }

    /// Extracts the decision and the evolved pool.
    ///
    /// # Panics
    /// Panics if the task has not finished.
    pub fn finish(self) -> (Decision, ValuePool) {
        match self.phase {
            DecidePhase::Done(d, pool) => (*d, pool),
            _ => panic!("DecideTask::finish on an unfinished task; step it to Done first"),
        }
    }

    /// Transitions out of the chase phase on its outcome.
    fn leave_chase(&mut self, outcome: ChaseOutcome) {
        let DecidePhase::Chasing(task) =
            std::mem::replace(&mut self.phase, DecidePhase::Poisoned)
        else {
            unreachable!("leave_chase outside the chase phase");
        };
        self.mirror_chase(&task);
        let (run, pool) = task.finish();
        self.phase = match outcome {
            ChaseOutcome::Implied => DecidePhase::Done(
                Box::new(Decision {
                    implication: Answer::Yes,
                    // Implication entails finite implication (every finite
                    // relation is a relation).
                    finite_implication: Answer::Yes,
                    chase: run,
                    counterexample: None,
                    cancelled: false,
                }),
                pool,
            ),
            ChaseOutcome::NotImplied => {
                // The terminal chase instance is a finite model of Σ
                // violating σ, so both problems are answered negatively.
                let cex = run.final_relation.clone();
                DecidePhase::Done(
                    Box::new(Decision {
                        implication: Answer::No,
                        finite_implication: Answer::No,
                        chase: run,
                        counterexample: Some(cex),
                        cancelled: false,
                    }),
                    pool,
                )
            }
            ChaseOutcome::Cancelled => DecidePhase::Done(
                Box::new(Decision {
                    implication: Answer::Unknown,
                    finite_implication: Answer::Unknown,
                    chase: run,
                    counterexample: None,
                    cancelled: true,
                }),
                pool,
            ),
            ChaseOutcome::Exhausted if self.cfg.skip_search || self.search_exhausted => {
                DecidePhase::Done(
                    Box::new(Decision {
                        implication: Answer::Unknown,
                        finite_implication: Answer::Unknown,
                        chase: run,
                        counterexample: None,
                        cancelled: false,
                    }),
                    pool,
                )
            }
            ChaseOutcome::Exhausted => {
                let universe: Arc<Universe> = match &self.goal {
                    TdOrEgd::Td(t) => t.universe().clone(),
                    TdOrEgd::Egd(e) => e.universe().clone(),
                };
                DecidePhase::Searching {
                    chase_run: Box::new(run),
                    task: Box::new(
                        SearchTask::new(
                            self.sigma.clone(),
                            self.goal.clone(),
                            universe,
                            pool,
                            self.cfg.search.clone(),
                        )
                        .with_cancel_token(self.cancel.clone()),
                    ),
                }
            }
        };
    }

    /// Transitions out of the search phase once it finishes.
    fn leave_search(&mut self) {
        let DecidePhase::Searching { chase_run, task } =
            std::mem::replace(&mut self.phase, DecidePhase::Poisoned)
        else {
            unreachable!("leave_search outside the search phase");
        };
        self.mirror_search(&task);
        let cancelled = task.was_cancelled();
        let (found, pool) = task.finish();
        let decision = match found {
            Some(rel) => Decision {
                // A finite model of Σ violating σ refutes both notions.
                implication: Answer::No,
                finite_implication: Answer::No,
                chase: *chase_run,
                counterexample: Some(rel),
                cancelled: false,
            },
            None => Decision {
                implication: Answer::Unknown,
                finite_implication: Answer::Unknown,
                chase: *chase_run,
                counterexample: None,
                cancelled,
            },
        };
        self.phase = DecidePhase::Done(Box::new(decision), pool);
    }

    /// Transitions out of the dovetail when the *chase* concluded.
    fn leave_dovetail_chase(&mut self, outcome: ChaseOutcome) {
        let DecidePhase::Dovetailing { chase, search, .. } =
            std::mem::replace(&mut self.phase, DecidePhase::Poisoned)
        else {
            unreachable!("leave_dovetail_chase outside the dovetail phase");
        };
        self.mirror_chase(&chase);
        self.mirror_search(&search);
        match outcome {
            ChaseOutcome::Exhausted => {
                // The chase budget is spent but the search still has
                // attempts (a dovetail whose search ran dry leaves this
                // phase for `Chasing`, so it cannot reach here): continue
                // search-only — the sequential second phase, except the
                // search keeps its own pool lineage.
                let (run, _chase_pool) = chase.finish();
                self.phase = DecidePhase::Searching {
                    chase_run: Box::new(run),
                    task: search,
                };
            }
            _ => {
                // Implied / NotImplied / Cancelled: the chase's verdict
                // is the task's. The search is abandoned; its pool (and
                // any witnesses it was building) are dropped.
                drop(search);
                self.phase = DecidePhase::Chasing(chase);
                self.leave_chase(outcome);
            }
        }
    }

    /// Transitions out of the dovetail when the *search* concluded.
    fn leave_dovetail_search(&mut self, found: bool) {
        let DecidePhase::Dovetailing { chase, search, .. } =
            std::mem::replace(&mut self.phase, DecidePhase::Poisoned)
        else {
            unreachable!("leave_dovetail_search outside the dovetail phase");
        };
        self.mirror_chase(&chase);
        self.mirror_search(&search);
        let cancelled = search.was_cancelled();
        let (witness, search_pool) = search.finish();
        if found {
            // A finite model of Σ violating σ refutes both notions; the
            // still-running chase is abandoned (its run records progress).
            let rel = witness.expect("SearchStatus::Done(true) carries a witness");
            let (run, _chase_pool) = chase.abandon();
            self.phase = DecidePhase::Done(
                Box::new(Decision {
                    implication: Answer::No,
                    finite_implication: Answer::No,
                    chase: run,
                    counterexample: Some(rel),
                    cancelled: false,
                }),
                search_pool,
            );
        } else if cancelled {
            let (run, chase_pool) = chase.abandon();
            self.phase = DecidePhase::Done(
                Box::new(Decision {
                    implication: Answer::Unknown,
                    finite_implication: Answer::Unknown,
                    chase: run,
                    counterexample: None,
                    cancelled: true,
                }),
                chase_pool,
            );
        } else {
            // Search enumeration exhausted empty-handed: the chase keeps
            // its remaining budget (chase-only from here).
            self.search_exhausted = true;
            self.phase = DecidePhase::Chasing(chase);
        }
    }
}

/// Aggregated verdict when the goal normalizes to several td/egd parts
/// (e.g. an fd goal becomes one egd per dependent attribute).
#[derive(Clone, Debug)]
pub struct MultiDecision {
    /// Conjunction over parts.
    pub implication: Answer,
    /// Conjunction over parts.
    pub finite_implication: Answer,
    /// First counterexample found, if any part failed.
    pub counterexample: Option<Relation>,
    /// Per-part decisions, in normalization order.
    pub parts: Vec<Decision>,
}

fn conjoin(parts: impl Iterator<Item = Answer>) -> Answer {
    let mut acc = Answer::Yes;
    for a in parts {
        match a {
            Answer::No => return Answer::No,
            Answer::Unknown => acc = Answer::Unknown,
            Answer::Yes => {}
        }
    }
    acc
}

/// Decides implication between [`Dependency`] values of any class by
/// normalizing both sides into the td/egd fragment.
pub fn decide_dependencies(
    sigma: &[Dependency],
    goal: &Dependency,
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    cfg: &DecideConfig,
) -> MultiDecision {
    let sigma_normal: Vec<TdOrEgd> = sigma
        .iter()
        .flat_map(|d| d.normalize(universe, pool))
        .collect();
    let goal_parts = goal.normalize(universe, pool);
    if goal_parts.is_empty() {
        // A goal that normalizes to nothing (e.g. an fd with Y ⊆ X) is
        // vacuously implied.
        return MultiDecision {
            implication: Answer::Yes,
            finite_implication: Answer::Yes,
            counterexample: None,
            parts: Vec::new(),
        };
    }
    let parts: Vec<Decision> = goal_parts
        .iter()
        .map(|g| decide(&sigma_normal, g, pool, cfg))
        .collect();
    MultiDecision {
        implication: conjoin(parts.iter().map(|p| p.implication)),
        finite_implication: conjoin(parts.iter().map(|p| p.finite_implication)),
        counterexample: parts.iter().find_map(|p| p.counterexample.clone()),
        parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::{egd_from_names, td_from_names, Fd, Mvd, Pjd};
    use typedtd_relational::Universe;

    #[test]
    fn fd_transitivity_via_chase() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![
            Dependency::from(Fd::parse(&u, "A -> B").unwrap()),
            Dependency::from(Fd::parse(&u, "B -> C").unwrap()),
        ];
        let goal = Dependency::from(Fd::parse(&u, "A -> C").unwrap());
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
        assert_eq!(d.finite_implication, Answer::Yes);
    }

    #[test]
    fn fd_non_implication_has_counterexample() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![Dependency::from(Fd::parse(&u, "A -> B").unwrap())];
        let goal = Dependency::from(Fd::parse(&u, "B -> A").unwrap());
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::No);
        assert_eq!(d.finite_implication, Answer::No);
        let cex = d.counterexample.expect("counterexample");
        assert!(sigma[0].satisfied_by(&cex) && !goal.satisfied_by(&cex));
    }

    #[test]
    fn mvd_complementation_via_chase() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma = vec![Dependency::from(Mvd::parse(&u, "A ->> B").unwrap())];
        let goal = Dependency::from(Mvd::parse(&u, "A ->> C").unwrap());
        let d = decide_dependencies(&sigma, &goal, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
    }

    #[test]
    fn fd_implies_mvd_but_not_conversely() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let fd: Dependency = Fd::parse(&u, "A -> B").unwrap().into();
        let mvd: Dependency = Mvd::parse(&u, "A ->> B").unwrap().into();
        let cfg = DecideConfig::default();
        let d1 = decide_dependencies(std::slice::from_ref(&fd), &mvd, &u, &mut p, &cfg);
        assert_eq!(d1.implication, Answer::Yes, "X → Y ⊨ X ↠ Y");
        let d2 = decide_dependencies(std::slice::from_ref(&mvd), &fd, &u, &mut p, &cfg);
        assert_eq!(d2.implication, Answer::No, "X ↠ Y ⊭ X → Y");
        assert!(d2.counterexample.is_some());
    }

    #[test]
    fn jd_implied_by_its_mvd() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let mvd: Dependency = Mvd::parse(&u, "A ->> B").unwrap().into();
        let jd: Dependency = Pjd::parse(&u, "*[AB, AC]").unwrap().into();
        let d = decide_dependencies(std::slice::from_ref(&mvd), &jd, &u, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
        let d2 = decide_dependencies(std::slice::from_ref(&jd), &mvd, &u, &mut p, &DecideConfig::default());
        assert_eq!(d2.implication, Answer::Yes);
    }

    /// A refutable-but-divergent query: the successor td keeps the chase
    /// growing forever, while a 2-row finite model refutes the fd goal.
    fn refutable_divergent() -> (Vec<TdOrEgd>, TdOrEgd, ValuePool) {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let successor = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
        let fd_egd = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        (vec![TdOrEgd::Td(successor)], TdOrEgd::Egd(fd_egd), p)
    }

    /// Chase budgets so large the chase effectively never exhausts.
    fn huge_chase() -> crate::engine::ChaseConfig {
        crate::engine::ChaseConfig {
            max_rounds: 1 << 20,
            max_rows: 1 << 22,
            max_steps: 1 << 26,
            ..Default::default()
        }
    }

    #[test]
    fn dovetail_refutes_divergent_query_with_bounded_fuel() {
        let (sigma, goal, pool) = refutable_divergent();
        let cfg = DecideConfig {
            chase: huge_chase(),
            mode: DecideMode::dovetail(1),
            ..DecideConfig::default()
        };
        let mut task = DecideTask::new(sigma.clone(), goal.clone(), pool, cfg);
        let mut spent = 0u64;
        let answer = loop {
            match task.step(64) {
                DecideStatus::Done(a) => break a,
                DecideStatus::Pending => {
                    spent += 64;
                    assert!(
                        spent < 4096,
                        "dovetail must refute well before the chase budget"
                    );
                }
            }
        };
        assert_eq!(answer, Answer::No, "the finite search must win the race");
        let (decision, _pool) = task.finish();
        assert_eq!(decision.finite_implication, Answer::No);
        assert!(!decision.cancelled);
        let cex = decision.counterexample.expect("search returns its witness");
        assert!(crate::search::is_counterexample(&cex, &sigma, &goal));
        assert_eq!(
            decision.chase.outcome,
            ChaseOutcome::Cancelled,
            "the abandoned chase records that it was cut short"
        );
    }

    #[test]
    fn dovetail_matches_sequential_on_decidable_queries() {
        // fd transitivity (Yes via chase) and its converse (No via the
        // terminal chase instance) answer identically in both modes.
        let u = Universe::typed(vec!["A", "B", "C"]);
        let cases = [("A -> C", Answer::Yes), ("C -> A", Answer::No)];
        for (goal_text, expected) in cases {
            let p = ValuePool::new(u.clone());
            let sigma = vec![
                Dependency::from(Fd::parse(&u, "A -> B").unwrap()),
                Dependency::from(Fd::parse(&u, "B -> C").unwrap()),
            ];
            let goal = Dependency::from(Fd::parse(&u, goal_text).unwrap());
            for mode in [
                DecideMode::Sequential,
                DecideMode::dovetail(2),
                DecideMode::adaptive_dovetail(2),
            ] {
                let cfg = DecideConfig {
                    mode,
                    ..DecideConfig::default()
                };
                let d = decide_dependencies(&sigma, &goal, &u, &mut p.clone(), &cfg);
                assert_eq!(d.implication, expected, "mode {mode:?} diverged on {goal_text}");
                assert_eq!(d.finite_implication, expected);
            }
        }
    }

    #[test]
    fn adaptive_dovetail_parity_with_fixed_ratio() {
        // The adaptive ratio never changes the *answers* — only the fuel
        // split. Parity across implied, refuted, and divergent-refutable
        // queries, at several starting ratios.
        let (sigma, goal, pool) = refutable_divergent();
        for ratio in [1, 2, 8] {
            let mut answers = Vec::new();
            for mode in [
                DecideMode::dovetail(ratio),
                DecideMode::adaptive_dovetail(ratio),
            ] {
                let cfg = DecideConfig {
                    chase: huge_chase(),
                    mode,
                    ..DecideConfig::default()
                };
                let mut task =
                    DecideTask::new(sigma.clone(), goal.clone(), pool.clone(), cfg);
                let answer = task.run_to_completion();
                let (decision, _pool) = task.finish();
                answers.push((answer, decision.finite_implication));
            }
            assert_eq!(
                answers[0], answers[1],
                "fixed vs adaptive parity at ratio {ratio}"
            );
            assert_eq!(answers[0].1, Answer::No, "both must refute the divergent query");
        }
    }

    #[test]
    fn adaptive_dovetail_shrinks_ratio_on_divergence() {
        // On the pure-growth divergent query the re-ratio rule drives the
        // period length down to 1, so the search gets in at least as often
        // as with the same fixed starting ratio.
        let (sigma, goal, pool) = refutable_divergent();
        let mk = |mode| DecideConfig {
            chase: huge_chase(),
            mode,
            ..DecideConfig::default()
        };
        let mut fixed = DecideTask::new(
            sigma.clone(),
            goal.clone(),
            pool.clone(),
            mk(DecideMode::dovetail(32)),
        );
        let mut adaptive = DecideTask::new(
            sigma.clone(),
            goal.clone(),
            pool,
            mk(DecideMode::adaptive_dovetail(32)),
        );
        assert_eq!(fixed.run_to_completion(), Answer::No);
        assert_eq!(adaptive.run_to_completion(), Answer::No);
        assert!(
            adaptive.fuel_spent() <= fixed.fuel_spent(),
            "divergence detection must not waste fuel vs fixed ratio (adaptive {} vs fixed {})",
            adaptive.fuel_spent(),
            fixed.fuel_spent()
        );
    }

    #[test]
    fn cancel_stops_a_divergent_task_within_one_slice() {
        let (sigma, goal, pool) = refutable_divergent();
        let cfg = DecideConfig {
            chase: huge_chase(),
            skip_search: true,
            ..DecideConfig::default()
        };
        let mut task = DecideTask::new(sigma, goal, pool, cfg);
        assert_eq!(task.step(32), DecideStatus::Pending, "chase must diverge");
        let token = task.cancel_token();
        token.cancel();
        let before = task.fuel_spent();
        let status = task.step(100_000);
        assert_eq!(status, DecideStatus::Done(Answer::Unknown));
        assert!(
            task.fuel_spent() - before <= 1,
            "a cancelled task must not burn its remaining fuel (burned {})",
            task.fuel_spent() - before
        );
        let (decision, _pool) = task.finish();
        assert!(decision.cancelled, "cancellation is surfaced on the decision");
        assert_eq!(decision.chase.outcome, ChaseOutcome::Cancelled);
    }

    #[test]
    fn cancel_after_finish_keeps_the_real_answer() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = [Fd::parse(&u, "A -> B").unwrap(), Fd::parse(&u, "B -> C").unwrap()]
            .iter()
            .flat_map(|f| Dependency::from(f.clone()).normalize(&u, &mut p))
            .collect();
        let goal = Dependency::from(Fd::parse(&u, "A -> C").unwrap())
            .normalize(&u, &mut p)
            .pop()
            .expect("one egd part");
        let mut task = DecideTask::new(sigma, goal, p, DecideConfig::default());
        let answer = task.run_to_completion();
        assert_eq!(answer, Answer::Yes);
        task.cancel_token().cancel();
        assert_eq!(task.step(16), DecideStatus::Done(Answer::Yes));
        let (decision, _pool) = task.finish();
        assert!(!decision.cancelled, "cancel after Done is a no-op");
    }

    #[test]
    fn td_goal_with_egd_support() {
        // Σ = {A' → B' (egd), td: (x,y,z) ⊢ (x,y,z')} over untyped ABC —
        // goal follows because the td is its own goal.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "z2"]);
        let egd = egd_from_names(
            &u,
            &mut p,
            &[&["q", "r1", "s1"], &["q", "r2", "s2"]],
            ("B'", "r1"),
            ("B'", "r2"),
        );
        let sigma = vec![TdOrEgd::Td(td.clone()), TdOrEgd::Egd(egd)];
        let goal = TdOrEgd::Td(td);
        let d = decide(&sigma, &goal, &mut p, &DecideConfig::default());
        assert_eq!(d.implication, Answer::Yes);
    }
}
