//! Tableau cores (retractions), after Fagin–Maier–Ullman–Yannakakis,
//! *Tools for template dependencies* (the paper's reference [19]).
//!
//! The *core* of a relation `I` relative to a set of fixed values `F` is a
//! smallest subrelation `C ⊆ I` such that some valuation fixing `F`
//! pointwise maps `I` into `C`. Cores are the canonical minimal form of
//! tableaux; the core chase retracts its instance each round, which keeps
//! universal models small and terminates whenever any chase does.

use typedtd_dependencies::Td;
use typedtd_relational::{Embedder, FxHashSet, Relation, Valuation, Value};

/// Retracts `rel` to its core, keeping every value of `frozen` fixed.
pub fn core_retract(rel: &Relation, frozen: &FxHashSet<Value>) -> Relation {
    let mut current = rel.clone();
    loop {
        let mut shrunk = false;
        let n = current.len();
        if n <= 1 {
            return current;
        }
        let tuples = current.tuples();
        let seed = Valuation::from_pairs(
            frozen
                .iter()
                .filter(|&&v| current.contains_value(v))
                .map(|&v| (v, v)),
        );
        for skip in 0..n {
            let target = Relation::from_rows(
                current.universe().clone(),
                tuples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, t)| t.clone()),
            );
            let emb = Embedder::new(&target);
            if let Some(alpha) = emb.find_embedding(&tuples, &seed) {
                current = current.map(alpha.as_map());
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Minimizes a td by retracting its hypothesis to the core, fixing the
/// conclusion's values (so the minimized td is equivalent to the original).
pub fn minimize_td(td: &Td) -> Td {
    let hyp = td.hypothesis_relation();
    let frozen: FxHashSet<Value> = td
        .conclusion()
        .val()
        .filter(|v| td.hypothesis_values().contains(v))
        .collect();
    let core = core_retract(&hyp, &frozen);
    Td::new(td.universe().clone(), td.conclusion().clone(), core.tuples())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use typedtd_dependencies::td_from_names;
    use typedtd_relational::{Tuple, Universe, ValuePool};

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(r.iter().map(|n| p.untyped(n)).collect())
            }),
        )
    }

    #[test]
    fn redundant_row_is_retracted() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // Row (x, y2, z2) folds onto (x, y, z) by y2↦y, z2↦z when nothing
        // is frozen except x.
        let r = rel(&u, &mut p, &[&["x", "y", "z"], &["x", "y2", "z2"]]);
        let x = p.get(None, "x").unwrap();
        let frozen: FxHashSet<Value> = [x].into_iter().collect();
        let core = core_retract(&r, &frozen);
        assert_eq!(core.len(), 1);
    }

    #[test]
    fn frozen_values_block_retraction() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let r = rel(&u, &mut p, &[&["x", "y", "z"], &["x", "y2", "z2"]]);
        let frozen: FxHashSet<Value> = r.val().collect();
        let core = core_retract(&r, &frozen);
        assert_eq!(core.len(), 2, "fixing all values forbids folding");
    }

    #[test]
    fn core_is_idempotent() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let r = rel(
            &u,
            &mut p,
            &[&["x", "y", "z"], &["x", "y2", "z2"], &["x", "y3", "z3"]],
        );
        let x = p.get(None, "x").unwrap();
        let frozen: FxHashSet<Value> = [x].into_iter().collect();
        let once = core_retract(&r, &frozen);
        let twice = core_retract(&once, &frozen);
        assert_eq!(once, twice);
    }

    #[test]
    fn minimize_td_drops_foldable_hypothesis_rows() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // The second hypothesis row is a weakening of the first.
        let td = td_from_names(
            &u,
            &mut p,
            &[&["x", "y", "z"], &["x", "y9", "z9"]],
            &["x", "y", "q"],
        );
        let min = minimize_td(&td);
        assert_eq!(min.hypothesis().len(), 1);
        assert_eq!(min.conclusion(), td.conclusion());
    }

    #[test]
    fn minimize_td_keeps_needed_rows() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // Both rows matter: conclusion uses values from each.
        let td = td_from_names(
            &u,
            &mut p,
            &[&["x", "y", "c1"], &["c2", "y", "z"]],
            &["x", "y", "z"],
        );
        let min = minimize_td(&td);
        assert_eq!(min.hypothesis().len(), 2);
    }
}
