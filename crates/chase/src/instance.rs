//! The mutable tableau the chase operates on.
//!
//! A chase instance starts from the goal dependency's hypothesis (whose
//! values are *frozen* — they are the symbols the final answer is phrased
//! in) and grows by td steps (new rows with fresh labeled nulls) and egd
//! steps (merging two values in a union-find, then rewriting the rows that
//! contain the merged-away value to canonical representatives).
//!
//! For the semi-naive engine the instance also keeps a *version* per row
//! (a monotone counter stamped when the row was inserted or last rewritten)
//! and, crucially, an **append-only dirty-row log**: every stamp also
//! appends `(version, row)` to the log. [`ChaseInstance::delta_since`] then
//! answers "which rows changed since a dependency was last scanned" by
//! binary-searching the log for the frontier and draining only the suffix —
//! work proportional to the *delta*, not to the whole instance. (The stamp
//! vector is retained as the log's compaction source and for debug
//! assertions.) Merge compaction remaps the log's row ids in place, and the
//! log itself is compacted down to one entry per row whenever stale entries
//! outnumber live rows.

use crate::unionfind::UnionFind;
use std::sync::Arc;
use typedtd_relational::{FxHashSet, Relation, RowDelta, Tuple, Universe, Value};

/// Mutable chase state.
#[derive(Clone)]
pub struct ChaseInstance {
    relation: Relation,
    uf: UnionFind,
    frozen: FxHashSet<Value>,
    /// Monotone mutation counter; bumped by inserts, merges, replacements.
    version: u64,
    /// Per-row version stamps, parallel to `relation.rows()`.
    row_versions: Vec<u64>,
    /// Append-only `(version, row)` dirty stamps in version order. Row ids
    /// are kept current across merge compaction (entries of removed rows are
    /// dropped, survivors remapped).
    dirty_log: Vec<(u64, u32)>,
}

impl ChaseInstance {
    /// Starts an instance from initial rows; all their values are frozen.
    pub fn new(universe: Arc<Universe>, rows: impl IntoIterator<Item = Tuple>) -> Self {
        let relation = Relation::from_rows(universe, rows);
        let frozen = relation.val().collect();
        let row_versions = vec![1; relation.len()];
        let dirty_log = (0..relation.len() as u32).map(|i| (1, i)).collect();
        Self {
            relation,
            uf: UnionFind::new(),
            frozen,
            version: 1,
            row_versions,
            dirty_log,
        }
    }

    /// The current rows as a relation (canonical representatives only).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The universe of the instance.
    pub fn universe(&self) -> &Arc<Universe> {
        self.relation.universe()
    }

    /// The frozen (initial) values.
    pub fn frozen(&self) -> &FxHashSet<Value> {
        &self.frozen
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// `true` if the instance has no rows.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Canonical representative of `v` under the merges so far.
    pub fn resolve(&mut self, v: Value) -> Value {
        self.uf.find(v)
    }

    /// Canonical representative without path compression.
    pub fn resolve_readonly(&self, v: Value) -> Value {
        self.uf.find_readonly(v)
    }

    /// The current mutation version (stamped on the most recent change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The rows inserted or rewritten strictly after version `since`.
    ///
    /// Cost is proportional to the number of dirty stamps after `since`
    /// (a binary search plus a suffix drain of the dirty-row log), not to
    /// the total row count.
    pub fn delta_since(&self, since: u64) -> RowDelta {
        let start = self.dirty_log.partition_point(|&(v, _)| v <= since);
        let delta =
            RowDelta::from_ids(self.dirty_log[start..].iter().map(|&(_, id)| id).collect());
        debug_assert_eq!(
            delta.ids(),
            self.row_versions
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > since)
                .map(|(i, _)| i as u32)
                .collect::<Vec<_>>()
                .as_slice(),
            "dirty log diverged from the row-version stamps"
        );
        delta
    }

    /// Compacts the dirty log down to one entry per row (its latest stamp)
    /// once stale entries outnumber live rows, keeping `delta_since` drains
    /// proportional to real deltas on merge-heavy runs.
    fn maybe_compact_log(&mut self) {
        if self.dirty_log.len() <= 2 * self.row_versions.len() + 64 {
            return;
        }
        let mut entries: Vec<(u64, u32)> = self
            .row_versions
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        entries.sort_unstable();
        self.dirty_log = entries;
    }

    /// Inserts a row after canonicalizing its values.
    /// Returns `true` if the row is new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        let canon = t.map(|v| self.uf.find(v));
        if self.relation.insert(canon) {
            self.version += 1;
            self.row_versions.push(self.version);
            self.dirty_log
                .push((self.version, self.row_versions.len() as u32 - 1));
            true
        } else {
            false
        }
    }

    /// Merges the classes of `a` and `b` and rewrites the rows containing
    /// the losing representative (located through the relation's index; no
    /// full rescan).
    ///
    /// Returns `(winner, loser)` if the classes were distinct.
    pub fn merge(&mut self, a: Value, b: Value) -> Option<(Value, Value)> {
        let (winner, loser) = self.uf.union(a, b)?;
        // Rows hold canonical representatives only, so the sole stale value
        // is `loser`; rewrite exactly the rows containing it.
        if let Some(report) = self.relation.rewrite_value(loser, winner) {
            if !report.removed.is_empty() {
                // Duplicate rows were compacted away: shift version stamps
                // and remap the dirty log (entries of removed rows vanish —
                // their surviving duplicate carries its own stamps).
                let removed: FxHashSet<u32> = report.removed.iter().copied().collect();
                let mut remap: Vec<Option<u32>> = Vec::with_capacity(self.row_versions.len());
                let mut next = 0u32;
                for i in 0..self.row_versions.len() as u32 {
                    if removed.contains(&i) {
                        remap.push(None);
                    } else {
                        remap.push(Some(next));
                        next += 1;
                    }
                }
                let mut idx = 0usize;
                self.row_versions.retain(|_| {
                    let keep = remap[idx].is_some();
                    idx += 1;
                    keep
                });
                self.dirty_log.retain_mut(|entry| match remap[entry.1 as usize] {
                    Some(n) => {
                        entry.1 = n;
                        true
                    }
                    None => false,
                });
            }
            self.version += 1;
            for &i in &report.changed {
                self.row_versions[i as usize] = self.version;
                self.dirty_log.push((self.version, i));
            }
            self.maybe_compact_log();
            debug_assert_eq!(self.row_versions.len(), self.relation.len());
        }
        Some((winner, loser))
    }

    /// `true` if `a` and `b` are currently identified.
    pub fn identified(&mut self, a: Value, b: Value) -> bool {
        self.uf.same(a, b)
    }

    /// Replaces the row set wholesale (used by the core-chase retraction),
    /// keeping the union-find and the frozen set. Every row of the
    /// replacement is stamped dirty, so the next semi-naive scan is a full
    /// rescan — retraction may both remove rows and remap values, which
    /// invalidates per-row change tracking.
    ///
    /// # Panics
    /// Panics if the replacement is over a different universe.
    pub fn replace_relation(&mut self, relation: Relation) {
        assert_eq!(relation.universe().width(), self.relation.universe().width());
        self.version += 1;
        self.row_versions = vec![self.version; relation.len()];
        self.dirty_log = (0..relation.len() as u32)
            .map(|i| (self.version, i))
            .collect();
        self.relation = relation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::{Universe, ValuePool};

    #[test]
    fn insert_canonicalizes() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c) = (p.untyped("a"), p.untyped("b"), p.untyped("c"));
        let mut inst = ChaseInstance::new(u.clone(), [Tuple::new(vec![a, b, c])]);
        assert_eq!(inst.len(), 1);
        assert!(inst.frozen().contains(&a));

        inst.merge(b, c);
        let root = inst.resolve(c);
        assert_eq!(root, inst.resolve(b));
        // Row was rewritten: column B' and C' now share the representative.
        let row = inst.relation().row(0);
        assert_eq!(row.get(u.a("B'")), row.get(u.a("C'")));
        // Inserting the un-canonical row again is a no-op.
        assert!(!inst.insert(Tuple::new(vec![a, b, c])));
    }

    #[test]
    fn merge_collapses_duplicate_rows() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b1, b2, c) = (
            p.untyped("a"),
            p.untyped("b1"),
            p.untyped("b2"),
            p.untyped("c"),
        );
        let mut inst = ChaseInstance::new(
            u.clone(),
            [
                Tuple::new(vec![a, b1, c]),
                Tuple::new(vec![a, b2, c]),
            ],
        );
        assert_eq!(inst.len(), 2);
        inst.merge(b1, b2);
        assert_eq!(inst.len(), 1, "merged rows must collapse");
    }

    #[test]
    fn delta_tracks_inserts_and_merges() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c, d) = (
            p.untyped("a"),
            p.untyped("b"),
            p.untyped("c"),
            p.untyped("d"),
        );
        let mut inst = ChaseInstance::new(
            u.clone(),
            [Tuple::new(vec![a, b, c]), Tuple::new(vec![a, c, d])],
        );
        // Everything is dirty relative to version 0.
        assert_eq!(inst.delta_since(0).ids(), &[0, 1]);
        let checkpoint = inst.version();
        assert!(inst.delta_since(checkpoint).is_empty());

        // An insert dirties exactly the new row.
        assert!(inst.insert(Tuple::new(vec![d, d, d])));
        assert_eq!(inst.delta_since(checkpoint).ids(), &[2]);

        // A merge dirties exactly the rewritten rows.
        let checkpoint = inst.version();
        inst.merge(b, c);
        // Rows 0 and 1 contain the loser c (b wins: smaller index); row 2
        // is untouched.
        assert_eq!(inst.delta_since(checkpoint).ids(), &[0, 1]);
    }

    #[test]
    fn delta_survives_merge_compaction() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b1, b2, c, x) = (
            p.untyped("a"),
            p.untyped("b1"),
            p.untyped("b2"),
            p.untyped("c"),
            p.untyped("x"),
        );
        let mut inst = ChaseInstance::new(
            u.clone(),
            [
                Tuple::new(vec![a, b1, c]),
                Tuple::new(vec![a, b2, c]),
                Tuple::new(vec![x, x, x]),
            ],
        );
        let checkpoint = inst.version();
        inst.merge(b1, b2);
        assert_eq!(inst.len(), 2, "duplicate row collapsed");
        // Old row 1 rewrote into a copy of row 0 and vanished; row 0 itself
        // never changed, and old row 2 (now row 1) must not be dirty either
        // — a collapsed duplicate creates no new embeddings.
        let delta = inst.delta_since(checkpoint);
        assert!(delta.is_empty(), "unexpected dirty rows: {:?}", delta.ids());
        // Version bookkeeping stayed aligned with the rows.
        assert_eq!(inst.relation().cell(1, u.a("A'")), x);
    }

    #[test]
    fn replace_relation_dirties_everything() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c) = (p.untyped("a"), p.untyped("b"), p.untyped("c"));
        let mut inst = ChaseInstance::new(u.clone(), [Tuple::new(vec![a, b, c])]);
        let checkpoint = inst.version();
        let replacement = Relation::from_rows(
            u.clone(),
            [Tuple::new(vec![a, b, c]), Tuple::new(vec![b, c, a])],
        );
        inst.replace_relation(replacement);
        assert_eq!(inst.delta_since(checkpoint).ids(), &[0, 1]);
    }

    #[test]
    fn dirty_log_compaction_preserves_deltas() {
        // Re-stamp the same rows many times (every merge rewrites row 0) so
        // the log's stale entries force a compaction; `delta_since` carries
        // a debug assertion comparing the log against the stamp vector, so
        // each call cross-checks the two representations.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let vals: Vec<_> = (0..64).map(|i| p.untyped(&format!("v{i}"))).collect();
        let mut inst = ChaseInstance::new(
            u.clone(),
            [
                Tuple::new(vec![vals[0], vals[1], vals[2]]),
                Tuple::new(vec![vals[3], vals[4], vals[5]]),
            ],
        );
        for w in vals.windows(2) {
            let checkpoint = inst.version();
            inst.merge(w[0], w[1]);
            assert!(inst.delta_since(checkpoint).ids().len() <= inst.len());
            assert_eq!(inst.delta_since(inst.version()).ids(), &[] as &[u32]);
        }
        // Every surviving row ends up fully merged; all rows were dirtied
        // at some point and the final delta from version 0 covers them all.
        assert_eq!(
            inst.delta_since(0).ids().len(),
            inst.len(),
            "full-history delta must cover every row"
        );
    }

    #[test]
    fn merge_is_idempotent() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c) = (p.untyped("a"), p.untyped("b"), p.untyped("c"));
        let mut inst = ChaseInstance::new(u.clone(), [Tuple::new(vec![a, b, c])]);
        assert!(inst.merge(a, b).is_some());
        assert!(inst.merge(a, b).is_none());
        assert!(inst.identified(a, b));
    }
}
