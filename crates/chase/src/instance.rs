//! The mutable tableau the chase operates on.
//!
//! A chase instance starts from the goal dependency's hypothesis (whose
//! values are *frozen* — they are the symbols the final answer is phrased
//! in) and grows by td steps (new rows with fresh labeled nulls) and egd
//! steps (merging two values in a union-find, then rewriting all rows to
//! canonical representatives).

use crate::unionfind::UnionFind;
use std::sync::Arc;
use typedtd_relational::{FxHashSet, Relation, Tuple, Universe, Value};

/// Mutable chase state.
#[derive(Clone)]
pub struct ChaseInstance {
    relation: Relation,
    uf: UnionFind,
    frozen: FxHashSet<Value>,
}

impl ChaseInstance {
    /// Starts an instance from initial rows; all their values are frozen.
    pub fn new(universe: Arc<Universe>, rows: impl IntoIterator<Item = Tuple>) -> Self {
        let relation = Relation::from_rows(universe, rows);
        let frozen = relation.val();
        Self {
            relation,
            uf: UnionFind::new(),
            frozen,
        }
    }

    /// The current rows as a relation (canonical representatives only).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The universe of the instance.
    pub fn universe(&self) -> &Arc<Universe> {
        self.relation.universe()
    }

    /// The frozen (initial) values.
    pub fn frozen(&self) -> &FxHashSet<Value> {
        &self.frozen
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// `true` if the instance has no rows.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Canonical representative of `v` under the merges so far.
    pub fn resolve(&mut self, v: Value) -> Value {
        self.uf.find(v)
    }

    /// Canonical representative without path compression.
    pub fn resolve_readonly(&self, v: Value) -> Value {
        self.uf.find_readonly(v)
    }

    /// Inserts a row after canonicalizing its values.
    /// Returns `true` if the row is new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        let canon = t.map(|v| self.uf.find(v));
        self.relation.insert(canon)
    }

    /// Merges the classes of `a` and `b` and rewrites all rows.
    ///
    /// Returns `(winner, loser)` if the classes were distinct.
    pub fn merge(&mut self, a: Value, b: Value) -> Option<(Value, Value)> {
        let merged = self.uf.union(a, b)?;
        // Rewrite every row to canonical form; duplicates collapse.
        let universe = self.relation.universe().clone();
        let old_rows: Vec<Tuple> = self.relation.rows().to_vec();
        let mut fresh = Relation::new(universe);
        for t in old_rows {
            fresh.insert(t.map(|v| self.uf.find(v)));
        }
        self.relation = fresh;
        Some(merged)
    }

    /// `true` if `a` and `b` are currently identified.
    pub fn identified(&mut self, a: Value, b: Value) -> bool {
        self.uf.same(a, b)
    }

    /// Replaces the row set wholesale (used by the core-chase retraction),
    /// keeping the union-find and the frozen set.
    ///
    /// # Panics
    /// Panics if the replacement is over a different universe.
    pub fn replace_relation(&mut self, relation: Relation) {
        assert_eq!(relation.universe().width(), self.relation.universe().width());
        self.relation = relation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::{Universe, ValuePool};

    #[test]
    fn insert_canonicalizes() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c) = (p.untyped("a"), p.untyped("b"), p.untyped("c"));
        let mut inst = ChaseInstance::new(u.clone(), [Tuple::new(vec![a, b, c])]);
        assert_eq!(inst.len(), 1);
        assert!(inst.frozen().contains(&a));

        inst.merge(b, c);
        let root = inst.resolve(c);
        assert_eq!(root, inst.resolve(b));
        // Row was rewritten: column B' and C' now share the representative.
        let row = &inst.relation().rows()[0];
        assert_eq!(row.get(u.a("B'")), row.get(u.a("C'")));
        // Inserting the un-canonical row again is a no-op.
        assert!(!inst.insert(Tuple::new(vec![a, b, c])));
    }

    #[test]
    fn merge_collapses_duplicate_rows() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b1, b2, c) = (
            p.untyped("a"),
            p.untyped("b1"),
            p.untyped("b2"),
            p.untyped("c"),
        );
        let mut inst = ChaseInstance::new(
            u.clone(),
            [
                Tuple::new(vec![a, b1, c]),
                Tuple::new(vec![a, b2, c]),
            ],
        );
        assert_eq!(inst.len(), 2);
        inst.merge(b1, b2);
        assert_eq!(inst.len(), 1, "merged rows must collapse");
    }

    #[test]
    fn merge_is_idempotent() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let (a, b, c) = (p.untyped("a"), p.untyped("b"), p.untyped("c"));
        let mut inst = ChaseInstance::new(u.clone(), [Tuple::new(vec![a, b, c])]);
        assert!(inst.merge(a, b).is_some());
        assert!(inst.merge(a, b).is_none());
        assert!(inst.identified(a, b));
    }
}
