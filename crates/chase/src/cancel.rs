//! Cooperative cancellation for the resumable tasks.
//!
//! The paper's undecidability theorems mean any chase or decision task may
//! run forever; a scheduler multiplexing many of them therefore needs a
//! way to *stop* one mid-flight without waiting for its budget to expire.
//! A [`CancelToken`] is a shared atomic flag: the owner (typically a
//! service holding the job) trips it from any thread, and the task checks
//! it at its natural preemption granularity — once per chase round
//! ([`crate::ChaseTask`]), once per search attempt
//! ([`crate::SearchTask`]), and at every phase boundary
//! ([`crate::DecideTask`]). A cancelled task stops within the fuel slice
//! it is currently executing and reports a terminal cancelled outcome
//! instead of burning its remaining budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag. Cloning shares the flag: any
/// clone's [`CancelToken::cancel`] is observed by every holder.
///
/// Cancellation is *cooperative* and *sticky*: tasks poll the flag at
/// round/attempt granularity, and once tripped the token never resets.
/// Cancelling a task that has already finished is a no-op — it keeps
/// reporting its real outcome.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any holder has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        u.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
