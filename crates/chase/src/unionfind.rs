//! Union-find over interned values, used for equality-generating chase steps.
//!
//! Merging keeps the *older* (smaller-index) value as representative, so
//! frozen tableau values survive merges with younger labeled nulls — the
//! chase's output then reads in terms of the goal dependency's own symbols.

use typedtd_relational::Value;

/// Disjoint-set forest keyed by [`Value`] indices.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, v: Value) {
        let idx = v.index();
        while self.parent.len() <= idx {
            self.parent.push(self.parent.len() as u32);
        }
    }

    /// Representative of `v`'s class (with path compression).
    pub fn find(&mut self, v: Value) -> Value {
        self.ensure(v);
        let mut root = v.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress.
        let mut cur = v.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        Value(root)
    }

    /// Read-only find (no compression), for shared contexts.
    pub fn find_readonly(&self, v: Value) -> Value {
        let mut cur = v.0;
        loop {
            let p = self
                .parent
                .get(cur as usize)
                .copied()
                .unwrap_or(cur);
            if p == cur {
                return Value(cur);
            }
            cur = p;
        }
    }

    /// Merges the classes of `a` and `b`; the smaller index wins.
    /// Returns `(winner, loser)` if a merge happened.
    pub fn union(&mut self, a: Value, b: Value) -> Option<(Value, Value)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (winner, loser) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
        self.parent[loser.index()] = winner.0;
        Some((winner, loser))
    }

    /// `true` if `a` and `b` are in the same class.
    pub fn same(&mut self, a: Value, b: Value) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_values_are_their_own_class() {
        let mut uf = UnionFind::new();
        assert_eq!(uf.find(Value(7)), Value(7));
        assert!(!uf.same(Value(1), Value(2)));
    }

    #[test]
    fn union_prefers_older_value() {
        let mut uf = UnionFind::new();
        assert_eq!(uf.union(Value(5), Value(2)), Some((Value(2), Value(5))));
        assert_eq!(uf.find(Value(5)), Value(2));
        assert!(uf.same(Value(5), Value(2)));
        assert_eq!(uf.union(Value(5), Value(2)), None, "already merged");
    }

    #[test]
    fn transitive_merges() {
        let mut uf = UnionFind::new();
        uf.union(Value(1), Value(2));
        uf.union(Value(2), Value(3));
        uf.union(Value(10), Value(3));
        assert_eq!(uf.find(Value(10)), Value(1));
        assert!(uf.same(Value(1), Value(10)));
    }

    #[test]
    fn readonly_find_matches() {
        let mut uf = UnionFind::new();
        uf.union(Value(4), Value(9));
        assert_eq!(uf.find_readonly(Value(9)), Value(4));
        assert_eq!(uf.find_readonly(Value(100)), Value(100));
    }
}
