//! Chase traces: machine-checkable derivations, printable in the style of
//! the paper's Lemma 10 inference table
//! (`s1  a2 b2 c2 x3   (From w and u by Aj ↠ Ak)`).

use std::sync::Arc;
use typedtd_relational::{Tuple, Universe, Value, ValuePool};

/// What a single chase step did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A td step added `row` (already in canonical form at add time).
    AddRow {
        /// The tuple added to the instance.
        row: Tuple,
    },
    /// An egd step merged two values; `kept` is the surviving representative.
    Merge {
        /// Surviving representative.
        kept: Value,
        /// Absorbed value.
        gone: Value,
    },
}

/// One applied trigger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaseStep {
    /// Index of the dependency (into the Σ passed to the engine).
    pub dep: usize,
    /// The instance rows the hypothesis matched (images under the trigger
    /// valuation, cloned at fire time).
    pub matched: Vec<Tuple>,
    /// The effect.
    pub kind: StepKind,
}

/// A full derivation.
#[derive(Clone, Debug, Default)]
pub struct ChaseTrace {
    /// Steps in application order.
    pub steps: Vec<ChaseStep>,
}

impl ChaseTrace {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if no step was taken.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Renders the trace in the paper's inference-chain format. `labels`
    /// names the dependencies of Σ; rows are labelled `s1, s2, …`.
    pub fn render(
        &self,
        universe: &Arc<Universe>,
        pool: &ValuePool,
        labels: &[String],
    ) -> String {
        let mut out = String::new();
        let name = |v: Value| pool.name(v).to_string();
        for (i, step) in self.steps.iter().enumerate() {
            let label = labels
                .get(step.dep)
                .cloned()
                .unwrap_or_else(|| format!("dep#{}", step.dep));
            match &step.kind {
                StepKind::AddRow { row } => {
                    let cells: Vec<String> = universe
                        .attrs()
                        .map(|a| name(row.get(a)))
                        .collect();
                    out.push_str(&format!(
                        "s{:<3} {}   (from {} matched row(s) by {})\n",
                        i + 1,
                        cells.join(" "),
                        step.matched.len(),
                        label
                    ));
                }
                StepKind::Merge { kept, gone } => {
                    out.push_str(&format!(
                        "s{:<3} {} := {}   (equality by {})\n",
                        i + 1,
                        name(*gone),
                        name(*kept),
                        label
                    ));
                }
            }
        }
        out
    }

    /// Number of td (row-adding) steps.
    pub fn rows_added(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::AddRow { .. }))
            .count()
    }

    /// Number of egd (merging) steps.
    pub fn merges(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Merge { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::Universe;

    #[test]
    fn render_smoke() {
        let u = Universe::untyped_abc();
        let mut p = typedtd_relational::ValuePool::new(u.clone());
        let (a, b, c) = (p.untyped("a"), p.untyped("b"), p.untyped("c"));
        let trace = ChaseTrace {
            steps: vec![
                ChaseStep {
                    dep: 0,
                    matched: vec![Tuple::new(vec![a, b, c])],
                    kind: StepKind::AddRow {
                        row: Tuple::new(vec![a, a, c]),
                    },
                },
                ChaseStep {
                    dep: 1,
                    matched: vec![],
                    kind: StepKind::Merge { kept: a, gone: b },
                },
            ],
        };
        let s = trace.render(&u, &p, &["tdX".into(), "egdY".into()]);
        assert!(s.contains("tdX"));
        assert!(s.contains("b := a"));
        assert_eq!(trace.rows_added(), 1);
        assert_eq!(trace.merges(), 1);
    }
}
