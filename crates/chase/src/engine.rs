//! The chase engine: a *fair*, **semi-naive** semidecision procedure for
//! (finite) implication of template and equality-generating dependencies.
//!
//! To test `Σ ⊨ (w, I)` the engine freezes `I` as the initial instance and
//! repeatedly fires unsatisfied dependencies of `Σ`:
//!
//! * an egd trigger merges two values (union-find, then index-driven
//!   rewriting of exactly the rows containing the losing representative);
//! * a td trigger adds the conclusion row, inventing fresh labeled nulls for
//!   its existential values.
//!
//! # Delta-driven rounds
//!
//! Rounds are breadth-first — every trigger existing at the start of a round
//! fires (or is re-verified as satisfied) before triggers discovered later —
//! which makes the chase fair, hence complete for implication. Naively, each
//! round re-enumerates every hypothesis embedding against the *entire*
//! instance, so chase cost grows quadratically with the instance. This
//! engine is instead *semi-naive*, in the Datalog sense:
//!
//! * [`ChaseInstance`] stamps every row with the mutation version at which
//!   it was inserted or last rewritten;
//! * the runner remembers, per dependency, the version up to which the
//!   instance has been fully checked (`seen`);
//! * trigger discovery for a dependency only enumerates embeddings that
//!   touch at least one row of the *delta* — the rows stamped after `seen`
//!   — via [`Embedder::for_each_embedding_touching`], which pins one
//!   hypothesis row to the delta and backtracks over the rest.
//!
//! This is sound and complete because triggers are monotone in the chase:
//! an embedding whose rows are all old and unchanged was already enumerated
//! when those rows were last in a delta, and was then either fired (its
//! conclusion row persists, modulo canonicalization) or verified satisfied
//! (satisfaction persists: rows are never deleted, only canonically
//! rewritten, and homomorphisms compose with the canonicalization map). The
//! only operation that breaks per-row tracking — the core chase's
//! retraction, which may remove rows and remap values wholesale — stamps
//! every surviving row dirty, forcing a full rescan.
//!
//! The naive full-rescan behaviour is preserved behind
//! [`ChaseConfig::semi_naive`]` = false` as a differential-testing
//! reference: both modes produce identical [`ChaseOutcome`]s, round counts,
//! and (up to isomorphism of labeled nulls) final instances.
//!
//! With [`ChaseConfig::parallel`] the per-round trigger scan fans out
//! across dependencies on scoped threads; collected triggers are applied in
//! dependency order regardless of thread completion order, so traces stay
//! reproducible.
//!
//! Three variants are provided for the ablation benches: the standard
//! (restricted) chase, the oblivious chase (fires every trigger once,
//! satisfied or not), and the core chase (retracts the instance to its core
//! each round; terminates whenever any chase sequence does).

use crate::core_retract::core_retract;
use crate::instance::ChaseInstance;
use crate::trace::{ChaseStep, ChaseTrace, StepKind};
use std::ops::ControlFlow;
use std::sync::Arc;
use typedtd_dependencies::{Td, TdOrEgd};
use typedtd_relational::{
    Embedder, FxHashMap, FxHashSet, Relation, RowDelta, Tuple, Universe, Valuation, Value,
    ValuePool,
};

/// Which chase strategy to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseVariant {
    /// Restricted chase: fire only triggers whose conclusion is absent.
    Standard,
    /// Oblivious chase: fire every trigger exactly once.
    Oblivious,
    /// Standard chase plus a core retraction after every round.
    Core,
}

/// Budget and strategy knobs.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum breadth-first rounds before giving up.
    pub max_rounds: usize,
    /// Maximum instance rows before giving up.
    pub max_rows: usize,
    /// Maximum applied steps (row adds + merges) before giving up.
    pub max_steps: usize,
    /// Strategy.
    pub variant: ChaseVariant,
    /// Scan dependencies for triggers on multiple threads.
    pub parallel: bool,
    /// Delta-driven (semi-naive) trigger discovery. `false` restores the
    /// naive full-rescan reference; outcomes are identical either way.
    pub semi_naive: bool,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        Self {
            max_rounds: 256,
            max_rows: 4_096,
            max_steps: 32_768,
            variant: ChaseVariant::Standard,
            parallel: false,
            semi_naive: true,
        }
    }
}

impl ChaseConfig {
    /// A configuration with a tight budget, for search loops.
    pub fn quick() -> Self {
        Self {
            max_rounds: 24,
            max_rows: 512,
            max_steps: 2_048,
            ..Self::default()
        }
    }

    /// Selects a chase variant.
    pub fn with_variant(mut self, v: ChaseVariant) -> Self {
        self.variant = v;
        self
    }

    /// Enables parallel trigger scanning.
    pub fn with_parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Toggles semi-naive (delta-driven) trigger discovery.
    pub fn with_semi_naive(mut self, on: bool) -> Self {
        self.semi_naive = on;
        self
    }
}

/// Result status of a chase run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// The goal became derivable: `Σ ⊨ σ` (hence also `Σ ⊨_f σ`).
    Implied,
    /// A terminal instance was reached and the goal fails in it: the
    /// instance is a finite counterexample, so `Σ ⊭ σ` and `Σ ⊭_f σ`.
    NotImplied,
    /// The budget ran out before either certificate appeared.
    Exhausted,
}

/// A finished chase run.
#[derive(Clone, Debug)]
pub struct ChaseRun {
    /// What the run established.
    pub outcome: ChaseOutcome,
    /// The derivation (row adds and merges, in order).
    pub trace: ChaseTrace,
    /// The final instance (a universal model when `outcome` is
    /// `NotImplied`).
    pub final_relation: Relation,
    /// Breadth-first rounds executed.
    pub rounds: usize,
}

/// The implication goal: a td or an egd.
pub type Goal = TdOrEgd;

/// Tests `Σ ⊨ goal` by chasing the goal's hypothesis with `Σ`.
///
/// Fresh labeled nulls are minted from `pool` (which must be the pool the
/// dependencies' values came from).
///
/// ```
/// use typedtd_chase::{chase_implication, ChaseConfig, ChaseOutcome};
/// use typedtd_dependencies::{Mvd, TdOrEgd};
/// use typedtd_relational::{Universe, ValuePool};
///
/// // A ↠ B implies A ↠ C over ABC (complementation).
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let mut pool = ValuePool::new(u.clone());
/// let sigma = vec![TdOrEgd::Td(Mvd::parse(&u, "A ->> B").to_pjd().to_td(&u, &mut pool))];
/// let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").to_pjd().to_td(&u, &mut pool));
/// let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
/// assert_eq!(run.outcome, ChaseOutcome::Implied);
/// ```
pub fn chase_implication(
    sigma: &[TdOrEgd],
    goal: &Goal,
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> ChaseRun {
    let (universe, init): (Arc<Universe>, &[Tuple]) = match goal {
        TdOrEgd::Td(td) => (td.universe().clone(), td.hypothesis()),
        TdOrEgd::Egd(e) => (e.universe().clone(), e.hypothesis()),
    };
    let mut runner = Runner::new(universe, init.iter().cloned(), sigma, pool, cfg);
    runner.run(Some(goal))
}

/// Chases an initial relation to a fixpoint ("saturation"): the result is a
/// universal model of `Σ` over the initial rows if `terminal` is reached.
pub fn saturate(
    init: &Relation,
    sigma: &[TdOrEgd],
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> ChaseRun {
    let mut runner = Runner::new(
        init.universe().clone(),
        init.rows().iter().cloned(),
        sigma,
        pool,
        cfg,
    );
    runner.run(None)
}

struct Runner<'a> {
    universe: Arc<Universe>,
    inst: ChaseInstance,
    sigma: &'a [TdOrEgd],
    pool: &'a mut ValuePool,
    cfg: &'a ChaseConfig,
    trace: ChaseTrace,
    steps: usize,
    /// Oblivious-chase memory of fired triggers, per dependency. Keys are
    /// the dependency's sorted hypothesis values under the trigger's
    /// valuation; per-dep sets allow allocation-free slice lookups.
    fired: Vec<FxHashSet<Vec<Value>>>,
    /// Per-dependency sorted hypothesis value lists (trigger keys).
    hyp_vals: Vec<Vec<Value>>,
    /// Per-dependency instance version up to which the dependency has been
    /// fully verified (the semi-naive frontier).
    seen: Vec<u64>,
    /// Scratch buffer for oblivious trigger keys.
    key_buf: Vec<Value>,
}

enum Stop {
    Implied,
    Terminal,
    Exhausted,
}

impl<'a> Runner<'a> {
    fn new(
        universe: Arc<Universe>,
        init: impl IntoIterator<Item = Tuple>,
        sigma: &'a [TdOrEgd],
        pool: &'a mut ValuePool,
        cfg: &'a ChaseConfig,
    ) -> Self {
        let hyp_vals: Vec<Vec<Value>> = sigma
            .iter()
            .map(|d| {
                let mut vals: Vec<Value> = match d {
                    TdOrEgd::Td(t) => t.hypothesis_values().into_iter().collect(),
                    TdOrEgd::Egd(e) => {
                        let mut s = FxHashSet::default();
                        for t in e.hypothesis() {
                            s.extend(t.val());
                        }
                        s.into_iter().collect()
                    }
                };
                vals.sort_unstable();
                vals
            })
            .collect();
        Self {
            universe: universe.clone(),
            inst: ChaseInstance::new(universe, init),
            sigma,
            pool,
            cfg,
            trace: ChaseTrace::default(),
            steps: 0,
            fired: vec![FxHashSet::default(); sigma.len()],
            hyp_vals,
            seen: vec![0; sigma.len()],
            key_buf: Vec::new(),
        }
    }

    fn run(&mut self, goal: Option<&Goal>) -> ChaseRun {
        let mut rounds = 0usize;
        let stop = loop {
            match self.egd_saturate() {
                ControlFlow::Break(s) => break s,
                ControlFlow::Continue(()) => {}
            }
            if let Some(g) = goal {
                if self.goal_holds(g) {
                    break Stop::Implied;
                }
            }
            let triggers = self.collect_td_triggers();
            if triggers.is_empty() {
                break Stop::Terminal;
            }
            if rounds >= self.cfg.max_rounds {
                break Stop::Exhausted;
            }
            match self.apply_td_triggers(triggers) {
                ControlFlow::Break(s) => break s,
                ControlFlow::Continue(()) => {}
            }
            if self.cfg.variant == ChaseVariant::Core {
                self.retract_to_core();
            }
            rounds += 1;
        };
        let outcome = match stop {
            Stop::Implied => ChaseOutcome::Implied,
            Stop::Terminal => {
                // With a goal, terminal means the universal model refutes it;
                // in saturation mode it simply means the fixpoint was reached
                // (reported as NotImplied = "terminal").
                ChaseOutcome::NotImplied
            }
            Stop::Exhausted => ChaseOutcome::Exhausted,
        };
        ChaseRun {
            outcome,
            trace: std::mem::take(&mut self.trace),
            final_relation: self.inst.relation().clone(),
            rounds,
        }
    }

    /// Applies egd merges until none is violated.
    ///
    /// Semi-naive: an egd whose delta is empty is already satisfied (its
    /// hypothesis embeddings into unchanged rows were verified when those
    /// rows were last dirty, and merges only repair violations on the rows
    /// they rewrite — which the rewrite stamps dirty again).
    fn egd_saturate(&mut self) -> ControlFlow<Stop> {
        'outer: loop {
            // Deltas cached per distinct frontier for this pass; a merge
            // restarts the pass (and the cache) via `continue 'outer`.
            let mut delta_cache: FxHashMap<u64, RowDelta> = FxHashMap::default();
            for (di, dep) in self.sigma.iter().enumerate() {
                let TdOrEgd::Egd(e) = dep else { continue };
                let scanned_at = self.inst.version();
                let violation = if self.cfg.semi_naive {
                    if scanned_at == self.seen[di] {
                        continue; // frontier current: skip the stamp scan
                    }
                    let inst = &self.inst;
                    let delta = delta_cache
                        .entry(self.seen[di])
                        .or_insert_with(|| inst.delta_since(self.seen[di]));
                    if delta.is_empty() {
                        self.seen[di] = scanned_at;
                        continue;
                    }
                    e.violation_touching(self.inst.relation(), delta)
                } else {
                    e.violation(self.inst.relation())
                };
                let Some(alpha) = violation else {
                    // Fully verified at this version; nothing before it can
                    // become violating without being stamped dirty.
                    self.seen[di] = scanned_at;
                    continue;
                };
                let a = alpha.get(e.left()).expect("left bound by hypothesis");
                let b = alpha.get(e.right()).expect("right bound by hypothesis");
                let matched = alpha.apply_rows(e.hypothesis());
                if let Some((kept, gone)) = self.inst.merge(a, b) {
                    self.trace.steps.push(ChaseStep {
                        dep: di,
                        matched,
                        kind: StepKind::Merge { kept, gone },
                    });
                    self.steps += 1;
                    if self.steps >= self.cfg.max_steps {
                        return ControlFlow::Break(Stop::Exhausted);
                    }
                }
                continue 'outer;
            }
            return ControlFlow::Continue(());
        }
    }

    /// Checks whether the goal is now derivable.
    fn goal_holds(&mut self, goal: &Goal) -> bool {
        match goal {
            TdOrEgd::Egd(e) => self.inst.identified(e.left(), e.right()),
            TdOrEgd::Td(td) => {
                let seed = Valuation::from_pairs(
                    td.hypothesis_values()
                        .into_iter()
                        .map(|v| (v, self.inst.resolve(v))),
                );
                let emb = Embedder::new(self.inst.relation());
                emb.embeds(std::slice::from_ref(td.conclusion()), &seed)
            }
        }
    }

    /// Enumerates td triggers against the current (immutable this round)
    /// instance. For the standard and core variants only *unsatisfied*
    /// triggers count; the oblivious variant takes every not-yet-fired one.
    ///
    /// Semi-naive: each td only enumerates embeddings touching its delta;
    /// its `seen` frontier then advances to the scanned version. With
    /// `cfg.parallel`, dependencies are scanned on scoped threads and the
    /// results concatenated in dependency order, so the collected trigger
    /// list — and hence the applied trace — is deterministic.
    fn collect_td_triggers(&mut self) -> Vec<(usize, Valuation)> {
        let oblivious = self.cfg.variant == ChaseVariant::Oblivious;
        let scanned_at = self.inst.version();
        // Per-td delta (None = scan everything, the naive reference).
        // Frontiers are usually identical across tds in the steady state, so
        // deltas are cached per distinct `since` value: one stamp scan per
        // frontier instead of one per dependency.
        let sinces: Vec<Option<u64>> = self
            .sigma
            .iter()
            .enumerate()
            .map(|(di, dep)| match dep {
                TdOrEgd::Td(_) if self.cfg.semi_naive => Some(self.seen[di]),
                _ => None,
            })
            .collect();
        let mut delta_cache: FxHashMap<u64, RowDelta> = FxHashMap::default();
        for &since in sinces.iter().flatten() {
            let inst = &self.inst;
            delta_cache.entry(since).or_insert_with(|| {
                if since == scanned_at {
                    // Frontier current: empty delta without a stamp scan.
                    RowDelta::default()
                } else {
                    inst.delta_since(since)
                }
            });
        }
        let deltas: Vec<Option<&RowDelta>> = sinces
            .iter()
            .map(|s| s.map(|since| &delta_cache[&since]))
            .collect();
        let relation = self.inst.relation();
        let scan = |di: usize,
                    td: &Td,
                    emb: &Embedder<'_>,
                    fired: &[FxHashSet<Vec<Value>>],
                    hyp_vals: &[Vec<Value>]|
         -> Vec<(usize, Valuation)> {
            let mut out = Vec::new();
            let mut key_buf: Vec<Value> = Vec::new();
            let mut visit = |alpha: &Valuation| {
                let is_trigger = if oblivious {
                    key_buf.clear();
                    key_buf.extend(
                        hyp_vals[di]
                            .iter()
                            .map(|&v| alpha.get(v).expect("hypothesis value bound")),
                    );
                    !fired[di].contains(key_buf.as_slice())
                } else {
                    !emb.embeds(std::slice::from_ref(td.conclusion()), alpha)
                };
                if is_trigger {
                    out.push((di, alpha.clone()));
                }
                ControlFlow::Continue(())
            };
            match deltas[di] {
                Some(delta) => {
                    if !delta.is_empty() {
                        emb.for_each_embedding_touching(
                            td.hypothesis(),
                            &Valuation::new(),
                            delta,
                            &mut visit,
                        );
                    }
                }
                None => {
                    emb.for_each_embedding(td.hypothesis(), &Valuation::new(), &mut visit);
                }
            }
            out
        };

        let mut triggers: Vec<(usize, Valuation)> = Vec::new();
        if self.cfg.parallel && self.sigma.len() > 1 {
            let emb = Embedder::new(relation);
            let fired = &self.fired;
            let hyp_vals = &self.hyp_vals;
            let results: Vec<Vec<(usize, Valuation)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .sigma
                    .iter()
                    .enumerate()
                    .map(|(di, dep)| {
                        let emb = &emb;
                        let scan = &scan;
                        scope.spawn(move || match dep {
                            TdOrEgd::Td(td) => scan(di, td, emb, fired, hyp_vals),
                            TdOrEgd::Egd(_) => Vec::new(),
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in results {
                triggers.extend(r);
            }
        } else {
            let emb = Embedder::new(relation);
            for (di, dep) in self.sigma.iter().enumerate() {
                if let TdOrEgd::Td(td) = dep {
                    triggers.extend(scan(di, td, &emb, &self.fired, &self.hyp_vals));
                }
            }
        }
        if self.cfg.semi_naive {
            for (di, dep) in self.sigma.iter().enumerate() {
                if matches!(dep, TdOrEgd::Td(_)) {
                    self.seen[di] = scanned_at;
                }
            }
        }
        triggers
    }

    /// Fires the collected triggers (re-verifying each under the merges and
    /// additions that happened earlier in the round).
    fn apply_td_triggers(&mut self, triggers: Vec<(usize, Valuation)>) -> ControlFlow<Stop> {
        let oblivious = self.cfg.variant == ChaseVariant::Oblivious;
        for (di, alpha) in triggers {
            let TdOrEgd::Td(td) = &self.sigma[di] else {
                unreachable!("td trigger indexes a td")
            };
            // Resolve the trigger under any merges since collection.
            let resolved = Valuation::from_pairs(
                alpha.iter().map(|(v, img)| (v, self.inst.resolve(img))),
            );
            if oblivious {
                self.key_buf.clear();
                self.key_buf.extend(
                    self.hyp_vals[di]
                        .iter()
                        .map(|&v| resolved.get(v).expect("hypothesis value bound")),
                );
                if self.fired[di].contains(self.key_buf.as_slice()) {
                    continue;
                }
                self.fired[di].insert(self.key_buf.clone());
            } else {
                let emb = Embedder::new(self.inst.relation());
                if emb.embeds(std::slice::from_ref(td.conclusion()), &resolved) {
                    continue; // satisfied meanwhile
                }
            }
            // Extend with fresh nulls on existential conclusion values.
            let mut ext = resolved.clone();
            for a in self.universe.attrs() {
                let v = td.conclusion().get(a);
                if ext.get(v).is_none() {
                    let sort = Some(a).filter(|_| self.universe.is_typed());
                    ext.bind(v, self.pool.fresh(sort, "n"));
                }
            }
            let row = ext.apply_tuple(td.conclusion());
            let matched = resolved.apply_rows(td.hypothesis());
            if self.inst.insert(row.clone()) {
                self.trace.steps.push(ChaseStep {
                    dep: di,
                    matched,
                    kind: StepKind::AddRow { row },
                });
                self.steps += 1;
            }
            if self.steps >= self.cfg.max_steps || self.inst.len() >= self.cfg.max_rows {
                return ControlFlow::Break(Stop::Exhausted);
            }
        }
        ControlFlow::Continue(())
    }

    /// Core-chase retraction: shrink the instance to its core, keeping the
    /// frozen values fixed. Marks every row dirty (full rescan next round).
    fn retract_to_core(&mut self) {
        let frozen: FxHashSet<Value> = self
            .inst
            .frozen()
            .iter()
            .map(|&v| self.inst.resolve_readonly(v))
            .collect();
        let core = core_retract(self.inst.relation(), &frozen);
        if core.len() < self.inst.len() {
            self.inst.replace_relation(core);
        }
    }
}
