//! The chase engine: a *fair*, **semi-naive**, *resumable* semidecision
//! procedure for (finite) implication of template and equality-generating
//! dependencies.
//!
//! To test `Σ ⊨ (w, I)` the engine freezes `I` as the initial instance and
//! repeatedly fires unsatisfied dependencies of `Σ`:
//!
//! * an egd trigger merges two values (union-find, then index-driven
//!   rewriting of exactly the rows containing the losing representative);
//! * a td trigger adds the conclusion row, inventing fresh labeled nulls for
//!   its existential values.
//!
//! # Delta-driven rounds
//!
//! Rounds are breadth-first — every trigger existing at the start of a round
//! fires (or is re-verified as satisfied) before triggers discovered later —
//! which makes the chase fair, hence complete for implication. Naively, each
//! round re-enumerates every hypothesis embedding against the *entire*
//! instance, so chase cost grows quadratically with the instance. This
//! engine is instead *semi-naive*, in the Datalog sense:
//!
//! * [`ChaseInstance`] stamps every row with the mutation version at which
//!   it was inserted or last rewritten, and mirrors the stamps into an
//!   append-only dirty-row log;
//! * the runner remembers, per dependency, the version up to which the
//!   instance has been fully checked (`seen`);
//! * trigger discovery for a dependency only enumerates embeddings that
//!   touch at least one row of the *delta* — the rows stamped after `seen`,
//!   drained from the log in time proportional to the delta — via
//!   [`Embedder::for_each_embedding_touching`], which pins one hypothesis
//!   row to the delta and backtracks over the rest. Deltas are cached per
//!   distinct frontier for the pass ([`FrontierDeltas`]), shared by the egd
//!   and td scans.
//!
//! This is sound and complete because triggers are monotone in the chase:
//! an embedding whose rows are all old and unchanged was already enumerated
//! when those rows were last in a delta, and was then either fired (its
//! conclusion row persists, modulo canonicalization) or verified satisfied
//! (satisfaction persists: rows are never deleted, only canonically
//! rewritten, and homomorphisms compose with the canonicalization map). The
//! only operation that breaks per-row tracking — the core chase's
//! retraction, which may remove rows and remap values wholesale — stamps
//! every surviving row dirty, forcing a full rescan.
//!
//! The naive full-rescan behaviour is preserved behind
//! [`ChaseConfig::semi_naive`]` = false` as a differential-testing
//! reference: both modes produce identical [`ChaseOutcome`]s, round counts,
//! and (up to isomorphism of labeled nulls) final instances.
//!
//! With [`ChaseConfig::parallel`] the per-round trigger scan fans out
//! across scoped threads — but only for the dependencies with work to do:
//! egds and empty-delta tds never spawn. Collected triggers are applied in
//! dependency order regardless of thread completion order, so traces stay
//! reproducible.
//!
//! # Resumable stepping
//!
//! The engine's unit of preemption is the breadth-first round. A
//! [`ChaseTask`] owns the full mid-chase state — instance, per-dependency
//! frontiers, trace, value pool — and [`ChaseTask::step`] runs at most
//! `fuel` rounds before yielding [`StepStatus::Pending`]. This is what lets
//! a scheduler dovetail many implication queries fairly (the paper's
//! problems are undecidable, so any single query may diverge; preemption
//! bounds the damage to one fuel slice). The blocking entry points
//! [`chase_implication`] and [`saturate`] are thin drivers that create a
//! task and run it to completion.
//!
//! Three variants are provided for the ablation benches: the standard
//! (restricted) chase, the oblivious chase (fires every trigger once,
//! satisfied or not), and the core chase (retracts the instance to its core
//! each round; terminates whenever any chase sequence does).

use crate::cancel::CancelToken;
use crate::core_retract::core_retract;
use crate::instance::ChaseInstance;
use crate::trace::{ChaseStep, ChaseTrace, StepKind};
use std::ops::ControlFlow;
use std::sync::Arc;
use typedtd_dependencies::{Td, TdOrEgd};
use typedtd_relational::{
    Embedder, FxHashMap, FxHashSet, Relation, RowDelta, Tuple, Universe, Valuation, Value,
    ValuePool,
};

/// Which chase strategy to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseVariant {
    /// Restricted chase: fire only triggers whose conclusion is absent.
    Standard,
    /// Oblivious chase: fire every trigger exactly once.
    Oblivious,
    /// Standard chase plus a core retraction after every round.
    Core,
}

/// Budget and strategy knobs.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum breadth-first rounds before giving up.
    pub max_rounds: usize,
    /// Maximum instance rows before giving up.
    pub max_rows: usize,
    /// Maximum applied steps (row adds + merges) before giving up.
    pub max_steps: usize,
    /// Strategy.
    pub variant: ChaseVariant,
    /// Scan dependencies for triggers on multiple threads.
    pub parallel: bool,
    /// Delta-driven (semi-naive) trigger discovery. `false` restores the
    /// naive full-rescan reference; outcomes are identical either way.
    pub semi_naive: bool,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        Self {
            max_rounds: 256,
            max_rows: 4_096,
            max_steps: 32_768,
            variant: ChaseVariant::Standard,
            parallel: false,
            semi_naive: true,
        }
    }
}

impl ChaseConfig {
    /// A configuration with a tight budget, for search loops.
    pub fn quick() -> Self {
        Self {
            max_rounds: 24,
            max_rows: 512,
            max_steps: 2_048,
            ..Self::default()
        }
    }

    /// Selects a chase variant.
    pub fn with_variant(mut self, v: ChaseVariant) -> Self {
        self.variant = v;
        self
    }

    /// Enables parallel trigger scanning.
    pub fn with_parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Toggles semi-naive (delta-driven) trigger discovery.
    pub fn with_semi_naive(mut self, on: bool) -> Self {
        self.semi_naive = on;
        self
    }
}

/// Result status of a chase run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// The goal became derivable: `Σ ⊨ σ` (hence also `Σ ⊨_f σ`).
    Implied,
    /// A terminal instance was reached and the goal fails in it: the
    /// instance is a finite counterexample, so `Σ ⊭ σ` and `Σ ⊭_f σ`.
    NotImplied,
    /// The budget ran out before either certificate appeared.
    Exhausted,
    /// The task's [`CancelToken`] was tripped mid-run: the chase stopped
    /// at a round boundary without a certificate. Distinct from
    /// `Exhausted` so schedulers can tell "budget spent" from "owner
    /// asked us to stop".
    Cancelled,
}

/// Whether a resumable task needs more fuel or has finished.
///
/// Shared by [`ChaseTask`], [`crate::search::SearchTask`], and
/// [`crate::implication::DecideTask`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepStatus {
    /// The fuel slice ran out before the task finished; step again.
    Pending,
    /// The task finished with this outcome. Further `step` calls are no-ops
    /// returning the same status.
    Done(ChaseOutcome),
}

/// A finished chase run.
#[derive(Clone, Debug)]
pub struct ChaseRun {
    /// What the run established.
    pub outcome: ChaseOutcome,
    /// The derivation (row adds and merges, in order).
    pub trace: ChaseTrace,
    /// The final instance (a universal model when `outcome` is
    /// `NotImplied`).
    pub final_relation: Relation,
    /// Breadth-first rounds executed.
    pub rounds: usize,
}

/// The implication goal: a td or an egd.
pub type Goal = TdOrEgd;

/// Tests `Σ ⊨ goal` by chasing the goal's hypothesis with `Σ`.
///
/// Fresh labeled nulls are minted from `pool` (which must be the pool the
/// dependencies' values came from). This is a thin driver over
/// [`ChaseTask`]: it snapshots the pool into a task, runs the task to
/// completion, and writes the evolved pool back.
///
/// ```
/// use typedtd_chase::{chase_implication, ChaseConfig, ChaseOutcome};
/// use typedtd_dependencies::{Mvd, TdOrEgd};
/// use typedtd_relational::{Universe, ValuePool};
///
/// // A ↠ B implies A ↠ C over ABC (complementation).
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let mut pool = ValuePool::new(u.clone());
/// let sigma = vec![TdOrEgd::Td(Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool))];
/// let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").unwrap().to_pjd().to_td(&u, &mut pool));
/// let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
/// assert_eq!(run.outcome, ChaseOutcome::Implied);
/// ```
pub fn chase_implication(
    sigma: &[TdOrEgd],
    goal: &Goal,
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> ChaseRun {
    // Move the pool into the task (leaving an empty stand-in) instead of
    // deep-cloning it; the evolved pool moves back out at the end.
    let empty = ValuePool::new(pool.universe().clone());
    let taken = std::mem::replace(pool, empty);
    let mut task = ChaseTask::implication(sigma.to_vec(), goal.clone(), taken, cfg.clone());
    task.run_to_completion();
    let (run, evolved) = task.finish();
    *pool = evolved;
    run
}

/// Chases an initial relation to a fixpoint ("saturation"): the result is a
/// universal model of `Σ` over the initial rows if `terminal` is reached.
/// Thin driver over [`ChaseTask::saturation`].
pub fn saturate(
    init: &Relation,
    sigma: &[TdOrEgd],
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> ChaseRun {
    let empty = ValuePool::new(pool.universe().clone());
    let taken = std::mem::replace(pool, empty);
    let mut task = ChaseTask::saturation(init, sigma.to_vec(), taken, cfg.clone());
    task.run_to_completion();
    let (run, evolved) = task.finish();
    *pool = evolved;
    run
}

/// Per-pass cache of [`ChaseInstance::delta_since`] results keyed by
/// frontier version, shared by the egd and td scans. Frontiers are usually
/// identical across dependencies in the steady state, so each distinct
/// frontier drains the dirty log exactly once per pass.
#[derive(Default)]
struct FrontierDeltas {
    cache: FxHashMap<u64, RowDelta>,
}

impl FrontierDeltas {
    /// Computes (or reuses) the delta for frontier `since`.
    fn fill(&mut self, inst: &ChaseInstance, since: u64) -> &RowDelta {
        self.cache.entry(since).or_insert_with(|| {
            if since == inst.version() {
                // Frontier current: empty delta without touching the log.
                RowDelta::default()
            } else {
                inst.delta_since(since)
            }
        })
    }

    /// A previously filled delta.
    fn get(&self, since: u64) -> &RowDelta {
        &self.cache[&since]
    }
}

/// Checks whether the goal is derivable in the instance.
fn goal_holds(inst: &mut ChaseInstance, goal: &Goal) -> bool {
    match goal {
        TdOrEgd::Egd(e) => inst.identified(e.left(), e.right()),
        TdOrEgd::Td(td) => {
            let seed = Valuation::from_pairs(
                td.hypothesis_values()
                    .into_iter()
                    .map(|v| (v, inst.resolve(v))),
            );
            let emb = Embedder::new(inst.relation());
            emb.embeds(std::slice::from_ref(td.conclusion()), &seed)
        }
    }
}

/// A resumable chase: the full mid-run state of one saturation or
/// implication chase, preemptible at round granularity.
///
/// The task owns everything the chase mutates — the [`ChaseInstance`], the
/// per-dependency semi-naive frontiers, the trace, and the [`ValuePool`]
/// fresh nulls are minted from — so tasks can be held, swapped, and stepped
/// in any interleaving. [`ChaseTask::step`] runs at most `fuel`
/// breadth-first rounds; once it reports [`StepStatus::Done`], call
/// [`ChaseTask::finish`] to extract the [`ChaseRun`] and the evolved pool.
///
/// ```
/// use typedtd_chase::{ChaseConfig, ChaseOutcome, ChaseTask, StepStatus};
/// use typedtd_dependencies::{Mvd, TdOrEgd};
/// use typedtd_relational::{Universe, ValuePool};
///
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let mut pool = ValuePool::new(u.clone());
/// let sigma = vec![TdOrEgd::Td(Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool))];
/// let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").unwrap().to_pjd().to_td(&u, &mut pool));
/// let mut task = ChaseTask::implication(sigma, goal, pool, ChaseConfig::default());
/// // Single-round fuel slices; the task is preemptible between them.
/// let outcome = loop {
///     match task.step(1) {
///         StepStatus::Pending => continue,
///         StepStatus::Done(o) => break o,
///     }
/// };
/// assert_eq!(outcome, ChaseOutcome::Implied);
/// ```
pub struct ChaseTask {
    universe: Arc<Universe>,
    inst: ChaseInstance,
    sigma: Arc<[TdOrEgd]>,
    pool: ValuePool,
    cfg: ChaseConfig,
    goal: Option<Goal>,
    trace: ChaseTrace,
    steps: usize,
    /// Oblivious-chase memory of fired triggers, per dependency. Keys are
    /// the dependency's sorted hypothesis values under the trigger's
    /// valuation; per-dep sets allow allocation-free slice lookups.
    fired: Vec<FxHashSet<Vec<Value>>>,
    /// Per-dependency sorted hypothesis value lists (trigger keys).
    hyp_vals: Vec<Vec<Value>>,
    /// Per-dependency instance version up to which the dependency has been
    /// fully verified (the semi-naive frontier).
    seen: Vec<u64>,
    /// Scratch buffer for oblivious trigger keys.
    key_buf: Vec<Value>,
    rounds: usize,
    /// Equality merges applied so far (the egd half of `steps`); kept as
    /// its own counter so profilers read it without scanning the trace.
    merges: usize,
    done: Option<ChaseOutcome>,
    /// Checked at round granularity; tripping it finishes the task with
    /// [`ChaseOutcome::Cancelled`].
    cancel: CancelToken,
}

impl ChaseTask {
    /// A resumable implication chase of `goal`'s hypothesis under `sigma`.
    ///
    /// `pool` must be (a snapshot of) the pool the dependencies' values came
    /// from; it is returned, evolved, by [`ChaseTask::finish`]. `sigma` is
    /// shared (`Arc<[TdOrEgd]>`), so a driver holding several tasks over
    /// one Σ pays for it once.
    pub fn implication(
        sigma: impl Into<Arc<[TdOrEgd]>>,
        goal: Goal,
        pool: ValuePool,
        cfg: ChaseConfig,
    ) -> Self {
        let (universe, init): (Arc<Universe>, Vec<Tuple>) = match &goal {
            TdOrEgd::Td(td) => (td.universe().clone(), td.hypothesis().to_vec()),
            TdOrEgd::Egd(e) => (e.universe().clone(), e.hypothesis().to_vec()),
        };
        Self::new(universe, init, sigma, Some(goal), pool, cfg)
    }

    /// A resumable saturation chase of `init` under `sigma` (no goal; the
    /// task finishes `NotImplied` at the fixpoint, i.e. "terminal").
    pub fn saturation(
        init: &Relation,
        sigma: impl Into<Arc<[TdOrEgd]>>,
        pool: ValuePool,
        cfg: ChaseConfig,
    ) -> Self {
        Self::new(
            init.universe().clone(),
            init.rows().to_vec(),
            sigma,
            None,
            pool,
            cfg,
        )
    }

    fn new(
        universe: Arc<Universe>,
        init: Vec<Tuple>,
        sigma: impl Into<Arc<[TdOrEgd]>>,
        goal: Option<Goal>,
        pool: ValuePool,
        cfg: ChaseConfig,
    ) -> Self {
        let sigma = sigma.into();
        let hyp_vals: Vec<Vec<Value>> = sigma
            .iter()
            .map(|d| {
                let mut vals: Vec<Value> = match d {
                    TdOrEgd::Td(t) => t.hypothesis_values().into_iter().collect(),
                    TdOrEgd::Egd(e) => {
                        let mut s = FxHashSet::default();
                        for t in e.hypothesis() {
                            s.extend(t.val());
                        }
                        s.into_iter().collect()
                    }
                };
                vals.sort_unstable();
                vals
            })
            .collect();
        let fired = vec![FxHashSet::default(); sigma.len()];
        let seen = vec![0; sigma.len()];
        Self {
            inst: ChaseInstance::new(universe.clone(), init),
            universe,
            sigma,
            pool,
            cfg,
            goal,
            trace: ChaseTrace::default(),
            steps: 0,
            fired,
            hyp_vals,
            seen,
            key_buf: Vec::new(),
            rounds: 0,
            merges: 0,
            done: None,
            cancel: CancelToken::new(),
        }
    }

    /// Installs a shared cancellation token (builder style). The task
    /// checks it before every round; see [`ChaseTask::cancel_token`].
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The task's cancellation token. Cloning and tripping it from any
    /// thread makes the task finish [`ChaseOutcome::Cancelled`] at its
    /// next round boundary instead of burning its remaining fuel.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Runs at most `fuel` breadth-first rounds. A finished task ignores
    /// further fuel and keeps reporting its outcome.
    pub fn step(&mut self, fuel: usize) -> StepStatus {
        for _ in 0..fuel {
            if self.done.is_some() {
                break;
            }
            if self.cancel.is_cancelled() {
                self.done = Some(ChaseOutcome::Cancelled);
                break;
            }
            self.round();
        }
        match self.done {
            Some(o) => StepStatus::Done(o),
            None => StepStatus::Pending,
        }
    }

    /// Drives the task to completion (the blocking mode). Always terminates:
    /// every round either finishes the task or advances the round counter,
    /// which [`ChaseConfig::max_rounds`] bounds.
    pub fn run_to_completion(&mut self) -> ChaseOutcome {
        loop {
            if let StepStatus::Done(o) = self.step(64) {
                return o;
            }
        }
    }

    /// `Some` once the task has finished.
    pub fn outcome(&self) -> Option<ChaseOutcome> {
        self.done
    }

    /// Breadth-first rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Applied steps (row adds + merges) so far.
    pub fn steps_applied(&self) -> usize {
        self.steps
    }

    /// Rows in the instance right now.
    pub fn instance_rows(&self) -> usize {
        self.inst.len()
    }

    /// Equality merges applied so far.
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// The task's value pool (evolves as fresh nulls are minted).
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Extracts the finished run and the evolved pool.
    ///
    /// # Panics
    /// Panics if the task has not finished; drive [`ChaseTask::step`] to
    /// [`StepStatus::Done`] first.
    pub fn finish(self) -> (ChaseRun, ValuePool) {
        let outcome = self
            .done
            .expect("ChaseTask::finish on an unfinished task; step it to Done first");
        let run = ChaseRun {
            outcome,
            trace: self.trace,
            final_relation: self.inst.relation().clone(),
            rounds: self.rounds,
        };
        (run, self.pool)
    }

    /// Extracts the run so far from a task that need not have finished —
    /// the dual procedure found a certificate first, so the chase is
    /// abandoned. An unfinished task's run carries
    /// [`ChaseOutcome::Cancelled`]; a finished one keeps its real outcome.
    pub fn abandon(mut self) -> (ChaseRun, ValuePool) {
        self.done.get_or_insert(ChaseOutcome::Cancelled);
        self.finish()
    }

    /// One breadth-first round: egd saturation, goal check, trigger
    /// collection, application, optional core retraction.
    fn round(&mut self) {
        if let ControlFlow::Break(o) = self.egd_saturate() {
            self.done = Some(o);
            return;
        }
        if let Some(g) = &self.goal {
            if goal_holds(&mut self.inst, g) {
                self.done = Some(ChaseOutcome::Implied);
                return;
            }
        }
        let triggers = self.collect_td_triggers();
        if triggers.is_empty() {
            // Terminal. With a goal, the universal model refutes it; in
            // saturation mode the fixpoint was reached (reported as
            // NotImplied = "terminal").
            self.done = Some(ChaseOutcome::NotImplied);
            return;
        }
        if self.rounds >= self.cfg.max_rounds {
            self.done = Some(ChaseOutcome::Exhausted);
            return;
        }
        if let ControlFlow::Break(o) = self.apply_td_triggers(triggers) {
            self.done = Some(o);
            return;
        }
        if self.cfg.variant == ChaseVariant::Core {
            self.retract_to_core();
        }
        self.rounds += 1;
    }

    /// Applies egd merges until none is violated.
    ///
    /// Semi-naive: an egd whose delta is empty is already satisfied (its
    /// hypothesis embeddings into unchanged rows were verified when those
    /// rows were last dirty, and merges only repair violations on the rows
    /// they rewrite — which the rewrite stamps dirty again).
    fn egd_saturate(&mut self) -> ControlFlow<ChaseOutcome> {
        'outer: loop {
            // Deltas cached per distinct frontier for this pass; a merge
            // restarts the pass (and the cache) via `continue 'outer`.
            let mut deltas = FrontierDeltas::default();
            for (di, dep) in self.sigma.iter().enumerate() {
                let TdOrEgd::Egd(e) = dep else { continue };
                let scanned_at = self.inst.version();
                let violation = if self.cfg.semi_naive {
                    if scanned_at == self.seen[di] {
                        continue; // frontier current: skip the drain
                    }
                    let delta = deltas.fill(&self.inst, self.seen[di]);
                    if delta.is_empty() {
                        self.seen[di] = scanned_at;
                        continue;
                    }
                    e.violation_touching(self.inst.relation(), delta)
                } else {
                    e.violation(self.inst.relation())
                };
                let Some(alpha) = violation else {
                    // Fully verified at this version; nothing before it can
                    // become violating without being stamped dirty.
                    self.seen[di] = scanned_at;
                    continue;
                };
                let a = alpha.get(e.left()).expect("left bound by hypothesis");
                let b = alpha.get(e.right()).expect("right bound by hypothesis");
                let matched = alpha.apply_rows(e.hypothesis());
                if let Some((kept, gone)) = self.inst.merge(a, b) {
                    self.trace.steps.push(ChaseStep {
                        dep: di,
                        matched,
                        kind: StepKind::Merge { kept, gone },
                    });
                    self.steps += 1;
                    self.merges += 1;
                    if self.steps >= self.cfg.max_steps {
                        return ControlFlow::Break(ChaseOutcome::Exhausted);
                    }
                }
                continue 'outer;
            }
            return ControlFlow::Continue(());
        }
    }

    /// Enumerates td triggers against the current (immutable this round)
    /// instance. For the standard and core variants only *unsatisfied*
    /// triggers count; the oblivious variant takes every not-yet-fired one.
    ///
    /// Semi-naive: each td only enumerates embeddings touching its delta;
    /// its `seen` frontier then advances to the scanned version. With
    /// `cfg.parallel`, the tds **with work** — egds never produce td
    /// triggers, and an empty delta means nothing to enumerate — are
    /// scanned on scoped threads and the results concatenated in dependency
    /// order, so the collected trigger list — and hence the applied trace —
    /// is deterministic.
    fn collect_td_triggers(&mut self) -> Vec<(usize, Valuation)> {
        let oblivious = self.cfg.variant == ChaseVariant::Oblivious;
        let scanned_at = self.inst.version();
        // Per-td delta (None = scan everything, the naive reference),
        // cached per distinct frontier.
        let sinces: Vec<Option<u64>> = self
            .sigma
            .iter()
            .enumerate()
            .map(|(di, dep)| match dep {
                TdOrEgd::Td(_) if self.cfg.semi_naive => Some(self.seen[di]),
                _ => None,
            })
            .collect();
        let mut frontier = FrontierDeltas::default();
        for &since in sinces.iter().flatten() {
            frontier.fill(&self.inst, since);
        }
        let deltas: Vec<Option<&RowDelta>> = sinces
            .iter()
            .map(|s| s.map(|since| frontier.get(since)))
            .collect();
        let relation = self.inst.relation();
        let scan = |di: usize,
                    td: &Td,
                    emb: &Embedder<'_>,
                    fired: &[FxHashSet<Vec<Value>>],
                    hyp_vals: &[Vec<Value>]|
         -> Vec<(usize, Valuation)> {
            let mut out = Vec::new();
            let mut key_buf: Vec<Value> = Vec::new();
            let mut visit = |alpha: &Valuation| {
                let is_trigger = if oblivious {
                    key_buf.clear();
                    key_buf.extend(
                        hyp_vals[di]
                            .iter()
                            .map(|&v| alpha.get(v).expect("hypothesis value bound")),
                    );
                    !fired[di].contains(key_buf.as_slice())
                } else {
                    !emb.embeds(std::slice::from_ref(td.conclusion()), alpha)
                };
                if is_trigger {
                    out.push((di, alpha.clone()));
                }
                ControlFlow::Continue(())
            };
            match deltas[di] {
                Some(delta) => {
                    emb.for_each_embedding_touching(
                        td.hypothesis(),
                        &Valuation::new(),
                        delta,
                        &mut visit,
                    );
                }
                None => {
                    emb.for_each_embedding(td.hypothesis(), &Valuation::new(), &mut visit);
                }
            }
            out
        };

        // The worklist: tds whose scan can produce triggers. Egds and
        // empty-delta tds are excluded up front so the parallel fan-out
        // never spawns a thread with nothing to do (ROADMAP cheap first
        // step); a single-entry worklist runs inline for the same reason.
        let work: Vec<(usize, &Td)> = self
            .sigma
            .iter()
            .enumerate()
            .filter_map(|(di, dep)| match dep {
                TdOrEgd::Td(td) if deltas[di].is_none_or(|d| !d.is_empty()) => Some((di, td)),
                _ => None,
            })
            .collect();

        let mut triggers: Vec<(usize, Valuation)> = Vec::new();
        let emb = Embedder::new(relation);
        if self.cfg.parallel && work.len() > 1 {
            let fired = &self.fired;
            let hyp_vals = &self.hyp_vals;
            let results: Vec<Vec<(usize, Valuation)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .iter()
                    .map(|&(di, td)| {
                        let emb = &emb;
                        let scan = &scan;
                        scope.spawn(move || scan(di, td, emb, fired, hyp_vals))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in results {
                triggers.extend(r);
            }
        } else {
            for (di, td) in work {
                triggers.extend(scan(di, td, &emb, &self.fired, &self.hyp_vals));
            }
        }
        if self.cfg.semi_naive {
            for (di, dep) in self.sigma.iter().enumerate() {
                if matches!(dep, TdOrEgd::Td(_)) {
                    self.seen[di] = scanned_at;
                }
            }
        }
        triggers
    }

    /// Fires the collected triggers (re-verifying each under the merges and
    /// additions that happened earlier in the round).
    fn apply_td_triggers(
        &mut self,
        triggers: Vec<(usize, Valuation)>,
    ) -> ControlFlow<ChaseOutcome> {
        let oblivious = self.cfg.variant == ChaseVariant::Oblivious;
        for (di, alpha) in triggers {
            let TdOrEgd::Td(td) = &self.sigma[di] else {
                unreachable!("td trigger indexes a td")
            };
            // Resolve the trigger under any merges since collection.
            let resolved = Valuation::from_pairs(
                alpha.iter().map(|(v, img)| (v, self.inst.resolve(img))),
            );
            if oblivious {
                self.key_buf.clear();
                self.key_buf.extend(
                    self.hyp_vals[di]
                        .iter()
                        .map(|&v| resolved.get(v).expect("hypothesis value bound")),
                );
                if self.fired[di].contains(self.key_buf.as_slice()) {
                    continue;
                }
                self.fired[di].insert(self.key_buf.clone());
            } else {
                let emb = Embedder::new(self.inst.relation());
                if emb.embeds(std::slice::from_ref(td.conclusion()), &resolved) {
                    continue; // satisfied meanwhile
                }
            }
            // Extend with fresh nulls on existential conclusion values.
            let mut ext = resolved.clone();
            for a in self.universe.attrs() {
                let v = td.conclusion().get(a);
                if ext.get(v).is_none() {
                    let sort = Some(a).filter(|_| self.universe.is_typed());
                    ext.bind(v, self.pool.fresh(sort, "n"));
                }
            }
            let row = ext.apply_tuple(td.conclusion());
            let matched = resolved.apply_rows(td.hypothesis());
            if self.inst.insert(row.clone()) {
                self.trace.steps.push(ChaseStep {
                    dep: di,
                    matched,
                    kind: StepKind::AddRow { row },
                });
                self.steps += 1;
            }
            if self.steps >= self.cfg.max_steps || self.inst.len() >= self.cfg.max_rows {
                return ControlFlow::Break(ChaseOutcome::Exhausted);
            }
        }
        ControlFlow::Continue(())
    }

    /// Core-chase retraction: shrink the instance to its core, keeping the
    /// frozen values fixed. Marks every row dirty (full rescan next round).
    fn retract_to_core(&mut self) {
        let frozen: FxHashSet<Value> = self
            .inst
            .frozen()
            .iter()
            .map(|&v| self.inst.resolve_readonly(v))
            .collect();
        let core = core_retract(self.inst.relation(), &frozen);
        if core.len() < self.inst.len() {
            self.inst.replace_relation(core);
        }
    }
}
