//! The chase engine: a *fair*, **semi-naive**, *resumable* semidecision
//! procedure for (finite) implication of template and equality-generating
//! dependencies.
//!
//! To test `Σ ⊨ (w, I)` the engine freezes `I` as the initial instance and
//! repeatedly fires unsatisfied dependencies of `Σ`:
//!
//! * an egd trigger merges two values (union-find, then index-driven
//!   rewriting of exactly the rows containing the losing representative);
//! * a td trigger adds the conclusion row, inventing fresh labeled nulls for
//!   its existential values.
//!
//! # Delta-driven rounds
//!
//! Rounds are breadth-first — every trigger existing at the start of a round
//! fires (or is re-verified as satisfied) before triggers discovered later —
//! which makes the chase fair, hence complete for implication. Naively, each
//! round re-enumerates every hypothesis embedding against the *entire*
//! instance, so chase cost grows quadratically with the instance. This
//! engine is instead *semi-naive*, in the Datalog sense:
//!
//! * [`ChaseInstance`] stamps every row with the mutation version at which
//!   it was inserted or last rewritten, and mirrors the stamps into an
//!   append-only dirty-row log;
//! * the runner remembers, per dependency, the version up to which the
//!   instance has been fully checked (`seen`);
//! * trigger discovery for a dependency only enumerates embeddings that
//!   touch at least one row of the *delta* — the rows stamped after `seen`,
//!   drained from the log in time proportional to the delta — via
//!   [`Embedder::for_each_embedding_touching`], which pins one hypothesis
//!   row to the delta and backtracks over the rest. Deltas are cached per
//!   distinct frontier for the pass ([`FrontierDeltas`]), shared by the egd
//!   and td scans.
//!
//! This is sound and complete because triggers are monotone in the chase:
//! an embedding whose rows are all old and unchanged was already enumerated
//! when those rows were last in a delta, and was then either fired (its
//! conclusion row persists, modulo canonicalization) or verified satisfied
//! (satisfaction persists: rows are never deleted, only canonically
//! rewritten, and homomorphisms compose with the canonicalization map). The
//! only operation that breaks per-row tracking — the core chase's
//! retraction, which may remove rows and remap values wholesale — stamps
//! every surviving row dirty, forcing a full rescan.
//!
//! The naive full-rescan behaviour is preserved behind
//! [`ChaseConfig::semi_naive`]` = false` as a differential-testing
//! reference: both modes produce identical [`ChaseOutcome`]s, round counts,
//! and (up to isomorphism of labeled nulls) final instances.
//!
//! # Delta-sharded parallel scanning
//!
//! With [`ChaseConfig::parallel`] the per-round trigger scan is split into
//! *work items* at `(dependency, pinned hypothesis row, delta chunk)`
//! granularity — the pinned row ranges over a contiguous chunk of the
//! delta's sorted ids (at most one chunk per worker), the rest of the
//! hypothesis is hash-joined against the whole instance, plus one
//! full-scan item per delta-less td. It is the *delta* that is sharded,
//! not the dependency list: even a single divergent td with a one-row
//! hypothesis fans out across all workers. Scoped worker threads steal
//! items from a shared cursor, and results are merged back in item order —
//! chunk order equals delta order, so the collected trigger list, and
//! hence the applied trace, is identical to the sequential scan's. With
//! one item (or one core) the scan runs inline; no threads are spawned.
//!
//! Parallel standard-variant semi-naive rounds additionally *defer* the
//! per-trigger satisfaction probe for tds with existential conclusions:
//! collection takes every embedding of a delta-touching hypothesis as a
//! candidate and lets application's authoritative re-check (which must run
//! anyway, under the merges of the round) filter the satisfied ones — one
//! probe per trigger instead of two. Tds with *total* conclusions (every
//! conclusion value occurs in the hypothesis) are filtered eagerly in every
//! mode: there satisfaction is literal row membership, a single hash probe
//! cheaper than the candidate clone deferral would buy. A round whose
//! candidates all turn out satisfied is exactly a round the eager scan
//! would have found empty, so it is reported terminal without incrementing
//! the round counter; outcomes, round counts, and traces agree with the
//! sequential engine.
//!
//! # Resumable stepping
//!
//! The engine's unit of preemption is the breadth-first round. A
//! [`ChaseTask`] owns the full mid-chase state — instance, per-dependency
//! frontiers, trace, value pool — and [`ChaseTask::step`] runs at most
//! `fuel` rounds before yielding [`StepStatus::Pending`]. This is what lets
//! a scheduler dovetail many implication queries fairly (the paper's
//! problems are undecidable, so any single query may diverge; preemption
//! bounds the damage to one fuel slice). The blocking entry points
//! [`chase_implication`] and [`saturate`] are thin drivers that create a
//! task and run it to completion.
//!
//! Three variants are provided for the ablation benches: the standard
//! (restricted) chase, the oblivious chase (fires every trigger once,
//! satisfied or not), and the core chase (retracts the instance to its core
//! each round; terminates whenever any chase sequence does).

use crate::cancel::CancelToken;
use crate::core_retract::core_retract;
use crate::instance::ChaseInstance;
use crate::trace::{ChaseStep, ChaseTrace, StepKind};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use typedtd_dependencies::{Td, TdOrEgd};
use typedtd_relational::{
    satisfies_row, Embedder, FxHashMap, FxHashSet, Relation, RowDelta, ScanStats, Tuple, Universe,
    Valuation, Value, ValuePool,
};

/// Which chase strategy to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseVariant {
    /// Restricted chase: fire only triggers whose conclusion is absent.
    Standard,
    /// Oblivious chase: fire every trigger exactly once.
    Oblivious,
    /// Standard chase plus a core retraction after every round.
    Core,
}

/// Budget and strategy knobs.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum breadth-first rounds before giving up.
    pub max_rounds: usize,
    /// Maximum instance rows before giving up.
    pub max_rows: usize,
    /// Maximum applied steps (row adds + merges) before giving up.
    pub max_steps: usize,
    /// Strategy.
    pub variant: ChaseVariant,
    /// Scan dependencies for triggers on multiple threads.
    pub parallel: bool,
    /// Delta-driven (semi-naive) trigger discovery. `false` restores the
    /// naive full-rescan reference; outcomes are identical either way.
    pub semi_naive: bool,
    /// Worker count for parallel scans; `None` (the default) probes the
    /// hardware. An explicit count lets tests drive the sharded code path
    /// deterministically regardless of host core count.
    pub shards: Option<usize>,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        Self {
            max_rounds: 256,
            max_rows: 4_096,
            max_steps: 32_768,
            variant: ChaseVariant::Standard,
            parallel: false,
            semi_naive: true,
            shards: None,
        }
    }
}

impl ChaseConfig {
    /// A configuration with a tight budget, for search loops.
    pub fn quick() -> Self {
        Self {
            max_rounds: 24,
            max_rows: 512,
            max_steps: 2_048,
            ..Self::default()
        }
    }

    /// Selects a chase variant.
    pub fn with_variant(mut self, v: ChaseVariant) -> Self {
        self.variant = v;
        self
    }

    /// Enables parallel trigger scanning.
    pub fn with_parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Toggles semi-naive (delta-driven) trigger discovery.
    pub fn with_semi_naive(mut self, on: bool) -> Self {
        self.semi_naive = on;
        self
    }

    /// Pins the parallel worker count (tests; `None` probes the hardware).
    pub fn with_shards(mut self, n: Option<usize>) -> Self {
        self.shards = n;
        self
    }
}

/// Result status of a chase run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// The goal became derivable: `Σ ⊨ σ` (hence also `Σ ⊨_f σ`).
    Implied,
    /// A terminal instance was reached and the goal fails in it: the
    /// instance is a finite counterexample, so `Σ ⊭ σ` and `Σ ⊭_f σ`.
    NotImplied,
    /// The budget ran out before either certificate appeared.
    Exhausted,
    /// The task's [`CancelToken`] was tripped mid-run: the chase stopped
    /// at a round boundary without a certificate. Distinct from
    /// `Exhausted` so schedulers can tell "budget spent" from "owner
    /// asked us to stop".
    Cancelled,
}

/// Whether a resumable task needs more fuel or has finished.
///
/// Shared by [`ChaseTask`], [`crate::search::SearchTask`], and
/// [`crate::implication::DecideTask`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepStatus {
    /// The fuel slice ran out before the task finished; step again.
    Pending,
    /// The task finished with this outcome. Further `step` calls are no-ops
    /// returning the same status.
    Done(ChaseOutcome),
}

/// A finished chase run.
#[derive(Clone, Debug)]
pub struct ChaseRun {
    /// What the run established.
    pub outcome: ChaseOutcome,
    /// The derivation (row adds and merges, in order).
    pub trace: ChaseTrace,
    /// The final instance (a universal model when `outcome` is
    /// `NotImplied`).
    pub final_relation: Relation,
    /// Breadth-first rounds executed.
    pub rounds: usize,
}

/// The implication goal: a td or an egd.
pub type Goal = TdOrEgd;

/// Tests `Σ ⊨ goal` by chasing the goal's hypothesis with `Σ`.
///
/// Fresh labeled nulls are minted from `pool` (which must be the pool the
/// dependencies' values came from). This is a thin driver over
/// [`ChaseTask`]: it snapshots the pool into a task, runs the task to
/// completion, and writes the evolved pool back.
///
/// ```
/// use typedtd_chase::{chase_implication, ChaseConfig, ChaseOutcome};
/// use typedtd_dependencies::{Mvd, TdOrEgd};
/// use typedtd_relational::{Universe, ValuePool};
///
/// // A ↠ B implies A ↠ C over ABC (complementation).
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let mut pool = ValuePool::new(u.clone());
/// let sigma = vec![TdOrEgd::Td(Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool))];
/// let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").unwrap().to_pjd().to_td(&u, &mut pool));
/// let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
/// assert_eq!(run.outcome, ChaseOutcome::Implied);
/// ```
pub fn chase_implication(
    sigma: &[TdOrEgd],
    goal: &Goal,
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> ChaseRun {
    // Move the pool into the task (leaving an empty stand-in) instead of
    // deep-cloning it; the evolved pool moves back out at the end.
    let empty = ValuePool::new(pool.universe().clone());
    let taken = std::mem::replace(pool, empty);
    let mut task = ChaseTask::implication(sigma.to_vec(), goal.clone(), taken, cfg.clone());
    task.run_to_completion();
    let (run, evolved) = task.finish();
    *pool = evolved;
    run
}

/// Chases an initial relation to a fixpoint ("saturation"): the result is a
/// universal model of `Σ` over the initial rows if `terminal` is reached.
/// Thin driver over [`ChaseTask::saturation`].
pub fn saturate(
    init: &Relation,
    sigma: &[TdOrEgd],
    pool: &mut ValuePool,
    cfg: &ChaseConfig,
) -> ChaseRun {
    let empty = ValuePool::new(pool.universe().clone());
    let taken = std::mem::replace(pool, empty);
    let mut task = ChaseTask::saturation(init, sigma.to_vec(), taken, cfg.clone());
    task.run_to_completion();
    let (run, evolved) = task.finish();
    *pool = evolved;
    run
}

/// Per-pass cache of [`ChaseInstance::delta_since`] results keyed by
/// frontier version, shared by the egd and td scans. Frontiers are usually
/// identical across dependencies in the steady state, so each distinct
/// frontier drains the dirty log exactly once per pass.
#[derive(Default)]
struct FrontierDeltas {
    cache: FxHashMap<u64, RowDelta>,
}

impl FrontierDeltas {
    /// Computes (or reuses) the delta for frontier `since`.
    fn fill(&mut self, inst: &ChaseInstance, since: u64) -> &RowDelta {
        self.cache.entry(since).or_insert_with(|| {
            if since == inst.version() {
                // Frontier current: empty delta without touching the log.
                RowDelta::default()
            } else {
                inst.delta_since(since)
            }
        })
    }

    /// A previously filled delta.
    fn get(&self, since: u64) -> &RowDelta {
        &self.cache[&since]
    }

    /// Drops cached deltas (a merge moved row positions), keeping the
    /// allocation for the next pass.
    fn reset(&mut self) {
        self.cache.clear();
    }
}

/// Hardware thread count, probed once per process.
///
/// `std::thread::available_parallelism` re-reads cgroup quota files on
/// every call on Linux — measurable syscall overhead when asked once per
/// chase round — so the answer is cached for the process lifetime.
/// One trigger-scan work item's output: collected `(dependency, valuation)`
/// candidates plus the scan's join counters.
type ScanOutput = (Vec<(usize, Valuation)>, ScanStats);

fn hardware_shards() -> usize {
    static SHARDS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The hypothesis rows of either dependency kind.
fn dep_hypothesis(dep: &TdOrEgd) -> &[Tuple] {
    match dep {
        TdOrEgd::Td(td) => td.hypothesis(),
        TdOrEgd::Egd(e) => e.hypothesis(),
    }
}

/// Checks whether the goal is derivable in the instance.
fn goal_holds(inst: &mut ChaseInstance, goal: &Goal) -> bool {
    match goal {
        TdOrEgd::Egd(e) => inst.identified(e.left(), e.right()),
        TdOrEgd::Td(td) => {
            let seed = Valuation::from_pairs(
                td.hypothesis_values()
                    .into_iter()
                    .map(|v| (v, inst.resolve(v))),
            );
            let emb = Embedder::new(inst.relation());
            emb.embeds(std::slice::from_ref(td.conclusion()), &seed)
        }
    }
}

/// A resumable chase: the full mid-run state of one saturation or
/// implication chase, preemptible at round granularity.
///
/// The task owns everything the chase mutates — the [`ChaseInstance`], the
/// per-dependency semi-naive frontiers, the trace, and the [`ValuePool`]
/// fresh nulls are minted from — so tasks can be held, swapped, and stepped
/// in any interleaving. [`ChaseTask::step`] runs at most `fuel`
/// breadth-first rounds; once it reports [`StepStatus::Done`], call
/// [`ChaseTask::finish`] to extract the [`ChaseRun`] and the evolved pool.
///
/// ```
/// use typedtd_chase::{ChaseConfig, ChaseOutcome, ChaseTask, StepStatus};
/// use typedtd_dependencies::{Mvd, TdOrEgd};
/// use typedtd_relational::{Universe, ValuePool};
///
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let mut pool = ValuePool::new(u.clone());
/// let sigma = vec![TdOrEgd::Td(Mvd::parse(&u, "A ->> B").unwrap().to_pjd().to_td(&u, &mut pool))];
/// let goal = TdOrEgd::Td(Mvd::parse(&u, "A ->> C").unwrap().to_pjd().to_td(&u, &mut pool));
/// let mut task = ChaseTask::implication(sigma, goal, pool, ChaseConfig::default());
/// // Single-round fuel slices; the task is preemptible between them.
/// let outcome = loop {
///     match task.step(1) {
///         StepStatus::Pending => continue,
///         StepStatus::Done(o) => break o,
///     }
/// };
/// assert_eq!(outcome, ChaseOutcome::Implied);
/// ```
pub struct ChaseTask {
    universe: Arc<Universe>,
    inst: ChaseInstance,
    sigma: Arc<[TdOrEgd]>,
    pool: ValuePool,
    cfg: ChaseConfig,
    goal: Option<Goal>,
    trace: ChaseTrace,
    steps: usize,
    /// Oblivious-chase memory of fired triggers, per dependency. Keys are
    /// the dependency's sorted hypothesis values under the trigger's
    /// valuation; per-dep sets allow allocation-free slice lookups.
    fired: Vec<FxHashSet<Vec<Value>>>,
    /// Per-dependency sorted hypothesis value lists (trigger keys).
    hyp_vals: Vec<Vec<Value>>,
    /// Per-dependency flag: `true` for a td whose conclusion values all
    /// occur in its hypothesis (a *total* td — no existentials). A trigger
    /// valuation then binds the whole conclusion, so satisfaction collapses
    /// to literal row membership — one hash probe instead of an embedding
    /// search. `false` for egds (unused).
    total_concl: Vec<bool>,
    /// Per-dependency instance version up to which the dependency has been
    /// fully verified (the semi-naive frontier).
    seen: Vec<u64>,
    /// Scratch buffer for oblivious trigger keys.
    key_buf: Vec<Value>,
    rounds: usize,
    /// Equality merges applied so far (the egd half of `steps`); kept as
    /// its own counter so profilers read it without scanning the trace.
    merges: usize,
    /// Per-dependency hypothesis placement plans for delta-pinned scans
    /// (`touch_plans[di][pin]`), computed once from the hypothesis shape.
    touch_plans: Vec<Vec<Vec<usize>>>,
    /// Per-dependency hypothesis placement plans for full scans.
    scan_plans: Vec<Vec<usize>>,
    /// Hash-join build-side rows taken (delta-pinned candidates) across all
    /// trigger scans so far.
    join_build_rows: u64,
    /// Hash-join probe-side hits (non-pinned candidates surviving the
    /// consistency check) across all trigger scans so far.
    join_probe_hits: u64,
    /// Total worker shards spawned by parallel trigger scans.
    parallel_shards: u64,
    done: Option<ChaseOutcome>,
    /// Checked at round granularity; tripping it finishes the task with
    /// [`ChaseOutcome::Cancelled`].
    cancel: CancelToken,
}

impl ChaseTask {
    /// A resumable implication chase of `goal`'s hypothesis under `sigma`.
    ///
    /// `pool` must be (a snapshot of) the pool the dependencies' values came
    /// from; it is returned, evolved, by [`ChaseTask::finish`]. `sigma` is
    /// shared (`Arc<[TdOrEgd]>`), so a driver holding several tasks over
    /// one Σ pays for it once.
    pub fn implication(
        sigma: impl Into<Arc<[TdOrEgd]>>,
        goal: Goal,
        pool: ValuePool,
        cfg: ChaseConfig,
    ) -> Self {
        let (universe, init): (Arc<Universe>, Vec<Tuple>) = match &goal {
            TdOrEgd::Td(td) => (td.universe().clone(), td.hypothesis().to_vec()),
            TdOrEgd::Egd(e) => (e.universe().clone(), e.hypothesis().to_vec()),
        };
        Self::new(universe, init, sigma, Some(goal), pool, cfg)
    }

    /// A resumable saturation chase of `init` under `sigma` (no goal; the
    /// task finishes `NotImplied` at the fixpoint, i.e. "terminal").
    pub fn saturation(
        init: &Relation,
        sigma: impl Into<Arc<[TdOrEgd]>>,
        pool: ValuePool,
        cfg: ChaseConfig,
    ) -> Self {
        Self::new(
            init.universe().clone(),
            init.tuples(),
            sigma,
            None,
            pool,
            cfg,
        )
    }

    fn new(
        universe: Arc<Universe>,
        init: Vec<Tuple>,
        sigma: impl Into<Arc<[TdOrEgd]>>,
        goal: Option<Goal>,
        pool: ValuePool,
        cfg: ChaseConfig,
    ) -> Self {
        let sigma = sigma.into();
        let hyp_vals: Vec<Vec<Value>> = sigma
            .iter()
            .map(|d| {
                let mut vals: Vec<Value> = match d {
                    TdOrEgd::Td(t) => t.hypothesis_values().into_iter().collect(),
                    TdOrEgd::Egd(e) => {
                        let mut s = FxHashSet::default();
                        for t in e.hypothesis() {
                            s.extend(t.val());
                        }
                        s.into_iter().collect()
                    }
                };
                vals.sort_unstable();
                vals
            })
            .collect();
        let total_concl: Vec<bool> = sigma
            .iter()
            .zip(&hyp_vals)
            .map(|(d, hv)| match d {
                TdOrEgd::Td(t) => t
                    .conclusion()
                    .val()
                    .all(|v| hv.binary_search(&v).is_ok()),
                TdOrEgd::Egd(_) => false,
            })
            .collect();
        let fired = vec![FxHashSet::default(); sigma.len()];
        let seen = vec![0; sigma.len()];
        // Placement plans depend only on the hypothesis shape (which values
        // repeat across rows), not on the instance: compute them once here
        // instead of on every scan of every round.
        let empty_seed = Valuation::new();
        let touch_plans: Vec<Vec<Vec<usize>>> = sigma
            .iter()
            .map(|d| Embedder::touch_plans(dep_hypothesis(d), &empty_seed))
            .collect();
        let scan_plans: Vec<Vec<usize>> = sigma
            .iter()
            .map(|d| Embedder::scan_plan(dep_hypothesis(d), &empty_seed))
            .collect();
        Self {
            inst: ChaseInstance::new(universe.clone(), init),
            universe,
            sigma,
            pool,
            cfg,
            goal,
            trace: ChaseTrace::default(),
            steps: 0,
            fired,
            hyp_vals,
            total_concl,
            seen,
            key_buf: Vec::new(),
            rounds: 0,
            merges: 0,
            touch_plans,
            scan_plans,
            join_build_rows: 0,
            join_probe_hits: 0,
            parallel_shards: 0,
            done: None,
            cancel: CancelToken::new(),
        }
    }

    /// Installs a shared cancellation token (builder style). The task
    /// checks it before every round; see [`ChaseTask::cancel_token`].
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The task's cancellation token. Cloning and tripping it from any
    /// thread makes the task finish [`ChaseOutcome::Cancelled`] at its
    /// next round boundary instead of burning its remaining fuel.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Runs at most `fuel` breadth-first rounds. A finished task ignores
    /// further fuel and keeps reporting its outcome.
    pub fn step(&mut self, fuel: usize) -> StepStatus {
        for _ in 0..fuel {
            if self.done.is_some() {
                break;
            }
            if self.cancel.is_cancelled() {
                self.done = Some(ChaseOutcome::Cancelled);
                break;
            }
            self.round();
        }
        match self.done {
            Some(o) => StepStatus::Done(o),
            None => StepStatus::Pending,
        }
    }

    /// Drives the task to completion (the blocking mode). Always terminates:
    /// every round either finishes the task or advances the round counter,
    /// which [`ChaseConfig::max_rounds`] bounds.
    pub fn run_to_completion(&mut self) -> ChaseOutcome {
        loop {
            if let StepStatus::Done(o) = self.step(64) {
                return o;
            }
        }
    }

    /// `Some` once the task has finished.
    pub fn outcome(&self) -> Option<ChaseOutcome> {
        self.done
    }

    /// Breadth-first rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Applied steps (row adds + merges) so far.
    pub fn steps_applied(&self) -> usize {
        self.steps
    }

    /// Rows in the instance right now.
    pub fn instance_rows(&self) -> usize {
        self.inst.len()
    }

    /// Equality merges applied so far.
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// Hash-join build-side rows taken by trigger scans so far.
    pub fn join_build_rows(&self) -> u64 {
        self.join_build_rows
    }

    /// Hash-join probe-side hits scored by trigger scans so far.
    pub fn join_probe_hits(&self) -> u64 {
        self.join_probe_hits
    }

    /// Worker shards spawned by parallel trigger scans so far.
    pub fn parallel_shards(&self) -> u64 {
        self.parallel_shards
    }

    /// The task's value pool (evolves as fresh nulls are minted).
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Mutable access to the task's value pool, for callers that must mint
    /// goal-local values *into the chase's value space* — e.g. a shared
    /// saturation answering several member goals from one instance, where
    /// each member's conclusion existentials need fresh values that can
    /// never collide with the nulls the chase itself mints.
    pub fn pool_mut(&mut self) -> &mut ValuePool {
        &mut self.pool
    }

    /// The instance as chased so far. At a terminal fixpoint this is the
    /// finite universal model of `Σ` over the seed — the counterexample
    /// relation for any goal that [`ChaseTask::goal_derivable`] rejects.
    pub fn current_relation(&self) -> &Relation {
        self.inst.relation()
    }

    /// Whether `goal` is derivable in the instance as chased so far — the
    /// same certificate check an implication-mode task runs every round.
    /// `true` at *any* point soundly witnesses `Σ ⊨ goal` provided the
    /// seed contains `goal`'s hypothesis; `false` is definitive only once
    /// the task has finished [`ChaseOutcome::NotImplied`] (terminal).
    /// Takes `&mut self` because the check resolves values through the
    /// instance's union-find (path compression).
    pub fn goal_derivable(&mut self, goal: &Goal) -> bool {
        goal_holds(&mut self.inst, goal)
    }

    /// Extracts the finished run and the evolved pool.
    ///
    /// # Panics
    /// Panics if the task has not finished; drive [`ChaseTask::step`] to
    /// [`StepStatus::Done`] first.
    pub fn finish(self) -> (ChaseRun, ValuePool) {
        let outcome = self
            .done
            .expect("ChaseTask::finish on an unfinished task; step it to Done first");
        let run = ChaseRun {
            outcome,
            trace: self.trace,
            final_relation: self.inst.relation().clone(),
            rounds: self.rounds,
        };
        (run, self.pool)
    }

    /// Extracts the run so far from a task that need not have finished —
    /// the dual procedure found a certificate first, so the chase is
    /// abandoned. An unfinished task's run carries
    /// [`ChaseOutcome::Cancelled`]; a finished one keeps its real outcome.
    pub fn abandon(mut self) -> (ChaseRun, ValuePool) {
        self.done.get_or_insert(ChaseOutcome::Cancelled);
        self.finish()
    }

    /// One breadth-first round: egd saturation, goal check, trigger
    /// collection, application, optional core retraction.
    fn round(&mut self) {
        if let ControlFlow::Break(o) = self.egd_saturate() {
            self.done = Some(o);
            return;
        }
        if let Some(g) = &self.goal {
            if goal_holds(&mut self.inst, g) {
                self.done = Some(ChaseOutcome::Implied);
                return;
            }
        }
        let deferred = self.deferred_satisfaction();
        let triggers = self.collect_td_triggers();
        if triggers.is_empty() {
            // Terminal. With a goal, the universal model refutes it; in
            // saturation mode the fixpoint was reached (reported as
            // NotImplied = "terminal").
            self.done = Some(ChaseOutcome::NotImplied);
            return;
        }
        if self.rounds >= self.cfg.max_rounds {
            // Deferred collection reports satisfied embeddings as
            // candidates; probe them (without firing) so the budget
            // boundary distinguishes a genuine fixpoint from exhaustion
            // exactly as the eager scan's emptiness test does.
            self.done = Some(if deferred && !self.any_unsatisfied(&triggers) {
                ChaseOutcome::NotImplied
            } else {
                ChaseOutcome::Exhausted
            });
            return;
        }
        match self.apply_td_triggers(triggers) {
            ControlFlow::Break(o) => {
                self.done = Some(o);
                return;
            }
            ControlFlow::Continue(applied) => {
                if deferred && applied == 0 {
                    // Every candidate was satisfied, so the eager scan
                    // would have collected nothing: terminal, and the
                    // round counter stays put to match it. (In eager mode
                    // a nonempty collection always fires at least its
                    // first trigger, so `applied == 0` cannot happen
                    // there.)
                    self.done = Some(ChaseOutcome::NotImplied);
                    return;
                }
            }
        }
        if self.cfg.variant == ChaseVariant::Core {
            self.retract_to_core();
        }
        self.rounds += 1;
    }

    /// Whether trigger collection defers the satisfaction probe to
    /// application (parallel semi-naive standard chase; see module docs).
    fn deferred_satisfaction(&self) -> bool {
        self.cfg.parallel && self.cfg.semi_naive && self.cfg.variant == ChaseVariant::Standard
    }

    /// Probes (without firing) whether any collected candidate is genuinely
    /// unsatisfied — the deferred-collection analogue of the eager scan's
    /// emptiness test, used only at the round-budget boundary. No merges
    /// can have happened since collection (egd saturation precedes it in
    /// the round), so the candidates' images are already canonical.
    fn any_unsatisfied(&self, triggers: &[(usize, Valuation)]) -> bool {
        let mut scratch = Vec::new();
        let mut row_buf: Vec<Value> = Vec::new();
        triggers.iter().any(|(di, alpha)| {
            let TdOrEgd::Td(td) = &self.sigma[*di] else {
                return false;
            };
            if self.total_concl[*di] {
                row_buf.clear();
                row_buf.extend(
                    td.conclusion()
                        .val()
                        .map(|v| alpha.get(v).expect("total conclusion bound")),
                );
                !self.inst.relation().contains_values(&row_buf)
            } else {
                !satisfies_row(self.inst.relation(), td.conclusion(), alpha, &mut scratch)
            }
        })
    }

    /// Applies egd merges until none is violated.
    ///
    /// Semi-naive: an egd whose delta is empty is already satisfied (its
    /// hypothesis embeddings into unchanged rows were verified when those
    /// rows were last dirty, and merges only repair violations on the rows
    /// they rewrite — which the rewrite stamps dirty again).
    fn egd_saturate(&mut self) -> ControlFlow<ChaseOutcome> {
        // Deltas cached per distinct frontier; a merge restarts the pass —
        // and resets the cache, keeping its allocation — via
        // `continue 'outer`.
        let mut deltas = FrontierDeltas::default();
        'outer: loop {
            deltas.reset();
            for (di, dep) in self.sigma.iter().enumerate() {
                let TdOrEgd::Egd(e) = dep else { continue };
                let scanned_at = self.inst.version();
                let mut stats = ScanStats::default();
                let violation = if self.cfg.semi_naive {
                    if scanned_at == self.seen[di] {
                        continue; // frontier current: skip the drain
                    }
                    let delta = deltas.fill(&self.inst, self.seen[di]);
                    if delta.is_empty() {
                        self.seen[di] = scanned_at;
                        continue;
                    }
                    let relation = self.inst.relation();
                    if delta.len() * 2 >= relation.len() {
                        // Merge-heavy pass: most rows are dirty, so the
                        // pin-partitioned enumeration would revisit nearly
                        // every embedding once per pin. The plain full scan
                        // checks a superset of the touching embeddings —
                        // sound, and advancing the frontier afterwards
                        // stays correct for the same reason it does after
                        // a touching scan.
                        e.violation_planned(relation, &self.scan_plans[di], &mut stats)
                    } else {
                        e.violation_touching_planned(
                            relation,
                            delta,
                            &self.touch_plans[di],
                            &mut stats,
                        )
                    }
                } else {
                    e.violation(self.inst.relation())
                };
                self.join_build_rows += stats.build_rows;
                self.join_probe_hits += stats.probe_hits;
                let Some(alpha) = violation else {
                    // Fully verified at this version; nothing before it can
                    // become violating without being stamped dirty.
                    self.seen[di] = scanned_at;
                    continue;
                };
                let a = alpha.get(e.left()).expect("left bound by hypothesis");
                let b = alpha.get(e.right()).expect("right bound by hypothesis");
                let matched = alpha.apply_rows(e.hypothesis());
                if let Some((kept, gone)) = self.inst.merge(a, b) {
                    self.trace.steps.push(ChaseStep {
                        dep: di,
                        matched,
                        kind: StepKind::Merge { kept, gone },
                    });
                    self.steps += 1;
                    self.merges += 1;
                    if self.steps >= self.cfg.max_steps {
                        return ControlFlow::Break(ChaseOutcome::Exhausted);
                    }
                }
                continue 'outer;
            }
            return ControlFlow::Continue(());
        }
    }

    /// Enumerates td triggers against the current (immutable this round)
    /// instance. For the standard and core variants only *unsatisfied*
    /// triggers count (with the probe deferred to application in parallel
    /// semi-naive mode); the oblivious variant takes every not-yet-fired
    /// one.
    ///
    /// Semi-naive: each td only enumerates embeddings touching its delta;
    /// its `seen` frontier then advances to the scanned version. The scan
    /// is split into `(dependency, pinned hypothesis row)` work items — see
    /// the module docs — which either run inline or are stolen by scoped
    /// worker threads off a shared cursor; results merge in item order
    /// either way, so the collected trigger list — and hence the applied
    /// trace — is deterministic.
    fn collect_td_triggers(&mut self) -> Vec<(usize, Valuation)> {
        let oblivious = self.cfg.variant == ChaseVariant::Oblivious;
        let deferred = self.deferred_satisfaction();
        let scanned_at = self.inst.version();
        // Per-td delta (None = scan everything, the naive reference),
        // cached per distinct frontier.
        let sinces: Vec<Option<u64>> = self
            .sigma
            .iter()
            .enumerate()
            .map(|(di, dep)| match dep {
                TdOrEgd::Td(_) if self.cfg.semi_naive => Some(self.seen[di]),
                _ => None,
            })
            .collect();
        let mut frontier = FrontierDeltas::default();
        for &since in sinces.iter().flatten() {
            frontier.fill(&self.inst, since);
        }
        let deltas: Vec<Option<&RowDelta>> = sinces
            .iter()
            .map(|s| s.map(|since| frontier.get(since)))
            .collect();

        // The worklist: one item per (td, pinned hypothesis row, delta
        // chunk) for tds with a nonempty delta, one full-scan item per
        // delta-less td. Sharding the *delta* — not just the dependency
        // list — means even a single divergent td with a one-row
        // hypothesis fans out across workers. Egds and empty-delta tds
        // are excluded up front so the parallel fan-out never claims an
        // item with nothing to do.
        let shard_target = if self.cfg.parallel {
            self.cfg.shards.unwrap_or_else(hardware_shards).max(1)
        } else {
            1
        };
        enum Item<'t> {
            /// Embeddings placing hypothesis row `pin` on delta rows
            /// `lo..hi` (indices into the delta's sorted id list).
            Pin {
                di: usize,
                td: &'t Td,
                pin: usize,
                lo: usize,
                hi: usize,
            },
            /// Every embedding (naive reference / post-retraction rescan).
            Full { di: usize, td: &'t Td },
        }
        let mut items: Vec<Item<'_>> = Vec::new();
        for (di, dep) in self.sigma.iter().enumerate() {
            let TdOrEgd::Td(td) = dep else { continue };
            match deltas[di] {
                Some(d) if d.is_empty() => {}
                Some(d) => {
                    // Near-equal contiguous chunks, at most one per worker;
                    // chunk order = delta order, so the item-order merge
                    // below reproduces the sequential emission order.
                    let chunks = shard_target.min(d.len());
                    let per = d.len().div_ceil(chunks);
                    for pin in 0..td.hypothesis().len() {
                        let mut lo = 0;
                        while lo < d.len() {
                            let hi = (lo + per).min(d.len());
                            items.push(Item::Pin { di, td, pin, lo, hi });
                            lo = hi;
                        }
                    }
                }
                None => items.push(Item::Full { di, td }),
            }
        }
        if items.is_empty() {
            return Vec::new();
        }

        let emb = Embedder::new(self.inst.relation());
        let empty_seed = Valuation::new();
        let fired = &self.fired;
        let hyp_vals = &self.hyp_vals;
        let total_concl = &self.total_concl;
        let touch_plans = &self.touch_plans;
        let scan_plans = &self.scan_plans;
        let run_item = |item: &Item<'_>| -> ScanOutput {
            let mut out = Vec::new();
            let mut stats = ScanStats::default();
            let mut key_buf: Vec<Value> = Vec::new();
            let (di, td) = match *item {
                Item::Pin { di, td, .. } | Item::Full { di, td } => (di, td),
            };
            let mut visit = |alpha: &Valuation| {
                let is_trigger = if oblivious {
                    key_buf.clear();
                    key_buf.extend(
                        hyp_vals[di]
                            .iter()
                            .map(|&v| alpha.get(v).expect("hypothesis value bound")),
                    );
                    !fired[di].contains(key_buf.as_slice())
                } else if total_concl[di] {
                    // Total conclusion: satisfaction is literal membership
                    // of the (fully bound) conclusion row — one hash probe.
                    // Kept even under deferred collection, where it is
                    // cheaper than the valuation clone it saves;
                    // application re-checks authoritatively either way.
                    key_buf.clear();
                    key_buf.extend(
                        td.conclusion()
                            .val()
                            .map(|v| alpha.get(v).expect("total conclusion bound")),
                    );
                    !emb.target().contains_values(&key_buf)
                } else if deferred {
                    true // application re-checks authoritatively
                } else {
                    !emb.embeds(std::slice::from_ref(td.conclusion()), alpha)
                };
                if is_trigger {
                    out.push((di, alpha.clone()));
                }
                ControlFlow::Continue(())
            };
            match *item {
                Item::Pin { pin, lo, hi, .. } => {
                    let delta = deltas[di].expect("pinned item implies a delta");
                    emb.for_each_embedding_touching_pin_range(
                        td.hypothesis(),
                        &empty_seed,
                        delta,
                        pin,
                        lo..hi,
                        &touch_plans[di][pin],
                        &mut stats,
                        &mut visit,
                    );
                }
                Item::Full { .. } => {
                    emb.for_each_embedding_planned(
                        td.hypothesis(),
                        &empty_seed,
                        &scan_plans[di],
                        &mut stats,
                        &mut visit,
                    );
                }
            }
            (out, stats)
        };

        let mut triggers: Vec<(usize, Valuation)> = Vec::new();
        let mut stats = ScanStats::default();
        let shards = shard_target.min(items.len());
        if shards > 1 {
            // Work stealing: workers claim items off a shared cursor, park
            // results in per-item slots, and the merge walks the slots in
            // item order — identical output to the inline loop below.
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<ScanOutput>>> =
                (0..items.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..shards {
                    scope.spawn(|| loop {
                        let wi = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(wi) else { break };
                        *slots[wi].lock().unwrap() = Some(run_item(item));
                    });
                }
            });
            for slot in slots {
                let (out, s) = slot
                    .into_inner()
                    .unwrap()
                    .expect("every work item was claimed");
                triggers.extend(out);
                stats.absorb(s);
            }
            self.parallel_shards += shards as u64;
        } else {
            for item in &items {
                let (out, s) = run_item(item);
                triggers.extend(out);
                stats.absorb(s);
            }
        }
        self.join_build_rows += stats.build_rows;
        self.join_probe_hits += stats.probe_hits;
        if self.cfg.semi_naive {
            for (di, dep) in self.sigma.iter().enumerate() {
                if matches!(dep, TdOrEgd::Td(_)) {
                    self.seen[di] = scanned_at;
                }
            }
        }
        triggers
    }

    /// Fires the collected triggers (re-verifying each under the merges and
    /// additions that happened earlier in the round). Continues with the
    /// number of rows actually inserted.
    fn apply_td_triggers(
        &mut self,
        triggers: Vec<(usize, Valuation)>,
    ) -> ControlFlow<ChaseOutcome, usize> {
        let oblivious = self.cfg.variant == ChaseVariant::Oblivious;
        let mut applied = 0usize;
        // Trail buffer for the per-trigger satisfaction probes; lent to
        // `satisfies_row` so the hot loop allocates nothing per trigger.
        let mut scratch = Vec::new();
        for (di, alpha) in triggers {
            let TdOrEgd::Td(td) = &self.sigma[di] else {
                unreachable!("td trigger indexes a td")
            };
            // Resolve the trigger under any merges since collection. In
            // the current round shape no merge can land between the two,
            // so the common case is a cheap identity check that skips the
            // map rebuild entirely.
            let resolved = if alpha
                .iter()
                .any(|(_, img)| self.inst.resolve_readonly(img) != img)
            {
                Valuation::from_pairs(alpha.iter().map(|(v, img)| (v, self.inst.resolve(img))))
            } else {
                alpha
            };
            if oblivious {
                self.key_buf.clear();
                self.key_buf.extend(
                    self.hyp_vals[di]
                        .iter()
                        .map(|&v| resolved.get(v).expect("hypothesis value bound")),
                );
                if self.fired[di].contains(self.key_buf.as_slice()) {
                    continue;
                }
                self.fired[di].insert(self.key_buf.clone());
            } else if self.total_concl[di] {
                self.key_buf.clear();
                self.key_buf.extend(
                    td.conclusion()
                        .val()
                        .map(|v| resolved.get(v).expect("total conclusion bound")),
                );
                if self.inst.relation().contains_values(&self.key_buf) {
                    continue; // satisfied meanwhile
                }
            } else if satisfies_row(self.inst.relation(), td.conclusion(), &resolved, &mut scratch)
            {
                continue; // satisfied meanwhile
            }
            // The trace wants the matched hypothesis rows under the
            // pre-extension valuation; computing it first lets `resolved`
            // move into the extension instead of being cloned.
            let matched = resolved.apply_rows(td.hypothesis());
            // Extend with fresh nulls on existential conclusion values.
            let mut ext = resolved;
            for a in self.universe.attrs() {
                let v = td.conclusion().get(a);
                if ext.get(v).is_none() {
                    let sort = Some(a).filter(|_| self.universe.is_typed());
                    ext.bind(v, self.pool.fresh(sort, "n"));
                }
            }
            let row = ext.apply_tuple(td.conclusion());
            if self.inst.insert(row.clone()) {
                self.trace.steps.push(ChaseStep {
                    dep: di,
                    matched,
                    kind: StepKind::AddRow { row },
                });
                self.steps += 1;
                applied += 1;
                // Budgets can only newly trip on an insert, so checking
                // here (not after skipped triggers) keeps the eager and
                // deferred modes on identical outcomes.
                if self.steps >= self.cfg.max_steps || self.inst.len() >= self.cfg.max_rows {
                    return ControlFlow::Break(ChaseOutcome::Exhausted);
                }
            }
        }
        ControlFlow::Continue(applied)
    }

    /// Core-chase retraction: shrink the instance to its core, keeping the
    /// frozen values fixed. Marks every row dirty (full rescan next round).
    fn retract_to_core(&mut self) {
        let frozen: FxHashSet<Value> = self
            .inst
            .frozen()
            .iter()
            .map(|&v| self.inst.resolve_readonly(v))
            .collect();
        let core = core_retract(self.inst.relation(), &frozen);
        if core.len() < self.inst.len() {
            self.inst.replace_relation(core);
        }
    }
}
