//! Property tests for the fragment classifier: generated Σ with
//! known-by-construction properties, plus the soundness property that a
//! "terminating" verdict really means the blocking chase terminates.

use proptest::prelude::*;
use typedtd_chase::{
    classify, is_guarded, is_linear, terminating_chase_config, weakly_acyclic, ChaseConfig,
    ChaseOutcome, ChaseTask, RouteClass, StepStatus,
};
use typedtd_dependencies::{td_from_names, TdOrEgd};
use typedtd_relational::{Relation, Tuple, Universe, ValuePool};

/// Builds a td over untyped ABC from value indices: `t{i}` names.
fn td_of(hyp: &[[usize; 3]], concl: [usize; 3]) -> TdOrEgd {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let hyp_names: Vec<Vec<String>> = hyp
        .iter()
        .map(|r| r.iter().map(|i| format!("t{i}")).collect())
        .collect();
    let hyp_refs: Vec<Vec<&str>> = hyp_names
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let hyp_slices: Vec<&[&str]> = hyp_refs.iter().map(|r| r.as_slice()).collect();
    let w: Vec<String> = concl.iter().map(|i| format!("t{i}")).collect();
    let w_refs: Vec<&str> = w.iter().map(String::as_str).collect();
    TdOrEgd::Td(td_from_names(&u, &mut pool, &hyp_slices, &w_refs))
}

/// A random hypothesis: 1–3 rows over value indices 0..4.
fn hyp_strategy() -> impl Strategy<Value = Vec<[usize; 3]>> {
    prop::collection::vec([0..4usize, 0..4usize, 0..4usize], 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Total tds (every conclusion value drawn from the hypothesis) have
    /// no existential positions, hence no special edges: any Σ of them is
    /// weakly acyclic and routes `Terminating`.
    #[test]
    fn total_tds_are_weakly_acyclic(
        hyps in prop::collection::vec(hyp_strategy(), 1..=3),
        picks in prop::collection::vec([0..8usize, 0..8usize, 0..8usize], 1..=3),
    ) {
        let sigma: Vec<TdOrEgd> = hyps
            .iter()
            .zip(&picks)
            .map(|(hyp, pick)| {
                // Conclusion values copied out of the hypothesis itself.
                let concl = [
                    hyp[pick[0] % hyp.len()][0],
                    hyp[pick[1] % hyp.len()][1],
                    hyp[pick[2] % hyp.len()][2],
                ];
                td_of(hyp, concl)
            })
            .collect();
        prop_assert!(weakly_acyclic(&sigma));
        prop_assert_eq!(classify(&sigma).route(), RouteClass::Terminating);
    }

    /// A td whose conclusion is existential at position `j` while copying
    /// the hypothesis value *from* position `j` somewhere has a special
    /// self-loop `j → j`: never weakly acyclic.
    #[test]
    fn self_feeding_existentials_are_cyclic(j in 0usize..3, step in 1usize..3) {
        let i = (j + step) % 3;
        // Hypothesis (t0, t1, t2); conclusion: fresh t9 at j, t{j} at i,
        // and the remaining position keeps its own hypothesis value.
        let mut concl = [0usize, 1, 2];
        concl[j] = 9; // fresh: index 9 never occurs in the hypothesis
        concl[i] = j;
        let sigma = vec![td_of(&[[0, 1, 2]], concl)];
        prop_assert!(!weakly_acyclic(&sigma));
        prop_assert_ne!(classify(&sigma).route(), RouteClass::Terminating);
    }

    /// Single-body-atom tds are linear, and linear implies guarded — per
    /// dependency and for whole-Σ classification.
    #[test]
    fn single_row_tds_are_linear_hence_guarded(
        row in [0..4usize, 0..4usize, 0..4usize],
        concl in [0..6usize, 0..6usize, 0..6usize],
    ) {
        let dep = td_of(&[row], concl);
        prop_assert!(is_linear(&dep));
        prop_assert!(is_guarded(&dep));
        let report = classify(std::slice::from_ref(&dep));
        prop_assert!(report.linear && report.guarded);
    }

    /// Whole-Σ linearity implies whole-Σ guardedness on arbitrary mixes.
    #[test]
    fn linear_sigma_is_guarded_sigma(
        hyps in prop::collection::vec(hyp_strategy(), 1..=4),
        concls in prop::collection::vec([0..6usize, 0..6usize, 0..6usize], 1..=4),
    ) {
        let sigma: Vec<TdOrEgd> = hyps
            .iter()
            .zip(&concls)
            .map(|(h, c)| td_of(h, *c))
            .collect();
        let report = classify(&sigma);
        if report.linear {
            prop_assert!(report.guarded);
        }
        prop_assert_eq!(report.linear, sigma.iter().all(is_linear));
        prop_assert_eq!(report.guarded, sigma.iter().all(is_guarded));
    }

    /// Soundness: when the classifier says `Terminating`, a blocking
    /// saturation under the unbounded routed budget actually reaches its
    /// fixpoint — bounded here only by a generous round allowance whose
    /// exhaustion would fail the test rather than hang it.
    #[test]
    fn terminating_verdicts_really_terminate(
        hyps in prop::collection::vec(hyp_strategy(), 1..=2),
        concls in prop::collection::vec([0..6usize, 0..6usize, 0..6usize], 1..=2),
        seed_rows in prop::collection::vec([0..3usize, 0..3usize, 0..3usize], 1..=3),
    ) {
        // Σ and the seed share one pool: the chase needs every pattern
        // value in the instance's value space. Distinct index spaces keep
        // dependency variables (`d{k}_t{i}`) clear of seed constants.
        let u = Universe::untyped_abc();
        let mut pool = ValuePool::new(u.clone());
        let sigma: Vec<TdOrEgd> = hyps
            .iter()
            .zip(&concls)
            .enumerate()
            .map(|(k, (hyp, concl))| {
                let name = |i: usize| format!("d{k}_t{i}");
                let hyp_names: Vec<Vec<String>> =
                    hyp.iter().map(|r| r.iter().map(|&i| name(i)).collect()).collect();
                let hyp_refs: Vec<Vec<&str>> = hyp_names
                    .iter()
                    .map(|r| r.iter().map(String::as_str).collect())
                    .collect();
                let hyp_slices: Vec<&[&str]> = hyp_refs.iter().map(|r| r.as_slice()).collect();
                let w: Vec<String> = concl.iter().map(|&i| name(i)).collect();
                let w_refs: Vec<&str> = w.iter().map(String::as_str).collect();
                TdOrEgd::Td(td_from_names(&u, &mut pool, &hyp_slices, &w_refs))
            })
            .collect();
        prop_assume!(weakly_acyclic(&sigma));
        let mut seed = Relation::new(u.clone());
        for r in &seed_rows {
            seed.insert(Tuple::new(
                r.iter().map(|i| pool.untyped(&format!("s{i}"))).collect(),
            ));
        }
        let cfg = terminating_chase_config(&ChaseConfig::default());
        let mut task = ChaseTask::saturation(&seed, sigma, pool, cfg);
        let mut outcome = None;
        for _ in 0..4096 {
            if let StepStatus::Done(o) = task.step(16) {
                outcome = Some(o);
                break;
            }
        }
        // Terminal fixpoint, within the allowance, never budget-exhausted.
        prop_assert_eq!(outcome, Some(ChaseOutcome::NotImplied));
    }
}
