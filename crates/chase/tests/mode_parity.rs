//! Chase-mode parity: naive, semi-naive, and parallel scanning are three
//! schedules of the *same* chase, so on any input they must agree on the
//! outcome, the round count, and the final instance up to isomorphism.
//!
//! This matters in particular for the parallel scanner's deferred
//! satisfaction check (see `engine.rs`): collection skips the per-trigger
//! `embeds` probe and relies on apply's authoritative re-check, plus the
//! `applied == 0 → NotImplied` and probe-at-`max_rounds` mechanisms to
//! report the same outcome at the same round as the eager schedules.
//!
//! Randomized corpora over both a typed (disjoint per-column domains) and
//! an untyped universe, driven by a dependency-free LCG.

use std::sync::Arc;
use typedtd_chase::{chase_implication, saturate, ChaseConfig, ChaseRun, Goal};
use typedtd_dependencies::{egd_from_names, td_from_names, TdOrEgd};
use typedtd_relational::{isomorphic, AttrId, Relation, Tuple, Universe, ValuePool};

/// Deterministic 64-bit LCG (MMIX constants); high bits are the sample.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn pick(state: &mut u64, n: usize) -> usize {
    (next(state) % n as u64) as usize
}

/// Names acting as td/egd variables. Small pool so hypothesis rows share
/// values often enough to form real join patterns.
const VARS: [&str; 4] = ["w", "x", "y", "z"];
/// Names acting as instance constants.
const CONSTS: [&str; 3] = ["c0", "c1", "c2"];

fn random_row<'a>(state: &mut u64, names: &[&'a str], width: usize) -> Vec<&'a str> {
    (0..width).map(|_| names[pick(state, names.len())]).collect()
}

fn random_sigma(state: &mut u64, u: &Arc<Universe>, pool: &mut ValuePool) -> Vec<TdOrEgd> {
    let width = u.width();
    let count = 1 + pick(state, 3);
    (0..count)
        .map(|_| {
            let hyp_rows = 1 + pick(state, 2);
            let hyp: Vec<Vec<&str>> = (0..hyp_rows)
                .map(|_| random_row(state, &VARS, width))
                .collect();
            let hyp_refs: Vec<&[&str]> = hyp.iter().map(Vec::as_slice).collect();
            if pick(state, 3) < 2 {
                // Conclusion cells may name values absent from the
                // hypothesis: those become fresh labeled nulls when the td
                // fires, which is where the divergence risk lives.
                let concl = random_row(state, &VARS, width);
                TdOrEgd::Td(td_from_names(u, pool, &hyp_refs, &concl))
            } else {
                let attrs: Vec<String> = u.attrs().map(|a| u.name(a).to_string()).collect();
                let (la, ra) = (pick(state, width), pick(state, width));
                let lv = hyp[pick(state, hyp.len())][la];
                let rv = hyp[pick(state, hyp.len())][ra];
                TdOrEgd::Egd(egd_from_names(
                    u,
                    pool,
                    &hyp_refs,
                    (attrs[la].as_str(), lv),
                    (attrs[ra].as_str(), rv),
                ))
            }
        })
        .collect()
}

fn random_instance(state: &mut u64, u: &Arc<Universe>, pool: &mut ValuePool) -> Relation {
    let mut rel = Relation::new(u.clone());
    for _ in 0..(2 + pick(state, 3)) {
        let row: Vec<_> = (0..u.width())
            .map(|i| pool.for_attr(AttrId(i as u16), CONSTS[pick(state, CONSTS.len())]))
            .collect();
        rel.insert(Tuple::new(row));
    }
    rel
}

/// The four schedules under test. Tight budgets keep divergent cases
/// cheap enough for isomorphism checks. `sharded` pins the worker count to
/// 3, forcing the scoped-thread work-stealing path (with delta chunking)
/// even on a single-core host, where `parallel` alone would run inline.
fn modes() -> [(&'static str, ChaseConfig); 4] {
    let base = ChaseConfig {
        max_rounds: 12,
        max_rows: 128,
        max_steps: 1_024,
        ..ChaseConfig::default()
    };
    [
        ("naive", base.clone().with_semi_naive(false)),
        ("semi", base.clone()),
        ("parallel", base.clone().with_parallel(true)),
        ("sharded", base.with_parallel(true).with_shards(Some(3))),
    ]
}

fn assert_runs_agree(runs: &[(&str, ChaseRun)], ctx: &str) {
    let (ref_name, reference) = &runs[0];
    for (name, run) in &runs[1..] {
        assert_eq!(
            run.outcome, reference.outcome,
            "{ctx}: {name} vs {ref_name} outcome"
        );
        assert_eq!(
            run.rounds, reference.rounds,
            "{ctx}: {name} vs {ref_name} rounds"
        );
        assert_eq!(
            run.final_relation.len(),
            reference.final_relation.len(),
            "{ctx}: {name} vs {ref_name} final size"
        );
        assert_eq!(
            run.trace.len(),
            reference.trace.len(),
            "{ctx}: {name} vs {ref_name} trace length"
        );
        assert!(
            isomorphic(&run.final_relation, &reference.final_relation),
            "{ctx}: {name} vs {ref_name} final instances not isomorphic"
        );
    }
}

fn universes() -> [Arc<Universe>; 2] {
    [Universe::typed(vec!["A", "B", "C"]), Universe::untyped_abc()]
}

#[test]
fn saturation_modes_agree_on_random_corpora() {
    for (ui, u) in universes().into_iter().enumerate() {
        for case in 0..40u64 {
            let mut state =
                0xa076_1d64_78bd_642fu64 ^ ((ui as u64) << 32) ^ case.wrapping_mul(0xe703_7ed1_a0b4_28db);
            let mut pool = ValuePool::new(u.clone());
            let sigma = random_sigma(&mut state, &u, &mut pool);
            let init = random_instance(&mut state, &u, &mut pool);
            let runs: Vec<(&str, ChaseRun)> = modes()
                .into_iter()
                .map(|(name, cfg)| {
                    let mut p = pool.clone();
                    (name, saturate(&init, &sigma, &mut p, &cfg))
                })
                .collect();
            assert_runs_agree(&runs, &format!("saturation universe {ui} case {case}"));
        }
    }
}

#[test]
fn implication_modes_agree_on_random_goals() {
    for (ui, u) in universes().into_iter().enumerate() {
        for case in 0..40u64 {
            let mut state =
                0x2b2e_4b58_9f6a_31c7u64 ^ ((ui as u64) << 32) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut pool = ValuePool::new(u.clone());
            let sigma = random_sigma(&mut state, &u, &mut pool);
            // A random goal from the same generator: exercises both the
            // Implied and NotImplied exits of the round loop.
            let goal: Goal = random_sigma(&mut state, &u, &mut pool).swap_remove(0);
            let runs: Vec<(&str, ChaseRun)> = modes()
                .into_iter()
                .map(|(name, cfg)| {
                    let mut p = pool.clone();
                    (name, chase_implication(&sigma, &goal, &mut p, &cfg))
                })
                .collect();
            assert_runs_agree(&runs, &format!("implication universe {ui} case {case}"));
        }
    }
}
