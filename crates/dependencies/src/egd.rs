//! Equality-generating dependencies (Section 2.3).
//!
//! An egd is a pair `(a = b, I)` with `a, b ∈ VAL(I)`. A relation `J`
//! satisfies it when every valuation `α` with `α(I) ⊆ J` has `α(a) = α(b)`.
//! In typed universes `a` and `b` must belong to the same attribute domain.

use std::ops::ControlFlow;
use std::sync::Arc;
use typedtd_relational::{
    Embedder, Relation, RowDelta, ScanStats, Tuple, Universe, Valuation, Value, ValuePool,
};

/// An equality-generating dependency `(a = b, I)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Egd {
    universe: Arc<Universe>,
    left: Value,
    right: Value,
    hypothesis: Vec<Tuple>,
}

impl Egd {
    /// Builds an egd.
    ///
    /// # Panics
    /// Panics if the hypothesis is empty, widths disagree, or `a`/`b` do not
    /// occur in the hypothesis.
    pub fn new(universe: Arc<Universe>, left: Value, right: Value, hypothesis: Vec<Tuple>) -> Self {
        assert!(!hypothesis.is_empty(), "egd hypothesis must be nonempty");
        for t in &hypothesis {
            assert_eq!(t.width(), universe.width());
        }
        let occurs = |v: Value| hypothesis.iter().any(|t| t.val().any(|x| x == v));
        assert!(occurs(left), "left side of egd must occur in hypothesis");
        assert!(occurs(right), "right side of egd must occur in hypothesis");
        Self {
            universe,
            left,
            right,
            hypothesis,
        }
    }

    /// The universe this egd is over.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Left value of the equality.
    pub fn left(&self) -> Value {
        self.left
    }

    /// Right value of the equality.
    pub fn right(&self) -> Value {
        self.right
    }

    /// Hypothesis rows `I`.
    pub fn hypothesis(&self) -> &[Tuple] {
        &self.hypothesis
    }

    /// The hypothesis as a relation.
    pub fn hypothesis_relation(&self) -> Relation {
        Relation::from_rows(self.universe.clone(), self.hypothesis.iter().cloned())
    }

    /// `true` if the equated values are literally equal (trivial egd).
    pub fn is_trivially_satisfied(&self) -> bool {
        self.left == self.right
    }

    /// Typedness check: rows are well-sorted and the two equated values have
    /// the same sort.
    pub fn check_typed(&self, pool: &ValuePool) -> Result<(), String> {
        for t in &self.hypothesis {
            for a in self.universe.attrs() {
                if !pool.fits(t.get(a), a) {
                    return Err(format!(
                        "value {} may not appear in column {}",
                        pool.name(t.get(a)),
                        self.universe.name(a)
                    ));
                }
            }
        }
        if self.universe.is_typed() && pool.sort(self.left) != pool.sort(self.right) {
            return Err(format!(
                "egd equates values of different sorts: {} vs {}",
                pool.name(self.left),
                pool.name(self.right)
            ));
        }
        Ok(())
    }

    /// Decides `J ⊨ (a = b, I)`.
    pub fn satisfied_by(&self, j: &Relation) -> bool {
        assert_eq!(j.universe().width(), self.universe.width());
        let emb = Embedder::new(j);
        let violated = emb.for_each_embedding(&self.hypothesis, &Valuation::new(), |alpha| {
            if alpha.get(self.left) == alpha.get(self.right) {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        });
        !violated
    }

    /// Finds a valuation witnessing `J ⊭ (a = b, I)`, if any.
    pub fn violation(&self, j: &Relation) -> Option<Valuation> {
        let emb = Embedder::new(j);
        let mut witness = None;
        emb.for_each_embedding(&self.hypothesis, &Valuation::new(), |alpha| {
            if alpha.get(self.left) == alpha.get(self.right) {
                ControlFlow::Continue(())
            } else {
                witness = Some(alpha.clone());
                ControlFlow::Break(())
            }
        });
        witness
    }

    /// Finds a violating valuation whose hypothesis embedding touches at
    /// least one row of `delta` — the semi-naive chase's restricted check.
    ///
    /// Complete relative to the semi-naive invariant: if every embedding
    /// avoiding `delta` was previously verified non-violating (and the
    /// touched rows have not changed since), `None` here means `J ⊨ self`.
    pub fn violation_touching(&self, j: &Relation, delta: &RowDelta) -> Option<Valuation> {
        let emb = Embedder::new(j);
        let mut witness = None;
        emb.for_each_embedding_touching(&self.hypothesis, &Valuation::new(), delta, |alpha| {
            if alpha.get(self.left) == alpha.get(self.right) {
                ControlFlow::Continue(())
            } else {
                witness = Some(alpha.clone());
                ControlFlow::Break(())
            }
        });
        witness
    }

    /// [`Self::violation`] with a precomputed placement plan
    /// ([`Embedder::scan_plan`] over the hypothesis, empty seed) and join
    /// counters — the chase caches the plan per dependency.
    pub fn violation_planned(
        &self,
        j: &Relation,
        plan: &[usize],
        stats: &mut ScanStats,
    ) -> Option<Valuation> {
        let emb = Embedder::new(j);
        let mut witness = None;
        emb.for_each_embedding_planned(&self.hypothesis, &Valuation::new(), plan, stats, |alpha| {
            if alpha.get(self.left) == alpha.get(self.right) {
                ControlFlow::Continue(())
            } else {
                witness = Some(alpha.clone());
                ControlFlow::Break(())
            }
        });
        witness
    }

    /// [`Self::violation_touching`] with precomputed per-pin placement plans
    /// ([`Embedder::touch_plans`] over the hypothesis, empty seed) and join
    /// counters.
    pub fn violation_touching_planned(
        &self,
        j: &Relation,
        delta: &RowDelta,
        plans: &[Vec<usize>],
        stats: &mut ScanStats,
    ) -> Option<Valuation> {
        let emb = Embedder::new(j);
        let seed = Valuation::new();
        let mut witness = None;
        for (pin, plan) in plans.iter().enumerate() {
            let broke = emb.for_each_embedding_touching_pin(
                &self.hypothesis,
                &seed,
                delta,
                pin,
                plan,
                stats,
                |alpha| {
                    if alpha.get(self.left) == alpha.get(self.right) {
                        ControlFlow::Continue(())
                    } else {
                        witness = Some(alpha.clone());
                        ControlFlow::Break(())
                    }
                },
            );
            if broke {
                break;
            }
        }
        witness
    }

    /// Renders the egd as `a = b ⇐ I` via the given pool.
    pub fn render(&self, pool: &ValuePool) -> String {
        let rows: Vec<(String, &Tuple)> = self
            .hypothesis
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("w{}", i + 1), t))
            .collect();
        format!(
            "{} = {}  given\n{}",
            pool.name(self.left),
            pool.name(self.right),
            typedtd_relational::render_rows(&self.universe, pool, &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::td::egd_from_names;
    use typedtd_relational::AttrId;

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn fd_style_egd() {
        // A' → B' as egd: rows (x,y1,z1), (x,y2,z2) force y1 = y2.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let egd = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        let good = rel(&u, &mut p, &[&["a", "b", "c"], &["a", "b", "d"]]);
        assert!(egd.satisfied_by(&good));
        let bad = rel(&u, &mut p, &[&["a", "b", "c"], &["a", "e", "d"]]);
        assert!(!egd.satisfied_by(&bad));
        assert!(egd.violation(&bad).is_some());
    }

    #[test]
    fn violation_touching_respects_delta() {
        use typedtd_relational::RowDelta;
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let egd = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        // Rows 0 and 1 are clean together; row 2 introduces the violation.
        let j = rel(
            &u,
            &mut p,
            &[&["a", "b", "c"], &["a", "b", "d"], &["a", "e", "f"]],
        );
        assert!(egd.violation(&j).is_some());
        // Any delta containing the offending row finds it …
        assert!(egd
            .violation_touching(&j, &RowDelta::from_ids(vec![2]))
            .is_some());
        // … and an empty delta scans nothing, violating relation or not.
        assert!(egd
            .violation_touching(&j, &RowDelta::from_ids(vec![]))
            .is_none());
    }

    #[test]
    fn trivial_egd() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let egd = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y", "z"]],
            ("A'", "x"),
            ("A'", "x"),
        );
        assert!(egd.is_trivially_satisfied());
        let j = rel(&u, &mut p, &[&["a", "b", "c"]]);
        assert!(egd.satisfied_by(&j));
    }

    #[test]
    fn typed_egd_rejects_cross_sort_equality() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut p = ValuePool::new(u.clone());
        let x = p.typed(u.a("A"), "x");
        let y = p.typed(u.a("B"), "y");
        let egd = Egd::new(u.clone(), x, y, vec![Tuple::new(vec![x, y])]);
        assert!(egd.check_typed(&p).is_err());
    }

    #[test]
    #[should_panic(expected = "must occur in hypothesis")]
    fn egd_values_must_occur() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut p = ValuePool::new(u.clone());
        let x = p.typed(u.a("A"), "x");
        let y = p.typed(u.a("B"), "y");
        let ghost = p.typed(u.a("A"), "ghost");
        let _ = Egd::new(u.clone(), ghost, x, vec![Tuple::new(vec![x, y])]);
    }
}
