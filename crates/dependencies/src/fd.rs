//! Functional dependencies (Section 2.3) and the Armstrong closure oracle.
//!
//! An fd `X → Y` is satisfied when any two tuples agreeing on `X` agree on
//! `Y`. Fds are equivalent to finite sets of egds; [`Fd::to_egds`] performs
//! that conversion. [`closure`] and [`implies`] give the classical — and
//! decidable — implication test, used to cross-check the chase engine.

use crate::egd::Egd;
use std::sync::Arc;
use typedtd_relational::{AttrSet, FxHashMap, Relation, Tuple, Universe, ValuePool};

/// A functional dependency `X → Y`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fd {
    /// Determinant `X`.
    pub lhs: AttrSet,
    /// Dependent `Y`.
    pub rhs: AttrSet,
}

impl Fd {
    /// Builds `X → Y`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        Self { lhs, rhs }
    }

    /// Parses `"A B -> C"` style notation against a universe.
    ///
    /// # Errors
    /// Returns a description of the first syntax problem (missing `->`,
    /// unknown attribute).
    pub fn parse(universe: &Universe, spec: &str) -> Result<Self, String> {
        let (l, r) = spec
            .split_once("->")
            .ok_or_else(|| format!("fd must contain '->': {spec:?}"))?;
        Ok(Self::new(
            universe.try_set(l.trim())?,
            universe.try_set(r.trim())?,
        ))
    }

    /// Decides `J ⊨ X → Y` by grouping on the determinant.
    pub fn satisfied_by(&self, j: &Relation) -> bool {
        let mut groups: FxHashMap<Box<[typedtd_relational::Value]>, Box<[typedtd_relational::Value]>> =
            FxHashMap::default();
        for t in j.iter() {
            let key = t.restrict(&self.lhs);
            let dep = t.restrict(&self.rhs);
            match groups.get(&key) {
                Some(prev) if *prev != dep => return false,
                Some(_) => {}
                None => {
                    groups.insert(key, dep);
                }
            }
        }
        true
    }

    /// Converts the fd to the equivalent set of egds, one per attribute of
    /// `Y − X` (the paper treats the class of egds as containing the fds).
    pub fn to_egds(&self, universe: &Arc<Universe>, pool: &mut ValuePool) -> Vec<Egd> {
        let mut out = Vec::new();
        for target in self.rhs.difference(&self.lhs).iter() {
            // Two rows agreeing exactly on X, fresh everywhere else.
            let mut r1 = Vec::with_capacity(universe.width());
            let mut r2 = Vec::with_capacity(universe.width());
            for a in universe.attrs() {
                if self.lhs.contains(a) {
                    let shared = pool.fresh(Some(a).filter(|_| universe.is_typed()), "x");
                    r1.push(shared);
                    r2.push(shared);
                } else {
                    r1.push(pool.fresh(Some(a).filter(|_| universe.is_typed()), "y"));
                    r2.push(pool.fresh(Some(a).filter(|_| universe.is_typed()), "z"));
                }
            }
            let left = r1[target.index()];
            let right = r2[target.index()];
            out.push(Egd::new(
                universe.clone(),
                left,
                right,
                vec![Tuple::new(r1), Tuple::new(r2)],
            ));
        }
        out
    }

    /// Renders as `X → Y` via universe names.
    pub fn render(&self, universe: &Universe) -> String {
        format!(
            "{} -> {}",
            universe.render_set(&self.lhs),
            universe.render_set(&self.rhs)
        )
    }

    /// The key fd `X → U` over a width-`n` universe.
    pub fn key(universe: &Universe, lhs: AttrSet) -> Self {
        Self::new(lhs, universe.all())
    }
}

/// Armstrong closure `X⁺` of an attribute set under a set of fds.
///
/// Classical fixpoint: add `Y` whenever `W → Y` with `W ⊆ X⁺`.
pub fn closure(start: &AttrSet, fds: &[Fd]) -> AttrSet {
    let mut acc = start.clone();
    loop {
        let mut changed = false;
        for fd in fds {
            if fd.lhs.is_subset(&acc) && !fd.rhs.is_subset(&acc) {
                acc = acc.union(&fd.rhs);
                changed = true;
            }
        }
        if !changed {
            return acc;
        }
    }
}

/// Decidable fd-implication oracle: `fds ⊨ X → Y` iff `Y ⊆ X⁺`.
///
/// For fds, implication and finite implication coincide, so this single
/// oracle cross-checks both chase-based answers.
pub fn implies(fds: &[Fd], goal: &Fd) -> bool {
    goal.rhs.is_subset(&closure(&goal.lhs, fds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::AttrId;

    fn u() -> Arc<Universe> {
        Universe::typed(vec!["A", "B", "C", "D"])
    }

    fn rel(universe: &Arc<Universe>, pool: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            universe.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| pool.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn parse_and_render() {
        let u = u();
        let fd = Fd::parse(&u, "AB -> CD").unwrap();
        assert_eq!(fd.lhs, u.set("AB"));
        assert_eq!(fd.rhs, u.set("CD"));
        assert_eq!(fd.render(&u), "AB -> CD");
    }

    #[test]
    fn satisfaction() {
        let u = u();
        let mut p = ValuePool::new(u.clone());
        let fd = Fd::parse(&u, "A -> B").unwrap();
        let good = rel(&u, &mut p, &[&["a", "b", "c", "d"], &["a", "b", "x", "y"]]);
        assert!(fd.satisfied_by(&good));
        let bad = rel(&u, &mut p, &[&["a", "b", "c", "d"], &["a", "q", "x", "y"]]);
        assert!(!fd.satisfied_by(&bad));
    }

    #[test]
    fn closure_transitivity() {
        let u = u();
        let fds = vec![Fd::parse(&u, "A -> B").unwrap(), Fd::parse(&u, "B -> C").unwrap()];
        let cl = closure(&u.set("A"), &fds);
        assert_eq!(cl, u.set("ABC"));
        assert!(implies(&fds, &Fd::parse(&u, "A -> C").unwrap()));
        assert!(!implies(&fds, &Fd::parse(&u, "A -> D").unwrap()));
    }

    #[test]
    fn closure_augmentation_pseudotransitivity() {
        let u = u();
        let fds = vec![Fd::parse(&u, "A -> B").unwrap(), Fd::parse(&u, "BC -> D").unwrap()];
        assert!(implies(&fds, &Fd::parse(&u, "AC -> D").unwrap()));
        assert!(implies(&fds, &Fd::parse(&u, "AC -> ABCD").unwrap()));
        assert!(!implies(&fds, &Fd::parse(&u, "A -> D").unwrap()));
    }

    #[test]
    fn reflexive_fds_always_implied() {
        let u = u();
        assert!(implies(&[], &Fd::parse(&u, "AB -> A").unwrap()));
        assert!(!implies(&[], &Fd::parse(&u, "AB -> C").unwrap()));
    }

    #[test]
    fn egd_conversion_matches_fd_semantics() {
        let u = u();
        let mut p = ValuePool::new(u.clone());
        let fd = Fd::parse(&u, "A -> BC").unwrap();
        let egds = fd.to_egds(&u, &mut p);
        assert_eq!(egds.len(), 2, "one egd per attribute of Y − X");
        let good = rel(&u, &mut p, &[&["a", "b", "c", "d"], &["a", "b", "c", "e"]]);
        let bad = rel(&u, &mut p, &[&["a", "b", "c", "d"], &["a", "b", "q", "e"]]);
        for e in &egds {
            e.check_typed(&p).unwrap();
            assert!(e.satisfied_by(&good));
        }
        assert!(
            egds.iter().any(|e| !e.satisfied_by(&bad)),
            "some egd must catch the C-violation"
        );
        assert!(fd.satisfied_by(&good) && !fd.satisfied_by(&bad));
    }

    #[test]
    fn egd_conversion_when_rhs_subset_of_lhs_is_empty() {
        let u = u();
        let mut p = ValuePool::new(u.clone());
        let fd = Fd::parse(&u, "AB -> A").unwrap();
        assert!(fd.to_egds(&u, &mut p).is_empty());
    }
}
