//! Dependency classes of Vardi's *"The Implication and Finite Implication
//! Problems for Typed Template Dependencies"* (PODS 1982 / JCSS 1984).
//!
//! This crate implements Sections 2.3–2.4 and the Section 6 definitions:
//!
//! * [`Td`] — template dependencies `(w, I)`, with totality, `V`-totality,
//!   `REP(θ, A)`, shallowness, and k-simplicity;
//! * [`Egd`] — equality-generating dependencies `(a = b, I)`;
//! * [`Fd`] — functional dependencies `X → Y` plus the Armstrong-closure
//!   implication oracle;
//! * [`Mvd`] — total multivalued dependencies `X ↠ Y` plus the
//!   dependency-basis implication oracle;
//! * [`Pjd`] — projected join dependencies `*[R₁, …, R_k]_X` (join
//!   dependencies as the `X = R` case) with the Lemma 6 equivalence to
//!   shallow tds in both directions;
//! * [`Ind`] — inclusion dependencies `R[X] ⊆ R[Y]` over attribute
//!   sequences (related work: Casanova–Fagin–Papadimitriou), compiling to
//!   single-row tds over untyped universes;
//! * [`IndependenceAtom`] — (conditional) independence atoms `Y ⊥_X Z`
//!   (related work: Hannula–Kontinen–Link), normalizing to egds + one
//!   exchange td;
//! * [`Dependency`] / [`TdOrEgd`] — a unified enum and normalization into
//!   the td + egd fragment consumed by the chase engine, with
//!   [`DependencyClass`] tags for heterogeneous-workload accounting.
//!
//! Every class carries a *decidable* satisfaction test over finite
//! relations (`satisfied_by`), which is the semantic ground truth the rest
//! of the workspace is verified against.

#![warn(missing_docs)]

pub mod dependency;
pub mod egd;
pub mod fd;
pub mod ind;
pub mod independence;
pub mod mvd;
pub mod oracles;
pub mod parser;
pub mod pjd;
pub mod td;

pub use dependency::{Dependency, DependencyClass, TdOrEgd};
pub use egd::Egd;
pub use fd::{closure as fd_closure, implies as fd_implies, Fd};
pub use ind::Ind;
pub use independence::IndependenceAtom;
pub use mvd::Mvd;
pub use oracles::{dependency_basis, mvd_implies};
pub use parser::{parse_dependency, parse_egd, parse_td};
pub use pjd::Pjd;
pub use td::{egd_from_names, td_from_names, Td};
