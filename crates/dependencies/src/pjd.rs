//! Projected join dependencies (Section 6 of the paper).
//!
//! A pjd `*[R₁, …, R_k]_X` (with `X ⊆ R = ∪Rᵢ`) is satisfied by `I` when
//! `(m_R(I))[X] = I[X]`, where `m_R` is the project-join mapping. Join
//! dependencies (`X = R`), total dependencies (`R = U`), and multivalued
//! dependencies (`k = 2`) are special cases.
//!
//! Lemma 6 of the paper identifies pjds with *shallow* tds;
//! [`Pjd::to_td`] and [`Pjd::from_shallow_td`] implement the two directions.

use crate::td::Td;
use std::sync::Arc;
use typedtd_relational::{
    project_join, AttrSet, FxHashMap, Relation, Tuple, Universe, Value, ValuePool,
};

/// A projected join dependency `*[R₁, …, R_k]_X`.
///
/// ```
/// use typedtd_dependencies::Pjd;
/// use typedtd_relational::Universe;
///
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let jd = Pjd::parse(&u, "*[AB, BC]").unwrap();
/// assert!(jd.is_jd() && jd.is_total(&u) && jd.is_mvd());
/// let pjd = Pjd::parse(&u, "*[AB, BC] on AC").unwrap();
/// assert!(!pjd.is_jd());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pjd {
    components: Vec<AttrSet>,
    projection: AttrSet,
}

impl Pjd {
    /// Builds `*[R₁, …, R_k]_X`.
    ///
    /// # Panics
    /// Panics if there are no components, a component repeats (the paper
    /// requires a sequence without repetition), a component is empty, or
    /// `X ⊄ ∪Rᵢ`.
    pub fn new(components: Vec<AttrSet>, projection: AttrSet) -> Self {
        assert!(!components.is_empty(), "pjd needs at least one component");
        for (i, c) in components.iter().enumerate() {
            assert!(!c.is_empty(), "pjd components must be nonempty");
            assert!(
                !components[..i].contains(c),
                "pjd components must not repeat"
            );
        }
        let r = components
            .iter()
            .fold(AttrSet::new(), |acc, c| acc.union(c));
        assert!(projection.is_subset(&r), "projection X must satisfy X ⊆ R");
        Self {
            components,
            projection,
        }
    }

    /// A join dependency `*[R₁, …, R_k]` (projection = the whole of `R`).
    pub fn jd(components: Vec<AttrSet>) -> Self {
        let r = components
            .iter()
            .fold(AttrSet::new(), |acc, c| acc.union(c));
        Self::new(components, r)
    }

    /// Parses `*[AB, BC]` (jd) or `*[AB, BC] on B` (pjd) notation.
    ///
    /// # Errors
    /// Returns a description of the first syntax problem: malformed
    /// brackets, an unknown attribute, an empty or repeated component, or
    /// a projection outside `∪Rᵢ`. Never panics on malformed input — the
    /// structural invariants [`Pjd::new`] asserts are checked here first.
    pub fn parse(universe: &Universe, spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let rest = spec
            .strip_prefix("*[")
            .ok_or_else(|| format!("pjd must start with '*[': {spec:?}"))?;
        let (inside, tail) = rest
            .split_once(']')
            .ok_or_else(|| format!("pjd missing ']': {spec:?}"))?;
        let mut components: Vec<AttrSet> = Vec::new();
        for c in inside.split(',') {
            let comp = universe.try_set(c.trim())?;
            if comp.is_empty() {
                return Err(format!("pjd components must be nonempty: {spec:?}"));
            }
            if components.contains(&comp) {
                return Err(format!(
                    "pjd component {} repeats: {spec:?}",
                    universe.render_set(&comp)
                ));
            }
            components.push(comp);
        }
        if components.is_empty() {
            return Err(format!("pjd needs at least one component: {spec:?}"));
        }
        let tail = tail.trim();
        if tail.is_empty() {
            Ok(Self::jd(components))
        } else {
            let x = tail
                .strip_prefix("on")
                .ok_or_else(|| format!("pjd projection must follow 'on': {spec:?}"))?;
            let projection = universe.try_set(x.trim())?;
            let r = components
                .iter()
                .fold(AttrSet::new(), |acc, c| acc.union(c));
            if !projection.is_subset(&r) {
                return Err(format!("pjd projection X must satisfy X ⊆ R: {spec:?}"));
            }
            Ok(Self::new(components, projection))
        }
    }

    /// The component sequence `R₁, …, R_k`.
    pub fn components(&self) -> &[AttrSet] {
        &self.components
    }

    /// The projection set `X`.
    pub fn projection(&self) -> &AttrSet {
        &self.projection
    }

    /// `attr(θ) = ∪Rᵢ` — the attributes mentioned (Section 6).
    pub fn attr(&self) -> AttrSet {
        self.components
            .iter()
            .fold(AttrSet::new(), |acc, c| acc.union(c))
    }

    /// `true` if this is a join dependency (`X = R`).
    pub fn is_jd(&self) -> bool {
        self.projection == self.attr()
    }

    /// `true` if total over `universe` (`R = U`); otherwise embedded.
    pub fn is_total(&self, universe: &Universe) -> bool {
        self.attr() == universe.all()
    }

    /// `true` if this is a multivalued dependency (a two-component jd).
    pub fn is_mvd(&self) -> bool {
        self.is_jd() && self.components.len() == 2
    }

    /// Decides `I ⊨ *[R₁, …, R_k]_X` via the project-join mapping.
    pub fn satisfied_by(&self, i: &Relation) -> bool {
        let joined = project_join(i, &self.components);
        // I[X] ⊆ m_R(I)[X] always holds; only the converse can fail.
        let lhs = joined.project(&self.projection);
        let rhs = i.project(&self.projection);
        lhs.rows().iter().all(|row| rhs.rows().contains(row))
    }

    /// The equivalent shallow td over `universe` (one direction of Lemma 6).
    ///
    /// One hypothesis row per component, sharing a variable `x_A` in each
    /// column `A ∈ Rᵢ`; the conclusion carries `x_A` on `X` and fresh values
    /// elsewhere.
    ///
    /// # Panics
    /// Panics if some component mentions an attribute outside `universe`.
    pub fn to_td(&self, universe: &Arc<Universe>, pool: &mut ValuePool) -> Td {
        assert!(
            self.attr().is_subset(&universe.all()),
            "pjd mentions attributes outside the universe"
        );
        let sorted = universe.is_typed();
        let mut shared: FxHashMap<u16, Value> = FxHashMap::default();
        for a in self.attr().iter() {
            shared.insert(a.0, pool.fresh(Some(a).filter(|_| sorted), "x"));
        }
        let mut hyp = Vec::with_capacity(self.components.len());
        for r in &self.components {
            let row: Vec<Value> = universe
                .attrs()
                .map(|a| {
                    if r.contains(a) {
                        shared[&a.0]
                    } else {
                        pool.fresh(Some(a).filter(|_| sorted), "y")
                    }
                })
                .collect();
            hyp.push(Tuple::new(row));
        }
        let w: Vec<Value> = universe
            .attrs()
            .map(|a| {
                if self.projection.contains(a) {
                    shared[&a.0]
                } else {
                    pool.fresh(Some(a).filter(|_| sorted), "z")
                }
            })
            .collect();
        Td::new(universe.clone(), Tuple::new(w), hyp)
    }

    /// Recovers a pjd from a shallow td (the other direction of Lemma 6).
    ///
    /// # Errors
    /// Returns a description of why the td is not pjd-shaped: a value used
    /// in two columns, two distinct repeating values in one column, a
    /// conclusion value that occurs in the hypothesis without being the
    /// column's repeating value, or a non-repeating hypothesis value used
    /// twice.
    pub fn from_shallow_td(td: &Td) -> Result<Pjd, String> {
        let universe = td.universe();
        // 1. Every value must live in a single column.
        let mut column_of: FxHashMap<Value, u16> = FxHashMap::default();
        let all_rows = || {
            td.hypothesis()
                .iter()
                .chain(std::iter::once(td.conclusion()))
        };
        for t in all_rows() {
            for a in universe.attrs() {
                let v = t.get(a);
                if let Some(&c) = column_of.get(&v) {
                    if c != a.0 {
                        return Err(format!(
                            "value appears in two columns ({} and {}); not expressible as a pjd",
                            universe.name(typedtd_relational::AttrId(c)),
                            universe.name(a)
                        ));
                    }
                } else {
                    column_of.insert(v, a.0);
                }
            }
        }
        // 2. Per column: at most one repeating value x_A.
        let mut x: FxHashMap<u16, Value> = FxHashMap::default();
        for a in universe.attrs() {
            let rep = td.rep(a);
            match rep.len() {
                0 => {}
                1 => {
                    x.insert(a.0, *rep.iter().next().unwrap());
                }
                _ => {
                    return Err(format!(
                        "column {} has {} repeating values; a pjd allows one",
                        universe.name(a),
                        rep.len()
                    ));
                }
            }
        }
        // 3. Conclusion values are either the column's x_A or globally fresh.
        let hyp_vals = td.hypothesis_values();
        for a in universe.attrs() {
            let v = td.conclusion().get(a);
            if hyp_vals.contains(&v) && x.get(&a.0) != Some(&v) {
                return Err(format!(
                    "conclusion value in column {} occurs in the hypothesis but is not its repeating value",
                    universe.name(a)
                ));
            }
        }
        // 4. Non-repeating hypothesis values occur exactly once.
        for a in universe.attrs() {
            let mut seen: FxHashMap<Value, usize> = FxHashMap::default();
            for t in td.hypothesis() {
                *seen.entry(t.get(a)).or_insert(0) += 1;
            }
            for (v, n) in seen {
                if n > 1 && x.get(&a.0) != Some(&v) {
                    return Err(format!(
                        "column {} repeats a value that is not its unique repeating value",
                        universe.name(a)
                    ));
                }
            }
        }
        // Build components and projection.
        let mut components = Vec::new();
        for t in td.hypothesis() {
            let r: AttrSet = universe
                .attrs()
                .filter(|&a| x.get(&a.0) == Some(&t.get(a)))
                .collect();
            if r.is_empty() {
                // A row sharing nothing constrains nothing; it corresponds
                // to no component. (The join with a component on ∅ would be
                // a cross product — such a row is vacuous.)
                continue;
            }
            if !components.contains(&r) {
                components.push(r);
            }
        }
        let projection: AttrSet = universe
            .attrs()
            .filter(|&a| x.get(&a.0) == Some(&td.conclusion().get(a)))
            .collect();
        if components.is_empty() {
            return Err("td shares no values between rows; vacuous as a pjd".into());
        }
        Ok(Pjd::new(components, projection))
    }

    /// Renders as `*[AB, BC]` or `*[AB, BC] on X`.
    pub fn render(&self, universe: &Universe) -> String {
        let comps: Vec<String> = self
            .components
            .iter()
            .map(|c| universe.render_set(c))
            .collect();
        if self.is_jd() {
            format!("*[{}]", comps.join(", "))
        } else {
            format!(
                "*[{}] on {}",
                comps.join(", "),
                universe.render_set(&self.projection)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::AttrId;

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn parse_roundtrip() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let jd = Pjd::parse(&u, "*[AB, BC]").unwrap();
        assert!(jd.is_jd());
        assert!(jd.is_total(&u));
        assert!(jd.is_mvd());
        assert_eq!(jd.render(&u), "*[AB, BC]");
        let pjd = Pjd::parse(&u, "*[AB, BC] on AC").unwrap();
        assert!(!pjd.is_jd());
        assert_eq!(pjd.render(&u), "*[AB, BC] on AC");
    }

    #[test]
    fn jd_satisfaction_matches_lossless_join() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let jd = Pjd::parse(&u, "*[AB, BC]").unwrap();
        // B → C holds, so *[AB, BC] holds.
        let good = rel(&u, &mut p, &[&["a1", "b", "c"], &["a2", "b", "c"]]);
        assert!(jd.satisfied_by(&good));
        // Lossy case.
        let bad = rel(&u, &mut p, &[&["a1", "b", "c1"], &["a2", "b", "c2"]]);
        assert!(!jd.satisfied_by(&bad));
    }

    #[test]
    fn projection_weakens_the_jd() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        // Project on B only: (m_R(I))[B] = I[B] always holds here.
        let pjd = Pjd::parse(&u, "*[AB, BC] on B").unwrap();
        let bad_for_jd = rel(&u, &mut p, &[&["a1", "b", "c1"], &["a2", "b", "c2"]]);
        assert!(pjd.satisfied_by(&bad_for_jd));
        assert!(!Pjd::parse(&u, "*[AB, BC]").unwrap().satisfied_by(&bad_for_jd));
    }

    #[test]
    fn to_td_is_shallow_and_equisatisfied() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let pjd = Pjd::parse(&u, "*[AB, BC] on AC").unwrap();
        let td = pjd.to_td(&u, &mut p);
        assert!(td.is_shallow());
        td.check_typed(&p).unwrap();
        for rows in [
            vec!["a1 b c1", "a2 b c2", "a1 x c2"],
            vec!["a1 b c1", "a2 b c2"],
            vec!["a b c"],
        ] {
            let parsed: Vec<Vec<&str>> = rows
                .iter()
                .map(|r| r.split_whitespace().collect())
                .collect();
            let slices: Vec<&[&str]> = parsed.iter().map(|r| r.as_slice()).collect();
            let i = rel(&u, &mut p, &slices);
            assert_eq!(
                pjd.satisfied_by(&i),
                td.satisfied_by(&i),
                "Lemma 6 equivalence failed on {rows:?}"
            );
        }
    }

    #[test]
    fn shallow_roundtrip_recovers_pjd() {
        let u = Universe::typed(vec!["A", "B", "C", "D"]);
        let mut p = ValuePool::new(u.clone());
        let pjd = Pjd::parse(&u, "*[AB, BC, CD] on AD").unwrap();
        let td = pjd.to_td(&u, &mut p);
        let back = Pjd::from_shallow_td(&td).unwrap();
        assert_eq!(back.components(), pjd.components());
        assert_eq!(back.projection(), pjd.projection());
    }

    #[test]
    fn non_shallow_td_is_rejected() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let td = crate::td::td_from_names(
            &u,
            &mut p,
            &[
                &["x", "y", "c1"],
                &["x", "y2", "c2"],
                &["x2", "y", "c3"],
                &["x2", "y2", "c4"],
            ],
            &["x", "y2", "c5"],
        );
        assert!(Pjd::from_shallow_td(&td).is_err());
    }

    #[test]
    #[should_panic(expected = "X ⊆ R")]
    fn projection_outside_r_is_rejected() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let _ = Pjd::new(vec![u.set("AB")], u.set("C"));
    }

    #[test]
    #[should_panic(expected = "must not repeat")]
    fn repeated_components_rejected() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let _ = Pjd::jd(vec![u.set("AB"), u.set("AB")]);
    }
}
