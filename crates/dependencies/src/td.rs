//! Template dependencies (Section 2.3 of the paper).
//!
//! A template dependency (td) is a pair `(w, I)` of a tuple `w` (the
//! *conclusion*) and a finite relation `I` (the *hypothesis*). A relation
//! `J` satisfies `(w, I)` when every valuation `α` with `α(I) ⊆ J` can be
//! extended to `w` so that `α(w) ∈ J`.

use crate::egd::Egd;
use std::ops::ControlFlow;
use typedtd_relational::{
    AttrId, AttrSet, Embedder, Relation, Tuple, Universe, Valuation, ValuePool,
};
use typedtd_relational::FxHashSet;
use std::sync::Arc;

/// A template dependency `(w, I)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Td {
    universe: Arc<Universe>,
    conclusion: Tuple,
    hypothesis: Vec<Tuple>,
}

impl Td {
    /// Builds a td from a conclusion tuple and hypothesis rows.
    ///
    /// # Panics
    /// Panics if the hypothesis is empty (relations are nonempty in the
    /// paper) or widths disagree with the universe.
    pub fn new(universe: Arc<Universe>, conclusion: Tuple, hypothesis: Vec<Tuple>) -> Self {
        assert!(!hypothesis.is_empty(), "td hypothesis must be nonempty");
        assert_eq!(conclusion.width(), universe.width());
        for t in &hypothesis {
            assert_eq!(t.width(), universe.width());
        }
        Self {
            universe,
            conclusion,
            hypothesis,
        }
    }

    /// The universe this td is over.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// The conclusion tuple `w`.
    pub fn conclusion(&self) -> &Tuple {
        &self.conclusion
    }

    /// The hypothesis rows `I`.
    pub fn hypothesis(&self) -> &[Tuple] {
        &self.hypothesis
    }

    /// The hypothesis as a relation.
    pub fn hypothesis_relation(&self) -> Relation {
        Relation::from_rows(self.universe.clone(), self.hypothesis.iter().cloned())
    }

    /// `VAL(I)`: values of the hypothesis.
    pub fn hypothesis_values(&self) -> FxHashSet<typedtd_relational::Value> {
        let mut s = FxHashSet::default();
        for t in &self.hypothesis {
            s.extend(t.val());
        }
        s
    }

    /// `true` if `(w, I)` is **V-total**: `VAL(w[V]) ⊆ VAL(I)`.
    pub fn is_v_total(&self, v: &AttrSet) -> bool {
        let vals = self.hypothesis_values();
        v.iter().all(|a| vals.contains(&self.conclusion.get(a)))
    }

    /// `true` if `(w, I)` is **total**: `VAL(w) ⊆ VAL(I)`.
    pub fn is_total(&self) -> bool {
        self.is_v_total(&self.universe.all())
    }

    /// Syntactic triviality: the conclusion is literally a hypothesis row
    /// (such a td is satisfied by every relation).
    pub fn is_trivially_satisfied(&self) -> bool {
        self.hypothesis.contains(&self.conclusion)
    }

    /// `REP(θ, A)` (Section 6): the set of *repeating* A-values — values
    /// `u[A]` of hypothesis rows that also occur as `w[A]` or as `v[A]`
    /// for a different hypothesis row `v`.
    pub fn rep(&self, a: AttrId) -> FxHashSet<typedtd_relational::Value> {
        let mut out = FxHashSet::default();
        for (i, u) in self.hypothesis.iter().enumerate() {
            let x = u.get(a);
            let repeats = x == self.conclusion.get(a)
                || self
                    .hypothesis
                    .iter()
                    .enumerate()
                    .any(|(j, v)| j != i && v.get(a) == x);
            if repeats {
                out.insert(x);
            }
        }
        out
    }

    /// `true` if the td is **k-simple**: `|REP(θ, A)| ≤ k` for all `A`.
    ///
    /// Shallow tds are exactly the 1-simple tds; the generalized join
    /// dependencies of Sciore are the 2-simple tds.
    pub fn is_k_simple(&self, k: usize) -> bool {
        self.universe.attrs().all(|a| self.rep(a).len() <= k)
    }

    /// `true` if the td is **shallow** (1-simple).
    pub fn is_shallow(&self) -> bool {
        self.is_k_simple(1)
    }

    /// Checks typedness of all rows against a pool.
    pub fn check_typed(&self, pool: &ValuePool) -> Result<(), String> {
        for t in self.hypothesis.iter().chain(std::iter::once(&self.conclusion)) {
            for a in self.universe.attrs() {
                if !pool.fits(t.get(a), a) {
                    return Err(format!(
                        "value {} may not appear in column {}",
                        pool.name(t.get(a)),
                        self.universe.name(a)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Decides `J ⊨ (w, I)` by enumerating all valuations of the hypothesis
    /// into `J` and checking each extends to the conclusion.
    pub fn satisfied_by(&self, j: &Relation) -> bool {
        assert_eq!(j.universe().width(), self.universe.width());
        let emb = Embedder::new(j);
        let violated = emb.for_each_embedding(&self.hypothesis, &Valuation::new(), |alpha| {
            if emb.embeds(std::slice::from_ref(&self.conclusion), alpha) {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        });
        !violated
    }

    /// Finds a valuation witnessing `J ⊭ (w, I)`, if one exists.
    pub fn violation(&self, j: &Relation) -> Option<Valuation> {
        let emb = Embedder::new(j);
        let mut witness = None;
        emb.for_each_embedding(&self.hypothesis, &Valuation::new(), |alpha| {
            if emb.embeds(std::slice::from_ref(&self.conclusion), alpha) {
                ControlFlow::Continue(())
            } else {
                witness = Some(alpha.clone());
                ControlFlow::Break(())
            }
        });
        witness
    }

    /// Number of hypothesis rows, written `|I|` in the paper (the `m` of the
    /// Section 6 translation).
    pub fn arity(&self) -> usize {
        self.hypothesis.len()
    }

    /// Renders the td in the paper's two-block style via the given pool.
    pub fn render(&self, pool: &ValuePool) -> String {
        let mut rows: Vec<(String, &Tuple)> = vec![("w".to_string(), &self.conclusion)];
        for (i, t) in self.hypothesis.iter().enumerate() {
            rows.push((format!("w{}", i + 1), t));
        }
        typedtd_relational::render_rows(&self.universe, pool, &rows)
    }
}

/// Convenience builder used throughout tests, examples, and the reductions:
/// constructs a td over `universe` from rows of value names.
///
/// Every name is interned via [`ValuePool::for_attr`], so in typed universes
/// the same name in different columns denotes *different* values (disjoint
/// domains), exactly as in the paper's examples.
pub fn td_from_names(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    hypothesis: &[&[&str]],
    conclusion: &[&str],
) -> Td {
    let mk_row = |pool: &mut ValuePool, names: &[&str]| -> Tuple {
        assert_eq!(names.len(), universe.width(), "row width mismatch");
        Tuple::new(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| pool.for_attr(AttrId(i as u16), n))
                .collect(),
        )
    };
    let hyp: Vec<Tuple> = hypothesis.iter().map(|r| mk_row(pool, r)).collect();
    let w = mk_row(pool, conclusion);
    Td::new(universe.clone(), w, hyp)
}

/// Convenience builder for egds from rows of value names; the equated pair
/// is given as `(column, name)` coordinates.
pub fn egd_from_names(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    hypothesis: &[&[&str]],
    left: (&str, &str),
    right: (&str, &str),
) -> Egd {
    let mk_row = |pool: &mut ValuePool, names: &[&str]| -> Tuple {
        assert_eq!(names.len(), universe.width(), "row width mismatch");
        Tuple::new(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| pool.for_attr(AttrId(i as u16), n))
                .collect(),
        )
    };
    let hyp: Vec<Tuple> = hypothesis.iter().map(|r| mk_row(pool, r)).collect();
    let l = pool.for_attr(universe.a(left.0), left.1);
    let r = pool.for_attr(universe.a(right.0), right.1);
    Egd::new(universe.clone(), l, r, hyp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn totality_flags() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let total = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "z"]);
        assert!(total.is_total());
        let partial = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "q"]);
        assert!(!partial.is_total());
        assert!(partial.is_v_total(&u.set("A' B'")));
        assert!(!partial.is_v_total(&u.set("C'")));
    }

    #[test]
    fn trivial_td_is_always_satisfied() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "z"]);
        assert!(td.is_trivially_satisfied());
        let j = rel(&u, &mut p, &[&["a", "b", "c"], &["d", "e", "f"]]);
        assert!(td.satisfied_by(&j));
    }

    #[test]
    fn mvd_style_td_satisfaction() {
        // td encoding of A' ↠ B': rows (x,y1,z1), (x,y2,z2) imply (x,y1,z2).
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        // Closed under the exchange: satisfied.
        let good = rel(
            &u,
            &mut p,
            &[
                &["a", "b1", "c1"],
                &["a", "b2", "c2"],
                &["a", "b1", "c2"],
                &["a", "b2", "c1"],
            ],
        );
        assert!(td.satisfied_by(&good));
        // Missing the exchanged tuple: violated.
        let bad = rel(&u, &mut p, &[&["a", "b1", "c1"], &["a", "b2", "c2"]]);
        assert!(!td.satisfied_by(&bad));
        let w = td.violation(&bad).expect("violation witness");
        // The witness maps the two hypothesis rows onto the two tuples.
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn existential_conclusion_value() {
        // td: if (x,y,z) then exists (x, y, fresh-anything).
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "free"]);
        let j = rel(&u, &mut p, &[&["a", "b", "c"]]);
        // The row itself witnesses the existential.
        assert!(td.satisfied_by(&j));
    }

    #[test]
    fn rep_and_shallowness() {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        // Join-dependency tableau *[A'B', B'C']: shallow.
        let jd_td = td_from_names(
            &u,
            &mut p,
            &[&["x", "y", "q1"], &["q2", "y", "z"]],
            &["x", "y", "z"],
        );
        assert!(jd_td.is_shallow());
        assert_eq!(jd_td.rep(u.a("B'")).len(), 1);
        assert_eq!(jd_td.rep(u.a("A'")).len(), 1); // x repeats via w[A']
        // Two distinct repeating values in one column: not shallow.
        let deep = td_from_names(
            &u,
            &mut p,
            &[
                &["x", "y", "c1"],
                &["x", "y2", "c2"],
                &["x2", "y", "c3"],
                &["x2", "y2", "c4"],
            ],
            &["x", "y2", "c5"],
        );
        assert!(!deep.is_shallow());
        assert!(deep.is_k_simple(2));
    }

    #[test]
    fn typed_same_names_in_distinct_columns_are_distinct_values() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut p = ValuePool::new(u.clone());
        let td = td_from_names(&u, &mut p, &[&["x", "x"]], &["x", "x"]);
        // The two `x`s are different (disjoint domains): the td is typed-ok.
        td.check_typed(&p).unwrap();
        let vals = td.hypothesis_values();
        assert_eq!(vals.len(), 2);
    }
}
