//! Independence atoms `Y ⊥ Z` and their conditional form `Y ⊥_X Z`
//! (Hannula–Kontinen–Link; database dependency theory's rendering of
//! probabilistic conditional independence).
//!
//! `I ⊨ Y ⊥_X Z` when for all `t₁, t₂ ∈ I` with `t₁[X] = t₂[X]` there is
//! `u ∈ I` with `u[X Y] = t₁[X Y]` and `u[Z] = t₂[Z]` — the `X`-groups of
//! `I` are cartesian products in their `Y` and `Z` coordinates. The
//! marginal atom `Y ⊥ Z` is the `X = ∅` case. A total mvd `X ↠ Y` is the
//! *saturated* atom `Y ⊥_X (U − X − Y)`.
//!
//! Unlike inclusion dependencies, atoms normalize into the chase's td/egd
//! fragment in **both** domain disciplines ([`IndependenceAtom::normalize_parts`]):
//!
//! * egds for the functional dependency `X → (Y ∩ Z) − X` (overlapping
//!   coordinates must be determined; constancy when `X = ∅`);
//! * one two-row td exchanging the disjoint parts `Y − X` and
//!   `Z − Y − X` over a shared `X`, omitted when either part is empty
//!   (the td is then trivially witnessed by a hypothesis row).

use crate::egd::Egd;
use crate::fd::Fd;
use crate::td::Td;
use std::sync::Arc;
use typedtd_relational::{AttrSet, Relation, Tuple, Universe, Value, ValuePool};

/// A (conditional) independence atom `Y ⊥_X Z`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndependenceAtom {
    /// Conditioning set `X` (empty for a marginal atom `Y ⊥ Z`).
    pub cond: AttrSet,
    /// Left side `Y`.
    pub left: AttrSet,
    /// Right side `Z`.
    pub right: AttrSet,
}

impl IndependenceAtom {
    /// Builds `Y ⊥_X Z` (any of the three sets may be empty).
    pub fn new(cond: AttrSet, left: AttrSet, right: AttrSet) -> Self {
        Self { cond, left, right }
    }

    /// A marginal atom `Y ⊥ Z`.
    pub fn marginal(left: AttrSet, right: AttrSet) -> Self {
        Self::new(AttrSet::new(), left, right)
    }

    /// Parses `A _|_ B` (marginal) or `A _|_ B | C` (conditional, the
    /// conditioning set after `|`). Either side of `_|_` may be empty.
    ///
    /// # Errors
    /// Returns a description of the first syntax problem.
    pub fn parse(universe: &Universe, spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let (body, cond) = match spec.split_once('|') {
            // `_|_` contains '|'; a real conditioning bar is the *last* '|'
            // not part of the `_|_` operator.
            Some(_) => match spec.rsplit_once('|') {
                Some((pre, post)) if !pre.ends_with('_') && !post.starts_with('_') => {
                    (pre, Some(post))
                }
                _ => (spec, None),
            },
            None => (spec, None),
        };
        let (l, r) = body
            .split_once("_|_")
            .ok_or_else(|| format!("independence atom needs '_|_': {spec:?}"))?;
        if r.contains("_|_") {
            return Err(format!("independence atom has more than one '_|_': {spec:?}"));
        }
        let cond = match cond {
            Some(c) => universe.try_set(c.trim())?,
            None => AttrSet::new(),
        };
        Ok(Self::new(
            cond,
            universe.try_set(l.trim())?,
            universe.try_set(r.trim())?,
        ))
    }

    /// `true` when satisfied by every relation: one side contributes
    /// nothing new (`Y ⊆ X` or `Z ⊆ X`) and the overlap is conditioned
    /// away.
    pub fn is_trivial(&self) -> bool {
        self.left.difference(&self.cond).is_empty()
            || self.right.difference(&self.cond).is_empty()
    }

    /// Decides `I ⊨ Y ⊥_X Z` directly from the definition.
    pub fn satisfied_by(&self, i: &Relation) -> bool {
        let xy = self.cond.union(&self.left);
        for t1 in i.iter() {
            for t2 in i.iter() {
                if !t1.agrees_on(t2, &self.cond) {
                    continue;
                }
                let found = i
                    .iter()
                    .any(|u| u.agrees_on(t1, &xy) && u.agrees_on(t2, &self.right));
                if !found {
                    return false;
                }
            }
        }
        true
    }

    /// The functional dependency the atom entails on the overlap:
    /// `X → (Y ∩ Z) − X` (constancy of the overlap when `X = ∅`).
    pub fn overlap_fd(&self) -> Fd {
        Fd::new(
            self.cond.clone(),
            self.left.intersection(&self.right).difference(&self.cond),
        )
    }

    /// Normalizes into the chase fragment: the overlap fd's egds plus (when
    /// both `Y − X` and `Z − Y − X` are nonempty) one two-row exchange td
    /// whose conclusion takes `X ∪ Y` from the first row, `Z − Y − X` from
    /// the second, and fresh values elsewhere. Works in both disciplines.
    /// Returns `(egds, td)`.
    pub fn normalize_parts(
        &self,
        universe: &Arc<Universe>,
        pool: &mut ValuePool,
    ) -> (Vec<Egd>, Option<Td>) {
        let egds = self.overlap_fd().to_egds(universe, pool);
        let y_part = self.left.difference(&self.cond);
        let z_part = self.right.difference(&self.left).difference(&self.cond);
        if y_part.is_empty() || z_part.is_empty() {
            return (egds, None);
        }
        let sorted = universe.is_typed();
        let fresh = |pool: &mut ValuePool, a, tag| {
            pool.fresh(Some(a).filter(|_| sorted), tag)
        };
        let mut r1 = Vec::with_capacity(universe.width());
        let mut r2 = Vec::with_capacity(universe.width());
        let mut w = Vec::with_capacity(universe.width());
        for a in universe.attrs() {
            if self.cond.contains(a) {
                let shared: Value = fresh(pool, a, "x");
                r1.push(shared);
                r2.push(shared);
                w.push(shared);
            } else {
                let v1 = fresh(pool, a, "y");
                let v2 = fresh(pool, a, "z");
                r1.push(v1);
                r2.push(v2);
                // Conclusion: X ∪ Y from row 1 (the overlap included, so
                // the egds' determination is what makes the decomposition
                // exact), Z − Y from row 2, fresh otherwise.
                w.push(if self.left.contains(a) {
                    v1
                } else if self.right.contains(a) {
                    v2
                } else {
                    fresh(pool, a, "q")
                });
            }
        }
        let td = Td::new(
            universe.clone(),
            Tuple::new(w),
            vec![Tuple::new(r1), Tuple::new(r2)],
        );
        (egds, Some(td))
    }

    /// Renders as `Y _|_ Z` or `Y _|_ Z | X`.
    pub fn render(&self, universe: &Universe) -> String {
        let side = |s: &AttrSet| {
            if s.is_empty() {
                String::new()
            } else {
                universe.render_set(s)
            }
        };
        if self.cond.is_empty() {
            format!("{} _|_ {}", side(&self.left), side(&self.right))
        } else {
            format!(
                "{} _|_ {} | {}",
                side(&self.left),
                side(&self.right),
                universe.render_set(&self.cond)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::AttrId;

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn parse_and_render() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let m = IndependenceAtom::parse(&u, "A _|_ B").unwrap();
        assert!(m.cond.is_empty());
        assert_eq!(m.render(&u), "A _|_ B");
        let c = IndependenceAtom::parse(&u, "A _|_ B | C").unwrap();
        assert_eq!(c.cond, u.set("C"));
        assert_eq!(c.render(&u), "A _|_ B | C");
        // Empty sides parse.
        let e = IndependenceAtom::parse(&u, "A _|_ ").unwrap();
        assert!(e.right.is_empty() && e.is_trivial());
        assert!(IndependenceAtom::parse(&u, "A ⊥ B").is_err());
        assert!(IndependenceAtom::parse(&u, "A _|_ Z").is_err());
    }

    #[test]
    fn marginal_satisfaction_is_cartesian_product() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let atom = IndependenceAtom::parse(&u, "A _|_ B").unwrap();
        let product = rel(
            &u,
            &mut p,
            &[
                &["a1", "b1", "c"],
                &["a1", "b2", "c"],
                &["a2", "b1", "c"],
                &["a2", "b2", "c"],
            ],
        );
        assert!(atom.satisfied_by(&product));
        let diagonal = rel(&u, &mut p, &[&["a1", "b1", "c"], &["a2", "b2", "c"]]);
        assert!(!atom.satisfied_by(&diagonal));
    }

    #[test]
    fn conditional_atom_is_groupwise() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        // B ⊥_A C: within each A-group, B × C.
        let atom = IndependenceAtom::parse(&u, "B _|_ C | A").unwrap();
        let good = rel(
            &u,
            &mut p,
            &[
                &["a", "b1", "c1"],
                &["a", "b1", "c2"],
                &["a", "b2", "c1"],
                &["a", "b2", "c2"],
                &["a'", "b9", "c9"],
            ],
        );
        assert!(atom.satisfied_by(&good));
        let bad = rel(&u, &mut p, &[&["a", "b1", "c1"], &["a", "b2", "c2"]]);
        assert!(!atom.satisfied_by(&bad));
        // The saturated atom is the mvd.
        let mvd = crate::mvd::Mvd::parse(&u, "A ->> B").unwrap();
        for r in [&good, &bad] {
            assert_eq!(atom.satisfied_by(r), mvd.satisfied_by(r));
        }
    }

    #[test]
    fn overlap_forces_agreement() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        // A ⊥ A: the A column must be constant.
        let atom = IndependenceAtom::parse(&u, "A _|_ A").unwrap();
        assert!(atom.satisfied_by(&rel(&u, &mut p, &[&["a", "b1", "c"], &["a", "b2", "c"]])));
        assert!(!atom.satisfied_by(&rel(&u, &mut p, &[&["a1", "b", "c"], &["a2", "b", "c"]])));
        // AB ⊥ BC: overlap B must be constant (given empty cond).
        let wide = IndependenceAtom::parse(&u, "AB _|_ BC").unwrap();
        assert_eq!(wide.overlap_fd().rhs, u.set("B"));
    }

    #[test]
    fn trivial_edges() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let any = rel(&u, &mut p, &[&["a1", "b1", "c1"], &["a2", "b2", "c2"]]);
        for spec in ["A _|_ ", " _|_ B", "A _|_ A | A", "B _|_ C | BC"] {
            let atom = IndependenceAtom::parse(&u, spec).unwrap();
            assert!(atom.is_trivial(), "{spec} should be trivial");
            assert!(atom.satisfied_by(&any), "{spec} must hold everywhere");
        }
    }

    #[test]
    fn normalization_matches_direct_satisfaction() {
        for u in [
            Universe::typed(vec!["A", "B", "C"]),
            Universe::untyped(vec!["A", "B", "C"]),
        ] {
            let mut p = ValuePool::new(u.clone());
            let instances = [
                rel(&u, &mut p, &[&["a", "b", "c"]]),
                rel(&u, &mut p, &[&["a", "b1", "c1"], &["a", "b2", "c2"]]),
                rel(
                    &u,
                    &mut p,
                    &[
                        &["a", "b1", "c1"],
                        &["a", "b1", "c2"],
                        &["a", "b2", "c1"],
                        &["a", "b2", "c2"],
                    ],
                ),
                rel(&u, &mut p, &[&["a1", "b1", "c"], &["a2", "b2", "c"]]),
                rel(
                    &u,
                    &mut p,
                    &[&["a1", "b1", "c"], &["a2", "b2", "c"], &["a1", "b2", "c"], &["a2", "b1", "c"]],
                ),
            ];
            for spec in [
                "A _|_ B",
                "A _|_ B | C",
                "B _|_ C | A",
                "A _|_ A",
                "AB _|_ BC",
                "AB _|_ BC | A",
                "A _|_ BC",
            ] {
                let atom = IndependenceAtom::parse(&u, spec).unwrap();
                let (egds, td) = atom.normalize_parts(&u, &mut p);
                for i in &instances {
                    let via_parts = egds.iter().all(|e| e.satisfied_by(i))
                        && td.as_ref().is_none_or(|t| t.satisfied_by(i));
                    assert_eq!(
                        atom.satisfied_by(i),
                        via_parts,
                        "normalization changed semantics of {spec} ({:?}) on {i:?}",
                        u.typing()
                    );
                }
                if u.is_typed() {
                    for e in &egds {
                        e.check_typed(&p).unwrap();
                    }
                    if let Some(t) = &td {
                        t.check_typed(&p).unwrap();
                    }
                }
            }
        }
    }
}
