//! Multivalued dependencies (Fagin; Section 2.3 and 6 of the paper).
//!
//! A total mvd `X ↠ Y` is the join dependency `*[XY, X(U−X−Y)]`. This module
//! keeps a direct representation with the paper's own satisfaction
//! condition — "for all `u, v ∈ I`, if `u[X] = v[X]` then there is `w ∈ I`
//! with `w[XY] = u[XY]` and `w[X Ȳ] = v[X Ȳ]`" — so the pjd machinery can be
//! cross-checked against it.

use crate::pjd::Pjd;
use std::sync::Arc;
use typedtd_relational::{AttrSet, Relation, Universe};

/// A total multivalued dependency `X ↠ Y` over a fixed universe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mvd {
    universe: Arc<Universe>,
    /// Left side `X`.
    pub lhs: AttrSet,
    /// Right side `Y`.
    pub rhs: AttrSet,
}

impl Mvd {
    /// Builds `X ↠ Y` over `universe`.
    pub fn new(universe: Arc<Universe>, lhs: AttrSet, rhs: AttrSet) -> Self {
        Self { universe, lhs, rhs }
    }

    /// Parses `"A ->> B C"` style notation.
    ///
    /// # Errors
    /// Returns a description of the first syntax problem (missing `->>`,
    /// unknown attribute).
    pub fn parse(universe: &Arc<Universe>, spec: &str) -> Result<Self, String> {
        let (l, r) = spec
            .split_once("->>")
            .ok_or_else(|| format!("mvd must contain '->>': {spec:?}"))?;
        Ok(Self::new(
            universe.clone(),
            universe.try_set(l.trim())?,
            universe.try_set(r.trim())?,
        ))
    }

    /// The universe this mvd is over.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// The complementary right side `Z = U − X − Y`.
    pub fn complement(&self) -> AttrSet {
        self.universe
            .all()
            .difference(&self.lhs)
            .difference(&self.rhs)
    }

    /// Direct satisfaction test following the paper's condition.
    pub fn satisfied_by(&self, i: &Relation) -> bool {
        let xy = self.lhs.union(&self.rhs);
        let xz = self.lhs.union(&self.complement());
        for u in i.iter() {
            for v in i.iter() {
                if !u.agrees_on(v, &self.lhs) {
                    continue;
                }
                let found = i.iter().any(|w| w.agrees_on(u, &xy) && w.agrees_on(v, &xz));
                if !found {
                    return false;
                }
            }
        }
        true
    }

    /// The equivalent join dependency `*[XY, X(U−X−Y)]`.
    ///
    /// When `Y ⊆ X` or `XY = U` the mvd is trivial and one component
    /// contains the other; the jd degenerates accordingly (a single
    /// component), which is satisfied by every relation.
    pub fn to_pjd(&self) -> Pjd {
        let xy = self.lhs.union(&self.rhs);
        let xz = self.lhs.union(&self.complement());
        if xy.is_subset(&xz) {
            Pjd::jd(vec![xz])
        } else if xz.is_subset(&xy) {
            Pjd::jd(vec![xy])
        } else {
            Pjd::jd(vec![xy, xz])
        }
    }

    /// Renders as `X ->> Y`.
    pub fn render(&self) -> String {
        format!(
            "{} ->> {}",
            self.universe.render_set(&self.lhs),
            self.universe.render_set(&self.rhs)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::{AttrId, Tuple, ValuePool};

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn textbook_mvd() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let mvd = Mvd::parse(&u, "A ->> B").unwrap();
        let good = rel(
            &u,
            &mut p,
            &[
                &["a", "b1", "c1"],
                &["a", "b2", "c2"],
                &["a", "b1", "c2"],
                &["a", "b2", "c1"],
            ],
        );
        assert!(mvd.satisfied_by(&good));
        let bad = rel(&u, &mut p, &[&["a", "b1", "c1"], &["a", "b2", "c2"]]);
        assert!(!mvd.satisfied_by(&bad));
    }

    #[test]
    fn mvd_agrees_with_its_pjd() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let mvd = Mvd::parse(&u, "A ->> B").unwrap();
        let pjd = mvd.to_pjd();
        assert!(pjd.is_mvd());
        for rows in [
            vec![vec!["a", "b1", "c1"], vec!["a", "b2", "c2"]],
            vec![
                vec!["a", "b1", "c1"],
                vec!["a", "b2", "c2"],
                vec!["a", "b1", "c2"],
                vec!["a", "b2", "c1"],
            ],
            vec![vec!["a", "b", "c"], vec!["x", "y", "z"]],
        ] {
            let slices: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
            let i = rel(&u, &mut p, &slices);
            assert_eq!(mvd.satisfied_by(&i), pjd.satisfied_by(&i));
        }
    }

    #[test]
    fn trivial_mvds_always_hold() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let i = rel(&u, &mut p, &[&["a", "b1", "c1"], &["a", "b2", "c2"]]);
        // Y ⊆ X: trivial.
        assert!(Mvd::parse(&u, "AB ->> B").unwrap().satisfied_by(&i));
        assert!(Mvd::parse(&u, "AB ->> B").unwrap().to_pjd().satisfied_by(&i));
        // XY = U: trivial.
        assert!(Mvd::parse(&u, "A ->> BC").unwrap().satisfied_by(&i));
        assert!(Mvd::parse(&u, "A ->> BC").unwrap().to_pjd().satisfied_by(&i));
    }

    #[test]
    fn fd_implies_mvd() {
        // The paper notes I ⊨ X → Y entails I ⊨ X ↠ Y.
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let i = rel(&u, &mut p, &[&["a", "b", "c1"], &["a", "b", "c2"]]);
        assert!(crate::fd::Fd::parse(&u, "A -> B").unwrap().satisfied_by(&i));
        assert!(Mvd::parse(&u, "A ->> B").unwrap().satisfied_by(&i));
    }

    #[test]
    fn paper_notation_x_intersect() {
        // *[R1, R2] as mvd: R1 ∩ R2 ↠ R1 − R2.
        let u = Universe::typed(vec!["A", "B", "C"]);
        let jd = Pjd::parse(&u, "*[AB, AC]").unwrap();
        assert!(jd.is_mvd());
        let mvd = Mvd::new(u.clone(), u.set("A"), u.set("B"));
        let mut p = ValuePool::new(u.clone());
        let i = rel(
            &u,
            &mut p,
            &[&["a", "b1", "c1"], &["a", "b2", "c2"], &["a", "b1", "c2"]],
        );
        assert_eq!(jd.satisfied_by(&i), mvd.satisfied_by(&i));
    }
}
