//! A unified text syntax for all dependency classes.
//!
//! ```text
//! A B -> C                      functional dependency
//! A ->> B C                     (total) multivalued dependency
//! *[AB, BC]                     join dependency
//! *[AB, BC] on AC               projected join dependency
//! [AB] <= [BC]                  inclusion dependency (sequences; repeats OK)
//! A _|_ B                       marginal independence atom
//! B _|_ C | A                   conditional independence atom  Y ⊥_X Z
//! td [x y z1 ; x y2 z] => x y2 z1     template dependency
//! egd [x y1 _ ; x y2 _] => y1 = y2     equality-generating dependency
//! ```
//!
//! Rows are whitespace-separated value names; `;` separates rows; `_` is an
//! anonymous fresh value (a variable used nowhere else). In typed universes
//! the same name in different columns denotes different values (disjoint
//! domains), matching the paper's convention. Inclusion dependencies are
//! only accepted over *untyped* universes (disjoint typed domains make any
//! non-trivial ind unsatisfiable); independence atoms parse in both
//! disciplines.

use crate::dependency::Dependency;
use crate::egd::Egd;
use crate::fd::Fd;
use crate::ind::Ind;
use crate::independence::IndependenceAtom;
use crate::mvd::Mvd;
use crate::pjd::Pjd;
use crate::td::Td;
use std::sync::Arc;
use typedtd_relational::{AttrId, Tuple, Universe, Value, ValuePool};

/// Parses any dependency. Dispatches on the leading token / arrow shape.
///
/// ```
/// use typedtd_dependencies::{parse_dependency, Dependency};
/// use typedtd_relational::{Universe, ValuePool};
///
/// let u = Universe::typed(vec!["A", "B", "C"]);
/// let mut pool = ValuePool::new(u.clone());
/// let jd = parse_dependency(&u, &mut pool, "*[AB, BC]").unwrap();
/// assert!(matches!(jd, Dependency::Pjd(_)));
/// let td = parse_dependency(&u, &mut pool, "td [x y _ ; x _ z] => x y z").unwrap();
/// assert!(matches!(td, Dependency::Td(_)));
/// ```
///
/// # Errors
/// Returns a description of the first syntax problem.
pub fn parse_dependency(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    spec: &str,
) -> Result<Dependency, String> {
    let s = spec.trim();
    if s.starts_with("td") {
        parse_td(universe, pool, s).map(Dependency::Td)
    } else if s.starts_with("egd") {
        parse_egd(universe, pool, s).map(Dependency::Egd)
    } else if s.starts_with("*[") {
        Pjd::parse(universe, s).map(Dependency::Pjd)
    } else if s.starts_with('[') && s.contains("<=") {
        Ind::parse(universe, s).map(Dependency::Ind)
    } else if s.contains("_|_") {
        IndependenceAtom::parse(universe, s).map(Dependency::Atom)
    } else if s.contains("->>") {
        Mvd::parse(universe, s).map(Dependency::Mvd)
    } else if s.contains("->") {
        Fd::parse(universe, s).map(Dependency::Fd)
    } else {
        Err(format!("unrecognized dependency syntax: {s:?}"))
    }
}

fn parse_rows(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    body: &str,
) -> Result<Vec<Tuple>, String> {
    let mut rows = Vec::new();
    for row_spec in body.split(';') {
        let names: Vec<&str> = row_spec.split_whitespace().collect();
        if names.len() != universe.width() {
            return Err(format!(
                "row {row_spec:?} has {} values; universe has {} attributes",
                names.len(),
                universe.width()
            ));
        }
        let vals: Vec<Value> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let attr = AttrId(i as u16);
                if *n == "_" {
                    pool.fresh(Some(attr).filter(|_| universe.is_typed()), "anon")
                } else {
                    pool.for_attr(attr, n)
                }
            })
            .collect();
        rows.push(Tuple::new(vals));
    }
    Ok(rows)
}

fn split_bracketed<'a>(s: &'a str, head: &str) -> Result<(&'a str, &'a str), String> {
    let rest = s
        .strip_prefix(head)
        .ok_or_else(|| format!("expected {head:?} prefix"))?
        .trim_start();
    let inner = rest
        .strip_prefix('[')
        .ok_or_else(|| format!("{head} body must start with '['"))?;
    let close = inner
        .find(']')
        .ok_or_else(|| format!("{head} body missing ']'"))?;
    let (body, tail) = inner.split_at(close);
    let tail = tail[1..]
        .trim()
        .strip_prefix("=>")
        .ok_or_else(|| format!("{head} needs '=>' after the hypothesis"))?
        .trim();
    Ok((body, tail))
}

/// Parses `td [row ; row] => row`.
pub fn parse_td(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    spec: &str,
) -> Result<Td, String> {
    let (body, tail) = split_bracketed(spec.trim(), "td")?;
    let hyp = parse_rows(universe, pool, body)?;
    let conclusion = parse_rows(universe, pool, tail)?
        .into_iter()
        .next()
        .ok_or("td needs a conclusion row")?;
    if hyp.is_empty() {
        return Err("td hypothesis must be nonempty".into());
    }
    Ok(Td::new(universe.clone(), conclusion, hyp))
}

/// Parses `egd [row ; row] => name = name`.
///
/// The equated names are resolved within the hypothesis rows; in typed
/// universes an ambiguous name (used in several columns) is an error.
pub fn parse_egd(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    spec: &str,
) -> Result<Egd, String> {
    let (body, tail) = split_bracketed(spec.trim(), "egd")?;
    let hyp = parse_rows(universe, pool, body)?;
    let (l, r) = tail
        .split_once('=')
        .ok_or("egd conclusion must be 'name = name'")?;
    let resolve = |name: &str| -> Result<Value, String> {
        let name = name.trim();
        let mut found: Option<Value> = None;
        for t in &hyp {
            for a in universe.attrs() {
                let v = t.get(a);
                if pool.name(v) == name {
                    match found {
                        Some(prev) if prev != v => {
                            return Err(format!(
                                "name {name:?} is ambiguous (used in several columns)"
                            ));
                        }
                        _ => found = Some(v),
                    }
                }
            }
        }
        found.ok_or_else(|| format!("name {name:?} does not occur in the hypothesis"))
    };
    let left = resolve(l)?;
    let right = resolve(r)?;
    Ok(Egd::new(universe.clone(), left, right, hyp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Universe>, ValuePool) {
        let u = Universe::untyped_abc();
        let p = ValuePool::new(u.clone());
        (u, p)
    }

    #[test]
    fn dispatch_covers_all_classes() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        assert!(matches!(
            parse_dependency(&u, &mut p, "A -> B").unwrap(),
            Dependency::Fd(_)
        ));
        assert!(matches!(
            parse_dependency(&u, &mut p, "A ->> B").unwrap(),
            Dependency::Mvd(_)
        ));
        assert!(matches!(
            parse_dependency(&u, &mut p, "*[AB, BC]").unwrap(),
            Dependency::Pjd(_)
        ));
        assert!(matches!(
            parse_dependency(&u, &mut p, "td [x y z] => x y q").unwrap(),
            Dependency::Td(_)
        ));
        assert!(matches!(
            parse_dependency(&u, &mut p, "egd [x y1 _ ; x y2 _] => y1 = y2").unwrap(),
            Dependency::Egd(_)
        ));
        assert!(matches!(
            parse_dependency(&u, &mut p, "A _|_ B").unwrap(),
            Dependency::Atom(_)
        ));
        assert!(matches!(
            parse_dependency(&u, &mut p, "B _|_ C | A").unwrap(),
            Dependency::Atom(_)
        ));
        assert!(parse_dependency(&u, &mut p, "???").is_err());
        // Parse errors from the class parsers surface as Err, not panics.
        assert!(parse_dependency(&u, &mut p, "A -> Z").is_err());
        assert!(parse_dependency(&u, &mut p, "*[AB, BZ]").is_err());
        // Inds need an untyped universe …
        assert!(parse_dependency(&u, &mut p, "[A] <= [B]").is_err());
        let uu = Universe::untyped(vec!["A", "B", "C"]);
        let mut pp = ValuePool::new(uu.clone());
        assert!(matches!(
            parse_dependency(&uu, &mut pp, "[AB] <= [BC]").unwrap(),
            Dependency::Ind(_)
        ));
    }

    #[test]
    fn td_roundtrip_semantics() {
        // The parsed td must behave like its hand-built twin.
        let (u, mut p) = setup();
        let parsed = parse_td(&u, &mut p, "td [x y1 z1 ; x y2 z2] => x y1 z2").unwrap();
        let handmade = crate::td::td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        // Shared pool: identical interning, identical structure.
        assert_eq!(parsed.hypothesis(), handmade.hypothesis());
        assert_eq!(parsed.conclusion(), handmade.conclusion());
    }

    #[test]
    fn anonymous_values_are_distinct() {
        let (u, mut p) = setup();
        let td = parse_td(&u, &mut p, "td [x _ _ ; x _ _] => x _ _").unwrap();
        // Each `_` is its own variable: hypothesis shares only x.
        let r1 = &td.hypothesis()[0];
        let r2 = &td.hypothesis()[1];
        assert_eq!(r1.get(AttrId(0)), r2.get(AttrId(0)));
        assert_ne!(r1.get(AttrId(1)), r2.get(AttrId(1)));
        assert_ne!(r1.get(AttrId(2)), r2.get(AttrId(2)));
    }

    #[test]
    fn egd_resolution_and_errors() {
        let (u, mut p) = setup();
        let egd = parse_egd(&u, &mut p, "egd [x y1 _ ; x y2 _] => y1 = y2").unwrap();
        assert_eq!(p.name(egd.left()), "y1");
        assert_eq!(p.name(egd.right()), "y2");
        assert!(parse_egd(&u, &mut p, "egd [x y1 _] => y1 = ghost").is_err());
    }

    #[test]
    fn typed_ambiguity_is_detected() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut p = ValuePool::new(u.clone());
        // "x" in columns A and B denotes two different typed values.
        let err = parse_egd(&u, &mut p, "egd [x x] => x = x").unwrap_err();
        assert!(err.contains("ambiguous"));
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let (u, mut p) = setup();
        assert!(parse_td(&u, &mut p, "td [x y] => x y z").is_err());
        assert!(parse_td(&u, &mut p, "td [x y z] => x y").is_err());
    }

    #[test]
    fn parsed_td_satisfaction() {
        let (u, mut p) = setup();
        let td = parse_td(&u, &mut p, "td [x y1 z1 ; x y2 z2] => x y1 z2").unwrap();
        let rel = typedtd_relational::Relation::from_rows(
            u.clone(),
            [
                Tuple::new(vec![p.untyped("a"), p.untyped("b1"), p.untyped("c1")]),
                Tuple::new(vec![p.untyped("a"), p.untyped("b2"), p.untyped("c2")]),
            ],
        );
        assert!(!td.satisfied_by(&rel));
    }
}
