//! Decidable implication oracles, independent of the chase engine.
//!
//! The paper's undecidability results live just above some classical
//! decidable fragments; these fragments double as correctness oracles for
//! the chase:
//!
//! * fd-only implication — Armstrong closure ([`crate::fd::closure`]);
//! * mvd-only implication — the **dependency basis** fixpoint implemented
//!   here (Beeri's splitting algorithm).
//!
//! Integration tests drive both oracles and the chase on random inputs and
//! require agreement; they also witness that for these fragments implication
//! and finite implication coincide, the situation whose failure for typed
//! tds is the subject of the paper.

use crate::mvd::Mvd;
use std::sync::Arc;
use typedtd_relational::{AttrSet, Universe};

/// Computes the dependency basis `DEP(X)`: the unique partition of `U − X`
/// such that `X ↠ Y` follows from `mvds` iff `Y − X` is a union of blocks.
///
/// Algorithm: start with the single block `U − X`; repeatedly split a block
/// `S` by an mvd `W ↠ Z` (or its complement — mvds are closed under
/// complementation) whenever `S ∩ W = ∅` and `S ∩ Z` is a nonempty proper
/// subset of `S`.
pub fn dependency_basis(universe: &Arc<Universe>, x: &AttrSet, mvds: &[Mvd]) -> Vec<AttrSet> {
    let u = universe.all();
    let mut basis: Vec<AttrSet> = vec![u.difference(x)];
    basis.retain(|b| !b.is_empty());

    // Both Z and its complement relative to W split; collect the candidate
    // right-hand sides once.
    let mut splitters: Vec<(AttrSet, AttrSet)> = Vec::new();
    for m in mvds {
        let z1 = m.rhs.difference(&m.lhs);
        let z2 = u.difference(&m.lhs).difference(&m.rhs);
        splitters.push((m.lhs.clone(), z1));
        splitters.push((m.lhs.clone(), z2));
    }

    loop {
        let mut changed = false;
        'outer: for (w, z) in &splitters {
            for (i, s) in basis.iter().enumerate() {
                if !s.intersection(w).is_empty() {
                    continue;
                }
                let inz = s.intersection(z);
                if inz.is_empty() || inz == *s {
                    continue;
                }
                let rest = s.difference(z);
                basis.swap_remove(i);
                basis.push(inz);
                basis.push(rest);
                changed = true;
                break 'outer;
            }
        }
        if !changed {
            break;
        }
    }
    basis.sort_by_key(|b| b.iter().next().map(|a| a.0).unwrap_or(u16::MAX));
    basis
}

/// Decidable mvd-implication oracle: `mvds ⊨ X ↠ Y` iff `Y − X` is a union
/// of dependency-basis blocks of `X`.
///
/// For total mvds implication and finite implication coincide.
pub fn mvd_implies(universe: &Arc<Universe>, mvds: &[Mvd], goal: &Mvd) -> bool {
    let basis = dependency_basis(universe, &goal.lhs, mvds);
    let target = goal.rhs.difference(&goal.lhs);
    // Every block intersecting the target must be contained in it.
    let covered = basis
        .iter()
        .filter(|b| !b.intersection(&target).is_empty())
        .fold(AttrSet::new(), |acc, b| acc.union(b));
    covered == target
        && basis
            .iter()
            .all(|b| b.intersection(&target).is_empty() || b.is_subset(&target))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u4() -> Arc<Universe> {
        Universe::typed(vec!["A", "B", "C", "D"])
    }

    #[test]
    fn basis_with_no_mvds_is_one_block() {
        let u = u4();
        let basis = dependency_basis(&u, &u.set("A"), &[]);
        assert_eq!(basis, vec![u.set("BCD")]);
    }

    #[test]
    fn basis_splits_on_given_mvd() {
        let u = u4();
        let mvds = vec![Mvd::parse(&u, "A ->> B").unwrap()];
        let basis = dependency_basis(&u, &u.set("A"), &mvds);
        assert_eq!(basis, vec![u.set("B"), u.set("CD")]);
    }

    #[test]
    fn complementation_is_built_in() {
        let u = u4();
        let mvds = vec![Mvd::parse(&u, "A ->> B").unwrap()];
        assert!(mvd_implies(&u, &mvds, &Mvd::parse(&u, "A ->> CD").unwrap()));
        assert!(!mvd_implies(&u, &mvds, &Mvd::parse(&u, "A ->> C").unwrap()));
    }

    #[test]
    fn trivial_mvds_implied_by_empty_set() {
        let u = u4();
        assert!(mvd_implies(&u, &[], &Mvd::parse(&u, "AB ->> A").unwrap()));
        assert!(mvd_implies(&u, &[], &Mvd::parse(&u, "A ->> BCD").unwrap()));
        assert!(!mvd_implies(&u, &[], &Mvd::parse(&u, "A ->> B").unwrap()));
    }

    #[test]
    fn augmentation_of_mvds() {
        // A ↠ B entails AC ↠ B.
        let u = u4();
        let mvds = vec![Mvd::parse(&u, "A ->> B").unwrap()];
        assert!(mvd_implies(&u, &mvds, &Mvd::parse(&u, "AC ->> B").unwrap()));
    }

    #[test]
    fn transitivity_of_mvds() {
        // A ↠ B and B ↠ C entail A ↠ C − B = C (pseudo-transitivity).
        let u = u4();
        let mvds = vec![Mvd::parse(&u, "A ->> B").unwrap(), Mvd::parse(&u, "B ->> C").unwrap()];
        assert!(mvd_implies(&u, &mvds, &Mvd::parse(&u, "A ->> C").unwrap()));
        // But not the naive converse.
        assert!(!mvd_implies(&u, &mvds, &Mvd::parse(&u, "C ->> A").unwrap()));
    }

    #[test]
    fn basis_is_a_partition() {
        let u = u4();
        let mvds = vec![Mvd::parse(&u, "A ->> B").unwrap(), Mvd::parse(&u, "A ->> C").unwrap()];
        let basis = dependency_basis(&u, &u.set("A"), &mvds);
        let mut total = AttrSet::new();
        for b in &basis {
            assert!(total.intersection(b).is_empty(), "blocks must be disjoint");
            total = total.union(b);
        }
        assert_eq!(total, u.set("BCD"));
        assert_eq!(basis.len(), 3);
    }
}
