//! Inclusion dependencies `R[X] ⊆ R[Y]` over attribute *sequences*.
//!
//! Following Häggblom (and the unary/typed tradition of Casanova–Fagin–
//! Papadimitriou), the two sides are sequences of equal length in which
//! attributes may *repeat*: `[A A] <= [B C]` asserts that for every tuple
//! `t` there is a tuple `u` with `u[B] = u[C] = t[A]`. Satisfaction is
//! projection containment over the sequence projections
//! `{ t[X] : t ∈ I } ⊆ { t[Y] : t ∈ I }`.
//!
//! In an **untyped** universe a (repetition-free-rhs) inclusion dependency
//! is exactly a single-hypothesis-row template dependency — [`Ind::to_td`]
//! performs the compilation, which is how the chase engine evaluates
//! heterogeneous Σ containing inds. In a **typed** universe values cannot
//! move between columns, so a non-trivial ind is unsatisfiable on nonempty
//! relations and the parser rejects it up front.

use crate::td::Td;
use std::sync::Arc;
use typedtd_relational::{AttrId, FxHashSet, Relation, Tuple, Universe, Value, ValuePool};

/// An inclusion dependency `R[X] ⊆ R[Y]` (`X`, `Y` attribute sequences of
/// equal length, repetitions allowed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ind {
    /// Left (included) sequence `X`.
    pub lhs: Vec<AttrId>,
    /// Right (including) sequence `Y`.
    pub rhs: Vec<AttrId>,
}

impl Ind {
    /// Builds `R[X] ⊆ R[Y]`.
    ///
    /// # Errors
    /// The sides must have equal, nonzero length (an empty ind asserts
    /// nothing; requiring nonempty sides keeps renders round-trippable).
    pub fn new(lhs: Vec<AttrId>, rhs: Vec<AttrId>) -> Result<Self, String> {
        if lhs.len() != rhs.len() {
            return Err(format!(
                "inclusion dependency sides must have equal length ({} vs {})",
                lhs.len(),
                rhs.len()
            ));
        }
        if lhs.is_empty() {
            return Err("inclusion dependency sides must be nonempty".into());
        }
        Ok(Self { lhs, rhs })
    }

    /// Parses `[A B] <= [C A]` notation (single-character attribute names
    /// may be run together: `[AB] <= [CA]`).
    ///
    /// # Errors
    /// Returns a description of the first syntax problem. Over a *typed*
    /// universe any ind that moves a value across columns
    /// (`lhs[i] != rhs[i]` somewhere) is rejected: disjoint domains make it
    /// unsatisfiable on nonempty relations, and no td/egd form exists.
    pub fn parse(universe: &Universe, spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let rest = spec
            .strip_prefix('[')
            .ok_or_else(|| format!("ind must start with '[': {spec:?}"))?;
        let (left, rest) = rest
            .split_once(']')
            .ok_or_else(|| format!("ind missing ']' after the left side: {spec:?}"))?;
        let rest = rest
            .trim_start()
            .strip_prefix("<=")
            .ok_or_else(|| format!("ind needs '<=' between the sides: {spec:?}"))?;
        let rest = rest
            .trim_start()
            .strip_prefix('[')
            .ok_or_else(|| format!("ind right side must start with '[': {spec:?}"))?;
        let (right, tail) = rest
            .split_once(']')
            .ok_or_else(|| format!("ind missing closing ']': {spec:?}"))?;
        if !tail.trim().is_empty() {
            return Err(format!("unexpected text after ind: {:?}", tail.trim()));
        }
        let ind = Self::new(universe.try_seq(left)?, universe.try_seq(right)?)?;
        if universe.is_typed() && !ind.is_trivial() {
            return Err(
                "inclusion dependencies require an untyped universe (typed domains are \
                 disjoint, so a value can never appear in another column)"
                    .into(),
            );
        }
        Ok(ind)
    }

    /// `true` when `X = Y` positionwise — satisfied by every relation.
    pub fn is_trivial(&self) -> bool {
        self.lhs == self.rhs
    }

    /// Decides `I ⊨ R[X] ⊆ R[Y]` by sequence-projection containment.
    pub fn satisfied_by(&self, i: &Relation) -> bool {
        let rhs_proj: FxHashSet<Vec<Value>> = i
            .iter()
            .map(|t| self.rhs.iter().map(|&a| t.get(a)).collect())
            .collect();
        i.iter().all(|t| {
            let key: Vec<Value> = self.lhs.iter().map(|&a| t.get(a)).collect();
            rhs_proj.contains(&key)
        })
    }

    /// Compiles to the equivalent single-hypothesis-row td over an
    /// **untyped** universe: hypothesis `(x_0, …, x_{n-1})` (all distinct),
    /// conclusion carrying `x_{lhs[j]}` in column `rhs[j]` and fresh
    /// existential values elsewhere.
    ///
    /// # Errors
    /// * typed universe, non-trivial ind — no td form exists (see
    ///   [`Ind::parse`]);
    /// * a repeated rhs attribute fed from *different* lhs attributes
    ///   (`[AB] <= [CC]`): the conclusion column would need two values at
    ///   once; such an ind forces hypothesis equalities and is outside the
    ///   pure-td fragment.
    pub fn to_td(&self, universe: &Arc<Universe>, pool: &mut ValuePool) -> Result<Td, String> {
        if universe.is_typed() && !self.is_trivial() {
            return Err("non-trivial inclusion dependencies have no typed td form".into());
        }
        let sorted = universe.is_typed();
        let hyp: Vec<Value> = universe
            .attrs()
            .map(|a| pool.fresh(Some(a).filter(|_| sorted), "x"))
            .collect();
        let mut conclusion: Vec<Option<Value>> = vec![None; universe.width()];
        for (j, (&l, &r)) in self.lhs.iter().zip(&self.rhs).enumerate() {
            let v = hyp[l.index()];
            match conclusion[r.index()] {
                Some(prev) if prev != v => {
                    return Err(format!(
                        "rhs attribute {} repeats with different lhs sources (position {j}); \
                         not expressible as a pure td",
                        universe.name(r)
                    ));
                }
                _ => conclusion[r.index()] = Some(v),
            }
        }
        let w: Vec<Value> = universe
            .attrs()
            .map(|a| {
                conclusion[a.index()]
                    .unwrap_or_else(|| pool.fresh(Some(a).filter(|_| sorted), "z"))
            })
            .collect();
        Ok(Td::new(
            universe.clone(),
            Tuple::new(w),
            vec![Tuple::new(hyp)],
        ))
    }

    /// Renders as `[X] <= [Y]`.
    pub fn render(&self, universe: &Universe) -> String {
        format!(
            "[{}] <= [{}]",
            universe.render_seq(&self.lhs),
            universe.render_seq(&self.rhs)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u3() -> Arc<Universe> {
        Universe::untyped(vec!["A", "B", "C"])
    }

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let u = u3();
        let ind = Ind::parse(&u, "[AB] <= [BC]").unwrap();
        assert_eq!(ind.lhs, vec![AttrId(0), AttrId(1)]);
        assert_eq!(ind.rhs, vec![AttrId(1), AttrId(2)]);
        assert_eq!(ind.render(&u), "[AB] <= [BC]");
        // Repetitions parse and render.
        let rep = Ind::parse(&u, "[AA] <= [BC]").unwrap();
        assert_eq!(rep.render(&u), "[AA] <= [BC]");
    }

    #[test]
    fn parse_errors() {
        let u = u3();
        assert!(Ind::parse(&u, "[AB] <= [C]").is_err(), "length mismatch");
        assert!(Ind::parse(&u, "[] <= []").is_err(), "empty sides");
        assert!(Ind::parse(&u, "[AZ] <= [BC]").is_err(), "unknown attr");
        assert!(Ind::parse(&u, "[AB] < [BC]").is_err(), "bad arrow");
        assert!(Ind::parse(&u, "[AB] <= [BC] junk").is_err(), "trailing");
        let typed = Universe::typed(vec!["A", "B", "C"]);
        assert!(
            Ind::parse(&typed, "[A] <= [B]")
                .unwrap_err()
                .contains("untyped"),
            "typed non-trivial ind rejected"
        );
        // Trivial inds are fine even typed.
        assert!(Ind::parse(&typed, "[AB] <= [AB]").unwrap().is_trivial());
    }

    #[test]
    fn satisfaction_basic() {
        let u = u3();
        let mut p = ValuePool::new(u.clone());
        let ind = Ind::parse(&u, "[A] <= [B]").unwrap();
        let good = rel(&u, &mut p, &[&["v", "v", "c"], &["w", "w", "c"]]);
        assert!(ind.satisfied_by(&good));
        let cross = rel(&u, &mut p, &[&["v", "w", "c"], &["w", "v", "c"]]);
        assert!(ind.satisfied_by(&cross), "A-values {{v,w}} = B-values");
        let bad = rel(&u, &mut p, &[&["v", "w", "c"]]);
        assert!(!ind.satisfied_by(&bad));
    }

    #[test]
    fn satisfaction_with_repetitions() {
        let u = u3();
        let mut p = ValuePool::new(u.clone());
        // [AA] <= [BC]: every t needs a u with u[B] = u[C] = t[A].
        let ind = Ind::parse(&u, "[AA] <= [BC]").unwrap();
        let good = rel(&u, &mut p, &[&["v", "v", "v"]]);
        assert!(ind.satisfied_by(&good));
        let bad = rel(&u, &mut p, &[&["v", "v", "w"]]);
        assert!(!ind.satisfied_by(&bad), "no row has B = C = v");
        // Repeated lhs is *weaker* than distinct lhs on the same rhs.
        let single = Ind::parse(&u, "[A] <= [B]").unwrap();
        assert!(single.satisfied_by(&good));
    }

    #[test]
    fn single_attribute_and_trivial_edges() {
        let u = u3();
        let mut p = ValuePool::new(u.clone());
        let i = rel(&u, &mut p, &[&["a", "b", "c"]]);
        assert!(Ind::parse(&u, "[A] <= [A]").unwrap().satisfied_by(&i));
        assert!(Ind::parse(&u, "[ABC] <= [ABC]").unwrap().satisfied_by(&i));
        assert!(!Ind::parse(&u, "[A] <= [C]").unwrap().satisfied_by(&i));
    }

    #[test]
    fn to_td_matches_direct_satisfaction() {
        let u = u3();
        let mut p = ValuePool::new(u.clone());
        for spec in ["[A] <= [B]", "[AB] <= [BC]", "[AA] <= [AB]", "[BA] <= [AB]"] {
            let ind = Ind::parse(&u, spec).unwrap();
            let td = ind.to_td(&u, &mut p).unwrap();
            for rows in [
                vec![vec!["v", "v", "c"]],
                vec![vec!["v", "w", "c"], vec!["w", "v", "c"]],
                vec![vec!["v", "w", "c"]],
                vec![vec!["a", "a", "a"], vec!["b", "a", "c"]],
            ] {
                let slices: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
                let i = rel(&u, &mut p, &slices);
                assert_eq!(
                    ind.satisfied_by(&i),
                    td.satisfied_by(&i),
                    "{spec} vs its td on {rows:?}"
                );
            }
        }
    }

    #[test]
    fn to_td_rejects_conflicting_rhs_repetition() {
        let u = u3();
        let mut p = ValuePool::new(u.clone());
        // [AB] <= [CC] forces the conclusion's C column to be two values.
        let ind = Ind::parse(&u, "[AB] <= [CC]").unwrap();
        assert!(ind.to_td(&u, &mut p).is_err());
        // …but a *consistent* rhs repetition compiles fine.
        let ok = Ind::parse(&u, "[AA] <= [CC]").unwrap();
        assert!(ok.to_td(&u, &mut p).is_ok());
    }
}
