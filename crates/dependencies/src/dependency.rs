//! A unified dependency type and normalization into tds + egds.
//!
//! The chase engine operates on tuple-generating (td) and
//! equality-generating (egd) dependencies only; every other class embeds
//! into those, as in Section 2.3 of the paper ("we view the class of egd's
//! as containing the class of fd's", and pjds are shallow tds by Lemma 6).

use crate::egd::Egd;
use crate::fd::Fd;
use crate::mvd::Mvd;
use crate::pjd::Pjd;
use crate::td::Td;
use std::sync::Arc;
use typedtd_relational::{Relation, Universe, ValuePool};

/// Any dependency of the classes studied in the paper.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Dependency {
    /// Template dependency `(w, I)`.
    Td(Td),
    /// Equality-generating dependency `(a = b, I)`.
    Egd(Egd),
    /// Functional dependency `X → Y`.
    Fd(Fd),
    /// Total multivalued dependency `X ↠ Y`.
    Mvd(Mvd),
    /// Projected join dependency `*[R₁, …, R_k]_X` (jds included).
    Pjd(Pjd),
}

/// Normal form consumed by the chase: a td or an egd.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TdOrEgd {
    /// Tuple-generating.
    Td(Td),
    /// Equality-generating.
    Egd(Egd),
}

impl TdOrEgd {
    /// Satisfaction dispatch.
    pub fn satisfied_by(&self, j: &Relation) -> bool {
        match self {
            TdOrEgd::Td(t) => t.satisfied_by(j),
            TdOrEgd::Egd(e) => e.satisfied_by(j),
        }
    }

    /// The underlying td, if this is one.
    pub fn as_td(&self) -> Option<&Td> {
        match self {
            TdOrEgd::Td(t) => Some(t),
            TdOrEgd::Egd(_) => None,
        }
    }

    /// The underlying egd, if this is one.
    pub fn as_egd(&self) -> Option<&Egd> {
        match self {
            TdOrEgd::Egd(e) => Some(e),
            TdOrEgd::Td(_) => None,
        }
    }
}

impl Dependency {
    /// Decides `J ⊨ σ`.
    pub fn satisfied_by(&self, j: &Relation) -> bool {
        match self {
            Dependency::Td(t) => t.satisfied_by(j),
            Dependency::Egd(e) => e.satisfied_by(j),
            Dependency::Fd(f) => f.satisfied_by(j),
            Dependency::Mvd(m) => m.satisfied_by(j),
            Dependency::Pjd(p) => p.satisfied_by(j),
        }
    }

    /// Normalizes into the td/egd fragment over `universe`, minting
    /// variables from `pool` where the conversion introduces tableaux.
    pub fn normalize(&self, universe: &Arc<Universe>, pool: &mut ValuePool) -> Vec<TdOrEgd> {
        match self {
            Dependency::Td(t) => vec![TdOrEgd::Td(t.clone())],
            Dependency::Egd(e) => vec![TdOrEgd::Egd(e.clone())],
            Dependency::Fd(f) => f
                .to_egds(universe, pool)
                .into_iter()
                .map(TdOrEgd::Egd)
                .collect(),
            Dependency::Mvd(m) => vec![TdOrEgd::Td(m.to_pjd().to_td(universe, pool))],
            Dependency::Pjd(p) => vec![TdOrEgd::Td(p.to_td(universe, pool))],
        }
    }

    /// Renders the dependency for diagnostics.
    pub fn render(&self, universe: &Universe, pool: &ValuePool) -> String {
        match self {
            Dependency::Td(t) => t.render(pool),
            Dependency::Egd(e) => e.render(pool),
            Dependency::Fd(f) => f.render(universe),
            Dependency::Mvd(m) => m.render(),
            Dependency::Pjd(p) => p.render(universe),
        }
    }
}

impl From<Td> for Dependency {
    fn from(t: Td) -> Self {
        Dependency::Td(t)
    }
}
impl From<Egd> for Dependency {
    fn from(e: Egd) -> Self {
        Dependency::Egd(e)
    }
}
impl From<Fd> for Dependency {
    fn from(f: Fd) -> Self {
        Dependency::Fd(f)
    }
}
impl From<Mvd> for Dependency {
    fn from(m: Mvd) -> Self {
        Dependency::Mvd(m)
    }
}
impl From<Pjd> for Dependency {
    fn from(p: Pjd) -> Self {
        Dependency::Pjd(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::{AttrId, Tuple};

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn normalization_preserves_satisfaction() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let deps: Vec<Dependency> = vec![
            Fd::parse(&u, "A -> B").into(),
            Mvd::parse(&u, "A ->> B").into(),
            Pjd::parse(&u, "*[AB, BC]").into(),
        ];
        let instances = [
            rel(&u, &mut p, &[&["a", "b", "c1"], &["a", "b", "c2"]]),
            rel(&u, &mut p, &[&["a", "b1", "c1"], &["a", "b2", "c2"]]),
            rel(
                &u,
                &mut p,
                &[
                    &["a", "b1", "c1"],
                    &["a", "b2", "c2"],
                    &["a", "b1", "c2"],
                    &["a", "b2", "c1"],
                ],
            ),
        ];
        for d in &deps {
            let normals = d.normalize(&u, &mut p);
            assert!(!normals.is_empty());
            for i in &instances {
                let direct = d.satisfied_by(i);
                let via_normal = normals.iter().all(|n| n.satisfied_by(i));
                assert_eq!(direct, via_normal, "normalize changed semantics of {d:?}");
            }
        }
    }

    #[test]
    fn typed_normalization_is_well_sorted() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        for d in [
            Dependency::from(Fd::parse(&u, "AB -> C")),
            Dependency::from(Pjd::parse(&u, "*[AB, BC] on AC")),
        ] {
            for n in d.normalize(&u, &mut p) {
                match n {
                    TdOrEgd::Td(t) => t.check_typed(&p).unwrap(),
                    TdOrEgd::Egd(e) => e.check_typed(&p).unwrap(),
                }
            }
        }
    }
}
