//! A unified dependency type and normalization into tds + egds.
//!
//! The chase engine operates on tuple-generating (td) and
//! equality-generating (egd) dependencies only; every other class embeds
//! into those, as in Section 2.3 of the paper ("we view the class of egd's
//! as containing the class of fd's", and pjds are shallow tds by Lemma 6).

use crate::egd::Egd;
use crate::fd::Fd;
use crate::ind::Ind;
use crate::independence::IndependenceAtom;
use crate::mvd::Mvd;
use crate::pjd::Pjd;
use crate::td::Td;
use std::sync::Arc;
use typedtd_relational::{Relation, Universe, ValuePool};

/// Any dependency of the classes studied in the paper, plus the
/// related-work classes (inclusion dependencies and independence atoms)
/// that open heterogeneous mixed-class workloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Dependency {
    /// Template dependency `(w, I)`.
    Td(Td),
    /// Equality-generating dependency `(a = b, I)`.
    Egd(Egd),
    /// Functional dependency `X → Y`.
    Fd(Fd),
    /// Total multivalued dependency `X ↠ Y`.
    Mvd(Mvd),
    /// Projected join dependency `*[R₁, …, R_k]_X` (jds included).
    Pjd(Pjd),
    /// Inclusion dependency `R[X] ⊆ R[Y]` (untyped universes).
    Ind(Ind),
    /// (Conditional) independence atom `Y ⊥_X Z`.
    Atom(IndependenceAtom),
}

/// The syntactic class of a [`Dependency`] — the label per-class service
/// statistics (cache hit rates across heterogeneous workloads) key on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DependencyClass {
    /// Template dependency.
    Td,
    /// Equality-generating dependency.
    Egd,
    /// Functional dependency.
    Fd,
    /// Multivalued dependency.
    Mvd,
    /// Projected join dependency.
    Pjd,
    /// Inclusion dependency.
    Ind,
    /// Independence atom.
    Atom,
}

impl DependencyClass {
    /// Every class, in stable display order.
    pub const ALL: [DependencyClass; 7] = [
        DependencyClass::Td,
        DependencyClass::Egd,
        DependencyClass::Fd,
        DependencyClass::Mvd,
        DependencyClass::Pjd,
        DependencyClass::Ind,
        DependencyClass::Atom,
    ];

    /// Number of classes (array-index bound for per-class counters).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index into [`DependencyClass::ALL`]-shaped counter arrays.
    pub fn index(self) -> usize {
        match self {
            DependencyClass::Td => 0,
            DependencyClass::Egd => 1,
            DependencyClass::Fd => 2,
            DependencyClass::Mvd => 3,
            DependencyClass::Pjd => 4,
            DependencyClass::Ind => 5,
            DependencyClass::Atom => 6,
        }
    }

    /// Stable lowercase name (wire/metrics label).
    pub fn as_str(self) -> &'static str {
        match self {
            DependencyClass::Td => "td",
            DependencyClass::Egd => "egd",
            DependencyClass::Fd => "fd",
            DependencyClass::Mvd => "mvd",
            DependencyClass::Pjd => "pjd",
            DependencyClass::Ind => "ind",
            DependencyClass::Atom => "atom",
        }
    }
}

/// Normal form consumed by the chase: a td or an egd.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TdOrEgd {
    /// Tuple-generating.
    Td(Td),
    /// Equality-generating.
    Egd(Egd),
}

impl TdOrEgd {
    /// Satisfaction dispatch.
    pub fn satisfied_by(&self, j: &Relation) -> bool {
        match self {
            TdOrEgd::Td(t) => t.satisfied_by(j),
            TdOrEgd::Egd(e) => e.satisfied_by(j),
        }
    }

    /// The underlying td, if this is one.
    pub fn as_td(&self) -> Option<&Td> {
        match self {
            TdOrEgd::Td(t) => Some(t),
            TdOrEgd::Egd(_) => None,
        }
    }

    /// The underlying egd, if this is one.
    pub fn as_egd(&self) -> Option<&Egd> {
        match self {
            TdOrEgd::Egd(e) => Some(e),
            TdOrEgd::Td(_) => None,
        }
    }
}

impl Dependency {
    /// The syntactic class of this dependency.
    pub fn class(&self) -> DependencyClass {
        match self {
            Dependency::Td(_) => DependencyClass::Td,
            Dependency::Egd(_) => DependencyClass::Egd,
            Dependency::Fd(_) => DependencyClass::Fd,
            Dependency::Mvd(_) => DependencyClass::Mvd,
            Dependency::Pjd(_) => DependencyClass::Pjd,
            Dependency::Ind(_) => DependencyClass::Ind,
            Dependency::Atom(_) => DependencyClass::Atom,
        }
    }

    /// Decides `J ⊨ σ`.
    pub fn satisfied_by(&self, j: &Relation) -> bool {
        match self {
            Dependency::Td(t) => t.satisfied_by(j),
            Dependency::Egd(e) => e.satisfied_by(j),
            Dependency::Fd(f) => f.satisfied_by(j),
            Dependency::Mvd(m) => m.satisfied_by(j),
            Dependency::Pjd(p) => p.satisfied_by(j),
            Dependency::Ind(i) => i.satisfied_by(j),
            Dependency::Atom(a) => a.satisfied_by(j),
        }
    }

    /// Normalizes into the td/egd fragment over `universe`, minting
    /// variables from `pool` where the conversion introduces tableaux.
    ///
    /// # Errors
    /// Inclusion dependencies only embed into tds over untyped universes
    /// and when repeated right-side attributes draw from a single source;
    /// the error explains which condition failed.
    pub fn try_normalize(
        &self,
        universe: &Arc<Universe>,
        pool: &mut ValuePool,
    ) -> Result<Vec<TdOrEgd>, String> {
        Ok(match self {
            Dependency::Td(t) => vec![TdOrEgd::Td(t.clone())],
            Dependency::Egd(e) => vec![TdOrEgd::Egd(e.clone())],
            Dependency::Fd(f) => f
                .to_egds(universe, pool)
                .into_iter()
                .map(TdOrEgd::Egd)
                .collect(),
            Dependency::Mvd(m) => vec![TdOrEgd::Td(m.to_pjd().to_td(universe, pool))],
            Dependency::Pjd(p) => vec![TdOrEgd::Td(p.to_td(universe, pool))],
            Dependency::Ind(i) => {
                if i.is_trivial() {
                    Vec::new()
                } else {
                    vec![TdOrEgd::Td(i.to_td(universe, pool)?)]
                }
            }
            Dependency::Atom(a) => {
                let (egds, td) = a.normalize_parts(universe, pool);
                let mut out: Vec<TdOrEgd> = egds.into_iter().map(TdOrEgd::Egd).collect();
                if let Some(t) = td {
                    out.push(TdOrEgd::Td(t));
                }
                out
            }
        })
    }

    /// Infallible normalization for the classes of the paper.
    ///
    /// # Panics
    /// Panics where [`Dependency::try_normalize`] would error (only
    /// possible for inclusion dependencies).
    pub fn normalize(&self, universe: &Arc<Universe>, pool: &mut ValuePool) -> Vec<TdOrEgd> {
        self.try_normalize(universe, pool)
            .unwrap_or_else(|e| panic!("dependency does not normalize: {e}"))
    }

    /// Renders the dependency for diagnostics.
    pub fn render(&self, universe: &Universe, pool: &ValuePool) -> String {
        match self {
            Dependency::Td(t) => t.render(pool),
            Dependency::Egd(e) => e.render(pool),
            Dependency::Fd(f) => f.render(universe),
            Dependency::Mvd(m) => m.render(),
            Dependency::Pjd(p) => p.render(universe),
            Dependency::Ind(i) => i.render(universe),
            Dependency::Atom(a) => a.render(universe),
        }
    }
}

impl From<Td> for Dependency {
    fn from(t: Td) -> Self {
        Dependency::Td(t)
    }
}
impl From<Egd> for Dependency {
    fn from(e: Egd) -> Self {
        Dependency::Egd(e)
    }
}
impl From<Fd> for Dependency {
    fn from(f: Fd) -> Self {
        Dependency::Fd(f)
    }
}
impl From<Mvd> for Dependency {
    fn from(m: Mvd) -> Self {
        Dependency::Mvd(m)
    }
}
impl From<Pjd> for Dependency {
    fn from(p: Pjd) -> Self {
        Dependency::Pjd(p)
    }
}
impl From<Ind> for Dependency {
    fn from(i: Ind) -> Self {
        Dependency::Ind(i)
    }
}
impl From<IndependenceAtom> for Dependency {
    fn from(a: IndependenceAtom) -> Self {
        Dependency::Atom(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_relational::{AttrId, Tuple};

    fn rel(u: &Arc<Universe>, p: &mut ValuePool, rows: &[&[&str]]) -> Relation {
        Relation::from_rows(
            u.clone(),
            rows.iter().map(|r| {
                Tuple::new(
                    r.iter()
                        .enumerate()
                        .map(|(i, n)| p.for_attr(AttrId(i as u16), n))
                        .collect(),
                )
            }),
        )
    }

    #[test]
    fn normalization_preserves_satisfaction() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let deps: Vec<Dependency> = vec![
            Fd::parse(&u, "A -> B").unwrap().into(),
            Mvd::parse(&u, "A ->> B").unwrap().into(),
            Pjd::parse(&u, "*[AB, BC]").unwrap().into(),
            IndependenceAtom::parse(&u, "B _|_ C | A").unwrap().into(),
        ];
        let instances = [
            rel(&u, &mut p, &[&["a", "b", "c1"], &["a", "b", "c2"]]),
            rel(&u, &mut p, &[&["a", "b1", "c1"], &["a", "b2", "c2"]]),
            rel(
                &u,
                &mut p,
                &[
                    &["a", "b1", "c1"],
                    &["a", "b2", "c2"],
                    &["a", "b1", "c2"],
                    &["a", "b2", "c1"],
                ],
            ),
        ];
        for d in &deps {
            let normals = d.normalize(&u, &mut p);
            assert!(!normals.is_empty());
            for i in &instances {
                let direct = d.satisfied_by(i);
                let via_normal = normals.iter().all(|n| n.satisfied_by(i));
                assert_eq!(direct, via_normal, "normalize changed semantics of {d:?}");
            }
        }
    }

    #[test]
    fn typed_normalization_is_well_sorted() {
        let u = Universe::typed(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        for d in [
            Dependency::from(Fd::parse(&u, "AB -> C").unwrap()),
            Dependency::from(Pjd::parse(&u, "*[AB, BC] on AC").unwrap()),
            Dependency::from(IndependenceAtom::parse(&u, "B _|_ C | A").unwrap()),
        ] {
            for n in d.normalize(&u, &mut p) {
                match n {
                    TdOrEgd::Td(t) => t.check_typed(&p).unwrap(),
                    TdOrEgd::Egd(e) => e.check_typed(&p).unwrap(),
                }
            }
        }
    }

    #[test]
    fn ind_normalization_preserves_satisfaction() {
        let u = Universe::untyped(vec!["A", "B", "C"]);
        let mut p = ValuePool::new(u.clone());
        let d = Dependency::from(Ind::parse(&u, "[AB] <= [BC]").unwrap());
        let instances = [
            rel(&u, &mut p, &[&["a", "b", "c"]]),
            rel(&u, &mut p, &[&["a", "b", "c"], &["b", "a", "b"]]),
            rel(&u, &mut p, &[&["a", "a", "a"]]),
        ];
        let normals = d.try_normalize(&u, &mut p).unwrap();
        assert_eq!(normals.len(), 1);
        for i in &instances {
            assert_eq!(
                d.satisfied_by(i),
                normals.iter().all(|n| n.satisfied_by(i)),
                "normalize changed semantics of {d:?}"
            );
        }
    }

    #[test]
    fn ind_normalization_rejects_typed_universes() {
        let u = Universe::typed(vec!["A", "B"]);
        let mut p = ValuePool::new(u.clone());
        let d = Dependency::Ind(Ind::new(vec![AttrId(0)], vec![AttrId(1)]).unwrap());
        assert!(d.try_normalize(&u, &mut p).is_err());
        // Trivial inds normalize to nothing even over typed universes.
        let t = Dependency::Ind(Ind::new(vec![AttrId(0)], vec![AttrId(0)]).unwrap());
        assert!(t.try_normalize(&u, &mut p).unwrap().is_empty());
    }

    #[test]
    fn class_tags_are_stable_and_distinct() {
        let u = Universe::untyped(vec!["A", "B", "C"]);
        let deps: Vec<Dependency> = vec![
            Fd::parse(&u, "A -> B").unwrap().into(),
            Mvd::parse(&u, "A ->> B").unwrap().into(),
            Pjd::parse(&u, "*[AB, BC]").unwrap().into(),
            Ind::parse(&u, "[A] <= [B]").unwrap().into(),
            IndependenceAtom::parse(&u, "A _|_ B").unwrap().into(),
        ];
        let classes: Vec<DependencyClass> = deps.iter().map(|d| d.class()).collect();
        assert_eq!(
            classes,
            vec![
                DependencyClass::Fd,
                DependencyClass::Mvd,
                DependencyClass::Pjd,
                DependencyClass::Ind,
                DependencyClass::Atom,
            ]
        );
        for (i, c) in DependencyClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let names: std::collections::HashSet<&str> =
            DependencyClass::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(names.len(), DependencyClass::COUNT);
    }
}
