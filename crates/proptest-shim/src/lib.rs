//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no network access, so this workspace member
//! implements — under the same crate name — the subset of the proptest API
//! the workspace's tests use: the [`proptest!`] macro with a
//! `proptest_config` attribute, integer-range and array strategies,
//! `prop::collection::vec`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test's name), so failures are reproducible run-to-run. There is no
//! shrinking: a failing case reports its inputs via the assertion message.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: usize,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: usize) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case does not count toward the quota.
    Reject,
    /// `prop_assert!`-style failure: the property is false.
    Fail(String),
}

/// Result type threaded through generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. The single-method stand-in for proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u32, u64, usize);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy combinators, mirroring the `proptest::prelude::prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// Inclusive bounds on a generated collection's length. Mirrors
        /// proptest's `SizeRange` so that `1..6` infers as `usize`.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                Self {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// A `Vec` strategy: `len` elements of `element`, with `len` drawn
        /// from `sizes`.
        pub fn vec<E: Strategy>(element: E, sizes: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy {
                element,
                sizes: sizes.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<E> {
            element: E,
            sizes: SizeRange,
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                use rand::RngExt;
                let len = rng.random_range(self.sizes.lo..=self.sizes.hi_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Stable 64-bit hash of a test name, for per-test deterministic seeds.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: repeatedly generates inputs and runs the body until
/// `cases` accepted runs complete, panicking on the first failure.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let max_rejects = config.cases.saturating_mul(64).max(1024);
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected cases ({rejected}); weaken prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {accepted} passing cases: {msg}")
            }
        }
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    #[allow(unused_mut)]
                    let mut body = || -> $crate::TestCaseResult { $body Ok(()) };
                    body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts inside a property body, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards a case without failing, mirroring `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 1u32..15,
            rows in prop::collection::vec([0usize..3, 0usize..3], 1..=4),
        ) {
            prop_assert!((1..15).contains(&x));
            prop_assert!((1..=4).contains(&rows.len()));
            for r in &rows {
                prop_assert!(r[0] < 3 && r[1] < 3, "row out of range: {:?}", r);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(1),
            |_| Err(TestCaseError::Fail("nope".into())),
        );
    }
}
