//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace member
//! implements — under the same crate name — the subset of the criterion API
//! the workspace's benches use: benchmark groups, `iter` / `iter_batched`,
//! `BenchmarkId`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! `sample_size` samples; the report prints the median, minimum, and mean
//! per-iteration time. Set `CRITERION_JSON=<path>` to additionally append
//! one JSON line per benchmark (used by the perf-trajectory tooling).

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup between runs. Only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: one setup per measured iteration.
    SmallInput,
    /// Large per-iteration inputs: one setup per measured iteration.
    LargeInput,
    /// Setup runs once per sample.
    PerIteration,
}

/// A benchmark identifier within a group, e.g. a scaling parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark (an implicit single-entry group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `{group}/{id}`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks `f` under `{group}/{id}` with an input handle.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    /// Iterations per sample, tuned during warm-up.
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` repeatedly.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and calibration: aim for samples of >= ~1ms or 10 iters.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        // One untimed warm-up run.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] with a by-ref routine.
    pub fn iter_batched_ref<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        let mut warm = setup();
        black_box(routine(&mut warm));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<44} median {:>12} min {:>12} mean {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean),
        b.samples.len(),
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"mean_ns\":{},\"samples\":{}}}",
                name.replace('"', "'"),
                median.as_nanos(),
                min.as_nanos(),
                mean.as_nanos(),
                b.samples.len(),
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("shim/smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("shim");
        let mut setups = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    7u64
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 5, "one warm-up + one per sample");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
