//! Metrics-exposition smoke: run a real `typedtd-sockd --metrics PATH`,
//! drive a small mixed workload over the wire (cold misses, cache hits,
//! and a fuel-capped divergent query streamed with live `PROGRESS`
//! frames), shut the server down, and assert the final exposition is
//! complete and sane:
//!
//! * every counter, gauge, and histogram family the service exports is
//!   present in the file;
//! * the latency histograms account for every submission exactly once
//!   (`Σ latency_*_count == submitted`), the core invariant the whole
//!   telemetry layer is built on;
//! * the in-flight gauge is 0 after the shutdown drain.
//!
//! CI runs exactly this test as its "metrics smoke" step.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use typedtd_service::ProtoClient;

/// Decidable corpus (same shape as `tests/proto.rs`): submitted twice so
/// the second pass lands as cache hits.
fn corpus() -> Vec<(String, String)> {
    let u = "A B C D".to_string();
    [
        "A -> B & B -> C & C -> D |= A -> D",
        "A ->> B & B ->> C |= A ->> C",
        "A -> B |= B -> A",
        "*[AB, BC, CD] |= A ->> B",
        "A -> BC |= A -> B",
    ]
    .into_iter()
    .map(|q| (u.clone(), q.to_string()))
    .collect()
}

/// Divergent successor-td query: the chase grows forever, so only a
/// budget settles it (to an honest `Unknown`) — which keeps it
/// computing long enough to stream `Running` frames. A variant with a
/// wider universe (distinct cache key, so it never coalesces) is
/// submitted under a tiny fuel cap to force the *expired* path.
const DIVERGENT_UNIVERSE: &str = "untyped A' B' C'";
const DIVERGENT_QUERY: &str =
    "td [x y z] => y q1 q2 |= egd [x y1 z1 ; x y2 z2] => y1 = y2";
const EXPIRE_UNIVERSE: &str = "untyped A' B' C' D'";
const EXPIRE_QUERY: &str =
    "td [x y z p3] => y q1 q2 q3 |= egd [x y1 z1 v3 ; x y2 z2 w3] => y1 = y2";

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "typedtd-metrics-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0),
    ))
}

/// Spawns `typedtd-sockd` with `args`, waits for the `listening tcp=…`
/// line, and arms a 120s kill watchdog so a hang fails the test instead
/// of wedging the suite.
fn spawn_sockd(args: &[&str]) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_typedtd-sockd"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn typedtd-sockd");
    let pid = child.id();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(120));
        #[cfg(unix)]
        {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        }
        #[cfg(not(unix))]
        let _ = pid;
    });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("typedtd-sockd: listening tcp=")
        .expect("listening line")
        .parse()
        .expect("socket addr");
    (child, addr)
}

/// Reads a plain (label-free) sample value from Prometheus text.
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        if n == name && !n.starts_with('#') {
            v.parse().ok()
        } else {
            None
        }
    })
}

#[test]
fn metrics_exposition_end_to_end() {
    let metrics = temp_path("exposition.prom");
    let metrics_str = metrics.to_str().expect("utf-8 temp path").to_string();
    let (mut child, addr) = spawn_sockd(&["--metrics", &metrics_str, "--drivers", "2"]);
    let mut client = ProtoClient::connect_tcp(addr).expect("connect");

    // Two passes over the corpus: pass one is all cache misses, pass two
    // all hits — both latency families must end up populated.
    let corpus = corpus();
    for _pass in 0..2 {
        let corrs: Vec<u64> = corpus
            .iter()
            .map(|(u, q)| client.submit(u, q, None).expect("submit"))
            .collect();
        for corr in corrs {
            let a = client.wait_answer(corr).expect("answer");
            assert!(!a.cancelled, "corpus queries must not cancel");
        }
    }

    // A second divergent shape under a tiny fuel cap: the cap bites long
    // before the chase/search budgets do, so this one lands as an
    // *expired* Unknown and populates the expired latency family.
    let expire_corr = client
        .submit(EXPIRE_UNIVERSE, EXPIRE_QUERY, Some(64))
        .expect("submit expire ballast");

    // One divergent fuel-capped query with progress streaming: ≥1 live
    // `Running` frame, strictly fuel-monotone. The 4096 cap is generous
    // on purpose — the dovetailed finite-model search refutes the query
    // well inside it, and that long natural run is what crosses enough
    // progress ticks to stream reliably.
    let corr = client
        .submit_with_progress(DIVERGENT_UNIVERSE, DIVERGENT_QUERY, Some(4096))
        .expect("submit streaming");
    let mut fuels: Vec<u64> = Vec::new();
    let answer = client
        .wait_answer_with_progress(corr, |up| fuels.push(up.fuel))
        .expect("streamed answer");
    assert_eq!(answer.implication, typedtd_chase::Answer::No);
    assert!(!answer.cancelled, "nothing cancelled the streamed query");
    assert!(
        !fuels.is_empty(),
        "a 4096-fuel divergent run must stream at least one Running frame"
    );
    assert!(
        fuels.windows(2).all(|w| w[0] < w[1]),
        "Running frames must be strictly fuel-monotone: {fuels:?}"
    );

    let expired_answer = client.wait_answer(expire_corr).expect("expire answer");
    assert!(expired_answer.expired, "a 64-fuel cap must expire the divergent chase");

    let wire_submissions = (2 * corpus.len() + 2) as u64;
    client.shutdown_server().expect("shutdown frame");
    let status = child.wait().expect("sockd exit");
    assert!(status.success(), "typedtd-sockd must exit cleanly");

    let text = std::fs::read_to_string(&metrics).expect("metrics file");
    let _ = std::fs::remove_file(&metrics);

    // Every family the service exports must be present.
    for family in [
        "typedtd_submitted_total",
        "typedtd_completed_total",
        "typedtd_cache_hits_total",
        "typedtd_goal_in_sigma_total",
        "typedtd_coalesced_total",
        "typedtd_cache_misses_total",
        "typedtd_verify_rejects_total",
        "typedtd_expired_total",
        "typedtd_cancelled_total",
        "typedtd_retired_total",
        "typedtd_evictions_total",
        "typedtd_shed_total",
        "typedtd_fuel_spent_total",
        "typedtd_sweeps_total",
        "typedtd_steals_total",
        "typedtd_parked_total",
        "typedtd_answer_yes_total",
        "typedtd_answer_no_total",
        "typedtd_answer_unknown_total",
        "typedtd_warm_hits_total",
        "typedtd_persist_errors_total",
        "typedtd_jobs_inflight",
        "typedtd_cache_entries",
        "typedtd_queue_depth",
        "typedtd_latency_hit_nanos",
        "typedtd_latency_miss_nanos",
        "typedtd_latency_expired_nanos",
        "typedtd_latency_cancelled_nanos",
        "typedtd_queue_wait_nanos",
        "typedtd_run_time_nanos",
        "typedtd_fuel_per_job",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "metrics file must contain family {family}:\n{text}"
        );
    }
    assert!(
        text.contains("typedtd_queue_depth{shard=\"0\"}"),
        "queue depth must be labelled per shard"
    );

    // Sanity invariants on the final snapshot.
    let val = |name: &str| {
        metric_value(&text, name).unwrap_or_else(|| panic!("missing sample {name}:\n{text}"))
    };
    // Each wire SUBMIT fans out into ≥1 normalized goal parts; the
    // service counts parts, so `submitted` is a lower bound, and the
    // latency histograms must account for every part exactly once.
    let submitted = val("typedtd_submitted_total");
    assert!(
        submitted >= wire_submissions,
        "service submissions ({submitted}) must cover every wire SUBMIT ({wire_submissions})"
    );
    let latency_total = val("typedtd_latency_hit_nanos_count")
        + val("typedtd_latency_miss_nanos_count")
        + val("typedtd_latency_expired_nanos_count")
        + val("typedtd_latency_cancelled_nanos_count");
    assert_eq!(
        latency_total, submitted,
        "every submission must land in exactly one latency family:\n{text}"
    );
    assert_eq!(val("typedtd_fuel_per_job_count"), submitted);
    assert_eq!(val("typedtd_jobs_inflight"), 0, "drain must leave nothing in flight");
    // The second corpus pass must avoid recomputation: every query lands
    // as either an answer-cache hit or (for goals syntactically inside Σ,
    // which short-circuit before the cache on both passes) a goal-in-Σ
    // fast path.
    assert!(
        val("typedtd_cache_hits_total") + val("typedtd_goal_in_sigma_total")
            >= corpus.len() as u64,
        "second corpus pass must land on a fast path:\n{text}"
    );
    assert!(val("typedtd_cache_hits_total") >= 1, "the cache must serve hits:\n{text}");
    assert!(val("typedtd_expired_total") >= 1);
    assert!(val("typedtd_fuel_spent_total") > 0);
    assert_eq!(val("typedtd_shed_total"), 0);
}
