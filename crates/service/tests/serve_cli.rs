//! Regression tests for the `typedtd-serve` CLI's shutdown path: stdin
//! closing with divergent jobs still pending must not leave the process
//! grinding — `--drain-sweeps` cancels the stragglers explicitly and the
//! exit is a deterministic stats ledger.

use std::io::Write;
use std::process::{Command, Stdio};

/// One decidable query plus one divergent one (successor td, never-
/// derivable egd goal: the chase grows forever within the default
/// budgets' horizon).
const MIXED_INPUT: &str = "\
@universe A B C
A -> B & B -> C |= A -> C
@universe untyped A' B' C'
td [x y z] => y q1 q2 |= egd [x y1 z1 ; x y2 z2] => y1 = y2
";

/// Runs the binary with `args`, feeding `input` on stdin and closing it
/// (the EOF-mid-batch scenario), with a watchdog so a hang fails the
/// test instead of wedging the suite.
fn run_serve(args: &[&str], input: &str) -> std::process::Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_typedtd-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn typedtd-serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write queries");
    // stdin drops here: the pipe closes mid-batch.
    let pid = child.id();
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(120));
        // SAFETY-free fallback: politely ask the OS; if the process
        // exited already this is a no-op error.
        #[cfg(unix)]
        {
            let _ = Command::new("kill").arg(pid.to_string()).status();
        }
        #[cfg(not(unix))]
        let _ = pid;
    });
    let out = child.wait_with_output().expect("wait for typedtd-serve");
    drop(watchdog); // leaked on purpose; the sleep is harmless
    out
}

#[test]
fn stdin_eof_with_divergent_jobs_drains_deterministically() {
    let out = run_serve(&["-", "--drain-sweeps", "6"], MIXED_INPUT);
    assert!(
        out.status.success(),
        "bounded drain must exit 0, got {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The decidable query was answered before the drain limit…
    assert!(
        stdout.contains("implication=yes"),
        "fd transitivity must be answered: {stdout}"
    );
    // …the divergent one was cancelled and still got its verdict line.
    assert!(
        stdout.lines().any(|l| l.starts_with("#4") && l.contains("implication=unknown")),
        "cancelled divergent query must report unknown: {stdout}"
    );
    // The deterministic ledger: 2 jobs in, 1 answered, 1 cancelled.
    assert!(
        stderr.contains(
            "typedtd-serve: done submitted=2 answered=1 unknown=0 cancelled=1 expired=0"
        ),
        "shutdown ledger missing or wrong: {stderr}"
    );
}

#[test]
fn unbounded_drain_still_prints_the_ledger() {
    // Without --drain-sweeps the quick budgets run the batch to real
    // verdicts (the divergent chase exhausts, the finite-model search
    // then refutes the egd goal — answer `no`); the ledger must still
    // balance: submitted == answered + unknown + cancelled.
    let out = run_serve(&["-", "--quick"], MIXED_INPUT);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("typedtd-serve: done submitted=2 answered=2 unknown=0 cancelled=0"),
        "default-drain ledger missing or wrong: {stderr}"
    );
}
