//! Crash-safety soak for the persistent answer cache: SIGKILL a live
//! `typedtd-sockd` mid-stream, restart it on the same answer log, and
//! prove three things across the crash boundary:
//!
//! * the wire ledger still balances — every phase-2 connection drains to
//!   `answered + cancelled + expired == submitted` with `pending == 0`;
//! * every replayed answer agrees with the sequential in-process
//!   `decide` oracle (differential check, same shape as `tests/proto.rs`);
//! * the warm-start actually happened — the restarted server serves at
//!   least half the resubmitted corpus from replayed (warm) entries.
//!
//! Alongside the flagship soak: the shutdown-drain fix (detached jobs
//! are driven to an answer or an explicit cancel, never dropped), the
//! `--max-inflight` overload path (`ERR_BUSY`, `shed` in stats), client
//! reconnect-with-resubmit, degraded mode under injected write faults,
//! and a property fuzz over corrupted log bytes (replay never panics
//! and always recovers a valid prefix).

use proptest::prelude::*;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;
use typedtd_chase::{decide, Answer, DecideConfig};
use typedtd_service::proto::err_code;
use typedtd_service::{
    parse_query_line, parse_universe_spec, query_key, replay_bytes, CachedAnswer, ClientConfig,
    ImplicationClient, PersistConfig, PersistLog, ProtoClient, ProtoServer, QuerySpec,
    ServiceConfig, SockdConfig,
};
use typedtd_relational::ValuePool;

/// Decidable textual corpus over `A B C D` — fds, mvds, pjds; none of
/// them goal-in-Σ (that fast path bypasses the cache probe, so it would
/// dilute the warm-hit measurement).
fn corpus() -> Vec<(String, String)> {
    let u = "A B C D".to_string();
    [
        "A -> B & B -> C & C -> D |= A -> D",
        "B -> C & A -> B & C -> D |= A -> D",
        "A ->> B & B ->> C |= A ->> C",
        "A -> B |= B -> A",
        "*[AB, BC, CD] |= A ->> B",
        "*[ABC, CD] |= C ->> D",
        "A ->> B |= *[AB, BCD]",
        "*[AB, BC] on AC |= A ->> C",
        "A -> B & B -> C |= A -> C",
        "A -> BC |= A -> B",
    ]
    .into_iter()
    .map(|q| (u.clone(), q.to_string()))
    .collect()
}

/// A divergent submission (successor td, never-derivable egd goal): the
/// chase grows forever within the default budgets' horizon.
const DIVERGENT_UNIVERSE: &str = "untyped A' B' C'";
const DIVERGENT_QUERY: &str =
    "td [x y z] => y q1 q2 |= egd [x y1 z1 ; x y2 z2] => y1 = y2";

/// Sequential in-process reference: parse exactly like the server,
/// decide each normalized goal part, conjoin.
fn reference_answers(corpus: &[(String, String)]) -> Vec<(Answer, Answer)> {
    let cfg = DecideConfig::default();
    corpus
        .iter()
        .map(|(uspec, query)| {
            let universe = parse_universe_spec(uspec).expect("corpus universe parses");
            let mut pool = ValuePool::new(universe.clone());
            let (sigma, goal) =
                parse_query_line(&universe, &mut pool, query).expect("corpus query parses");
            let sigma_normal: Vec<_> = sigma
                .iter()
                .flat_map(|d| d.normalize(&universe, &mut pool))
                .collect();
            let mut imp = Answer::Yes;
            let mut fin = Answer::Yes;
            for part in goal.normalize(&universe, &mut pool) {
                let d = decide(&sigma_normal, &part, &mut pool.clone(), &cfg);
                imp = imp.and(d.implication);
                fin = fin.and(d.finite_implication);
            }
            assert_ne!(imp, Answer::Unknown, "corpus must be decidable: {query}");
            assert_ne!(fin, Answer::Unknown, "corpus must be decidable: {query}");
            (imp, fin)
        })
        .collect()
}

/// A unique temp path (pid + tag keeps parallel test binaries apart).
fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "typedtd-crash-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0),
    ))
}

/// Spawns `typedtd-sockd` with `args`, waits for the `listening tcp=…`
/// line, and arms a 120s kill watchdog so a hang fails the test instead
/// of wedging the suite.
fn spawn_sockd(args: &[&str]) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_typedtd-sockd"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn typedtd-sockd");
    let pid = child.id();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(120));
        #[cfg(unix)]
        {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        }
        #[cfg(not(unix))]
        let _ = pid;
    });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("typedtd-sockd: listening tcp=")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

/// Parses a `key=value`-separated counters line (the `--stats` ledger
/// and the `done` ledger share the shape).
fn parse_counters(line: &str) -> std::collections::HashMap<String, u64> {
    line.split_whitespace()
        .filter_map(|tok| {
            let (k, v) = tok.split_once('=')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

/// The flagship soak: cold server answers (and persists) the corpus,
/// gets SIGKILLed while concurrent clients are still streaming filler,
/// and a restart on the same log must warm-serve the corpus with oracle
/// parity and balanced ledgers.
#[test]
fn sigkill_mid_stream_then_warm_restart() {
    let corpus = corpus();
    let reference = reference_answers(&corpus);
    let log = temp_path("soak.log");
    let _ = std::fs::remove_file(&log);
    let log_str = log.to_str().expect("utf8 temp path").to_string();

    // Phase 1: cold server. Answer the whole corpus (each definite
    // answer is appended to the log as it enters the cache), then keep
    // streaming width-varying filler and SIGKILL mid-stream — the log's
    // tail is torn at whatever byte the crash left it.
    let (mut child, addr) = spawn_sockd(&["--tcp", "127.0.0.1:0", "--log", &log_str]);
    {
        let mut client = ProtoClient::connect_tcp(addr).expect("connect phase 1");
        let corrs: Vec<u64> = corpus
            .iter()
            .map(|(u, q)| client.submit(u, q, None).expect("submit corpus"))
            .collect();
        for (i, corr) in corrs.iter().enumerate() {
            let ans = client.wait_answer(*corr).expect("cold answer");
            assert_eq!(
                (ans.implication, ans.finite_implication),
                reference[i],
                "cold parity violated on {:?}",
                corpus[i].1
            );
        }
    }
    let filler = std::thread::spawn(move || {
        // Distinct widths ⇒ distinct canonical keys: every filler
        // submission is a fresh chase whose append races the SIGKILL.
        let Ok(mut client) = ProtoClient::connect_tcp(addr) else {
            return;
        };
        for i in 0..10_000u32 {
            let width = 3 + (i as usize % 61);
            let names: Vec<String> = (0..width).map(|c| format!("C{c}")).collect();
            let uspec = names.join(" ");
            let query = "C0 -> C1 & C1 -> C2 |= C0 -> C2".to_string();
            if client.submit(&uspec, &query, None).is_err() {
                return; // server died mid-stream: exactly the point
            }
        }
    });
    std::thread::sleep(Duration::from_millis(150));
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();
    filler.join().expect("filler thread");

    // Phase 2: restart on the same (possibly torn) log. Concurrent
    // clients resubmit the corpus; answers must match the oracle and
    // come from warm (replayed) cache entries.
    let (mut child2, addr2) = spawn_sockd(&[
        "--tcp",
        "127.0.0.1:0",
        "--log",
        &log_str,
        "--verify-hits",
        "--stats",
    ]);
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let corpus = corpus.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = ProtoClient::connect_tcp(addr2).expect("connect phase 2");
                let corrs: Vec<u64> = corpus
                    .iter()
                    .map(|(u, q)| client.submit(u, q, None).expect("resubmit corpus"))
                    .collect();
                for (i, corr) in corrs.iter().enumerate() {
                    let ans = client.wait_answer(*corr).expect("warm answer");
                    assert_eq!(
                        (ans.implication, ans.finite_implication),
                        reference[i],
                        "replayed answer disagrees with the oracle on {:?}",
                        corpus[i].1
                    );
                }
                // Ledger balances on every connection after the drain.
                let stats = client.stats().expect("per-connection stats");
                assert_eq!(stats["pending"], 0);
                assert_eq!(
                    stats["answered"] + stats["cancelled"] + stats["expired"],
                    stats["submitted"],
                    "wire ledger out of balance: {stats:?}"
                );
            })
        })
        .collect();
    for w in workers {
        w.join().expect("phase-2 worker");
    }
    let mut control = ProtoClient::connect_tcp(addr2).expect("control connection");
    control.shutdown_server().expect("send SHUTDOWN");
    drop(control);
    let status = child2.wait().expect("server exit");
    assert!(status.success(), "clean shutdown after SHUTDOWN frame");
    let mut stderr = String::new();
    std::io::Read::read_to_string(
        &mut child2.stderr.take().expect("piped stderr"),
        &mut stderr,
    )
    .expect("read stderr");
    let done = stderr
        .lines()
        .find(|l| l.starts_with("typedtd-sockd: done"))
        .unwrap_or_else(|| panic!("missing done ledger in stderr: {stderr}"));
    let done = parse_counters(done);
    assert_eq!(
        done["answered"] + done["unknown"] + done["cancelled"],
        done["submitted"],
        "service ledger out of balance across restart: {stderr}"
    );
    let stats = stderr
        .lines()
        .find(|l| l.contains("warm_hits=") && l.contains("jobs="))
        .unwrap_or_else(|| panic!("missing --stats line in stderr: {stderr}"));
    let stats = parse_counters(stats);
    let (jobs, warm) = (stats["jobs"], stats["warm_hits"]);
    assert!(
        warm * 2 >= jobs,
        "warm-start hit rate below 0.5: warm_hits={warm} jobs={jobs}\n{stderr}"
    );
    assert!(warm > 0, "restart must actually replay the log: {stderr}");
    let _ = std::fs::remove_file(&log);
}

/// SHUTDOWN must drain in-flight work, not drop it: a detached
/// decidable job is driven to its answer during the drain sweeps, a
/// detached divergent one is explicitly cancelled, and the final ledger
/// accounts for both.
#[test]
fn shutdown_drains_detached_jobs_and_prints_ledger() {
    let (mut child, addr) =
        spawn_sockd(&["--tcp", "127.0.0.1:0", "--drain-sweeps", "16"]);
    let mut client = ProtoClient::connect_tcp(addr).expect("connect");
    let decidable = client
        .submit("A B C", "A -> B & B -> C |= A -> C", None)
        .expect("submit decidable");
    let divergent = client
        .submit(DIVERGENT_UNIVERSE, DIVERGENT_QUERY, None)
        .expect("submit divergent");
    client.detach(decidable).expect("detach decidable");
    client.detach(divergent).expect("detach divergent");
    client.shutdown_server().expect("send SHUTDOWN");
    drop(client);
    let status = child.wait().expect("server exit");
    assert!(status.success());
    let mut stderr = String::new();
    std::io::Read::read_to_string(
        &mut child.stderr.take().expect("piped stderr"),
        &mut stderr,
    )
    .expect("read stderr");
    let done = stderr
        .lines()
        .find(|l| l.starts_with("typedtd-sockd: done"))
        .unwrap_or_else(|| panic!("missing done ledger: {stderr}"));
    let done = parse_counters(done);
    assert_eq!(done["submitted"], 2, "two jobs in: {stderr}");
    assert_eq!(
        done["answered"], 1,
        "the decidable detached job must be answered by the drain, not dropped: {stderr}"
    );
    assert_eq!(
        done["cancelled"], 1,
        "the divergent straggler must be explicitly cancelled: {stderr}"
    );
}

/// Overload shedding: with `max_inflight = 2`, the third concurrently
/// pending submission is answered `ERR_BUSY` (and counted as `shed`)
/// instead of growing the queue.
#[test]
fn max_inflight_sheds_with_err_busy() {
    let server = ProtoServer::bind(
        SockdConfig {
            service: ServiceConfig::default(),
            drivers: 1,
            max_inflight: Some(2),
            ..Default::default()
        },
        Some("127.0.0.1:0"),
        None,
    )
    .expect("bind");
    let addr = server.tcp_addr().expect("tcp addr");
    let mut client = ProtoClient::connect_tcp(addr).expect("connect");
    // Three copies of the same divergent query: the first leads, the
    // second coalesces (both count as pending jobs), the third must
    // bounce off the bound.
    let c1 = client
        .submit(DIVERGENT_UNIVERSE, DIVERGENT_QUERY, None)
        .expect("submit 1");
    let c2 = client
        .submit(DIVERGENT_UNIVERSE, DIVERGENT_QUERY, None)
        .expect("submit 2");
    let c3 = client
        .submit(DIVERGENT_UNIVERSE, DIVERGENT_QUERY, None)
        .expect("submit 3");
    let err = client
        .wait_answer(c3)
        .expect_err("third submission must be shed");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("server err {}", err_code::BUSY)),
        "expected ERR_BUSY, got: {msg}"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats["shed"], 1, "shed counter must appear in stats: {stats:?}");
    assert_eq!(stats["pending"], 2);
    // Clean up: cancel the divergent pair and confirm the ledger.
    client.cancel(c1).expect("cancel 1");
    client.cancel(c2).expect("cancel 2");
    let a1 = client.wait_answer(c1).expect("cancelled answer 1");
    let a2 = client.wait_answer(c2).expect("cancelled answer 2");
    assert!(a1.cancelled && a2.cancelled);
    assert_eq!(
        server.client().stats().shed,
        1,
        "shed must land in ServiceStats"
    );
    server.shutdown_now();
    server.join();
}

/// Client resilience: a resilient [`ProtoClient`] survives its server
/// being torn down and replaced — both between requests (write fails,
/// reconnect, retry) and with an answer outstanding (read fails,
/// reconnect, re-submit under the original correlation id).
#[cfg(unix)]
#[test]
fn client_reconnects_and_resubmits_after_server_restart() {
    let sock = temp_path("reconnect.sock");
    let cfg = || SockdConfig {
        service: ServiceConfig::default(),
        drivers: 1,
        ..Default::default()
    };
    let server1 = ProtoServer::bind(cfg(), None, Some(&sock)).expect("bind 1");
    let mut client = ProtoClient::connect_unix_with(
        &sock,
        ClientConfig::resilient(Duration::from_millis(200), 40),
    )
    .expect("connect resilient");
    let c1 = client
        .submit("A B C", "A -> B & B -> C |= A -> C", None)
        .expect("submit 1");
    let a1 = client.wait_answer(c1).expect("answer 1");
    assert_eq!(a1.implication, Answer::Yes);
    // Tear the server down between requests: the next submit hits a
    // dead socket, reconnects to the replacement, and goes through.
    server1.shutdown_now();
    server1.join();
    let server2 = ProtoServer::bind(cfg(), None, Some(&sock)).expect("bind 2");
    let c2 = client
        .submit("A B C D", "A -> B & B -> C & C -> D |= A -> D", None)
        .expect("submit 2 rides the reconnect");
    let a2 = client.wait_answer(c2).expect("answer 2");
    assert_eq!(a2.implication, Answer::Yes);
    // Tear it down with an answer outstanding: wait_answer observes the
    // dead connection, reconnects, re-submits the correlation, and the
    // replacement answers it (idempotently — the query is pure).
    let c3 = client
        .submit("A B C", "A -> B |= B -> A", None)
        .expect("submit 3");
    server2.shutdown_now();
    server2.join();
    let _server3 = ProtoServer::bind(cfg(), None, Some(&sock)).expect("bind 3");
    let a3 = client.wait_answer(c3).expect("answer 3 after resubmit");
    assert_eq!(a3.implication, Answer::No, "A -> B does not imply B -> A");
    let _ = std::fs::remove_file(&sock);
}

/// Degraded mode end to end: a service whose log write path keeps
/// failing counts `persist_errors`, flips the log read-only, and keeps
/// answering traffic normally.
#[test]
fn persistent_write_failure_degrades_without_affecting_answers() {
    let corpus = corpus();
    let reference = reference_answers(&corpus);
    let mut pc = PersistConfig::at(temp_path("degraded.log"));
    pc.fault.error_at = Some(8); // every write past the header fails
    let client = ImplicationClient::new(ServiceConfig {
        persist: Some(pc.clone()),
        ..ServiceConfig::default()
    });
    for (i, (uspec, query)) in corpus.iter().enumerate() {
        let universe = parse_universe_spec(uspec).expect("universe");
        let mut pool = ValuePool::new(universe.clone());
        let (sigma, goal) = parse_query_line(&universe, &mut pool, query).expect("query");
        let sigma_normal: Vec<_> = sigma
            .iter()
            .flat_map(|d| d.normalize(&universe, &mut pool))
            .collect();
        let mut imp = Answer::Yes;
        for part in goal.normalize(&universe, &mut pool) {
            let h = client.submit(QuerySpec::new(sigma_normal.clone(), part, pool.clone()));
            imp = imp.and(h.wait().implication);
        }
        assert_eq!(imp, reference[i].0, "degraded service must still answer {query:?}");
    }
    let stats = client.stats();
    assert!(
        stats.persist_errors > 0,
        "failed appends must be counted: {stats:?}"
    );
    // The log on disk is still a valid (empty) prefix — failed appends
    // healed back to the header instead of leaving torn bytes behind.
    let replay = typedtd_service::replay_log(&pc.path).expect("log readable");
    assert!(replay.records.is_empty());
    let _ = std::fs::remove_file(&pc.path);
}

type SeedLog = (Vec<u8>, Vec<(typedtd_service::QueryKey, CachedAnswer)>);

/// A valid multi-record log built once for the corruption fuzz.
fn valid_log_bytes() -> &'static SeedLog {
    static LOG: OnceLock<SeedLog> = OnceLock::new();
    LOG.get_or_init(|| {
        let path = temp_path("fuzzseed.log");
        let (log, replayed) =
            PersistLog::open(&PersistConfig::at(&path)).expect("open fresh log");
        assert!(replayed.is_empty());
        let mut expected = Vec::new();
        for (i, (uspec, query)) in corpus().iter().enumerate() {
            let universe = parse_universe_spec(uspec).expect("universe");
            let mut pool = ValuePool::new(universe.clone());
            let (sigma, goal) = parse_query_line(&universe, &mut pool, query).expect("query");
            let sigma_normal: Vec<_> = sigma
                .iter()
                .flat_map(|d| d.normalize(&universe, &mut pool))
                .collect();
            for part in goal.normalize(&universe, &mut pool) {
                let key = query_key(&sigma_normal, &part);
                let answer = CachedAnswer {
                    implication: if i % 2 == 0 { Answer::Yes } else { Answer::No },
                    finite_implication: if i % 3 == 0 { Answer::Yes } else { Answer::No },
                };
                assert!(log.append(&key, answer, 1 + i as u64));
                expected.push((key, answer));
            }
        }
        drop(log);
        let bytes = std::fs::read(&path).expect("read log bytes");
        let _ = std::fs::remove_file(&path);
        (bytes, expected)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Corruption fuzz: flip any byte or truncate at any point — replay
    /// never panics, and what it recovers is exactly a prefix of the
    /// records that were written, each with a rebuildable witness.
    #[test]
    fn corrupted_logs_replay_to_a_valid_prefix(
        at in 0usize..4096,
        flip in 0u32..=255,
        truncate in 0u32..2,
    ) {
        let (bytes, expected) = valid_log_bytes();
        let mut mutated = bytes.clone();
        let at = at % mutated.len();
        if truncate == 1 {
            mutated.truncate(at);
        } else {
            mutated[at] ^= (flip as u8) | 1; // always actually changes the byte
        }
        let replay = replay_bytes(&mutated);
        prop_assert!(replay.records.len() <= expected.len());
        prop_assert!(replay.valid_len as usize <= mutated.len());
        for (rec, (key, answer)) in replay.records.iter().zip(expected) {
            prop_assert_eq!(&rec.key, key);
            prop_assert_eq!(&rec.answer, answer);
            // Every survivor must still verify as a cache witness.
            prop_assert!(rec.key.witness_relation().is_some());
        }
    }
}

/// And the full stack over a corrupted log: a verify-hits service warm-
/// started from a flipped-and-truncated log still answers the whole
/// corpus correctly — surviving records serve as verified warm hits,
/// lost ones are simply recomputed.
#[test]
fn corrupted_log_still_feeds_a_verified_cache() {
    let corpus = corpus();
    let reference = reference_answers(&corpus);
    let path = temp_path("corrupt-cache.log");
    // Build a real log by running the corpus through a persisting client.
    {
        let client = ImplicationClient::new(ServiceConfig {
            persist: Some(PersistConfig::at(&path)),
            ..ServiceConfig::default()
        });
        for (uspec, query) in &corpus {
            let universe = parse_universe_spec(uspec).expect("universe");
            let mut pool = ValuePool::new(universe.clone());
            let (sigma, goal) = parse_query_line(&universe, &mut pool, query).expect("query");
            let sigma_normal: Vec<_> = sigma
                .iter()
                .flat_map(|d| d.normalize(&universe, &mut pool))
                .collect();
            for part in goal.normalize(&universe, &mut pool) {
                client
                    .submit(QuerySpec::new(sigma_normal.clone(), part, pool.clone()))
                    .wait();
            }
        }
    }
    // Corrupt it: flip a byte two-thirds in, truncate the last quarter.
    let mut bytes = std::fs::read(&path).expect("read log");
    let n = bytes.len();
    assert!(n > 16, "log must have content");
    bytes[n * 2 / 3] ^= 0x40;
    bytes.truncate(n - n / 4);
    std::fs::write(&path, &bytes).expect("write corrupted log");
    // Warm-start a verifying client from the damaged log.
    let client = ImplicationClient::new(ServiceConfig {
        persist: Some(PersistConfig::at(&path)),
        verify_cache_hits: true,
        ..ServiceConfig::default()
    });
    for (i, (uspec, query)) in corpus.iter().enumerate() {
        let universe = parse_universe_spec(uspec).expect("universe");
        let mut pool = ValuePool::new(universe.clone());
        let (sigma, goal) = parse_query_line(&universe, &mut pool, query).expect("query");
        let sigma_normal: Vec<_> = sigma
            .iter()
            .flat_map(|d| d.normalize(&universe, &mut pool))
            .collect();
        let mut imp = Answer::Yes;
        let mut fin = Answer::Yes;
        for part in goal.normalize(&universe, &mut pool) {
            let out = client
                .submit(QuerySpec::new(sigma_normal.clone(), part, pool.clone()))
                .wait();
            imp = imp.and(out.implication);
            fin = fin.and(out.finite_implication);
        }
        assert_eq!(
            (imp, fin),
            reference[i],
            "corrupted-log warm start must not change the answer to {query:?}"
        );
    }
    let stats = client.stats();
    assert_eq!(stats.verify_rejects, 0, "replayed witnesses must verify: {stats:?}");
    let _ = std::fs::remove_file(&path);
}
