//! Minimal in-process smoke of the proto server/client pair (fast
//! guard; the full differential soak lives in the workspace-root
//! `tests/proto.rs`).

use typedtd_service::proto::SockdConfig;
use typedtd_service::{ProtoClient, ProtoServer};

#[test]
fn submit_roundtrip_in_process() {
    let server = ProtoServer::bind(SockdConfig::default(), Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap();
    let mut client = ProtoClient::connect_tcp(addr).unwrap();
    let corr = client
        .submit("A B C", "A -> B & B -> C |= A -> C", None)
        .unwrap();
    let answer = client.wait_answer(corr).unwrap();
    assert_eq!(answer.implication, typedtd_chase::Answer::Yes);
    assert_eq!(answer.finite_implication, typedtd_chase::Answer::Yes);
    let stats = client.stats().unwrap();
    assert_eq!(stats["submitted"], 1);
    assert_eq!(stats["answered"], 1);
    assert_eq!(stats["pending"], 0);
}
