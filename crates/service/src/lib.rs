//! # typedtd-service — implication as a query engine
//!
//! The paper this repository reproduces proves that implication and finite
//! implication of typed template dependencies are **undecidable**: the set
//! `{(Σ, σ) : Σ ⊨ σ}` is r.e. (the chase enumerates it), the set
//! `{(Σ, σ) : Σ ⊭_f σ}` is r.e. (finite-model enumeration), and no total
//! algorithm closes the gap. A service built on such a theory cannot offer
//! "call and wait" semantics — any one call may never return. What it can
//! offer is the **dovetailing guarantee**, turned from a proof device into
//! a scheduler:
//!
//! * every query runs as a resumable [`typedtd_chase::DecideTask`] —
//!   chase rounds and search attempts are its preemption points;
//! * the [`ImplicationService`] round-robins fuel slices over all in-flight
//!   queries, so a terminating query is answered after boundedly many
//!   sweeps *regardless* of how many divergent neighbours it has
//!   (starvation-freedom is exactly the fairness clause of the classical
//!   dovetailing argument);
//! * per-job and global fuel budgets convert "never returns" into the
//!   honest third answer `Unknown`.
//!
//! On top of the scheduler sits an **isomorphism-keyed answer cache**
//! ([`canon`], [`cache`]): queries are keyed by a canonical form invariant
//! under variable renaming, hypothesis-row reordering, and Σ
//! reordering/duplication, so the structurally identical queries a real
//! workload issues by the million are answered from memory — and identical
//! queries *in flight* coalesce onto a single computation. The
//! [`batch`] module and the `typedtd-serve` binary expose the whole stack
//! over newline-delimited query files in the parser syntax.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod canon;
pub mod service;

pub use batch::{parse_query_line, submit_batch, Batch, BatchQuery, BatchVerdict};
pub use cache::{AnswerCache, CachedAnswer, Probe};
pub use canon::{dep_key, query_key, QueryKey};
pub use service::{
    ImplicationService, JobId, JobOutcome, JobStatus, ServiceConfig, ServiceStats,
};
