//! # typedtd-service — implication as a query engine
//!
//! The paper this repository reproduces proves that implication and finite
//! implication of typed template dependencies are **undecidable**: the set
//! `{(Σ, σ) : Σ ⊨ σ}` is r.e. (the chase enumerates it), the set
//! `{(Σ, σ) : Σ ⊭_f σ}` is r.e. (finite-model enumeration), and no total
//! algorithm closes the gap. A service built on such a theory cannot offer
//! "call and wait" semantics — any one call may never return. What it can
//! offer is the **dovetailing guarantee**, turned from a proof device into
//! a scheduler, behind a client API shaped like a production query engine:
//!
//! * [`ImplicationClient`] is a cheap [`Clone`] handle over shared state —
//!   every method takes `&self`, so any number of threads submit queries
//!   and step the scheduler concurrently;
//! * a query is an immutable [`QuerySpec`] (Σ, goal, pool, plus per-query
//!   priority and fuel overrides), separated from its evaluation;
//! * [`ImplicationClient::submit`] returns a [`JobHandle`] that owns the
//!   job's lifecycle: [`JobHandle::poll`], blocking [`JobHandle::wait`]
//!   (which helps drive the job's own shard while it waits, parking on
//!   the shard's condvar when another thread holds the claim), a real
//!   [`JobHandle::cancel`] (cooperative token — the computation stops
//!   within one fuel slice and resolves to the defined
//!   `JobStatus::Cancelled`; coalesced waiters can keep the answer alive
//!   via [`JobHandle::detach`]), and retire-on-drop, so polled outcomes
//!   never accumulate;
//! * internally, jobs hash by canonical key onto **sharded run queues**
//!   with per-shard fair dovetailing — a terminating query is answered
//!   after boundedly many sweeps of its shard regardless of how many
//!   divergent neighbours the service carries, and per-job plus global
//!   fuel budgets convert "never returns" into the honest third answer
//!   `Unknown`. Multi-worker drives pin workers to home-shard stripes
//!   and **steal** slices from the deepest foreign queue when idle
//!   (`ServiceConfig::steal`), so a skewed shard assignment no longer
//!   degrades to single-worker throughput;
//! * with `typedtd_chase::DecideMode::Dovetail` in the decide config,
//!   each job also dovetails *internally* — chase rounds alternate with
//!   finite-model search attempts at a configurable ratio — so
//!   refutable-but-divergent queries answer `No` under a fuel cap where
//!   the sequential mode can only report `Unknown`.
//!
//! On top of the scheduler sits a **bounded, isomorphism-keyed answer
//! cache** ([`canon`], [`cache`]): queries are keyed by a canonical form
//! invariant under variable renaming, hypothesis-row reordering, and Σ
//! reordering/duplication, so the structurally identical queries a real
//! workload issues by the million are answered from memory; identical
//! queries *in flight* coalesce onto a single computation; a goal that is
//! canonically an element of Σ is answered `Yes` at submit time without
//! scheduling at all; and the cache stays within a configured capacity via
//! LRU/cost-aware eviction (in-flight entries are pinned). The [`batch`]
//! module and the `typedtd-serve` binary expose the whole stack over
//! newline-delimited query files in the parser syntax.
//!
//! # Migrating from the v1 `ImplicationService`
//!
//! | v1 (single owner, `&mut self`) | v2 (shared-state client) |
//! |---|---|
//! | `ImplicationService::new(cfg)` | [`ImplicationClient::new`]`(cfg)` |
//! | `service.submit(sigma, goal, pool) -> JobId` | `client.submit(`[`QuerySpec::new`]`(sigma, goal, pool)) -> JobHandle` |
//! | `service.poll(id)` | `handle.poll()` (or [`ImplicationClient::status`]`(id)`) |
//! | `service.tick()` | [`ImplicationClient::tick`] (or per-shard [`ImplicationClient::step_shard`]) |
//! | `service.run_to_completion()` | [`ImplicationClient::run_to_completion`], or `handle.wait()` per job |
//! | finished jobs retained forever | handles retire on drop; slots are reused |
//! | unbounded `AnswerCache` | bounded via [`ServiceConfig::cache_capacity`] |

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod canon;
pub mod cli;
pub mod persist;
pub mod proto;
pub mod service;
pub mod telemetry;

pub use batch::{
    parse_query_line, parse_universe_spec, submit_batch, Batch, BatchError, BatchQuery,
    BatchVerdict,
};
pub use cache::{CachedAnswer, Probe, ShardCache};
pub use cli::{parse_decide_mode, stats_line};
pub use persist::{
    replay_bytes, replay_log, FaultPlan, PersistConfig, PersistLog, Replay, ReplayedRecord,
};
pub use proto::{
    decode_frame, parse_running_text, parse_stats_text, ClientConfig, Frame, FrameError, Opcode,
    ProgressKind, ProtoClient, ProtoServer, ProtoStream, RunningUpdate, SockdConfig,
    SubmitPayload, WireAnswer, MAX_FRAME_LEN, PROTO_VERSION,
};
pub use canon::{
    dep_key, group_query, permute_relation, query_key, query_parts, DecodedGroup, GoalDecoder,
    GroupKey, GroupQuery, QueryKey, QueryParts,
};
pub use telemetry::{
    bucket_index, bucket_upper_bound, write_atomic, Exposition, Histogram, HistogramSnapshot,
    OutcomeKind, Telemetry, TelemetrySnapshot, HIST_BUCKETS,
};
pub use service::{
    ImplicationClient, JobHandle, JobId, JobOutcome, JobStatus, QuerySpec, ServiceConfig,
    ServiceStats, ShardStep,
};
