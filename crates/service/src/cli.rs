//! Helpers shared by the `typedtd-serve` and `typedtd-sockd` front
//! ends, so the two binaries cannot silently diverge in the flags they
//! accept or the stats they report.

use crate::service::ImplicationClient;
use typedtd_chase::{DecideMode, RouteClass};
use typedtd_dependencies::DependencyClass;

/// Parses a `--mode` argument: `sequential`, `dovetail[:RATIO]` (fixed
/// `RATIO` chase rounds per search attempt, default 1), or
/// `dovetail:adaptive[:RATIO]` (start at `RATIO`, then rebalance fuel
/// toward whichever procedure progressed last slice).
pub fn parse_decide_mode(text: &str) -> Option<DecideMode> {
    match text {
        "sequential" => Some(DecideMode::Sequential),
        "dovetail" => Some(DecideMode::dovetail(1)),
        "dovetail:adaptive" => Some(DecideMode::adaptive_dovetail(1)),
        _ => {
            let rest = text.strip_prefix("dovetail:")?;
            match rest.strip_prefix("adaptive:") {
                Some(ratio) => Some(DecideMode::adaptive_dovetail(ratio.parse().ok()?)),
                None => Some(DecideMode::dovetail(rest.parse().ok()?)),
            }
        }
    }
}

/// The `--stats` ledger both front ends print: every [`crate::ServiceStats`]
/// counter plus the live cache size and in-flight gauge, `key=value`
/// separated by spaces. Per-class breakdowns (`class_CLASS=submitted/\
/// hits/misses` with hit-rate) appear only for classes that saw at least
/// one submission, so homogeneous workloads keep the classic line.
/// `inflight` is 0 after a full drain — the shutdown tests assert
/// exactly that.
pub fn stats_line(client: &ImplicationClient) -> String {
    let s = client.stats();
    let mut line = format!(
        "jobs={} completed={} yes={} no={} unknown={} cache_hits={} goal_in_sigma={} \
         coalesced={} misses={} hit_rate={:.2} evictions={} expired={} cancelled={} \
         retired={} shed={} fuel={} sweeps={} steals={} parked={} warm_hits={} \
         persist_errors={} cached_queries={} inflight={}",
        s.submitted,
        s.completed,
        s.yes,
        s.no,
        s.unknown,
        s.cache_hits,
        s.goal_in_sigma,
        s.coalesced,
        s.cache_misses,
        s.cache_hit_rate(),
        s.evictions,
        s.expired,
        s.cancelled,
        s.retired,
        s.shed,
        s.fuel_spent,
        s.sweeps,
        s.steals,
        s.parked,
        s.warm_hits,
        s.persist_errors,
        client.cache_len(),
        client.pending_jobs(),
    );
    for c in DependencyClass::ALL {
        let i = c.index();
        if s.class_submitted[i] == 0 {
            continue;
        }
        use std::fmt::Write as _;
        let _ = write!(
            line,
            " class_{}={}/{}/{}/{:.2}",
            c.as_str(),
            s.class_submitted[i],
            s.class_cache_hits[i],
            s.class_cache_misses[i],
            s.class_hit_rate(c),
        );
    }
    // Fragment-routing breakdown: only routes that saw traffic, so a
    // classifier-off run keeps the classic line.
    for r in RouteClass::ALL {
        let n = s.class_routed[r.index()];
        if n == 0 {
            continue;
        }
        use std::fmt::Write as _;
        let _ = write!(line, " routed_{}={}", r.as_str(), n);
    }
    {
        use std::fmt::Write as _;
        let _ = write!(
            line,
            " grouped={} group_chases={} group_fallbacks={}",
            s.grouped, s.group_chases, s.group_fallbacks,
        );
    }
    line
}
