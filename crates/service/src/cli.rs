//! Helpers shared by the `typedtd-serve` and `typedtd-sockd` front
//! ends, so the two binaries cannot silently diverge in the flags they
//! accept or the stats they report.

use crate::service::ImplicationClient;
use typedtd_chase::DecideMode;

/// Parses a `--mode` argument: `sequential` or `dovetail[:RATIO]`
/// (`RATIO` chase rounds per search attempt, default 1).
pub fn parse_decide_mode(text: &str) -> Option<DecideMode> {
    match text {
        "sequential" => Some(DecideMode::Sequential),
        "dovetail" => Some(DecideMode::dovetail(1)),
        _ => {
            let ratio = text.strip_prefix("dovetail:")?.parse().ok()?;
            Some(DecideMode::dovetail(ratio))
        }
    }
}

/// The `--stats` ledger both front ends print: every [`crate::ServiceStats`]
/// counter plus the live cache size and in-flight gauge, `key=value`
/// separated by spaces. `inflight` is 0 after a full drain — the
/// shutdown tests assert exactly that.
pub fn stats_line(client: &ImplicationClient) -> String {
    let s = client.stats();
    format!(
        "jobs={} completed={} yes={} no={} unknown={} cache_hits={} goal_in_sigma={} \
         coalesced={} misses={} hit_rate={:.2} evictions={} expired={} cancelled={} \
         retired={} shed={} fuel={} sweeps={} steals={} parked={} warm_hits={} \
         persist_errors={} cached_queries={} inflight={}",
        s.submitted,
        s.completed,
        s.yes,
        s.no,
        s.unknown,
        s.cache_hits,
        s.goal_in_sigma,
        s.coalesced,
        s.cache_misses,
        s.cache_hit_rate(),
        s.evictions,
        s.expired,
        s.cancelled,
        s.retired,
        s.shed,
        s.fuel_spent,
        s.sweeps,
        s.steals,
        s.parked,
        s.warm_hits,
        s.persist_errors,
        client.cache_len(),
        client.pending_jobs(),
    )
}
